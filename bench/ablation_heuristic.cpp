// Ablation studies of the design choices DESIGN.md calls out:
//
//  A. T/Δ interaction — Fig. 2's knob at two granularities, with the
//     allocator-internal iteration and drop counts exposed.
//  B. Relaxation path — exact bisection vs interior-point GP (same N̂,
//     different cost).
//  D. Simulator cross-check — model II vs measured II for every GP+A
//     point of the three paper cases.
#include <cstdio>

#include "alloc/gpa.hpp"
#include "bench/common.hpp"
#include "hls/paper.hpp"
#include "sim/pipeline_sim.hpp"
#include "solver/discretize.hpp"

namespace {

using mfa::io::TextTable;

void ablation_t_delta() {
  std::printf("--- A. T/Delta interaction (Alex-16 on 2 FPGAs, R=60%%) "
              "---\n");
  TextTable t({"T (%)", "Delta (%)", "II (ms)", "iterations",
               "used R_c (%)", "dropped CUs"});
  for (double t_max : {0.0, 0.05, 0.15, 0.30}) {
    for (double delta : {0.01, 0.05}) {
      mfa::core::Problem p = mfa::hls::paper::case_alex16_2fpga();
      p.resource_fraction = 0.60;
      mfa::alloc::GpaOptions opts;
      opts.greedy.t_max = t_max;
      opts.greedy.delta = delta;
      auto r = mfa::alloc::GpaSolver(opts).solve(p);
      if (!r.is_ok()) continue;
      // Re-run the allocator alone to recover iteration/drop details.
      auto g = mfa::alloc::GreedyAllocator(opts.greedy)
                   .allocate(p, r.value().totals);
      t.add_row({TextTable::fmt(100 * t_max, 0),
                 TextTable::fmt(100 * delta, 0),
                 TextTable::fmt(r.value().allocation.ii(), 3),
                 TextTable::fmt_int(g.is_ok() ? g.value().iterations : -1),
                 TextTable::fmt(100 * r.value().used_fraction, 0),
                 TextTable::fmt_int(
                     g.is_ok() ? g.value().dropped_cus : -1)});
    }
  }
  mfa::bench::emit_table(t, "ablation_t_delta");
  std::printf("\n");
}

void ablation_relaxation_path() {
  std::printf("--- B. Relaxation path: bisection vs interior-point GP "
              "---\n");
  TextTable t({"Case", "bisect II", "IP-GP II", "bisect ms", "IP-GP ms"});
  for (mfa::core::Problem p : {mfa::hls::paper::case_alex16_2fpga(),
                               mfa::hls::paper::case_alex32_4fpga(),
                               mfa::hls::paper::case_vgg_8fpga()}) {
    p.resource_fraction = 0.7;
    mfa::alloc::GpaOptions ip;
    ip.use_interior_point = true;
    auto a = mfa::alloc::GpaSolver().solve(p);
    auto b = mfa::alloc::GpaSolver(ip).solve(p);
    if (!a.is_ok() || !b.is_ok()) continue;
    t.add_row({p.app.name, TextTable::fmt(a.value().relaxed_ii, 4),
               TextTable::fmt(b.value().relaxed_ii, 4),
               TextTable::fmt(1e3 * a.value().seconds_relax, 3),
               TextTable::fmt(1e3 * b.value().seconds_relax, 3)});
  }
  mfa::bench::emit_table(t, "ablation_relaxation_path");
  std::printf("Same relaxed optimum; the problem-specific bisection is "
              "the cheaper step, the general IP solver is the paper's "
              "GPkit role.\n\n");
}

void ablation_simulator() {
  std::printf("--- D. Simulator cross-check (GP+A allocations, R=70%%) "
              "---\n");
  TextTable t({"Case", "model II (ms)", "measured II (ms)",
               "max throttle", "bottleneck busy"});
  for (mfa::core::Problem p : {mfa::hls::paper::case_alex16_2fpga(),
                               mfa::hls::paper::case_alex32_4fpga(),
                               mfa::hls::paper::case_vgg_8fpga()}) {
    p.resource_fraction = 0.7;
    auto r = mfa::alloc::GpaSolver().solve(p);
    if (!r.is_ok()) continue;
    const mfa::sim::SimResult s =
        mfa::sim::PipelineSimulator().run(r.value().allocation);
    double busiest = 0.0;
    for (double b : s.stage_busy) busiest = std::max(busiest, b);
    t.add_row({p.app.name, TextTable::fmt(r.value().allocation.ii(), 3),
               TextTable::fmt(s.measured_ii_ms, 3),
               TextTable::fmt(s.max_throttle, 2),
               TextTable::fmt(busiest, 3)});
  }
  mfa::bench::emit_table(t, "ablation_simulator");
  std::printf("Feasible allocations execute at exactly the analytical II "
              "(no DRAM throttling), validating eqs. 1-2 + 10.\n\n");
}

}  // namespace

int main() {
  std::printf("== Ablations of the heuristic's design choices ==\n\n");
  ablation_t_delta();
  ablation_relaxation_path();
  ablation_simulator();
  return 0;
}
