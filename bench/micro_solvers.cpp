// Google-benchmark microbenchmarks of the solver components: the GP
// interior-point solve, the exact bisection relaxation, branch-and-bound
// discretization, Algorithm 1, exact packing, and the end-to-end
// pipelines on the paper's largest case.
#include <benchmark/benchmark.h>

#include "alloc/gpa.hpp"
#include "alloc/greedy.hpp"
#include "core/relaxation.hpp"
#include "hls/paper.hpp"
#include "solver/discretize.hpp"
#include "solver/exact.hpp"
#include "solver/candidates.hpp"
#include "solver/packing.hpp"

namespace {

mfa::core::Problem vgg_problem(double rc) {
  mfa::core::Problem p = mfa::hls::paper::case_vgg_8fpga();
  p.resource_fraction = rc;
  return p;
}

void BM_RelaxationBisection(benchmark::State& state) {
  const mfa::core::Problem p = vgg_problem(0.7);
  for (auto _ : state) {
    auto r = mfa::core::solve_relaxation(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RelaxationBisection);

void BM_RelaxationInteriorPoint(benchmark::State& state) {
  const mfa::core::Problem p = vgg_problem(0.7);
  for (auto _ : state) {
    auto r = mfa::core::solve_relaxation_gp(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RelaxationInteriorPoint);

void BM_Discretize(benchmark::State& state) {
  const mfa::core::Problem p = vgg_problem(0.7);
  for (auto _ : state) {
    auto r = mfa::solver::Discretizer().run(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Discretize);

void BM_GreedyAllocate(benchmark::State& state) {
  const mfa::core::Problem p = vgg_problem(0.7);
  const auto disc = mfa::solver::Discretizer().run(p);
  for (auto _ : state) {
    auto r = mfa::alloc::GreedyAllocator().allocate(p, disc.value().totals);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GreedyAllocate);

void BM_GpaEndToEnd(benchmark::State& state) {
  const mfa::core::Problem p =
      vgg_problem(0.55 + 0.05 * static_cast<double>(state.range(0)));
  for (auto _ : state) {
    auto r = mfa::alloc::GpaSolver().solve(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GpaEndToEnd)->DenseRange(0, 4);

void BM_PackingFeasibility(benchmark::State& state) {
  const mfa::core::Problem p = vgg_problem(0.7);
  const std::vector<int> totals =
      mfa::solver::minimal_totals(p, /*target_ii=*/14.0);
  for (auto _ : state) {
    mfa::solver::Budget budget(10'000'000, 5.0);
    auto r = mfa::solver::PackingSolver(p).pack(
        totals, mfa::solver::PackingMode::kFeasibility, budget);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PackingFeasibility);

void BM_ExactAlex16(benchmark::State& state) {
  mfa::core::Problem p = mfa::hls::paper::case_alex16_2fpga();
  p.resource_fraction = 0.7;
  for (auto _ : state) {
    auto r = mfa::solver::ExactSolver().solve(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExactAlex16);

}  // namespace

BENCHMARK_MAIN();
