// §4 runtime comparison — "the CPU time of GP+A ranges between 0.78 s
// (Alex-16 on 2 FPGAs) to 4.4 s (VGG on 8 FPGAs), whereas that of MINLP
// and MINLP+G ranges from around one minute to several hours, with a
// speedup that ranges from around 100x to around 1000x."
//
// Absolute times differ (2011 Core i7 + GPkit/Couenne vs this
// from-scratch C++ stack, which is much faster on both sides); the claim
// to reproduce is the orders-of-magnitude gap between the heuristic and
// the exact search, measured here over a constraint sweep per case. Each
// method's sweep goes through the runtime batch engine as single-lane
// portfolio requests; the reported time is the sum of per-point solve
// times (comparable across thread counts), not the batch wall time.
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "hls/paper.hpp"
#include "runtime/batch.hpp"

namespace {

using mfa::runtime::BatchOptions;
using mfa::runtime::BatchRunner;
using mfa::runtime::PortfolioOptions;
using mfa::runtime::SolveRequest;
using mfa::runtime::SolveResult;

std::vector<SolveRequest> sweep_requests(const mfa::core::Problem& base,
                                         const std::vector<double>& range,
                                         const PortfolioOptions& portfolio) {
  std::vector<SolveRequest> requests;
  requests.reserve(range.size());
  for (double rc : range) {
    mfa::core::Problem p = base;
    p.resource_fraction = rc;
    SolveRequest r = SolveRequest::of(std::move(p));
    r.options = portfolio;
    requests.push_back(std::move(r));
  }
  return requests;
}

double total_seconds(const std::vector<SolveResult>& results) {
  double s = 0.0;
  for (const SolveResult& r : results) s += r.seconds;
  return s;
}

}  // namespace

int main() {
  struct Case {
    mfa::core::Problem problem;
    std::vector<double> constraints;
  };
  const Case cases[] = {
      {mfa::hls::paper::case_alex16_2fpga(),
       mfa::alloc::constraint_range(0.55, 0.85, 0.025)},
      {mfa::hls::paper::case_alex32_4fpga(),
       mfa::alloc::constraint_range(0.65, 0.75, 0.025)},
      {mfa::hls::paper::case_vgg_8fpga(),
       mfa::alloc::constraint_range(0.55, 0.80, 0.03)},
  };

  // The three roles as single-lane portfolios.
  PortfolioOptions gpa;
  gpa.gpa_t_max = {0.0};
  gpa.run_exact = false;

  PortfolioOptions exact;
  exact.gpa_t_max.clear();
  exact.run_exact = true;
  exact.max_nodes = 3'000'000;
  exact.max_seconds = 15.0;

  // The general spatial-B&B role (Couenne in the paper): capped at one
  // second per point — it does not finish the larger cases, which is
  // exactly the paper's point.
  PortfolioOptions naive;
  naive.gpa_t_max.clear();
  naive.run_exact = false;
  naive.run_naive = true;
  naive.max_nodes = 50'000'000;
  naive.max_seconds = 1.0;

  BatchOptions batch;
  batch.num_threads = mfa::bench::bench_threads();
  const BatchRunner runner(batch);

  std::printf("== Runtime: GP+A vs structured exact vs general B&B "
              "(full sweep per case) ==\n\n");
  mfa::io::TextTable t({"Case", "points", "GP+A (s)",
                        "struct. exact (s)", "naive B&B (s)",
                        "exact/GP+A", "naive/GP+A", "naive done?"});
  for (const Case& c : cases) {
    const double gpa_seconds = total_seconds(
        runner.solve_all(sweep_requests(c.problem, c.constraints, gpa)));
    const double exact_seconds = total_seconds(
        runner.solve_all(sweep_requests(c.problem, c.constraints, exact)));
    const std::vector<SolveResult> naive_results =
        runner.solve_all(sweep_requests(c.problem, c.constraints, naive));
    const double naive_seconds = total_seconds(naive_results);
    bool naive_completed = true;
    for (const SolveResult& r : naive_results) {
      if (!r.is_ok() || !r.proved_optimal) naive_completed = false;
    }
    t.add_row({c.problem.app.name + "/" +
                   std::to_string(c.problem.num_fpgas()) + "FPGA",
               mfa::io::TextTable::fmt_int(
                   static_cast<long long>(c.constraints.size())),
               mfa::io::TextTable::fmt(gpa_seconds, 4),
               mfa::io::TextTable::fmt(exact_seconds, 4),
               mfa::io::TextTable::fmt(naive_seconds, 4),
               mfa::io::TextTable::fmt(
                   exact_seconds / std::max(gpa_seconds, 1e-9), 1) + "x",
               mfa::io::TextTable::fmt(
                   naive_seconds / std::max(gpa_seconds, 1e-9), 1) + "x",
               naive_completed ? "yes" : "capped"});
  }
  mfa::bench::emit_table(t, "runtime_comparison");
  std::printf("\nExpected shape: GP+A is orders of magnitude faster "
              "than a general branch-and-bound over n_kf (the Couenne "
              "role; capped runs are lower bounds on its true cost). "
              "The structured exact solver narrows but does not close "
              "the gap on the large case.\n");
  return 0;
}
