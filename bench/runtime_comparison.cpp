// §4 runtime comparison — "the CPU time of GP+A ranges between 0.78 s
// (Alex-16 on 2 FPGAs) to 4.4 s (VGG on 8 FPGAs), whereas that of MINLP
// and MINLP+G ranges from around one minute to several hours, with a
// speedup that ranges from around 100x to around 1000x."
//
// Absolute times differ (2011 Core i7 + GPkit/Couenne vs this
// from-scratch C++ stack, which is much faster on both sides); the claim
// to reproduce is the orders-of-magnitude gap between the heuristic and
// the exact search, measured here over a constraint sweep per case.
#include <chrono>
#include <functional>
#include <cstdio>

#include "alloc/gpa.hpp"
#include "bench/common.hpp"
#include "hls/paper.hpp"
#include "solver/exact.hpp"
#include "solver/naive.hpp"

namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

}  // namespace

int main() {
  struct Case {
    mfa::core::Problem problem;
    std::vector<double> constraints;
  };
  const Case cases[] = {
      {mfa::hls::paper::case_alex16_2fpga(),
       mfa::alloc::constraint_range(0.55, 0.85, 0.025)},
      {mfa::hls::paper::case_alex32_4fpga(),
       mfa::alloc::constraint_range(0.65, 0.75, 0.025)},
      {mfa::hls::paper::case_vgg_8fpga(),
       mfa::alloc::constraint_range(0.55, 0.80, 0.03)},
  };

  std::printf("== Runtime: GP+A vs structured exact vs general B&B "
              "(full sweep per case) ==\n\n");
  mfa::io::TextTable t({"Case", "points", "GP+A (s)",
                        "struct. exact (s)", "naive B&B (s)",
                        "exact/GP+A", "naive/GP+A", "naive done?"});
  for (const Case& c : cases) {
    double gpa_seconds = 0.0;
    double exact_seconds = 0.0;
    double naive_seconds = 0.0;
    bool naive_completed = true;
    for (double rc : c.constraints) {
      mfa::core::Problem p = c.problem;
      p.resource_fraction = rc;
      gpa_seconds += seconds_of([&] {
        auto r = mfa::alloc::GpaSolver().solve(p);
        (void)r;
      });
      mfa::solver::ExactOptions opts;
      opts.max_nodes = 3'000'000;
      opts.max_seconds = 15.0;
      exact_seconds += seconds_of([&] {
        auto r = mfa::solver::ExactSolver(opts).solve(p);
        (void)r;
      });
      // The general spatial-B&B role (Couenne in the paper): capped at
      // one second per point — it does not finish the larger cases,
      // which is exactly the paper's point.
      naive_seconds += seconds_of([&] {
        mfa::solver::NaiveMinlp naive(
            mfa::solver::Budget(50'000'000, 1.0));
        auto r = naive.solve(p);
        if (!r.is_ok() || !r.value().proved_optimal) {
          naive_completed = false;
        }
      });
    }
    t.add_row({c.problem.app.name + "/" +
                   std::to_string(c.problem.num_fpgas()) + "FPGA",
               mfa::io::TextTable::fmt_int(
                   static_cast<long long>(c.constraints.size())),
               mfa::io::TextTable::fmt(gpa_seconds, 4),
               mfa::io::TextTable::fmt(exact_seconds, 4),
               mfa::io::TextTable::fmt(naive_seconds, 4),
               mfa::io::TextTable::fmt(
                   exact_seconds / std::max(gpa_seconds, 1e-9), 1) + "x",
               mfa::io::TextTable::fmt(
                   naive_seconds / std::max(gpa_seconds, 1e-9), 1) + "x",
               naive_completed ? "yes" : "capped"});
  }
  mfa::bench::emit_table(t, "runtime_comparison");
  std::printf("\nExpected shape: GP+A is orders of magnitude faster "
              "than a general branch-and-bound over n_kf (the Couenne "
              "role; capped runs are lower bounds on its true cost). "
              "The structured exact solver narrows but does not close "
              "the gap on the large case.\n");
  return 0;
}
