// Figure 2 — Alex-16 on 2 FPGAs: II versus resource constraint
// (40–90 %) for T ∈ {0, 2.5, 5, 10, 15, 20, 25, 30} %, Δ = 1 %.
//
// Paper finding to reproduce: "little effect of T on the value of II
// across a large range of resource constraints" — the columns should be
// nearly identical wherever the heuristic is feasible.
#include <cstdio>

#include "alloc/gpa.hpp"
#include "bench/common.hpp"
#include "hls/paper.hpp"

int main() {
  const std::vector<double> t_values{0.0,  0.025, 0.05, 0.10,
                                     0.15, 0.20,  0.25, 0.30};
  const std::vector<double> constraints =
      mfa::alloc::constraint_range(0.40, 0.90, 0.02);

  std::printf("== Fig. 2: Alex-16 on 2 FPGAs, II (ms) vs constraint for "
              "T sweeps (Delta = 1%%) ==\n\n");

  std::vector<std::string> headers{"R (%)"};
  for (double t : t_values) {
    headers.push_back("T" + mfa::io::TextTable::fmt(100.0 * t, 1));
  }
  mfa::io::TextTable table(headers);

  std::vector<mfa::io::PlotSeries> plot(t_values.size());
  for (std::size_t ti = 0; ti < t_values.size(); ++ti) {
    plot[ti].label = "T" + mfa::io::TextTable::fmt(100.0 * t_values[ti], 1);
  }

  for (double rc : constraints) {
    std::vector<std::string> row{mfa::io::TextTable::fmt(100.0 * rc, 0)};
    for (std::size_t ti = 0; ti < t_values.size(); ++ti) {
      mfa::core::Problem p = mfa::hls::paper::case_alex16_2fpga();
      p.resource_fraction = rc;
      mfa::alloc::GpaOptions opts;
      opts.greedy.t_max = t_values[ti];
      opts.greedy.delta = 0.01;
      auto r = mfa::alloc::GpaSolver(opts).solve(p);
      if (r.is_ok()) {
        const double ii = r.value().allocation.ii();
        row.push_back(mfa::io::TextTable::fmt(ii, 3));
        plot[ti].points.emplace_back(100.0 * rc, ii);
      } else {
        row.push_back("-");
      }
    }
    table.add_row(std::move(row));
  }
  mfa::bench::emit_table(table, "fig2_t_sensitivity");

  const std::string dir = mfa::bench::out_dir();
  if (!dir.empty()) {
    (void)mfa::io::write_gnuplot(dir, "fig2", "ALEX 16-bit on 2 FPGAs",
                                 "Resource Constraint (%)",
                                 "Initiation Interval (ms)", plot);
  }
  std::printf("\nExpected shape: columns nearly identical (T has little "
              "effect); II decreases as the constraint loosens.\n");
  return 0;
}
