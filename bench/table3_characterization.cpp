// Table 3 — characterization of the VGG-16 kernels (16-bit fixed point),
// per CU, on one AWS F1 FPGA. Paper dataset + analytical cost model.
#include <cstdio>

#include "bench/common.hpp"
#include "hls/cost_model.hpp"
#include "hls/layers.hpp"
#include "hls/paper.hpp"

namespace {

using mfa::core::Application;
using mfa::core::Resource;
using mfa::io::TextTable;

void print_app(const Application& app, const char* title,
               const std::string& stem) {
  std::printf("--- %s ---\n", title);
  TextTable t({"Kernel", "BRAM (%)", "DSP (%)", "BW (%)", "WCET (ms)"});
  for (const auto& k : app.kernels) {
    t.add_row({k.name, TextTable::fmt(k.res[Resource::kBram], 2),
               TextTable::fmt(k.res[Resource::kDsp], 2),
               TextTable::fmt(k.bw, 2), TextTable::fmt(k.wcet_ms, 2)});
  }
  t.add_row({"SUM", TextTable::fmt(app.total_resources()[Resource::kBram], 2),
             TextTable::fmt(app.total_resources()[Resource::kDsp], 2),
             TextTable::fmt(app.total_bw(), 2),
             TextTable::fmt(app.total_wcet() / 1000.0, 2) + " (s)"});
  mfa::bench::emit_table(t, stem);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Table 3: VGG-16 kernel characterization ==\n\n");
  print_app(mfa::hls::paper::vgg16(), "VGG (paper dataset, 16-bit fixed)",
            "table3_vgg_paper");

  const mfa::hls::CostModel model(mfa::hls::Device::vu9p());
  print_app(model.characterize_network(mfa::hls::vgg16(),
                                       mfa::hls::DataType::kFixed16,
                                       /*dsp_budget_pct=*/15.0),
            "VGG (analytical cost model, ~Table-3 DSP budget)",
            "table3_vgg_model");
  return 0;
}
