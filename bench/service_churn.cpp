// Serving-path benchmark: warm-started incremental re-solves vs cold,
// plus the compiled-GP model-cache economics.
//
// Replays one seeded arrival trace (scenario/trace.hpp) through two
// AllocServers that differ only in ServerOptions::warm_start, with the
// interior-point root relaxation so solver effort is measurable in GP
// Newton iterations (gp::total_newton_iterations()). The warm server
// seeds every event's root solve from the incumbent allocation's
// ÎI/N̂; the cold server re-solves each event from scratch. Both run
// the same sharded capacity-bounded cache configuration, so the
// comparison isolates the warm start itself.
//
// Reported per mode: total GP Newton iterations, wall-clock replay
// time, mean/p50/p95 per-event latency, B&B nodes, and the
// structure/coefficient-split counters — full GP IR lowerings
// (compiles) vs in-place coefficient patches, plus hit/miss/eviction
// stats of both the relaxation cache and the compiled-model cache.
//
// A third replay runs the warm configuration with a write-ahead log
// (fsync on) to price durability: the WAL column reports the same
// latency metrics, so the append-before-apply overhead is visible per
// event rather than hidden in the daemon.
//
// `--check` exits non-zero when any PR gate fails:
//   * warm must beat cold on total Newton iterations (PR-4),
//   * Reprioritize/ResizePlatform events must perform *zero* full GP
//     recompiles — numeric-only deltas keep the composite's structure,
//     so every such solve must be a model-cache hit + patch (PR-5), and
//   * the WAL replay's deterministic event log must be byte-identical
//     to the non-WAL warm replay — durability is observability-free
//     (PR-6, the property crash recovery rides on),
//   * every full IR lowering must match a compiled-model cache miss
//     (no path compiles structures behind the cache's back),
//   * zero batched-kernel misgroupings: fingerprint grouping must never
//     hand the lane-parallel kernel models of different structure, and
//   * zero heap allocations inside warm delta application — the runtime
//     half of the zero-allocation warm path (support/alloc_count.hpp).
//     Enforced when the counting interposer is linked
//     (-DMFA_COUNT_ALLOC=ON); skipped with a notice otherwise.
// `--smoke` shrinks the trace for CI wiring checks.
//
// With MFA_BENCH_OUT set to a directory, the measurements are written
// there as BENCH_service_churn.json and BENCH_compile_cache.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "gp/batched.hpp"
#include "gp/solver.hpp"
#include "io/serialize.hpp"
#include "scenario/trace.hpp"
#include "service/alloc_server.hpp"
#include "support/alloc_count.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct ReplayStats {
  std::int64_t newton = 0;  ///< GP Newton iterations spent
  std::int64_t nodes = 0;   ///< B&B nodes across all events
  double seconds = 0.0;     ///< wall-clock replay time
  double mean_event_ms = 0.0;
  double p50_event_ms = 0.0;
  double p95_event_ms = 0.0;
  double p99_event_ms = 0.0;
  double max_event_ms = 0.0;
  /// Heap allocations inside warm delta application, summed over the
  /// replay's reprioritize/resize events (0 unless the counting
  /// interposer is linked; --check gates it at zero when it is).
  std::uint64_t warm_allocs = 0;
  std::int64_t gp_compiles = 0;  ///< full IR lowerings
  std::int64_t gp_patches = 0;   ///< coefficient patches
  /// Batched-kernel misgroupings (lanes whose compiled models did not
  /// share a structure at batch-build time) observed during the replay —
  /// fingerprint grouping must make this impossible, so --check gates
  /// the delta at zero.
  std::int64_t batched_misgroupings = 0;
  /// Full recompiles charged to numeric-only (reprioritize/resize)
  /// events — the --check gate requires zero.
  std::int64_t numeric_event_compiles = 0;
  mfa::core::RelaxationCache::Stats relax;
  mfa::core::CompiledModelCache::Stats model;
  /// Concatenated deterministic outcome JSON, one line per event — the
  /// WAL determinism gate byte-compares these across replays.
  std::string log_digest;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// One full trace replay. A non-empty `wal_dir` runs the durable path
/// (AllocServer::open, fsync'd append-before-apply) so the WAL column
/// prices exactly what the daemon pays.
ReplayStats replay(const mfa::scenario::Trace& trace, bool warm_start,
                   const std::string& wal_dir = "") {
  mfa::service::ServerOptions options;
  options.warm_start = warm_start;
  options.wal_dir = wal_dir;
  // Interior-point root: the effort metric is GP Newton iterations and
  // the model cache is on the hot path.
  options.portfolio.gpa.use_interior_point = true;

  ReplayStats stats;
  const std::int64_t newton0 = mfa::gp::total_newton_iterations();
  const std::int64_t misgroup0 = mfa::gp::total_batched_misgroupings();
  const auto t0 = Clock::now();
  auto opened = mfa::service::AllocServer::open(trace.platform, options);
  if (!opened.is_ok()) {
    std::fprintf(stderr, "fatal: %s\n",
                 opened.status().to_string().c_str());
    std::exit(1);
  }
  mfa::service::AllocServer& server = *opened.value();
  std::vector<double> event_ms;
  event_ms.reserve(trace.events.size());
  for (const mfa::service::Event& event : trace.events) {
    const mfa::service::EventOutcome outcome = server.apply(event);
    stats.nodes += outcome.solve.nodes;
    stats.gp_compiles += outcome.cache.gp_compiles;
    stats.gp_patches += outcome.cache.gp_patches;
    if (event.type == mfa::service::Event::Type::kReprioritize ||
        event.type == mfa::service::Event::Type::kResizePlatform) {
      stats.numeric_event_compiles += outcome.cache.gp_compiles;
    }
    stats.warm_allocs += outcome.warm_allocs;
    event_ms.push_back(outcome.seconds * 1e3);
    stats.log_digest += mfa::io::to_json(outcome).dump();
    stats.log_digest += '\n';
  }
  server.stop();
  stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  stats.newton = mfa::gp::total_newton_iterations() - newton0;
  stats.batched_misgroupings =
      mfa::gp::total_batched_misgroupings() - misgroup0;
  double total_ms = 0.0;
  for (double ms : event_ms) total_ms += ms;
  stats.mean_event_ms =
      event_ms.empty() ? 0.0 : total_ms / static_cast<double>(event_ms.size());
  stats.p50_event_ms = percentile(event_ms, 0.50);
  stats.p95_event_ms = percentile(event_ms, 0.95);
  stats.p99_event_ms = percentile(event_ms, 0.99);
  stats.max_event_ms =
      event_ms.empty() ? 0.0
                       : *std::max_element(event_ms.begin(), event_ms.end());
  stats.relax = server.cache_stats();
  stats.model = server.model_cache_stats();
  return stats;
}

void write_json(const std::string& path, const mfa::io::Json& doc) {
  const mfa::Status st = mfa::io::write_file(path, doc.dump(2) + "\n");
  if (st.is_ok()) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: %s\n", st.to_string().c_str());
  }
}

void emit_json(int events, const ReplayStats& cold, const ReplayStats& warm,
               const ReplayStats& wal) {
  const char* dir = std::getenv("MFA_BENCH_OUT");
  if (dir == nullptr || *dir == '\0') return;
  {
    mfa::io::Json doc = mfa::io::Json::object();
    doc.set("bench", mfa::io::Json::string("service_churn"));
    doc.set("events", mfa::io::Json::number(events));
    doc.set("cold_newton_iterations",
            mfa::io::Json::number(static_cast<double>(cold.newton)));
    doc.set("warm_newton_iterations",
            mfa::io::Json::number(static_cast<double>(warm.newton)));
    doc.set("newton_ratio",
            mfa::io::Json::number(static_cast<double>(cold.newton) /
                                  static_cast<double>(warm.newton)));
    doc.set("cold_seconds", mfa::io::Json::number(cold.seconds));
    doc.set("warm_seconds", mfa::io::Json::number(warm.seconds));
    doc.set("cold_mean_event_ms", mfa::io::Json::number(cold.mean_event_ms));
    doc.set("warm_mean_event_ms", mfa::io::Json::number(warm.mean_event_ms));
    doc.set("cold_nodes",
            mfa::io::Json::number(static_cast<double>(cold.nodes)));
    doc.set("warm_nodes",
            mfa::io::Json::number(static_cast<double>(warm.nodes)));
    // Durability pricing: same warm configuration, WAL on (fsync).
    doc.set("wal_seconds", mfa::io::Json::number(wal.seconds));
    doc.set("wal_mean_event_ms", mfa::io::Json::number(wal.mean_event_ms));
    doc.set("wal_p95_event_ms", mfa::io::Json::number(wal.p95_event_ms));
    doc.set("wal_overhead_ratio",
            mfa::io::Json::number(warm.mean_event_ms > 0.0
                                      ? wal.mean_event_ms / warm.mean_event_ms
                                      : 0.0));
    doc.set("wal_log_identical",
            mfa::io::Json::boolean(wal.log_digest == warm.log_digest));
    // Tail latency and the zero-allocation gate's inputs.
    doc.set("warm_p99_event_ms", mfa::io::Json::number(warm.p99_event_ms));
    doc.set("warm_max_event_ms", mfa::io::Json::number(warm.max_event_ms));
    doc.set("alloc_counting_linked",
            mfa::io::Json::boolean(mfa::alloc_counting_linked()));
    doc.set("warm_allocs",
            mfa::io::Json::number(static_cast<double>(
                cold.warm_allocs + warm.warm_allocs + wal.warm_allocs)));
    write_json(std::string(dir) + "/BENCH_service_churn.json", doc);
  }
  {
    // Compile-cache economics: how many events paid a full lowering vs
    // an in-place coefficient patch, and what that did to per-event
    // latency (p50/p95, warm vs cold).
    mfa::io::Json doc = mfa::io::Json::object();
    doc.set("bench", mfa::io::Json::string("compile_cache"));
    doc.set("events", mfa::io::Json::number(events));
    for (const auto& [mode, stats] :
         {std::pair<const char*, const ReplayStats&>{"cold", cold},
          std::pair<const char*, const ReplayStats&>{"warm", warm}}) {
      mfa::io::Json row = mfa::io::Json::object();
      row.set("gp_compiles",
              mfa::io::Json::number(static_cast<double>(stats.gp_compiles)));
      row.set("gp_patches",
              mfa::io::Json::number(static_cast<double>(stats.gp_patches)));
      row.set("numeric_event_compiles",
              mfa::io::Json::number(
                  static_cast<double>(stats.numeric_event_compiles)));
      row.set("p50_event_ms", mfa::io::Json::number(stats.p50_event_ms));
      row.set("p95_event_ms", mfa::io::Json::number(stats.p95_event_ms));
      row.set("p99_event_ms", mfa::io::Json::number(stats.p99_event_ms));
      row.set("max_event_ms", mfa::io::Json::number(stats.max_event_ms));
      row.set("mean_event_ms", mfa::io::Json::number(stats.mean_event_ms));
      row.set("model_cache_hits",
              mfa::io::Json::number(static_cast<double>(stats.model.hits)));
      row.set("model_cache_misses",
              mfa::io::Json::number(static_cast<double>(stats.model.misses)));
      row.set("model_cache_entries",
              mfa::io::Json::number(static_cast<double>(stats.model.entries)));
      row.set("relax_cache_hits",
              mfa::io::Json::number(static_cast<double>(stats.relax.hits)));
      doc.set(mode, std::move(row));
    }
    write_json(std::string(dir) + "/BENCH_compile_cache.json", doc);
  }
}

void print_mode_table(const ReplayStats& cold, const ReplayStats& warm,
                      const ReplayStats& wal) {
  const auto row_i = [](const char* name, std::int64_t c, std::int64_t w,
                        std::int64_t d) {
    std::printf("%-28s %14lld %14lld %14lld\n", name,
                static_cast<long long>(c), static_cast<long long>(w),
                static_cast<long long>(d));
  };
  const auto row_f = [](const char* name, double c, double w, double d) {
    std::printf("%-28s %14.3f %14.3f %14.3f\n", name, c, w, d);
  };
  std::printf("%-28s %14s %14s %14s\n", "metric", "cold", "warm",
              "warm+wal");
  row_i("GP Newton iterations", cold.newton, warm.newton, wal.newton);
  row_i("B&B nodes", cold.nodes, warm.nodes, wal.nodes);
  row_f("replay seconds", cold.seconds, warm.seconds, wal.seconds);
  row_f("mean event latency (ms)", cold.mean_event_ms, warm.mean_event_ms,
        wal.mean_event_ms);
  row_f("p50 event latency (ms)", cold.p50_event_ms, warm.p50_event_ms,
        wal.p50_event_ms);
  row_f("p95 event latency (ms)", cold.p95_event_ms, warm.p95_event_ms,
        wal.p95_event_ms);
  row_f("p99 event latency (ms)", cold.p99_event_ms, warm.p99_event_ms,
        wal.p99_event_ms);
  row_f("max event latency (ms)", cold.max_event_ms, warm.max_event_ms,
        wal.max_event_ms);
  row_i("warm-path allocations", static_cast<std::int64_t>(cold.warm_allocs),
        static_cast<std::int64_t>(warm.warm_allocs),
        static_cast<std::int64_t>(wal.warm_allocs));
  row_i("GP full compiles", cold.gp_compiles, warm.gp_compiles,
        wal.gp_compiles);
  row_i("GP coefficient patches", cold.gp_patches, warm.gp_patches,
        wal.gp_patches);
  row_i("  of compiles: numeric evts", cold.numeric_event_compiles,
        warm.numeric_event_compiles, wal.numeric_event_compiles);
  row_i("batched misgroupings", cold.batched_misgroupings,
        warm.batched_misgroupings, wal.batched_misgroupings);
  row_i("model cache hits", static_cast<std::int64_t>(cold.model.hits),
        static_cast<std::int64_t>(warm.model.hits),
        static_cast<std::int64_t>(wal.model.hits));
  row_i("model cache misses", static_cast<std::int64_t>(cold.model.misses),
        static_cast<std::int64_t>(warm.model.misses),
        static_cast<std::int64_t>(wal.model.misses));
  row_i("relaxation cache hits", static_cast<std::int64_t>(cold.relax.hits),
        static_cast<std::int64_t>(warm.relax.hits),
        static_cast<std::int64_t>(wal.relax.hits));
}

}  // namespace

int main(int argc, char** argv) {
  int events = 400;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      events = 80;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events = std::atoi(argv[++i]);
      if (events <= 0) events = 1;
    }
  }

  mfa::scenario::TraceSpec spec;
  spec.num_events = events;
  const mfa::scenario::Trace trace =
      mfa::scenario::generate_trace(spec, /*seed=*/20190702);
  std::printf("service_churn: %d events, %d-FPGA pool (seed fixed)\n\n",
              events, trace.platform.num_fpgas);

  const ReplayStats cold = replay(trace, /*warm_start=*/false);
  const ReplayStats warm = replay(trace, /*warm_start=*/true);

  // Durable replay: same warm configuration plus a fsync'd WAL in a
  // scratch directory, removed afterwards.
  char wal_template[] = "/tmp/mfa_churn_wal_XXXXXX";
  const char* wal_dir = ::mkdtemp(wal_template);
  if (wal_dir == nullptr) {
    std::fprintf(stderr, "fatal: mkdtemp failed\n");
    return 1;
  }
  const ReplayStats wal = replay(trace, /*warm_start=*/true, wal_dir);
  {
    std::error_code ec;
    std::filesystem::remove_all(wal_dir, ec);
  }

  print_mode_table(cold, warm, wal);
  const double ratio = static_cast<double>(cold.newton) /
                       static_cast<double>(warm.newton);
  const bool wal_identical = wal.log_digest == warm.log_digest;
  std::printf("\nheadline: warm re-solves use %.2fx fewer GP Newton "
              "iterations than cold; %lld/%lld warm solves were "
              "patch-only (zero recompiles on numeric events: %s)\n",
              ratio, static_cast<long long>(warm.gp_patches),
              static_cast<long long>(warm.gp_patches + warm.gp_compiles),
              warm.numeric_event_compiles == 0 &&
                      cold.numeric_event_compiles == 0
                  ? "yes"
                  : "NO");
  std::printf("durability: WAL replay %.2fx warm mean event latency, "
              "event log byte-identical: %s\n",
              warm.mean_event_ms > 0.0
                  ? wal.mean_event_ms / warm.mean_event_ms
                  : 0.0,
              wal_identical ? "yes" : "NO");
  emit_json(events, cold, warm, wal);
  if (check) {
    int rc = 0;
    if (warm.newton >= cold.newton) {
      std::printf("FAIL: warm starts did not reduce Newton iterations\n");
      rc = 1;
    }
    if (cold.numeric_event_compiles != 0 ||
        warm.numeric_event_compiles != 0) {
      std::printf("FAIL: reprioritize/resize events triggered %lld full GP "
                  "recompiles (expected 0)\n",
                  static_cast<long long>(cold.numeric_event_compiles +
                                         warm.numeric_event_compiles));
      rc = 1;
    }
    if (!wal_identical) {
      std::printf("FAIL: WAL-enabled replay produced a different event log "
                  "(durability must be byte-transparent)\n");
      rc = 1;
    }
    // Zero-allocation warm path: with the counting interposer linked
    // (-DMFA_COUNT_ALLOC=ON), no reprioritize/resize delta may allocate.
    // The static half is mfa_lint's suppression-free warm-path-alloc
    // rule; this is the runtime witness.
    if (mfa::alloc_counting_linked()) {
      const std::uint64_t total_warm_allocs =
          cold.warm_allocs + warm.warm_allocs + wal.warm_allocs;
      if (total_warm_allocs != 0) {
        std::printf("FAIL: warm deltas performed %llu heap allocations "
                    "(expected 0)\n",
                    static_cast<unsigned long long>(total_warm_allocs));
        rc = 1;
      }
    } else {
      std::printf("note: zero-allocation gate skipped — counting "
                  "interposer not linked (build with -DMFA_COUNT_ALLOC=ON "
                  "to enable it)\n");
    }
    // Every full IR lowering must be accounted for by a compiled-model
    // cache miss: a compile the cache never saw would mean some path
    // rebuilds structures behind the cache's back (and would erode the
    // patch-only economics the PR-5 split promises).
    for (const auto& [mode, stats] :
         {std::pair<const char*, const ReplayStats&>{"cold", cold},
          std::pair<const char*, const ReplayStats&>{"warm", warm},
          std::pair<const char*, const ReplayStats&>{"warm+wal", wal}}) {
      if (stats.gp_compiles != static_cast<std::int64_t>(stats.model.misses)) {
        std::printf("FAIL: %s replay performed %lld structure compiles but "
                    "the model cache recorded %lld misses (hidden compiles)\n",
                    mode, static_cast<long long>(stats.gp_compiles),
                    static_cast<long long>(stats.model.misses));
        rc = 1;
      }
      if (stats.batched_misgroupings != 0) {
        std::printf("FAIL: %s replay hit %lld batched-group misgroupings "
                    "(fingerprint grouping must prevent all of them)\n",
                    mode,
                    static_cast<long long>(stats.batched_misgroupings));
        rc = 1;
      }
    }
    return rc;
  }
  return 0;
}
