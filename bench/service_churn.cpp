// Serving-path benchmark: warm-started incremental re-solves vs cold.
//
// Replays one seeded arrival trace (scenario/trace.hpp) through two
// AllocServers that differ only in ServerOptions::warm_start, with the
// interior-point root relaxation so solver effort is measurable in GP
// Newton iterations (gp::total_newton_iterations()). The warm server
// seeds every event's root solve from the incumbent allocation's
// ÎI/N̂; the cold server re-solves each event from scratch. Both run
// the same sharded capacity-bounded cache configuration, so the
// comparison isolates the warm start itself.
//
// Reported per mode: total GP Newton iterations, wall-clock replay
// time, mean per-event latency, and B&B nodes. The headline is the
// Newton-iteration ratio (cold / warm); `--check` exits non-zero when
// warm fails to beat cold on total Newton iterations — the PR-4
// acceptance gate. `--smoke` shrinks the trace for CI wiring checks.
//
// With MFA_BENCH_OUT set to a directory, the measurements are written
// there as BENCH_service_churn.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "gp/solver.hpp"
#include "io/serialize.hpp"
#include "scenario/trace.hpp"
#include "service/alloc_server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct ReplayStats {
  std::int64_t newton = 0;   ///< GP Newton iterations spent
  std::int64_t nodes = 0;    ///< B&B nodes across all events
  double seconds = 0.0;      ///< wall-clock replay time
  double mean_event_ms = 0.0;
  std::uint64_t cache_hits = 0;
};

ReplayStats replay(const mfa::scenario::Trace& trace, bool warm_start) {
  mfa::service::ServerOptions options;
  options.warm_start = warm_start;
  // Interior-point root: the effort metric is GP Newton iterations.
  options.portfolio.gpa.use_interior_point = true;

  ReplayStats stats;
  const std::int64_t newton0 = mfa::gp::total_newton_iterations();
  const auto t0 = Clock::now();
  mfa::service::AllocServer server(trace.platform, options);
  double event_s = 0.0;
  for (const mfa::service::Event& event : trace.events) {
    const mfa::service::EventOutcome outcome = server.apply(event);
    stats.nodes += outcome.solve_nodes;
    event_s += outcome.seconds;
  }
  server.stop();
  stats.seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  stats.newton = mfa::gp::total_newton_iterations() - newton0;
  stats.mean_event_ms =
      trace.events.empty() ? 0.0 : 1e3 * event_s / trace.events.size();
  stats.cache_hits = server.cache_stats().hits;
  return stats;
}

void emit_json(int events, const ReplayStats& cold,
               const ReplayStats& warm) {
  const char* dir = std::getenv("MFA_BENCH_OUT");
  if (dir == nullptr || *dir == '\0') return;
  mfa::io::Json doc = mfa::io::Json::object();
  doc.set("bench", mfa::io::Json::string("service_churn"));
  doc.set("events", mfa::io::Json::number(events));
  doc.set("cold_newton_iterations",
          mfa::io::Json::number(static_cast<double>(cold.newton)));
  doc.set("warm_newton_iterations",
          mfa::io::Json::number(static_cast<double>(warm.newton)));
  doc.set("newton_ratio",
          mfa::io::Json::number(static_cast<double>(cold.newton) /
                                static_cast<double>(warm.newton)));
  doc.set("cold_seconds", mfa::io::Json::number(cold.seconds));
  doc.set("warm_seconds", mfa::io::Json::number(warm.seconds));
  doc.set("cold_mean_event_ms", mfa::io::Json::number(cold.mean_event_ms));
  doc.set("warm_mean_event_ms", mfa::io::Json::number(warm.mean_event_ms));
  doc.set("cold_nodes",
          mfa::io::Json::number(static_cast<double>(cold.nodes)));
  doc.set("warm_nodes",
          mfa::io::Json::number(static_cast<double>(warm.nodes)));
  const std::string path =
      std::string(dir) + "/BENCH_service_churn.json";
  const mfa::Status st = mfa::io::write_file(path, doc.dump(2) + "\n");
  if (st.is_ok()) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: %s\n", st.to_string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  int events = 400;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      events = 80;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events = std::atoi(argv[++i]);
      if (events <= 0) events = 1;
    }
  }

  mfa::scenario::TraceSpec spec;
  spec.num_events = events;
  const mfa::scenario::Trace trace =
      mfa::scenario::generate_trace(spec, /*seed=*/20190702);
  std::printf("service_churn: %d events, %d-FPGA pool (seed fixed)\n\n",
              events, trace.platform.num_fpgas);

  const ReplayStats cold = replay(trace, /*warm_start=*/false);
  const ReplayStats warm = replay(trace, /*warm_start=*/true);

  std::printf("%-28s %14s %14s\n", "metric", "cold", "warm");
  std::printf("%-28s %14lld %14lld\n", "GP Newton iterations",
              static_cast<long long>(cold.newton),
              static_cast<long long>(warm.newton));
  std::printf("%-28s %14lld %14lld\n", "B&B nodes",
              static_cast<long long>(cold.nodes),
              static_cast<long long>(warm.nodes));
  std::printf("%-28s %14.3f %14.3f\n", "replay seconds", cold.seconds,
              warm.seconds);
  std::printf("%-28s %14.3f %14.3f\n", "mean event latency (ms)",
              cold.mean_event_ms, warm.mean_event_ms);
  std::printf("%-28s %14llu %14llu\n", "cache hits",
              static_cast<unsigned long long>(cold.cache_hits),
              static_cast<unsigned long long>(warm.cache_hits));
  const double ratio = static_cast<double>(cold.newton) /
                       static_cast<double>(warm.newton);
  std::printf("\nheadline: warm re-solves use %.2fx fewer GP Newton "
              "iterations than cold\n",
              ratio);
  emit_json(events, cold, warm);
  if (check && warm.newton >= cold.newton) {
    std::printf("FAIL: warm starts did not reduce Newton iterations\n");
    return 1;
  }
  return 0;
}
