// Figure 6 — VGG resource usage per FPGA at a 61 % resource constraint:
// how the kernels distribute across the 8 FPGAs under GP+A, MINLP and
// MINLP+G. The paper's stacked histogram becomes a per-FPGA utilization
// table (one column per FPGA, one row per kernel, plus SLACK).
//
// Expected shape: GP+A and MINLP+G concentrate the kernels (several
// FPGAs left nearly empty, spreading low), while MINLP scatters them.
#include <cstdio>

#include "alloc/gpa.hpp"
#include "bench/common.hpp"
#include "hls/paper.hpp"
#include "solver/exact.hpp"

namespace {

using mfa::core::Allocation;
using mfa::core::Resource;
using mfa::io::TextTable;

/// One FPGA's utilization is its binding-axis share, as in the figure
/// ("% of total"); per-kernel shares use the same axis normalization.
void print_distribution(const Allocation& a, const char* title,
                        const std::string& stem) {
  std::printf("--- %s  (II = %.2f ms, phi = %.3f) ---\n", title, a.ii(),
              a.phi());
  std::vector<std::string> headers{"Kernel"};
  for (int f = 0; f < a.num_fpgas(); ++f) {
    headers.push_back("F" + std::to_string(f + 1) + " (%)");
  }
  TextTable t(headers);
  const auto& kernels = a.problem().app.kernels;
  for (std::size_t k = 0; k < a.num_kernels(); ++k) {
    std::vector<std::string> row{kernels[k].name};
    for (int f = 0; f < a.num_fpgas(); ++f) {
      const int n = a.cu(k, f);
      const double share =
          100.0 * (kernels[k].res * static_cast<double>(n))
                      .max_ratio(a.problem().platform.capacity);
      row.push_back(n == 0 ? "." : TextTable::fmt(share, 1));
    }
    t.add_row(std::move(row));
  }
  std::vector<std::string> slack{"SLACK"};
  for (int f = 0; f < a.num_fpgas(); ++f) {
    slack.push_back(TextTable::fmt(100.0 * (1.0 - a.fpga_utilization(f)), 1));
  }
  t.add_row(std::move(slack));
  mfa::bench::emit_table(t, stem);
  // Kernel concentration: how many FPGAs an average kernel spans —
  // the quantity the spreading objective controls (Fig. 6's point).
  double fpgas_per_kernel = 0.0;
  for (std::size_t k = 0; k < a.num_kernels(); ++k) {
    fpgas_per_kernel += a.fpgas_used_by(k);
  }
  fpgas_per_kernel /= static_cast<double>(a.num_kernels());
  std::printf("average FPGAs per kernel: %.2f\n\n", fpgas_per_kernel);
}

}  // namespace

int main() {
  std::printf("== Fig. 6: VGG resource usage per kernel per FPGA at a "
              "61%% resource constraint ==\n\n");
  mfa::core::Problem p = mfa::hls::paper::case_vgg_8fpga();
  p.resource_fraction = 0.61;

  mfa::solver::ExactOptions budget;
  budget.max_nodes = 3'000'000;
  budget.max_seconds = 15.0;

  auto gpa = mfa::alloc::GpaSolver().solve(p);
  if (gpa.is_ok()) {
    print_distribution(gpa.value().allocation, "GP+A", "fig6_gpa");
  }
  mfa::core::Problem p0 = p;
  p0.beta = 0.0;
  auto minlp = mfa::solver::ExactSolver(budget).solve(p0);
  if (minlp.is_ok()) {
    print_distribution(minlp.value().allocation, "MINLP (beta=0)",
                       "fig6_minlp");
  }
  auto minlp_g = mfa::solver::ExactSolver(budget).solve(p);
  if (minlp_g.is_ok()) {
    print_distribution(minlp_g.value().allocation, "MINLP+G (beta=50)",
                       "fig6_minlp_g");
  }
  std::printf("Expected shape: GP+A and MINLP+G keep each kernel on "
              "(nearly) one FPGA (low phi / low FPGAs-per-kernel); "
              "MINLP, blind to spreading, scatters kernels across "
              "FPGAs.\n");
  return 0;
}
