// Figure 4 — AlexNet 32-bit floating point on 4 FPGAs: II vs resource
// constraint (a) and vs average FPGA utilization (b), for GP+A, MINLP
// (β = 0) and MINLP+G (α = 1, β = 6; Table 4).
//
// Paper detail to reproduce: the MINLP points coincide (the solver
// reaches the minimum II without saturating any FPGA), while GP+A and
// MINLP+G trade up to ~25 % of II at the tightest constraint for ~40 %
// lower average utilization.
#include "bench/common.hpp"
#include "hls/paper.hpp"

int main() {
  mfa::bench::run_figure(mfa::hls::paper::case_alex32_4fpga(),
                         mfa::alloc::constraint_range(0.65, 0.75, 0.025),
                         "fig4_alex32",
                         "Fig. 4: Alex-32 on 4 FPGAs (alpha=1, beta=6)");
  return 0;
}
