// Micro-benchmark of the compiled GP kernel and the relaxation cache.
//
// Measures the PR's two claims on the paper's largest case (VGG on 8
// FPGAs) plus a batch-shaped workload:
//
//   1. kernel: interior-point relaxation solves through the compiled
//      flat LSE IR vs. the interpretive LseFunction baseline
//      (SolverOptions::use_compiled_kernel off — the PR-1 path).
//   2. warm start: GP solves seeded from a previous solution vs. cold.
//   3. repeated relaxation solves (micro_solvers-style): GP+A pipelines
//      with a shared RelaxationCache vs. the PR-1 cold-solve baseline.
//
// The headline line compares compiled + cached against the baseline and
// checks the ≥3× acceptance target. `--smoke` shrinks every loop for CI
// (correctness-of-wiring only; ratios are still printed) and `--iters N`
// sets an explicit count. Exits non-zero only with `--check`, so timing
// noise cannot break CI.
//
// With MFA_BENCH_OUT set to a directory, the measurements are also
// written there as BENCH_gp_kernel.json — one machine-readable record
// per workload (baseline/new seconds, speedup) plus the headline — so
// CI can archive the perf trajectory run over run.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/gpa.hpp"
#include "core/relax_cache.hpp"
#include "core/relaxation.hpp"
#include "hls/paper.hpp"
#include "io/serialize.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

mfa::core::Problem vgg_problem(double rc) {
  mfa::core::Problem p = mfa::hls::paper::case_vgg_8fpga();
  p.resource_fraction = rc;
  return p;
}

/// Times `iters` runs of `body` and returns seconds per run.
template <typename Body>
double time_per_run(int iters, Body&& body) {
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) body(i);
  return seconds_since(t0) / iters;
}

struct Measurement {
  std::string name;
  double baseline_s = 0.0;
  double new_s = 0.0;
};

std::vector<Measurement> g_measurements;

void report(const char* name, double base_s, double new_s) {
  std::printf("%-44s %10.1f us %10.1f us %7.2fx\n", name, base_s * 1e6,
              new_s * 1e6, base_s / new_s);
  g_measurements.push_back({name, base_s, new_s});
}

/// Emits BENCH_gp_kernel.json into $MFA_BENCH_OUT, if set.
void emit_json(int iters, double headline, double batched_k8) {
  const char* dir = std::getenv("MFA_BENCH_OUT");
  if (dir == nullptr || *dir == '\0') return;
  mfa::io::Json doc = mfa::io::Json::object();
  doc.set("bench", mfa::io::Json::string("gp_kernel"));
  doc.set("iters", mfa::io::Json::number(iters));
  doc.set("headline_speedup", mfa::io::Json::number(headline));
  doc.set("batched_speedup_k8", mfa::io::Json::number(batched_k8));
  mfa::io::Json rows = mfa::io::Json::array();
  for (const Measurement& m : g_measurements) {
    mfa::io::Json row = mfa::io::Json::object();
    row.set("workload", mfa::io::Json::string(m.name));
    row.set("baseline_s", mfa::io::Json::number(m.baseline_s));
    row.set("new_s", mfa::io::Json::number(m.new_s));
    row.set("speedup", mfa::io::Json::number(m.baseline_s / m.new_s));
    rows.push_back(std::move(row));
  }
  doc.set("measurements", std::move(rows));
  const std::string path = std::string(dir) + "/BENCH_gp_kernel.json";
  const mfa::Status st = mfa::io::write_file(path, doc.dump(2) + "\n");
  if (st.is_ok()) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: %s\n", st.to_string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 200;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      iters = 3;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
      if (iters <= 0) iters = 1;
    }
  }

  const mfa::core::Problem problem = vgg_problem(0.7);
  std::printf("gp_kernel: %d iterations per measurement (VGG, 8 FPGAs)\n\n",
              iters);
  std::printf("%-44s %13s %13s %8s\n", "workload", "baseline", "new",
              "speedup");

  // ---- 1. Interior-point kernel: interpretive vs compiled, cold solves.
  mfa::gp::SolverOptions legacy_gp;
  legacy_gp.use_compiled_kernel = false;
  mfa::gp::SolverOptions compiled_gp;  // default: compiled
  const double ip_legacy = time_per_run(iters, [&](int) {
    auto r = mfa::core::solve_relaxation_gp(problem, legacy_gp);
    if (!r.is_ok()) std::abort();
  });
  const double ip_compiled = time_per_run(iters, [&](int) {
    auto r = mfa::core::solve_relaxation_gp(problem, compiled_gp);
    if (!r.is_ok()) std::abort();
  });
  report("interior-point solve (compiled kernel)", ip_legacy, ip_compiled);

  // ---- 2. Warm-started GP solve vs cold (both on the compiled kernel).
  const auto seed = mfa::core::solve_relaxation_gp(problem, compiled_gp);
  if (!seed.is_ok()) std::abort();
  const double ip_warm = time_per_run(iters, [&](int) {
    auto r =
        mfa::core::solve_relaxation_gp(problem, compiled_gp, seed.value());
    if (!r.is_ok()) std::abort();
  });
  report("interior-point solve (+ warm start)", ip_compiled, ip_warm);

  // ---- 3. Repeated GP+A relaxation+discretization, cold vs cached.
  // Three greedy deviations per point — the portfolio shape — so the
  // baseline re-solves the identical root relaxation and B&B tree three
  // times per iteration and the cache collapses them to lookups.
  const double t_lanes[] = {0.0, 0.05, 0.10};
  auto gpa_pass = [&](mfa::core::RelaxationCache* cache) {
    for (double t : t_lanes) {
      mfa::alloc::GpaOptions o;
      o.greedy.t_max = t;
      o.relax_cache = cache;
      auto r = mfa::alloc::GpaSolver(o).solve(problem);
      if (!r.is_ok()) std::abort();
    }
  };
  const double gpa_cold = time_per_run(iters, [&](int) { gpa_pass(nullptr); });
  mfa::core::RelaxationCache cache;
  const double gpa_cached =
      time_per_run(iters, [&](int) { gpa_pass(&cache); });
  report("GP+A x3 lanes, bisection root (+ cache)", gpa_cold, gpa_cached);
  const auto stats = cache.stats();
  std::printf("    cache: %llu entries, %llu hits / %llu misses\n",
              static_cast<unsigned long long>(stats.entries),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));

  // ---- 4. Headline: repeated interior-point relaxation solves,
  // compiled + cached vs the PR-1 baseline (interpretive, cold).
  auto gpa_ip_pass = [&](mfa::core::RelaxationCache* c,
                         const mfa::gp::SolverOptions& gp_opts) {
    for (double t : t_lanes) {
      mfa::alloc::GpaOptions o;
      o.use_interior_point = true;
      o.gp = gp_opts;
      o.greedy.t_max = t;
      o.relax_cache = c;
      auto r = mfa::alloc::GpaSolver(o).solve(problem);
      if (!r.is_ok()) std::abort();
    }
  };
  const double head_base =
      time_per_run(iters, [&](int) { gpa_ip_pass(nullptr, legacy_gp); });
  mfa::core::RelaxationCache head_cache;
  const double head_new = time_per_run(
      iters, [&](int) { gpa_ip_pass(&head_cache, compiled_gp); });
  report("GP+A x3 lanes, GP root: compiled+cached", head_base, head_new);

  // ---- 5. Batched lane-parallel kernel (gp/batched.hpp): K structurally
  // identical relaxation GPs — VGG with per-lane WCET scaling, same
  // structure, different coefficients — solved as one lock-step batch vs
  // K scalar prepared solves on the same compiled models. K = 1 goes
  // through solve_batch's scalar fallback (dispatch overhead only).
  double batched_k8 = 0.0;
  for (int k_lanes : {1, 2, 4, 8, 16}) {
    std::vector<mfa::core::Problem> variants;
    variants.reserve(static_cast<std::size_t>(k_lanes));
    for (int l = 0; l < k_lanes; ++l) {
      mfa::core::Problem v = problem;
      for (mfa::core::Kernel& kern : v.app.kernels) {
        kern.wcet_ms *= 1.0 + 0.03 * l;
      }
      variants.push_back(std::move(v));
    }
    std::vector<mfa::gp::GpProblem> gps;
    gps.reserve(variants.size());
    for (const mfa::core::Problem& v : variants) {
      gps.push_back(mfa::core::build_relaxation_gp(
          v, mfa::core::CuBounds::defaults(v)));
    }
    // One shared Structure for the whole group: build once, clone+patch
    // per lane (the model-cache hit path).
    const mfa::Fingerprint fp = gps[0].structural_fingerprint();
    const mfa::gp::CompiledModel base_model =
        mfa::gp::CompiledModel::build(gps[0], compiled_gp.variable_box);
    std::vector<mfa::gp::CompiledModel> models;
    models.reserve(gps.size());
    for (const mfa::gp::GpProblem& g : gps) {
      mfa::gp::CompiledModel m = base_model;
      m.patch_coefficients(g, compiled_gp.variable_box, fp);
      models.push_back(std::move(m));
    }
    const mfa::gp::GpSolver solver(compiled_gp);
    const double scalar_s = time_per_run(iters, [&](int) {
      for (int l = 0; l < k_lanes; ++l) {
        auto s = solver.solve(gps[static_cast<std::size_t>(l)],
                              models[static_cast<std::size_t>(l)]);
        if (!s.ok()) std::abort();
      }
    });
    std::vector<mfa::gp::BatchLane> lanes(
        static_cast<std::size_t>(k_lanes));
    for (int l = 0; l < k_lanes; ++l) {
      lanes[static_cast<std::size_t>(l)].problem =
          &gps[static_cast<std::size_t>(l)];
      lanes[static_cast<std::size_t>(l)].model =
          &models[static_cast<std::size_t>(l)];
    }
    const double batched_s = time_per_run(iters, [&](int) {
      const auto sols = solver.solve_batch(lanes);
      for (const auto& s : sols) {
        if (!s.ok()) std::abort();
      }
    });
    char name[64];
    std::snprintf(name, sizeof name, "batched K=%d (vs %d scalar solves)",
                  k_lanes, k_lanes);
    report(name, scalar_s, batched_s);
    if (k_lanes == 8) batched_k8 = scalar_s / batched_s;
  }

  const double headline = head_base / head_new;
  std::printf("\nheadline speedup (compiled + cached vs PR-1 baseline): "
              "%.2fx (target >= 3x)\n",
              headline);
  std::printf("batched kernel speedup at K=8 (vs scalar compiled): "
              "%.2fx (target >= 2x)\n",
              batched_k8);
  emit_json(iters, headline, batched_k8);
  if (check && headline < 3.0) {
    std::printf("FAIL: headline below 3x\n");
    return 1;
  }
  if (check && batched_k8 < 2.0) {
    std::printf("FAIL: batched K=8 below 2x\n");
    return 1;
  }
  return 0;
}
