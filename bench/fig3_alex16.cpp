// Figure 3 — AlexNet 16-bit fixed point on 2 FPGAs: II vs resource
// constraint (a) and vs average FPGA utilization (b), for GP+A, MINLP
// (β = 0) and MINLP+G (α = 1, β = 0.7; Table 4).
#include "bench/common.hpp"
#include "hls/paper.hpp"

int main() {
  mfa::bench::run_figure(mfa::hls::paper::case_alex16_2fpga(),
                         mfa::alloc::constraint_range(0.55, 0.85, 0.025),
                         "fig3_alex16",
                         "Fig. 3: Alex-16 on 2 FPGAs (alpha=1, beta=0.7)");
  return 0;
}
