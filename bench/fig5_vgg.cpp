// Figure 5 — VGG 16-bit fixed point on 8 FPGAs: II vs resource
// constraint (a) and vs average FPGA utilization (b), for GP+A, MINLP
// (β = 0) and MINLP+G (α = 1, β = 50; Table 4).
//
// This is the paper's largest case (17 kernels × 8 FPGAs = 136 integer
// variables in the raw MINLP); exact points here are budget-capped
// incumbents ('*') exactly as Couenne runs were time-limited.
#include "bench/common.hpp"
#include "hls/paper.hpp"

int main() {
  mfa::bench::run_figure(mfa::hls::paper::case_vgg_8fpga(),
                         mfa::alloc::constraint_range(0.55, 0.80, 0.03),
                         "fig5_vgg",
                         "Fig. 5: VGG on 8 FPGAs (alpha=1, beta=50)");
  return 0;
}
