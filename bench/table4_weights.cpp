// Table 4 — the α/β weights of the three representative cases.
//
// The paper chooses β "to equalize the relative importance of II and φ
// in the optimization function g" (§4). Besides printing the published
// weights, this bench computes the equalizing ratio α·II/φ from the β=0
// exact solution of each case at a representative constraint, showing
// the published values are indeed of that magnitude.
#include <cstdio>

#include "bench/common.hpp"
#include "hls/paper.hpp"
#include "solver/exact.hpp"

int main() {
  struct Case {
    mfa::core::Problem problem;
    double paper_beta;
    double rc;
  };
  const Case cases[] = {
      {mfa::hls::paper::case_alex16_2fpga(), 0.7, 0.70},
      {mfa::hls::paper::case_alex32_4fpga(), 6.0, 0.70},
      {mfa::hls::paper::case_vgg_8fpga(), 50.0, 0.70},
  };

  std::printf("== Table 4: parameters for the spreading function ==\n\n");
  mfa::io::TextTable t({"Application", "alpha", "beta (paper)",
                        "II@beta=0 (ms)", "phi@beta=0",
                        "equalizing beta = alpha*II/phi"});
  for (const Case& c : cases) {
    mfa::core::Problem p = c.problem;
    p.resource_fraction = c.rc;
    p.beta = 0.0;
    mfa::solver::ExactOptions opts;
    opts.max_nodes = 30'000'000;
    opts.max_seconds = 10.0;
    auto r = mfa::solver::ExactSolver(opts).solve(p);
    std::string ii = "-";
    std::string phi = "-";
    std::string beta_eq = "-";
    if (r.is_ok()) {
      ii = mfa::io::TextTable::fmt(r.value().ii, 3);
      phi = mfa::io::TextTable::fmt(r.value().phi, 3);
      if (r.value().phi > 0.0) {
        beta_eq = mfa::io::TextTable::fmt(
            c.problem.alpha * r.value().ii / r.value().phi, 2);
      }
    }
    t.add_row({c.problem.app.name + " on " +
                   std::to_string(c.problem.num_fpgas()) + " FPGAs",
               mfa::io::TextTable::fmt(c.problem.alpha, 1),
               mfa::io::TextTable::fmt(c.paper_beta, 1), ii, phi, beta_eq});
  }
  mfa::bench::emit_table(t, "table4_weights");
  std::printf("\nPaper values: 0.7 (Alex-16/2), 6 (Alex-32/4), 50 (VGG/8) "
              "- same order as the equalizing ratio.\n");
  return 0;
}
