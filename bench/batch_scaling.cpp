// BatchRunner thread-scaling on a design-space sweep.
//
// Solves the same ≥16-instance grid (VGG on 8 FPGAs × 16 resource
// constraints, full portfolio with a budget-capped exact lane) at 1, 2
// and 4 worker threads and reports wall time and speedup. Results are
// identical across thread counts (the determinism the runtime tests
// lock down); only the wall clock changes. On a single-core container
// the speedup column simply stays near 1x.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "hls/paper.hpp"
#include "runtime/batch.hpp"

int main() {
  std::vector<mfa::core::Problem> grid;
  for (int i = 0; i < 16; ++i) {
    mfa::core::Problem p = mfa::hls::paper::case_vgg_8fpga();
    p.resource_fraction = 0.55 + 0.015 * i;
    grid.push_back(std::move(p));
  }

  mfa::runtime::PortfolioOptions portfolio;
  portfolio.gpa_t_max = {0.0, 0.05, 0.10};
  portfolio.run_exact = true;
  portfolio.max_nodes = 400'000;  // node-capped → deterministic results
  portfolio.max_seconds = 3600.0;

  std::printf("== BatchRunner scaling: %zu-instance VGG/8-FPGA grid ==\n\n",
              grid.size());
  mfa::io::TextTable t(
      {"threads", "wall (s)", "speedup", "sum goal", "winners (exact)"});
  double base_seconds = 0.0;
  for (int threads : {1, 2, 4}) {
    mfa::runtime::BatchOptions batch;
    batch.num_threads = threads;
    batch.portfolio = portfolio;
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<mfa::runtime::SolveResult> results =
        mfa::runtime::BatchRunner(batch).solve_all(grid);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (threads == 1) base_seconds = seconds;
    double sum_goal = 0.0;
    int exact_wins = 0;
    for (const mfa::runtime::SolveResult& r : results) {
      if (!r.is_ok()) continue;
      sum_goal += r.goal;
      if (r.winner == "exact") ++exact_wins;
    }
    t.add_row({mfa::io::TextTable::fmt_int(threads),
               mfa::io::TextTable::fmt(seconds, 3),
               mfa::io::TextTable::fmt(base_seconds / seconds, 2) + "x",
               mfa::io::TextTable::fmt(sum_goal, 4),
               mfa::io::TextTable::fmt_int(exact_wins)});
  }
  mfa::bench::emit_table(t, "batch_scaling");
  std::printf("\nExpected shape: near-linear speedup up to the core "
              "count; 'sum goal' identical on every row (deterministic "
              "batch results).\n");
  return 0;
}
