// Table 2 — characterization of the AlexNet kernels (32-bit float and
// 16-bit fixed point), per CU, on one AWS F1 FPGA.
//
// Prints (a) the paper's measured dataset verbatim — the input every
// figure bench optimizes over — and (b) the analytical cost model's
// characterization of the same layers, the substitute for re-running the
// paper's SDAccel/F1 measurement flow (DESIGN.md §2).
#include <cstdio>

#include "bench/common.hpp"
#include "hls/cost_model.hpp"
#include "hls/layers.hpp"
#include "hls/paper.hpp"

namespace {

using mfa::core::Application;
using mfa::core::Resource;
using mfa::io::TextTable;

void print_app(const Application& app, const char* title,
               const std::string& stem) {
  std::printf("--- %s ---\n", title);
  TextTable t({"Kernel", "BRAM (%)", "DSP (%)", "BW (%)", "WCET (ms)"});
  for (const auto& k : app.kernels) {
    t.add_row({k.name, TextTable::fmt(k.res[Resource::kBram], 2),
               TextTable::fmt(k.res[Resource::kDsp], 2),
               TextTable::fmt(k.bw, 2), TextTable::fmt(k.wcet_ms, 3)});
  }
  t.add_row({"SUM", TextTable::fmt(app.total_resources()[Resource::kBram], 2),
             TextTable::fmt(app.total_resources()[Resource::kDsp], 2),
             TextTable::fmt(app.total_bw(), 2),
             TextTable::fmt(app.total_wcet(), 2)});
  mfa::bench::emit_table(t, stem);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Table 2: AlexNet kernel characterization ==\n\n");
  print_app(mfa::hls::paper::alex32(), "Alex-32 (paper dataset)",
            "table2_alex32_paper");
  print_app(mfa::hls::paper::alex16(), "Alex-16 (paper dataset)",
            "table2_alex16_paper");

  const mfa::hls::CostModel model(mfa::hls::Device::vu9p());
  const mfa::hls::Network net = mfa::hls::alexnet();
  print_app(model.characterize_network(net, mfa::hls::DataType::kFloat32,
                                       /*dsp_budget_pct=*/38.0),
            "Alex-32 (analytical cost model, ~Table-2 DSP budget)",
            "table2_alex32_model");
  print_app(model.characterize_network(net, mfa::hls::DataType::kFixed16,
                                       /*dsp_budget_pct=*/8.0),
            "Alex-16 (analytical cost model, ~Table-2 DSP budget)",
            "table2_alex16_model");
  return 0;
}
