// Serving-path churn benchmark for migration-aware stability: what do
// move budgets buy (fewer CUs torn off running FPGAs, fewer tenants
// disturbed) and what do they cost (goal regret, repack latency)?
//
// Replays one seeded arrival trace (scenario/trace.hpp) through a
// ladder of AllocServer configurations that differ only in the
// stability knobs (ServerOptions::max_moves / max_disturbed /
// move_cost). Per mode the replay accumulates the AllocationDiff
// section of every event outcome — CUs moved, pipelines disturbed,
// goal regret, stability repacks, budget-exceeded events — which is
// exactly the migration frontier the PR promises: tightening the
// budget trades solution quality (regret) for placement stability.
//
// `--check` exits non-zero when any PR-8 gate fails:
//   * budget soundness — with budgets (km, kd) every computed diff that
//     is not flagged budget_exceeded satisfies cus_moved <= km and
//     pipelines_disturbed <= kd (the differential-fuzz oracle checks
//     the same property at the packing-search level),
//   * inert transparency — the stability-off replay's deterministic
//     event log is byte-identical to a replay with astronomically
//     generous budgets (the constrained machinery must be observably
//     absent until a budget can actually bind), and
//   * determinism — two stability-off replays and two constrained
//     replays each produce byte-identical logs.
// `--smoke` shrinks the trace for CI wiring checks.
//
// With MFA_BENCH_OUT set to a directory, the frontier is written there
// as BENCH_service_stability.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "io/serialize.hpp"
#include "scenario/trace.hpp"
#include "service/alloc_server.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// One point on the stability ladder. Budgets follow ServerOptions
/// semantics: -1 = unlimited.
struct ModeSpec {
  const char* name;
  int max_moves;
  int max_disturbed;
  double move_cost;
};

struct ReplayStats {
  std::int64_t cus_moved = 0;
  std::int64_t pipelines_disturbed = 0;
  double goal_regret = 0.0;          ///< Σ per-event regret
  std::int64_t stability_repacks = 0;  ///< events the ladder repacked
  std::int64_t budget_exceeded = 0;    ///< events accepted over budget
  /// In-budget events whose diff still violated the budgets — the
  /// --check soundness gate requires zero.
  std::int64_t violations = 0;
  std::int64_t nodes = 0;
  double seconds = 0.0;
  double mean_event_ms = 0.0;
  double p95_event_ms = 0.0;
  /// Concatenated deterministic outcome JSON, one line per event — the
  /// transparency and determinism gates byte-compare these.
  std::string log_digest;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

ReplayStats replay(const mfa::scenario::Trace& trace, const ModeSpec& mode) {
  mfa::service::ServerOptions options;
  options.warm_start = true;
  options.max_moves = mode.max_moves;
  options.max_disturbed = mode.max_disturbed;
  options.move_cost = mode.move_cost;

  ReplayStats stats;
  const auto t0 = Clock::now();
  auto opened = mfa::service::AllocServer::open(trace.platform, options);
  if (!opened.is_ok()) {
    std::fprintf(stderr, "fatal: %s\n",
                 opened.status().to_string().c_str());
    std::exit(1);
  }
  mfa::service::AllocServer& server = *opened.value();
  std::vector<double> event_ms;
  event_ms.reserve(trace.events.size());
  for (const mfa::service::Event& event : trace.events) {
    const mfa::service::EventOutcome outcome = server.apply(event);
    const mfa::service::AllocationDiff& diff = outcome.diff;
    if (diff.computed) {
      stats.cus_moved += diff.cus_moved;
      stats.pipelines_disturbed += diff.pipelines_disturbed;
      stats.goal_regret += diff.goal_regret;
      if (diff.stability_applied) ++stats.stability_repacks;
      if (diff.budget_exceeded) ++stats.budget_exceeded;
      if (!diff.budget_exceeded) {
        const bool moves_ok =
            mode.max_moves < 0 || diff.cus_moved <= mode.max_moves;
        const bool disturbed_ok = mode.max_disturbed < 0 ||
                                  diff.pipelines_disturbed <=
                                      mode.max_disturbed;
        if (!moves_ok || !disturbed_ok) ++stats.violations;
      }
    }
    stats.nodes += outcome.solve.nodes;
    event_ms.push_back(outcome.seconds * 1e3);
    stats.log_digest += mfa::io::to_json(outcome).dump();
    stats.log_digest += '\n';
  }
  server.stop();
  stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  double total_ms = 0.0;
  for (double ms : event_ms) total_ms += ms;
  stats.mean_event_ms =
      event_ms.empty() ? 0.0 : total_ms / static_cast<double>(event_ms.size());
  stats.p95_event_ms = percentile(event_ms, 0.95);
  return stats;
}

void emit_json(int events, const std::vector<ModeSpec>& modes,
               const std::vector<ReplayStats>& stats) {
  const char* dir = std::getenv("MFA_BENCH_OUT");
  if (dir == nullptr || *dir == '\0') return;
  mfa::io::Json doc = mfa::io::Json::object();
  doc.set("bench", mfa::io::Json::string("service_stability"));
  doc.set("events", mfa::io::Json::number(events));
  mfa::io::Json frontier = mfa::io::Json::array();
  for (std::size_t i = 0; i < modes.size(); ++i) {
    mfa::io::Json row = mfa::io::Json::object();
    row.set("mode", mfa::io::Json::string(modes[i].name));
    row.set("max_moves", mfa::io::Json::number(modes[i].max_moves));
    row.set("max_disturbed", mfa::io::Json::number(modes[i].max_disturbed));
    row.set("move_cost", mfa::io::Json::number(modes[i].move_cost));
    row.set("cus_moved", mfa::io::Json::number(
                             static_cast<double>(stats[i].cus_moved)));
    row.set("pipelines_disturbed",
            mfa::io::Json::number(
                static_cast<double>(stats[i].pipelines_disturbed)));
    row.set("goal_regret", mfa::io::Json::number(stats[i].goal_regret));
    row.set("stability_repacks",
            mfa::io::Json::number(
                static_cast<double>(stats[i].stability_repacks)));
    row.set("budget_exceeded",
            mfa::io::Json::number(
                static_cast<double>(stats[i].budget_exceeded)));
    row.set("nodes",
            mfa::io::Json::number(static_cast<double>(stats[i].nodes)));
    row.set("mean_event_ms", mfa::io::Json::number(stats[i].mean_event_ms));
    row.set("p95_event_ms", mfa::io::Json::number(stats[i].p95_event_ms));
    frontier.push_back(std::move(row));
  }
  doc.set("frontier", std::move(frontier));
  const std::string path =
      std::string(dir) + "/BENCH_service_stability.json";
  const mfa::Status st = mfa::io::write_file(path, doc.dump(2) + "\n");
  if (st.is_ok()) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "warning: %s\n", st.to_string().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  int events = 240;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      events = 60;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events = std::atoi(argv[++i]);
      if (events <= 0) events = 1;
    }
  }

  mfa::scenario::TraceSpec spec;
  spec.num_events = events;
  const mfa::scenario::Trace trace =
      mfa::scenario::generate_trace(spec, /*seed=*/20190702);
  std::printf("service_stability: %d events, %d-FPGA pool (seed fixed)\n\n",
              events, trace.platform.num_fpgas);

  // The frontier, loose to tight. "generous" has astronomically large
  // budgets that can never bind — the transparency gate requires its
  // log to match "off" byte-for-byte.
  const std::vector<ModeSpec> modes = {
      {"off", -1, -1, 0.0},
      {"generous", 1 << 29, 1 << 29, 0.0},
      {"soft", -1, -1, 0.05},
      {"moves8", 8, -1, 0.0},
      {"moves2", 2, 1, 0.0},
      {"frozen", 0, 0, 0.0},
  };
  std::vector<ReplayStats> stats;
  stats.reserve(modes.size());
  for (const ModeSpec& mode : modes) {
    stats.push_back(replay(trace, mode));
  }

  std::printf("%-10s %10s %10s %12s %10s %10s %10s %12s\n", "mode",
              "cus_moved", "disturbed", "goal_regret", "repacks",
              "exceeded", "nodes", "mean_ms");
  for (std::size_t i = 0; i < modes.size(); ++i) {
    std::printf("%-10s %10lld %10lld %12.4f %10lld %10lld %10lld %12.3f\n",
                modes[i].name, static_cast<long long>(stats[i].cus_moved),
                static_cast<long long>(stats[i].pipelines_disturbed),
                stats[i].goal_regret,
                static_cast<long long>(stats[i].stability_repacks),
                static_cast<long long>(stats[i].budget_exceeded),
                static_cast<long long>(stats[i].nodes),
                stats[i].mean_event_ms);
  }
  const ReplayStats& off = stats[0];
  const ReplayStats& soft = stats[2];
  const ReplayStats& frozen = stats.back();
  std::printf("\nheadline: a soft move cost cuts torn CUs from %lld to "
              "%lld at %.4f total goal regret (%lld repacks); frozen "
              "budgets leave %lld/%d events over budget\n",
              static_cast<long long>(off.cus_moved),
              static_cast<long long>(soft.cus_moved), soft.goal_regret,
              static_cast<long long>(soft.stability_repacks),
              static_cast<long long>(frozen.budget_exceeded), events);
  emit_json(events, modes, stats);

  if (check) {
    int rc = 0;
    for (std::size_t i = 0; i < modes.size(); ++i) {
      if (stats[i].violations != 0) {
        std::printf("FAIL: mode %s had %lld in-budget events whose diff "
                    "violated the budgets (km=%d kd=%d)\n",
                    modes[i].name,
                    static_cast<long long>(stats[i].violations),
                    modes[i].max_moves, modes[i].max_disturbed);
        rc = 1;
      }
    }
    if (stats[1].log_digest != off.log_digest) {
      std::printf("FAIL: generous-budget replay diverged from stability-off "
                  "(inert budgets must be byte-transparent)\n");
      rc = 1;
    }
    // Determinism: replaying a mode must reproduce its log byte-for-byte.
    const ReplayStats off2 = replay(trace, modes[0]);
    if (off2.log_digest != off.log_digest) {
      std::printf("FAIL: stability-off replay is not deterministic\n");
      rc = 1;
    }
    const std::size_t tight = modes.size() - 2;  // "moves2"
    const ReplayStats tight2 = replay(trace, modes[tight]);
    if (tight2.log_digest != stats[tight].log_digest) {
      std::printf("FAIL: constrained replay (%s) is not deterministic\n",
                  modes[tight].name);
      rc = 1;
    }
    if (rc == 0) std::printf("\nall stability gates passed\n");
    return rc;
  }
  return 0;
}
