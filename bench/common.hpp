// Shared plumbing for the figure/table reproduction binaries.
//
// Every bench prints its rows to stdout (the same rows/series the paper
// reports) and, when MFA_BENCH_OUT is set to a directory, also emits
// CSV + gnuplot files there for re-plotting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "alloc/sweep.hpp"
#include "io/serialize.hpp"
#include "io/table.hpp"
#include "runtime/sweep.hpp"

namespace mfa::bench {

/// Output directory for .csv/.dat/.gp artifacts (empty → stdout only).
inline std::string out_dir() {
  const char* dir = std::getenv("MFA_BENCH_OUT");
  return dir == nullptr ? std::string() : std::string(dir);
}

/// Worker threads for the sweep batches. Defaults to 1: the exact
/// points carry wall-clock budget caps, so parallel runs contend for
/// CPU and can prove less within their deadlines — sequential is the
/// reproducible reference. Set MFA_BENCH_THREADS=N to opt in to
/// parallelism (0 = all hardware threads).
inline int bench_threads() {
  const char* n = std::getenv("MFA_BENCH_THREADS");
  if (n == nullptr || *n == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(n, &end, 10);
  // Garbage, negative, or out-of-range values fall back to the
  // sequential default rather than silently meaning "all threads".
  if (*end != '\0' || v < 0 || v > std::numeric_limits<int>::max()) {
    return 1;
  }
  return static_cast<int>(v);
}

inline void emit_table(const io::TextTable& table, const std::string& stem) {
  std::fputs(table.to_string().c_str(), stdout);
  const std::string dir = out_dir();
  if (!dir.empty()) {
    const Status st = io::write_file(dir + "/" + stem + ".csv",
                                     table.to_csv());
    if (!st.is_ok()) {
      std::fprintf(stderr, "warning: %s\n", st.to_string().c_str());
    }
  }
}

/// Converts sweep series into gnuplot artifacts: (x = constraint %, y =
/// II) and (x = average utilization %, y = II), as in Figs. 3–5 (a)/(b).
inline void emit_figure(const std::vector<alloc::SweepSeries>& series,
                        const std::string& stem, const std::string& title) {
  const std::string dir = out_dir();
  if (dir.empty()) return;
  std::vector<io::PlotSeries> by_constraint;
  std::vector<io::PlotSeries> by_util;
  for (const alloc::SweepSeries& s : series) {
    io::PlotSeries pc{alloc::method_name(s.method), {}};
    io::PlotSeries pu{alloc::method_name(s.method), {}};
    for (const alloc::SweepPoint& p : s.points) {
      if (!p.feasible) continue;
      pc.points.emplace_back(100.0 * p.constraint, p.ii);
      pu.points.emplace_back(100.0 * p.avg_utilization, p.ii);
    }
    by_constraint.push_back(std::move(pc));
    by_util.push_back(std::move(pu));
  }
  (void)io::write_gnuplot(dir, stem + "_a", title + " (a)",
                          "Resource Constraint (%)",
                          "Initiation Interval (ms)", by_constraint);
  (void)io::write_gnuplot(dir, stem + "_b", title + " (b)",
                          "Average Resource (%)",
                          "Initiation Interval (ms)", by_util);
}

/// Formats a sweep point's II, flagging points without an optimality
/// proof (GP+A always, exact methods when budget-capped).
inline std::string ii_cell(const alloc::SweepPoint& p) {
  if (!p.feasible) return "-";
  std::string s = io::TextTable::fmt(p.ii, 3);
  if (!p.proved_optimal) s += "*";
  return s;
}

/// The common body of Figs. 3–5: run GP+A, MINLP (β = 0) and MINLP+G
/// over a constraint range, print the (a)/(b) series and emit plots.
/// Exact solves are budget-capped so the bench terminates on any
/// machine; capped (unproved) points are marked with '*'.
inline void run_figure(const core::Problem& problem,
                       const std::vector<double>& constraints,
                       const std::string& stem, const std::string& title) {
  runtime::SweepOptions sweep;
  sweep.num_threads = bench_threads();
  sweep.config.constraints = constraints;
  sweep.config.exact.max_nodes = 3'000'000;
  sweep.config.exact.max_seconds = 15.0;

  std::printf("== %s ==\n\n", title.c_str());
  // One batch for the whole figure: every (method × constraint) point is
  // an independent request fanned across the runtime pool.
  std::vector<alloc::SweepSeries> series = runtime::run_sweeps(
      problem,
      {alloc::Method::kGpa, alloc::Method::kMinlp, alloc::Method::kMinlpG},
      sweep);
  const alloc::SweepSeries& gpa = series[0];
  const alloc::SweepSeries& minlp = series[1];
  const alloc::SweepSeries& minlp_g = series[2];

  io::TextTable table({"R (%)", "GP+A II", "MINLP II", "MINLP+G II",
                       "GP+A util%", "MINLP util%", "MINLP+G util%",
                       "GP+A phi", "MINLP+G phi"});
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    const alloc::SweepPoint& a = gpa.points[i];
    const alloc::SweepPoint& m = minlp.points[i];
    const alloc::SweepPoint& g = minlp_g.points[i];
    auto util = [](const alloc::SweepPoint& p) {
      return p.feasible
                 ? io::TextTable::fmt(100.0 * p.avg_utilization, 1)
                 : std::string("-");
    };
    table.add_row({io::TextTable::fmt(100.0 * constraints[i], 1),
                   ii_cell(a), ii_cell(m), ii_cell(g), util(a), util(m),
                   util(g),
                   a.feasible ? io::TextTable::fmt(a.phi, 3) : "-",
                   g.feasible ? io::TextTable::fmt(g.phi, 3) : "-"});
  }
  emit_table(table, stem);
  emit_figure({gpa, minlp, minlp_g}, stem, title);
  std::printf("\n('*' = no optimality proof: GP+A is heuristic; exact "
              "points were budget-capped, incumbent shown.)\n"
              "Expected shape: MINLP is the lower envelope; GP+A tracks "
              "it, matching at loose constraints and behaving like "
              "MINLP+G at tight ones; II falls as the constraint or the "
              "average utilization grows.\n");
}

}  // namespace mfa::bench
