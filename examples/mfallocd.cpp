// mfallocd — the networked allocation daemon.
//
// Wires the full serving stack together: an epoll HTTP server
// (net/server.hpp) feeding the versioned wire API (net/api.hpp), which
// routes events across N AllocServer shards by consistent hashing
// (service/shard_router.hpp), each shard durable through its own
// write-ahead log (service/wal.hpp) when --data is set.
//
//   mfallocd --platform trace.json --data /var/lib/mfa --shards 2
//   ...
//   kill -9 $pid                      # crash mid-stream
//   mfallocd --recover --data /var/lib/mfa --shards 2
//
// After --recover the incumbent allocation is byte-identical to an
// uninterrupted run over the same acknowledged events (the crash-
// recovery CI job asserts exactly that), and a client can resume a
// partially-posted trace with `mfalloc_cli post --resume`.
//
// The first stdout line is machine-scrapable: "mfallocd listening on
// <port>" — with --port 0 that is how scripts learn the ephemeral
// port. SIGINT/SIGTERM shut down cleanly (drain, join, exit 0).
#include <signal.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "io/serialize.hpp"
#include "net/api.hpp"
#include "net/server.hpp"
#include "service/shard_router.hpp"

namespace {

/// Initial pool from --platform: a bare platform JSON object, or any
/// document (problem, trace) carrying a "platform" member.
mfa::StatusOr<mfa::core::Platform> load_platform(const std::string& path) {
  auto text = mfa::io::read_file(path);
  if (!text.is_ok()) return text.status();
  auto doc = mfa::io::Json::parse(text.value());
  if (!doc.is_ok()) return doc.status();
  const mfa::io::Json* platform = doc.value().find("platform");
  return mfa::io::platform_from_json(platform != nullptr ? *platform
                                                         : doc.value());
}

}  // namespace

int main(int argc, char** argv) {
  mfa::cli::ArgParser args = mfa::cli::mfallocd_parser("mfallocd");
  if (mfa::Status st = args.parse(argc - 1, argv + 1); !st.is_ok()) {
    std::fprintf(stderr, "error: %s\n%s\n", st.message().c_str(),
                 args.usage_line().c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::fputs(args.help_text().c_str(), stdout);
    return 0;
  }

  mfa::service::RouterOptions options;
  options.wal_root = args.value_or("data", "");
  const auto shards = args.int_or("shards", 2, 1, 256);
  const auto snapshot_every = args.int_or("snapshot-every", 256, 0, 1 << 30);
  const auto jobs = args.int_or("jobs", 1, 0, 4096);
  const auto port = args.int_or("port", 8080, 0, 65535);
  const auto max_moves = args.int_or("max-moves", -1, -1, 1 << 30);
  const auto max_disturbed = args.int_or("max-disturbed", -1, -1, 1 << 30);
  for (const auto* v :
       {&shards, &snapshot_every, &jobs, &port, &max_moves,
        &max_disturbed}) {
    if (!v->is_ok()) {
      std::fprintf(stderr, "error: %s\n", v->status().message().c_str());
      return 2;
    }
  }
  options.shards = static_cast<std::size_t>(shards.value());
  options.server.snapshot_every =
      static_cast<std::size_t>(snapshot_every.value());
  options.server.wal_fsync = !args.flag_set("no-fsync");
  options.server.solver_threads = static_cast<int>(jobs.value());
  options.server.max_moves = static_cast<int>(max_moves.value());
  options.server.max_disturbed = static_cast<int>(max_disturbed.value());

  // SIGINT/SIGTERM are consumed synchronously below; mask them first so
  // every thread the stack spawns inherits the mask.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  mfa::StatusOr<std::unique_ptr<mfa::service::ShardRouter>> router =
      [&]() -> mfa::StatusOr<std::unique_ptr<mfa::service::ShardRouter>> {
    if (args.flag_set("recover")) {
      if (options.wal_root.empty()) {
        return mfa::Status{mfa::Code::kInvalid,
                           "--recover needs --data <dir>"};
      }
      return mfa::service::ShardRouter::recover(std::move(options));
    }
    const std::string platform_path = args.value_or("platform", "");
    if (platform_path.empty()) {
      return mfa::Status{mfa::Code::kInvalid,
                         "--platform <file.json> is required (or --recover)"};
    }
    auto platform = load_platform(platform_path);
    if (!platform.is_ok()) return platform.status();
    return mfa::service::ShardRouter::open(platform.value(),
                                           std::move(options));
  }();
  if (!router.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 router.status().to_string().c_str());
    return 1;
  }

  mfa::net::Api api(router.value().get());
  mfa::net::ServerConfig config;
  config.bind_address = args.value_or("bind", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(port.value());
  mfa::net::HttpServer server(
      config, [&api](const mfa::net::HttpRequest& request) {
        return api.handle(request);
      });
  if (mfa::Status st = server.start(); !st.is_ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("mfallocd listening on %u\n",
              static_cast<unsigned>(server.port()));
  std::printf("shards=%zu wal=%s%s\n", router.value()->num_shards(),
              args.value_or("data", "(none)").c_str(),
              args.flag_set("recover") ? " (recovered)" : "");
  std::fflush(stdout);

  int sig = 0;
  sigwait(&signals, &sig);
  std::fprintf(stderr, "mfallocd: signal %d, shutting down\n", sig);
  server.stop();
  router.value()->stop();
  return 0;
}
