// Why eq. 10 (the DRAM bandwidth constraint) matters: simulate the same
// pipeline under a bandwidth-feasible allocation and an over-committed
// one, and watch the second lose throughput to DRAM contention.
//
//   $ ./examples/simulate_allocation
#include <cstdio>

#include "core/allocation.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  // A bandwidth-hungry three-stage pipeline on one FPGA.
  mfa::core::Problem p;
  p.app.name = "streaming-etl";
  p.app.kernels = {
      {"decode", 8.0, mfa::core::ResourceVec(5, 8, 3, 3), 30.0},
      {"filter", 10.0, mfa::core::ResourceVec(4, 12, 4, 3), 25.0},
      {"encode", 7.0, mfa::core::ResourceVec(6, 9, 3, 2), 35.0},
  };
  p.platform = mfa::core::Platform{"single-fpga", 1};

  mfa::sim::PipelineSimulator simulator;

  // --- Allocation A: one CU each — 90 % aggregate BW, always feasible.
  mfa::core::Allocation feasible(p);
  feasible.set_cu(0, 0, 1);
  feasible.set_cu(1, 0, 1);
  feasible.set_cu(2, 0, 1);
  const auto ra = simulator.run(feasible);
  std::printf("A: one CU per kernel (aggregate BW 90%%)\n");
  std::printf("   model II %.2f ms, measured II %.2f ms, throttle "
              "%.2fx\n\n",
              feasible.ii(), ra.measured_ii_ms, ra.max_throttle);

  // --- Allocation B: double the filter stage. The model promises
  // II = 8 ms, but peak demand 30+2*25+35 = 115 % > 100 % — eq. 10 is
  // violated and the simulator shows the promised II is not achieved.
  mfa::core::Allocation greedy(p);
  greedy.set_cu(0, 0, 1);
  greedy.set_cu(1, 0, 2);
  greedy.set_cu(2, 0, 1);
  const auto rb = simulator.run(greedy);
  std::printf("B: filter doubled (peak BW 115%% — violates eq. 10)\n");
  std::printf("   model II %.2f ms, measured II %.2f ms, throttle "
              "%.2fx\n",
              greedy.ii(), rb.measured_ii_ms, rb.max_throttle);
  for (const std::string& v : greedy.check()) {
    std::printf("   violation: %s\n", v.c_str());
  }

  std::printf("\nThe optimizer's bandwidth constraint exists precisely "
              "so that allocation B is never chosen: its measured II "
              "(%.2f ms) is worse than what the model claims "
              "(%.2f ms).\n",
              rb.measured_ii_ms, greedy.ii());
  return 0;
}
