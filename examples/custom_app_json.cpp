// Solving a user-defined application from a JSON problem file — the path
// for workloads beyond the paper's CNNs (the method is fully general,
// §1: "our work ... could be applied to other task-level pipelined
// applications beyond CNNs").
//
//   $ ./examples/custom_app_json [problem.json]
//
// Without an argument, looks for examples/data/custom_pipeline.json
// relative to the current directory and falls back to a built-in
// five-kernel radar pipeline.
#include <cstdio>

#include "alloc/gpa.hpp"
#include "io/serialize.hpp"
#include "solver/exact.hpp"

namespace {

constexpr const char* kFallback = R"({
  "application": {"name": "builtin-radar", "kernels": [
    {"name": "FFT",     "wcet_ms": 9.5,  "bram": 12, "dsp": 18, "bw": 6},
    {"name": "DOPPLER", "wcet_ms": 14.0, "bram": 9,  "dsp": 24, "bw": 4},
    {"name": "CFAR",    "wcet_ms": 6.2,  "bram": 5,  "dsp": 10, "bw": 8},
    {"name": "CLUSTER", "wcet_ms": 3.8,  "bram": 3,  "dsp": 6,  "bw": 5},
    {"name": "TRACKER", "wcet_ms": 11.0, "bram": 7,  "dsp": 15, "bw": 3}
  ]},
  "platform": {"name": "dual-fpga-card", "fpgas": 2},
  "resource_fraction": 0.75, "alpha": 1.0, "beta": 0.5
})";

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    auto file = mfa::io::read_file(argv[1]);
    if (!file.is_ok()) {
      std::fprintf(stderr, "error: %s\n", file.status().to_string().c_str());
      return 2;
    }
    text = std::move(file.value());
  } else if (auto file =
                 mfa::io::read_file("examples/data/custom_pipeline.json");
             file.is_ok()) {
    text = std::move(file.value());
  } else {
    std::printf("(no file given; using the built-in example problem)\n\n");
    text = kFallback;
  }

  auto parsed = mfa::io::problem_from_text(text);
  if (!parsed.is_ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().to_string().c_str());
    return 2;
  }
  const mfa::core::Problem& p = parsed.value();
  if (const mfa::Status valid = p.validate(); !valid.is_ok()) {
    std::fprintf(stderr, "invalid problem: %s\n",
                 valid.to_string().c_str());
    return 2;
  }

  std::printf("Problem: %s — %zu kernels on %d FPGAs at %.0f%% "
              "resources (alpha=%g beta=%g)\n\n",
              p.app.name.c_str(), p.num_kernels(), p.num_fpgas(),
              100.0 * p.resource_fraction, p.alpha, p.beta);

  auto h = mfa::alloc::GpaSolver().solve(p);
  if (!h.is_ok()) {
    std::printf("GP+A: %s\n", h.status().to_string().c_str());
    return 1;
  }
  std::printf("--- GP+A ---\n%s\n",
              h.value().allocation.to_string().c_str());

  auto e = mfa::solver::ExactSolver().solve(p);
  if (e.is_ok()) {
    std::printf("--- exact ---\n%s\n",
                e.value().allocation.to_string().c_str());
  }

  // Emit the solved placement as JSON for downstream tooling.
  std::printf("--- allocation JSON ---\n%s\n",
              mfa::io::to_json(h.value().allocation).dump(2).c_str());
  return 0;
}
