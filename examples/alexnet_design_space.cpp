// Design-space exploration of AlexNet across FPGA counts and resource
// constraints — the workflow the paper's heuristic exists for (§1: the
// number of choices "quickly grows out of control", so the solver must
// be fast enough to sit in an exploration loop).
//
//   $ ./examples/alexnet_design_space
//
// For both precisions (Table 2), sweeps F = 1..4 FPGAs × a constraint
// range with GP+A and prints throughput (images/s), utilization and the
// solve time of every point.
#include <cstdio>

#include "alloc/gpa.hpp"
#include "hls/paper.hpp"
#include "io/table.hpp"

int main() {
  using mfa::io::TextTable;

  for (const bool fixed16 : {true, false}) {
    const mfa::core::Application app = fixed16 ? mfa::hls::paper::alex16()
                                               : mfa::hls::paper::alex32();
    std::printf("=== %s: GP+A design-space sweep ===\n", app.name.c_str());
    TextTable t({"FPGAs", "R (%)", "II (ms)", "images/s", "avg util %",
                 "phi", "solve ms"});
    for (int fpgas = 1; fpgas <= 4; ++fpgas) {
      for (double rc : {0.5, 0.7, 0.9}) {
        mfa::core::Problem p;
        p.app = app;
        p.platform = mfa::hls::paper::f1(fpgas);
        p.resource_fraction = rc;
        p.alpha = 1.0;
        p.beta = 0.7;
        auto r = mfa::alloc::GpaSolver().solve(p);
        if (!r.is_ok()) {
          t.add_row({std::to_string(fpgas), TextTable::fmt(100 * rc, 0),
                     "-", "-", "-", "-", "-"});
          continue;
        }
        const mfa::core::Allocation& a = r.value().allocation;
        t.add_row({std::to_string(fpgas), TextTable::fmt(100 * rc, 0),
                   TextTable::fmt(a.ii(), 3),
                   TextTable::fmt(1000.0 / a.ii(), 1),
                   TextTable::fmt(100 * a.average_utilization(), 1),
                   TextTable::fmt(a.phi(), 3),
                   TextTable::fmt(1e3 * r.value().seconds_total(), 3)});
      }
    }
    std::fputs(t.to_string().c_str(), stdout);
    std::printf("\n");
  }
  std::printf("Reading: throughput scales with FPGA count until the\n"
              "slowest kernel stops splitting; 16-bit kernels need ~5x\n"
              "fewer DSPs, so Alex-16 reaches a given II with fewer\n"
              "FPGAs than Alex-32.\n");
  return 0;
}
