// Characterizing a CNN with the analytical HLS cost model and feeding
// the result straight into the optimizer — the substitute for the
// paper's SDAccel + AWS F1 measurement flow (DESIGN.md §2), usable for
// any network expressed as hls::Layer records.
//
//   $ ./examples/characterize_network [alexnet|vgg16] [fx16|fp32]
#include <cstdio>
#include <cstring>

#include "alloc/gpa.hpp"
#include "hls/cost_model.hpp"
#include "hls/paper.hpp"
#include "io/table.hpp"

int main(int argc, char** argv) {
  const bool use_vgg = argc > 1 && std::strcmp(argv[1], "vgg16") == 0;
  const bool fp32 = argc > 2 && std::strcmp(argv[2], "fp32") == 0;
  const mfa::hls::Network net =
      use_vgg ? mfa::hls::vgg16() : mfa::hls::alexnet();
  const mfa::hls::DataType dtype = fp32 ? mfa::hls::DataType::kFloat32
                                        : mfa::hls::DataType::kFixed16;

  const mfa::hls::CostModel model(mfa::hls::Device::vu9p());
  std::printf("Device: %s — %d DSP, %d BRAM18K, %.0f MHz, %.0f GB/s\n\n",
              model.device().name.c_str(), model.device().dsp,
              model.device().bram18k, model.device().clock_mhz,
              model.device().dram_gbps);

  // Per-layer characterization at a chosen DSP budget per CU.
  const double dsp_budget = fp32 ? 38.0 : 15.0;
  mfa::io::TextTable t({"Layer", "kind", "Tm", "Tn", "WCET (ms)",
                        "DSP %", "BRAM %", "LUT %", "BW %"});
  for (const mfa::hls::Layer& layer : net.layers) {
    const auto cfg = model.pick_unroll(layer, dtype, dsp_budget);
    const mfa::core::Kernel k = model.characterize(layer, dtype, cfg);
    t.add_row({layer.name, mfa::hls::layer_kind_name(layer.kind),
               std::to_string(cfg.tm), std::to_string(cfg.tn),
               mfa::io::TextTable::fmt(k.wcet_ms, 3),
               mfa::io::TextTable::fmt(k.res[mfa::core::Resource::kDsp], 2),
               mfa::io::TextTable::fmt(k.res[mfa::core::Resource::kBram], 2),
               mfa::io::TextTable::fmt(k.res[mfa::core::Resource::kLut], 2),
               mfa::io::TextTable::fmt(k.bw, 2)});
  }
  std::printf("%s (%s), DSP budget %.0f%%/CU:\n%s\n", net.name.c_str(),
              mfa::hls::datatype_name(dtype), dsp_budget,
              t.to_string().c_str());

  // Straight into the optimizer.
  mfa::core::Problem p;
  p.app = model.characterize_network(net, dtype, dsp_budget);
  p.platform = mfa::hls::paper::f1(4);
  p.resource_fraction = 0.8;
  p.alpha = 1.0;
  p.beta = 1.0;
  auto r = mfa::alloc::GpaSolver().solve(p);
  if (!r.is_ok()) {
    std::printf("GP+A: %s\n", r.status().to_string().c_str());
    return 1;
  }
  std::printf("GP+A mapping onto 4 FPGAs at 80%%:\n%s",
              r.value().allocation.to_string().c_str());
  std::printf("=> %.1f images/s\n", 1000.0 / r.value().allocation.ii());
  return 0;
}
