// Quickstart: define a small pipeline, solve it with the GP+A heuristic
// and the exact solver, and compare.
//
//   $ ./examples/quickstart
//
// The application here is a synthetic three-kernel pipeline; see
// examples/alexnet_design_space.cpp and examples/vgg_cluster.cpp for the
// paper's real workloads.
#include <cstdio>

#include "alloc/gpa.hpp"
#include "core/problem.hpp"
#include "solver/exact.hpp"

int main() {
  using namespace mfa;

  // ---- 1. Describe the application: a linear pipeline of kernels,
  // each characterized per CU (WCET, resources in % of one FPGA,
  // DRAM bandwidth in % of one FPGA).
  core::Problem problem;
  problem.app.name = "demo-pipeline";
  problem.app.kernels = {
      // name      WCET(ms)  (BRAM, DSP, LUT, FF)%            BW%
      {"ingest",   6.0, core::ResourceVec(8.0, 12.0, 5.0, 4.0), 4.0},
      {"transform", 14.0, core::ResourceVec(6.0, 20.0, 7.0, 6.0), 3.0},
      {"reduce",   4.0, core::ResourceVec(4.0, 9.0, 3.0, 2.0), 6.0},
  };

  // ---- 2. Describe the platform: two identical FPGAs, and allow the
  // optimizer to use at most 70 % of each one's resources.
  problem.platform = core::Platform{"demo-board", 2};
  problem.resource_fraction = 0.70;
  problem.alpha = 1.0;  // weight of the initiation interval
  problem.beta = 0.5;   // weight of the spreading penalty

  // ---- 3. Solve with the paper's heuristic: GP relaxation →
  // branch-and-bound discretization → greedy allocation (Algorithm 1).
  alloc::GpaSolver gpa;
  auto heuristic = gpa.solve(problem);
  if (!heuristic.is_ok()) {
    std::printf("GP+A failed: %s\n", heuristic.status().to_string().c_str());
    return 1;
  }
  const alloc::GpaResult& h = heuristic.value();
  std::printf("=== GP+A (heuristic) ===\n");
  std::printf("relaxed II = %.4f ms, discretized II = %.4f ms\n",
              h.relaxed_ii, h.discrete_ii);
  std::printf("%s\n", h.allocation.to_string().c_str());

  // ---- 4. Solve exactly (the paper's MINLP reference).
  solver::ExactSolver exact;
  auto optimal = exact.solve(problem);
  if (!optimal.is_ok()) {
    std::printf("exact failed: %s\n", optimal.status().to_string().c_str());
    return 1;
  }
  const solver::ExactResult& e = optimal.value();
  std::printf("=== exact (MINLP+G role) ===\n");
  std::printf("proved optimal: %s, nodes: %lld\n",
              e.proved_optimal ? "yes" : "no",
              static_cast<long long>(e.nodes));
  std::printf("%s\n", e.allocation.to_string().c_str());

  std::printf("heuristic goal / optimal goal = %.4f / %.4f (gap %.1f%%)\n",
              h.allocation.goal(), e.goal,
              100.0 * (h.allocation.goal() - e.goal) /
                  (e.goal > 0 ? e.goal : 1.0));
  return 0;
}
