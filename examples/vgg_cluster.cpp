// Mapping VGG-16 onto an 8-FPGA AWS F1 cluster, end to end:
// GP+A solve at the Fig. 6 operating point, full placement dump,
// comparison against the exact solver, and simulator validation.
//
//   $ ./examples/vgg_cluster [resource_percent]   (default 61)
#include <cstdio>
#include <cstdlib>

#include "alloc/gpa.hpp"
#include "hls/paper.hpp"
#include "sim/pipeline_sim.hpp"
#include "solver/exact.hpp"

int main(int argc, char** argv) {
  double rc = 0.61;
  if (argc > 1) rc = std::atof(argv[1]) / 100.0;
  if (rc <= 0.0 || rc > 1.0) {
    std::fprintf(stderr, "usage: %s [resource_percent in (0,100]]\n",
                 argv[0]);
    return 2;
  }

  mfa::core::Problem p = mfa::hls::paper::case_vgg_8fpga();
  p.resource_fraction = rc;
  std::printf("VGG-16 (17 kernels) on %d FPGAs, resource constraint "
              "%.0f%%, alpha=%.0f beta=%.0f\n\n",
              p.num_fpgas(), 100 * rc, p.alpha, p.beta);

  // --- Heuristic.
  auto h = mfa::alloc::GpaSolver().solve(p);
  if (!h.is_ok()) {
    std::printf("GP+A: %s\n", h.status().to_string().c_str());
    return 1;
  }
  std::printf("GP+A (relaxation %.3f ms -> discretized %.3f ms -> "
              "placed):\n%s\n",
              h.value().relaxed_ii, h.value().discrete_ii,
              h.value().allocation.to_string().c_str());

  // --- Exact reference (budget-capped).
  mfa::solver::ExactOptions opts;
  opts.max_nodes = 2'000'000;
  opts.max_seconds = 10.0;
  auto e = mfa::solver::ExactSolver(opts).solve(p);
  if (e.is_ok()) {
    std::printf("Exact (MINLP+G role%s): II = %.3f ms, phi = %.3f, "
                "g = %.3f  (%lld nodes, %.2f s)\n",
                e.value().proved_optimal ? "" : ", budget-capped",
                e.value().ii, e.value().phi, e.value().goal,
                static_cast<long long>(e.value().nodes),
                e.value().seconds);
    std::printf("Heuristic goal gap: %.1f%%\n\n",
                100.0 * (h.value().allocation.goal() - e.value().goal) /
                    e.value().goal);
  }

  // --- Execute the chosen mapping in the pipeline simulator.
  const mfa::sim::SimResult sim =
      mfa::sim::PipelineSimulator().run(h.value().allocation);
  std::printf("Simulation over %d images: measured II = %.3f ms "
              "(model %.3f), throughput = %.1f images/s, pipeline "
              "latency = %.1f ms, worst DRAM throttle = %.2fx\n",
              200, sim.measured_ii_ms, h.value().allocation.ii(),
              sim.throughput_ips, sim.pipeline_latency_ms,
              sim.max_throttle);
  return 0;
}
