// mfalloc_cli — command-line front end over the library, for scripting
// design-space exploration without writing C++.
//
//   mfalloc_cli solve     <problem.json> [--exact] [--json]
//   mfalloc_cli portfolio <problem.json> [--seconds S] [--naive] [--jobs N]
//   mfalloc_cli sweep     <problem.json> <lo%> <hi%> <step%>
//                         [--method gpa|minlp|minlpg] [--jobs N]
//   mfalloc_cli simulate  <problem.json> [--images N]
//   mfalloc_cli gen       <out.json|-> [--seed S] [--kernels N]
//                         [--fpgas F] [--classes C] [--tightness X]
//                         [--skew X]
//   mfalloc_cli gentrace  <out.json|-> [--seed S] [--events N]
//                         [--fpgas F] [--rate R] [--lifetime S]
//   mfalloc_cli serve     --trace <trace.json> [--jobs N] [--cold]
//                         [--log <out.json>] [--interior-point] [--exact]
//
// `portfolio` races every solving strategy (GP+A at several greedy
// deviations, the exact search, optionally the naive B&B) concurrently
// under one deadline and reports the winner with full provenance;
// `sweep --jobs N` fans the grid across N worker threads; `gen` writes
// a seeded random scenario (pipeline × possibly mixed-class platform)
// as a problem JSON ready for any other subcommand — same seed, same
// file, byte for byte. `gentrace` writes a seeded arrival trace
// (Poisson arrivals, exponential lifetimes, churn) and `serve` replays
// one through a long-lived AllocServer, printing per-event latency/goal
// JSON to stdout; `--log` additionally writes the *deterministic* event
// log (no wall-clock fields), which is byte-identical across runs for a
// fixed trace and thread count. `--cold` disables the incumbent warm
// start (for comparisons), `--exact` adds the budgeted exact lane.
//
// The problem file format is documented in src/io/serialize.hpp and
// examples/data/custom_pipeline.json; the trace format in
// src/io/serialize.hpp as well.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/gpa.hpp"
#include "alloc/sweep.hpp"
#include "io/serialize.hpp"
#include "io/table.hpp"
#include "runtime/portfolio.hpp"
#include "runtime/sweep.hpp"
#include "scenario/generate.hpp"
#include "scenario/trace.hpp"
#include "service/alloc_server.hpp"
#include "sim/pipeline_sim.hpp"
#include "solver/exact.hpp"

namespace {

using mfa::io::TextTable;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage:\n"
               "  %s solve     <problem.json> [--exact] [--json]\n"
               "  %s portfolio <problem.json> [--seconds S] [--naive] "
               "[--jobs N]\n"
               "  %s sweep     <problem.json> <lo%%> <hi%%> <step%%> "
               "[--method gpa|minlp|minlpg] [--jobs N]\n"
               "  %s simulate  <problem.json> [--images N]\n"
               "  %s gen       <out.json|-> [--seed S] [--kernels N] "
               "[--fpgas F] [--classes C] [--tightness X] [--skew X]\n"
               "  %s gentrace  <out.json|-> [--seed S] [--events N] "
               "[--fpgas F] [--rate R] [--lifetime S]\n"
               "  %s serve     --trace <trace.json> [--jobs N] [--cold] "
               "[--log <out.json>] [--interior-point] [--exact]\n",
               argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

/// Strict non-negative integer parse for thread counts; -1 on garbage
/// or out-of-range (callers turn that into a usage error rather than
/// letting a typo silently mean "all hardware threads").
int parse_jobs(const char* text) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (*text == '\0' || *end != '\0' || v < 0 || v > 4096) return -1;
  return static_cast<int>(v);
}

mfa::StatusOr<mfa::core::Problem> load(const char* path) {
  auto text = mfa::io::read_file(path);
  if (!text.is_ok()) return text.status();
  auto problem = mfa::io::problem_from_text(text.value());
  if (!problem.is_ok()) return problem.status();
  if (mfa::Status valid = problem.value().validate(); !valid.is_ok()) {
    return valid;
  }
  return problem;
}

int cmd_solve(const mfa::core::Problem& p, int argc, char** argv) {
  const bool as_json = has_flag(argc, argv, "--json");
  if (has_flag(argc, argv, "--exact")) {
    auto r = mfa::solver::ExactSolver().solve(p);
    if (!r.is_ok()) {
      std::fprintf(stderr, "exact: %s\n", r.status().to_string().c_str());
      return 1;
    }
    if (as_json) {
      std::printf("%s\n",
                  mfa::io::to_json(r.value().allocation).dump(2).c_str());
    } else {
      std::printf("%s", r.value().allocation.to_string().c_str());
      std::printf("proved optimal: %s (%lld nodes, %.3f s)\n",
                  r.value().proved_optimal ? "yes" : "no",
                  static_cast<long long>(r.value().nodes),
                  r.value().seconds);
    }
    return 0;
  }
  auto r = mfa::alloc::GpaSolver().solve(p);
  if (!r.is_ok()) {
    std::fprintf(stderr, "GP+A: %s\n", r.status().to_string().c_str());
    return 1;
  }
  if (as_json) {
    std::printf("%s\n",
                mfa::io::to_json(r.value().allocation).dump(2).c_str());
  } else {
    std::printf("relaxed II %.4f ms -> discretized %.4f ms\n",
                r.value().relaxed_ii, r.value().discrete_ii);
    std::printf("%s", r.value().allocation.to_string().c_str());
  }
  return 0;
}

int cmd_portfolio(const mfa::core::Problem& p, int argc, char** argv) {
  mfa::runtime::PortfolioOptions options;
  if (const char* s = flag_value(argc, argv, "--seconds"); s != nullptr) {
    options.max_seconds = std::atof(s);
    if (options.max_seconds <= 0.0) return 2;
  }
  options.run_naive = has_flag(argc, argv, "--naive");
  int jobs = 0;
  if (const char* j = flag_value(argc, argv, "--jobs"); j != nullptr) {
    jobs = parse_jobs(j);
    if (jobs < 0) return 2;
  }

  const mfa::runtime::Portfolio portfolio(options, jobs);
  const mfa::runtime::SolveResult r = portfolio.solve(p);

  TextTable lanes({"strategy", "status", "II (ms)", "phi", "goal",
                   "proved", "nodes", "seconds"});
  for (const mfa::runtime::StrategyOutcome& lane : r.lanes) {
    const bool ok = lane.status.is_ok() && std::isfinite(lane.goal);
    lanes.add_row(
        {lane.strategy, lane.status.is_ok() ? "ok" : lane.status.to_string(),
         ok ? TextTable::fmt(lane.ii, 3) : "-",
         ok ? TextTable::fmt(lane.phi, 3) : "-",
         ok ? TextTable::fmt(lane.goal, 3) : "-",
         lane.proved_optimal ? "yes" : "no",
         TextTable::fmt_int(static_cast<long long>(lane.nodes)),
         TextTable::fmt(lane.seconds, 4)});
  }
  std::printf("%s", lanes.to_string().c_str());
  if (!r.is_ok()) {
    std::fprintf(stderr, "portfolio: %s\n", r.status.to_string().c_str());
    return 1;
  }
  std::printf(
      "winner: %s  goal %.4f (II %.4f ms, phi %.4f)%s  [%lld nodes, "
      "%.3f s total]\n",
      r.winner.c_str(), r.goal, r.ii, r.phi,
      r.proved_optimal ? "  proved optimal" : "",
      static_cast<long long>(r.nodes), r.seconds);
  std::printf("%s", r.allocation->to_string().c_str());
  return 0;
}

int cmd_sweep(const mfa::core::Problem& p, int argc, char** argv) {
  if (argc < 3) return 2;
  const double lo = std::atof(argv[0]) / 100.0;
  const double hi = std::atof(argv[1]) / 100.0;
  const double step = std::atof(argv[2]) / 100.0;
  if (lo <= 0.0 || hi < lo || step <= 0.0) return 2;

  mfa::alloc::Method method = mfa::alloc::Method::kGpa;
  if (const char* m = flag_value(argc, argv, "--method"); m != nullptr) {
    if (std::strcmp(m, "minlp") == 0) {
      method = mfa::alloc::Method::kMinlp;
    } else if (std::strcmp(m, "minlpg") == 0) {
      method = mfa::alloc::Method::kMinlpG;
    } else if (std::strcmp(m, "gpa") != 0) {
      return 2;
    }
  }

  mfa::runtime::SweepOptions sweep;
  // Sequential unless asked: exact points carry wall-clock budgets, so
  // parallel contention can change what they prove (see bench/common.hpp).
  sweep.num_threads = 1;
  if (const char* j = flag_value(argc, argv, "--jobs"); j != nullptr) {
    sweep.num_threads = parse_jobs(j);
    if (sweep.num_threads < 0) return 2;
  }
  sweep.config.constraints = mfa::alloc::constraint_range(lo, hi, step);
  sweep.config.exact.max_nodes = 5'000'000;
  sweep.config.exact.max_seconds = 30.0;
  const mfa::alloc::SweepSeries series =
      mfa::runtime::run_sweep(p, method, sweep);

  TextTable t({"R (%)", "II (ms)", "phi", "goal", "avg util %",
               "seconds"});
  for (const mfa::alloc::SweepPoint& pt : series.points) {
    if (!pt.feasible) {
      t.add_row({TextTable::fmt(100 * pt.constraint, 1), "-", "-", "-",
                 "-", TextTable::fmt(pt.seconds, 4)});
      continue;
    }
    std::string ii = TextTable::fmt(pt.ii, 3);
    if (!pt.proved_optimal) ii += "*";
    t.add_row({TextTable::fmt(100 * pt.constraint, 1), ii,
               TextTable::fmt(pt.phi, 3), TextTable::fmt(pt.goal, 3),
               TextTable::fmt(100 * pt.avg_utilization, 1),
               TextTable::fmt(pt.seconds, 4)});
  }
  std::printf("method: %s\n%s", mfa::alloc::method_name(series.method),
              t.to_string().c_str());
  return 0;
}

int cmd_simulate(const mfa::core::Problem& p, int argc, char** argv) {
  auto r = mfa::alloc::GpaSolver().solve(p);
  if (!r.is_ok()) {
    std::fprintf(stderr, "GP+A: %s\n", r.status().to_string().c_str());
    return 1;
  }
  mfa::sim::SimConfig cfg;
  if (const char* n = flag_value(argc, argv, "--images"); n != nullptr) {
    cfg.num_images = std::atoi(n);
    cfg.warmup_images = cfg.num_images / 4;
    // The steady-state window needs >= 2 post-warmup completions.
    if (cfg.num_images < cfg.warmup_images + 2) return 2;
  }
  const mfa::sim::SimResult sim =
      mfa::sim::PipelineSimulator(cfg).run(r.value().allocation);
  std::printf("%s", r.value().allocation.to_string().c_str());
  std::printf(
      "simulated %d images: II %.3f ms (model %.3f), %.1f images/s, "
      "latency %.2f ms, worst throttle %.2fx\n",
      cfg.num_images, sim.measured_ii_ms, r.value().allocation.ii(),
      sim.throughput_ips, sim.pipeline_latency_ms, sim.max_throttle);
  TextTable t({"kernel", "busy %"});
  for (std::size_t k = 0; k < sim.stage_busy.size(); ++k) {
    t.add_row({p.app.kernels[k].name,
               TextTable::fmt(100 * sim.stage_busy[k], 1)});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}

int cmd_gen(const char* out_path, int argc, char** argv) {
  mfa::scenario::ScenarioSpec spec;
  std::uint64_t seed = 0;
  if (const char* s = flag_value(argc, argv, "--seed"); s != nullptr) {
    char* end = nullptr;
    seed = std::strtoull(s, &end, 10);
    if (*s == '\0' || *end != '\0') return 2;
  }
  if (const char* k = flag_value(argc, argv, "--kernels"); k != nullptr) {
    const int n = std::atoi(k);
    if (n < 1) return 2;
    spec.min_kernels = spec.max_kernels = n;
  }
  if (const char* f = flag_value(argc, argv, "--fpgas"); f != nullptr) {
    const int n = std::atoi(f);
    if (n < 1) return 2;
    spec.min_fpgas = spec.max_fpgas = n;
  }
  if (const char* c = flag_value(argc, argv, "--classes"); c != nullptr) {
    spec.max_classes = std::atoi(c);
    if (spec.max_classes < 1) return 2;
  }
  if (const char* t = flag_value(argc, argv, "--tightness"); t != nullptr) {
    spec.tightness = std::atof(t);
    if (spec.tightness <= 0.0 || spec.tightness > 1.0) return 2;
  }
  if (const char* s = flag_value(argc, argv, "--skew"); s != nullptr) {
    spec.class_skew = std::atof(s);
    if (spec.class_skew <= 0.0 || spec.class_skew > 1.0) return 2;
  }

  const mfa::core::Problem problem = mfa::scenario::generate(spec, seed);
  const std::string text = mfa::io::to_json(problem).dump(2) + "\n";
  if (std::strcmp(out_path, "-") == 0) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  if (mfa::Status st = mfa::io::write_file(out_path, text); !st.is_ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (seed %llu, %zu kernels, %d FPGAs)\n",
               out_path, static_cast<unsigned long long>(seed),
               problem.num_kernels(), problem.num_fpgas());
  return 0;
}

int cmd_gentrace(const char* out_path, int argc, char** argv) {
  mfa::scenario::TraceSpec spec;
  std::uint64_t seed = 0;
  if (const char* s = flag_value(argc, argv, "--seed"); s != nullptr) {
    char* end = nullptr;
    seed = std::strtoull(s, &end, 10);
    if (*s == '\0' || *end != '\0') return 2;
  }
  if (const char* n = flag_value(argc, argv, "--events"); n != nullptr) {
    spec.num_events = std::atoi(n);
    if (spec.num_events < 1) return 2;
  }
  if (const char* f = flag_value(argc, argv, "--fpgas"); f != nullptr) {
    spec.num_fpgas = std::atoi(f);
    if (spec.num_fpgas < 1) return 2;
  }
  if (const char* r = flag_value(argc, argv, "--rate"); r != nullptr) {
    spec.arrival_rate_per_s = std::atof(r);
    if (spec.arrival_rate_per_s <= 0.0) return 2;
  }
  if (const char* l = flag_value(argc, argv, "--lifetime"); l != nullptr) {
    spec.mean_lifetime_s = std::atof(l);
    if (spec.mean_lifetime_s <= 0.0) return 2;
  }

  const mfa::scenario::Trace trace =
      mfa::scenario::generate_trace(spec, seed);
  const std::string text = mfa::io::to_json(trace).dump(2) + "\n";
  if (std::strcmp(out_path, "-") == 0) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  if (mfa::Status st = mfa::io::write_file(out_path, text); !st.is_ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (seed %llu, %zu events, %d FPGAs)\n",
               out_path, static_cast<unsigned long long>(seed),
               trace.events.size(), trace.platform.num_fpgas);
  return 0;
}

/// The deterministic slice of an outcome: every field except wall-clock
/// latency. This is what `--log` writes and what CI diffs across runs.
mfa::io::Json outcome_to_json(const mfa::service::EventOutcome& o) {
  mfa::io::Json j = mfa::io::Json::object();
  j.set("seq", mfa::io::Json::number(static_cast<double>(o.sequence)));
  j.set("type", mfa::io::Json::string(mfa::service::to_string(o.type)));
  if (!o.id.empty()) j.set("id", mfa::io::Json::string(o.id));
  j.set("status", mfa::io::Json::string(o.status.to_string()));
  j.set("solve_status", mfa::io::Json::string(o.solve_status.to_string()));
  j.set("active", mfa::io::Json::number(
                      static_cast<double>(o.active_pipelines)));
  j.set("warm", mfa::io::Json::boolean(o.warm_started));
  j.set("ii_ms", mfa::io::Json::number(o.ii));
  j.set("phi", mfa::io::Json::number(o.phi));
  j.set("goal", mfa::io::Json::number(o.goal));
  mfa::io::Json totals = mfa::io::Json::array();
  for (int t : o.totals) totals.push_back(mfa::io::Json::number(t));
  j.set("totals", std::move(totals));
  j.set("nodes", mfa::io::Json::number(static_cast<double>(o.solve_nodes)));
  // Compilation-cache observability (deterministic with the default
  // sequential lanes; see EventOutcome).
  j.set("delta", mfa::io::Json::string(mfa::service::to_string(o.delta)));
  j.set("gp_compiles",
        mfa::io::Json::number(static_cast<double>(o.gp_compiles)));
  j.set("gp_patches",
        mfa::io::Json::number(static_cast<double>(o.gp_patches)));
  j.set("model_hits",
        mfa::io::Json::number(static_cast<double>(o.model_hits)));
  j.set("model_misses",
        mfa::io::Json::number(static_cast<double>(o.model_misses)));
  j.set("relax_hits",
        mfa::io::Json::number(static_cast<double>(o.relax_hits)));
  return j;
}

int cmd_serve(int argc, char** argv) {
  const char* trace_path = flag_value(argc, argv, "--trace");
  if (trace_path == nullptr) return 2;
  auto text = mfa::io::read_file(trace_path);
  if (!text.is_ok()) {
    std::fprintf(stderr, "error: %s\n", text.status().to_string().c_str());
    return 1;
  }
  auto trace = mfa::io::trace_from_text(text.value());
  if (!trace.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 trace.status().to_string().c_str());
    return 1;
  }

  mfa::service::ServerOptions options;
  options.warm_start = !has_flag(argc, argv, "--cold");
  options.portfolio.gpa.use_interior_point =
      has_flag(argc, argv, "--interior-point");
  options.portfolio.run_exact = has_flag(argc, argv, "--exact");
  if (const char* j = flag_value(argc, argv, "--jobs"); j != nullptr) {
    options.solver_threads = parse_jobs(j);
    if (options.solver_threads < 0) return 2;
  }

  mfa::service::AllocServer server(trace.value().platform, options);
  // Replay as fast as the solver allows: submit in trace order, wait
  // per event (the queue is MPMC; a replay is a single producer).
  std::vector<mfa::service::EventOutcome> outcomes;
  outcomes.reserve(trace.value().events.size());
  for (const mfa::service::Event& event : trace.value().events) {
    outcomes.push_back(server.apply(event));
  }
  server.stop();

  // Per-event latency/goal JSON on stdout, plus a latency summary.
  mfa::io::Json doc = mfa::io::Json::object();
  doc.set("events",
          mfa::io::Json::number(static_cast<double>(outcomes.size())));
  doc.set("warm_start", mfa::io::Json::boolean(options.warm_start));
  double total_s = 0.0;
  double max_s = 0.0;
  mfa::io::Json per_event = mfa::io::Json::array();
  for (const mfa::service::EventOutcome& o : outcomes) {
    total_s += o.seconds;
    max_s = std::max(max_s, o.seconds);
    mfa::io::Json row = outcome_to_json(o);
    row.set("latency_ms", mfa::io::Json::number(o.seconds * 1e3));
    per_event.push_back(std::move(row));
  }
  doc.set("mean_latency_ms",
          mfa::io::Json::number(outcomes.empty()
                                    ? 0.0
                                    : 1e3 * total_s / outcomes.size()));
  doc.set("max_latency_ms", mfa::io::Json::number(1e3 * max_s));
  const auto cache = server.cache_stats();
  doc.set("cache_hits",
          mfa::io::Json::number(static_cast<double>(cache.hits)));
  doc.set("cache_entries",
          mfa::io::Json::number(static_cast<double>(cache.entries)));
  doc.set("cache_evictions",
          mfa::io::Json::number(static_cast<double>(cache.evictions)));
  const auto models = server.model_cache_stats();
  doc.set("model_cache_hits",
          mfa::io::Json::number(static_cast<double>(models.hits)));
  doc.set("model_cache_entries",
          mfa::io::Json::number(static_cast<double>(models.entries)));
  doc.set("model_cache_evictions",
          mfa::io::Json::number(static_cast<double>(models.evictions)));
  doc.set("per_event", std::move(per_event));
  std::printf("%s\n", doc.dump(2).c_str());

  if (const char* log_path = flag_value(argc, argv, "--log");
      log_path != nullptr) {
    mfa::io::Json log = mfa::io::Json::array();
    for (const mfa::service::EventOutcome& o : outcomes) {
      log.push_back(outcome_to_json(o));
    }
    if (mfa::Status st = mfa::io::write_file(log_path, log.dump(2) + "\n");
        !st.is_ok()) {
      std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string command = argv[1];
  if (command == "gen") {
    const int rc = cmd_gen(argv[2], argc - 3, argv + 3);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  if (command == "gentrace") {
    const int rc = cmd_gentrace(argv[2], argc - 3, argv + 3);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  if (command == "serve") {
    const int rc = cmd_serve(argc - 2, argv + 2);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  auto problem = load(argv[2]);
  if (!problem.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 problem.status().to_string().c_str());
    return 2;
  }
  if (command == "solve") {
    return cmd_solve(problem.value(), argc - 3, argv + 3);
  }
  if (command == "portfolio") {
    const int rc = cmd_portfolio(problem.value(), argc - 3, argv + 3);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  if (command == "sweep") {
    const int rc = cmd_sweep(problem.value(), argc - 3, argv + 3);
    return rc == 2 ? usage(argv[0]) : rc;
  }
  if (command == "simulate") {
    return cmd_simulate(problem.value(), argc - 3, argv + 3);
  }
  return usage(argv[0]);
}
