// mfalloc_cli — command-line front end over the library, for scripting
// design-space exploration without writing C++.
//
// Subcommands (flags live in src/cli/commands.cpp; run
// `mfalloc_cli <command> --help` for each one's block):
//
//   solve      one problem with GP+A, or the exact search
//   portfolio  every solving strategy raced under one deadline
//   sweep      the resource-fraction grid
//   simulate   solve + cycle-level pipeline simulation
//   gen        seeded random scenario → problem JSON (byte-reproducible)
//   gentrace   seeded arrival trace (Poisson arrivals, churn)
//   serve      replay a trace through a long-lived in-process AllocServer
//   post       ship a trace's events to a running mfallocd over HTTP
//
// `serve` prints per-event latency/goal JSON to stdout; `--log`
// additionally writes the *deterministic* event log (no wall-clock
// fields), byte-identical across runs for a fixed trace and thread
// count. `post` speaks the versioned wire API (net/api.hpp): events go
// up in batches as {"schema_version":1,"events":[...]}, outcomes come
// back per event; `--resume` asks GET /v1/stats how far the daemon got
// (e.g. after a crash + `mfallocd --recover`) and continues from there.
//
// The problem file format is documented in src/io/serialize.hpp and
// examples/data/custom_pipeline.json; the trace format in
// src/io/serialize.hpp as well.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "alloc/gpa.hpp"
#include "alloc/sweep.hpp"
#include "cli/args.hpp"
#include "cli/commands.hpp"
#include "io/serialize.hpp"
#include "io/table.hpp"
#include "net/client.hpp"
#include "runtime/portfolio.hpp"
#include "runtime/sweep.hpp"
#include "scenario/generate.hpp"
#include "scenario/trace.hpp"
#include "service/alloc_server.hpp"
#include "sim/pipeline_sim.hpp"
#include "solver/exact.hpp"

namespace {

using mfa::cli::ArgParser;
using mfa::io::TextTable;

/// Prints a typed flag error plus the usage line; the `return 2`
/// convention marks usage errors (vs 1 for runtime failures).
int flag_error(const ArgParser& args, const mfa::Status& status) {
  std::fprintf(stderr, "error: %s\n%s\n", status.message().c_str(),
               args.usage_line().c_str());
  return 2;
}

mfa::StatusOr<mfa::core::Problem> load(const std::string& path) {
  auto text = mfa::io::read_file(path);
  if (!text.is_ok()) return text.status();
  auto problem = mfa::io::problem_from_text(text.value());
  if (!problem.is_ok()) return problem.status();
  if (mfa::Status valid = problem.value().validate(); !valid.is_ok()) {
    return valid;
  }
  return problem;
}

int cmd_solve(const mfa::core::Problem& p, const ArgParser& args) {
  const bool as_json = args.flag_set("json");
  if (args.flag_set("exact")) {
    auto r = mfa::solver::ExactSolver().solve(p);
    if (!r.is_ok()) {
      std::fprintf(stderr, "exact: %s\n", r.status().to_string().c_str());
      return 1;
    }
    if (as_json) {
      std::printf("%s\n",
                  mfa::io::to_json(r.value().allocation).dump(2).c_str());
    } else {
      std::printf("%s", r.value().allocation.to_string().c_str());
      std::printf("proved optimal: %s (%lld nodes, %.3f s)\n",
                  r.value().proved_optimal ? "yes" : "no",
                  static_cast<long long>(r.value().nodes),
                  r.value().seconds);
    }
    return 0;
  }
  auto r = mfa::alloc::GpaSolver().solve(p);
  if (!r.is_ok()) {
    std::fprintf(stderr, "GP+A: %s\n", r.status().to_string().c_str());
    return 1;
  }
  if (as_json) {
    std::printf("%s\n",
                mfa::io::to_json(r.value().allocation).dump(2).c_str());
  } else {
    std::printf("relaxed II %.4f ms -> discretized %.4f ms\n",
                r.value().relaxed_ii, r.value().discrete_ii);
    std::printf("%s", r.value().allocation.to_string().c_str());
  }
  return 0;
}

int cmd_portfolio(const mfa::core::Problem& p, const ArgParser& args) {
  mfa::runtime::PortfolioOptions options;
  const auto seconds =
      args.real_or("seconds", options.max_seconds, 1e-6, 1e9);
  if (!seconds.is_ok()) return flag_error(args, seconds.status());
  options.max_seconds = seconds.value();
  options.run_naive = args.flag_set("naive");
  const auto jobs = args.int_or("jobs", 0, 0, 4096);
  if (!jobs.is_ok()) return flag_error(args, jobs.status());

  const mfa::runtime::Portfolio portfolio(options,
                                          static_cast<int>(jobs.value()));
  const mfa::runtime::SolveResult r = portfolio.solve(p);

  TextTable lanes({"strategy", "status", "II (ms)", "phi", "goal",
                   "proved", "nodes", "seconds"});
  for (const mfa::runtime::StrategyOutcome& lane : r.lanes) {
    const bool ok = lane.status.is_ok() && std::isfinite(lane.goal);
    lanes.add_row(
        {lane.strategy, lane.status.is_ok() ? "ok" : lane.status.to_string(),
         ok ? TextTable::fmt(lane.ii, 3) : "-",
         ok ? TextTable::fmt(lane.phi, 3) : "-",
         ok ? TextTable::fmt(lane.goal, 3) : "-",
         lane.proved_optimal ? "yes" : "no",
         TextTable::fmt_int(static_cast<long long>(lane.nodes)),
         TextTable::fmt(lane.seconds, 4)});
  }
  std::printf("%s", lanes.to_string().c_str());
  if (!r.is_ok()) {
    std::fprintf(stderr, "portfolio: %s\n", r.status.to_string().c_str());
    return 1;
  }
  std::printf(
      "winner: %s  goal %.4f (II %.4f ms, phi %.4f)%s  [%lld nodes, "
      "%.3f s total]\n",
      r.winner.c_str(), r.goal, r.ii, r.phi,
      r.proved_optimal ? "  proved optimal" : "",
      static_cast<long long>(r.nodes), r.seconds);
  std::printf("%s", r.allocation->to_string().c_str());
  return 0;
}

int cmd_sweep(const mfa::core::Problem& p, const ArgParser& args) {
  const auto lo = ArgParser::parse_real(args.positionals()[1], "<lo%>",
                                        1e-6, 1e4);
  const auto hi = ArgParser::parse_real(args.positionals()[2], "<hi%>",
                                        1e-6, 1e4);
  const auto step = ArgParser::parse_real(args.positionals()[3], "<step%>",
                                          1e-6, 1e4);
  for (const auto* v : {&lo, &hi, &step}) {
    if (!v->is_ok()) return flag_error(args, v->status());
  }
  if (hi.value() < lo.value()) {
    return flag_error(args,
                      mfa::Status{mfa::Code::kInvalid, "<hi%> below <lo%>"});
  }

  mfa::alloc::Method method = mfa::alloc::Method::kGpa;
  const std::string m = args.value_or("method", "gpa");
  if (m == "minlp") {
    method = mfa::alloc::Method::kMinlp;
  } else if (m == "minlpg") {
    method = mfa::alloc::Method::kMinlpG;
  } else if (m != "gpa") {
    return flag_error(
        args, mfa::Status{mfa::Code::kInvalid,
                          "--method: expected gpa|minlp|minlpg, got '" + m +
                              "'"});
  }

  mfa::runtime::SweepOptions sweep;
  // Sequential unless asked: exact points carry wall-clock budgets, so
  // parallel contention can change what they prove (see bench/common.hpp).
  const auto jobs = args.int_or("jobs", 1, 0, 4096);
  if (!jobs.is_ok()) return flag_error(args, jobs.status());
  sweep.num_threads = static_cast<int>(jobs.value());
  sweep.config.constraints = mfa::alloc::constraint_range(
      lo.value() / 100.0, hi.value() / 100.0, step.value() / 100.0);
  sweep.config.exact.max_nodes = 5'000'000;
  sweep.config.exact.max_seconds = 30.0;
  const mfa::alloc::SweepSeries series =
      mfa::runtime::run_sweep(p, method, sweep);

  TextTable t({"R (%)", "II (ms)", "phi", "goal", "avg util %",
               "seconds"});
  for (const mfa::alloc::SweepPoint& pt : series.points) {
    if (!pt.feasible) {
      t.add_row({TextTable::fmt(100 * pt.constraint, 1), "-", "-", "-",
                 "-", TextTable::fmt(pt.seconds, 4)});
      continue;
    }
    std::string ii = TextTable::fmt(pt.ii, 3);
    if (!pt.proved_optimal) ii += "*";
    t.add_row({TextTable::fmt(100 * pt.constraint, 1), ii,
               TextTable::fmt(pt.phi, 3), TextTable::fmt(pt.goal, 3),
               TextTable::fmt(100 * pt.avg_utilization, 1),
               TextTable::fmt(pt.seconds, 4)});
  }
  std::printf("method: %s\n%s", mfa::alloc::method_name(series.method),
              t.to_string().c_str());
  return 0;
}

int cmd_simulate(const mfa::core::Problem& p, const ArgParser& args) {
  auto r = mfa::alloc::GpaSolver().solve(p);
  if (!r.is_ok()) {
    std::fprintf(stderr, "GP+A: %s\n", r.status().to_string().c_str());
    return 1;
  }
  mfa::sim::SimConfig cfg;
  const auto images = args.int_or("images", cfg.num_images, 1, 1 << 26);
  if (!images.is_ok()) return flag_error(args, images.status());
  cfg.num_images = static_cast<int>(images.value());
  if (args.has_value("images")) {
    cfg.warmup_images = cfg.num_images / 4;
    // The steady-state window needs >= 2 post-warmup completions.
    if (cfg.num_images < cfg.warmup_images + 2) {
      return flag_error(args,
                        mfa::Status{mfa::Code::kInvalid,
                                    "--images: too few for a steady-state "
                                    "window"});
    }
  }
  const mfa::sim::SimResult sim =
      mfa::sim::PipelineSimulator(cfg).run(r.value().allocation);
  std::printf("%s", r.value().allocation.to_string().c_str());
  std::printf(
      "simulated %d images: II %.3f ms (model %.3f), %.1f images/s, "
      "latency %.2f ms, worst throttle %.2fx\n",
      cfg.num_images, sim.measured_ii_ms, r.value().allocation.ii(),
      sim.throughput_ips, sim.pipeline_latency_ms, sim.max_throttle);
  TextTable t({"kernel", "busy %"});
  for (std::size_t k = 0; k < sim.stage_busy.size(); ++k) {
    t.add_row({p.app.kernels[k].name,
               TextTable::fmt(100 * sim.stage_busy[k], 1)});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}

int cmd_gen(const ArgParser& args) {
  const std::string& out_path = args.positionals()[0];
  mfa::scenario::ScenarioSpec spec;
  const auto seed = args.uint64_or("seed", 0);
  if (!seed.is_ok()) return flag_error(args, seed.status());
  const auto kernels = args.int_or("kernels", 0, 1, 1 << 20);
  if (!kernels.is_ok()) return flag_error(args, kernels.status());
  if (args.has_value("kernels")) {
    spec.min_kernels = spec.max_kernels = static_cast<int>(kernels.value());
  }
  const auto fpgas = args.int_or("fpgas", 0, 1, 1 << 20);
  if (!fpgas.is_ok()) return flag_error(args, fpgas.status());
  if (args.has_value("fpgas")) {
    spec.min_fpgas = spec.max_fpgas = static_cast<int>(fpgas.value());
  }
  const auto classes = args.int_or("classes", spec.max_classes, 1, 1 << 10);
  if (!classes.is_ok()) return flag_error(args, classes.status());
  spec.max_classes = static_cast<int>(classes.value());
  const auto tightness = args.real_or("tightness", spec.tightness, 1e-9, 1.0);
  if (!tightness.is_ok()) return flag_error(args, tightness.status());
  spec.tightness = tightness.value();
  const auto skew = args.real_or("skew", spec.class_skew, 1e-9, 1.0);
  if (!skew.is_ok()) return flag_error(args, skew.status());
  spec.class_skew = skew.value();

  const mfa::core::Problem problem =
      mfa::scenario::generate(spec, seed.value());
  const std::string text = mfa::io::to_json(problem).dump(2) + "\n";
  if (out_path == "-") {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  if (mfa::Status st = mfa::io::write_file(out_path, text); !st.is_ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (seed %llu, %zu kernels, %d FPGAs)\n",
               out_path.c_str(),
               static_cast<unsigned long long>(seed.value()),
               problem.num_kernels(), problem.num_fpgas());
  return 0;
}

int cmd_gentrace(const ArgParser& args) {
  const std::string& out_path = args.positionals()[0];
  mfa::scenario::TraceSpec spec;
  const auto seed = args.uint64_or("seed", 0);
  if (!seed.is_ok()) return flag_error(args, seed.status());
  const auto events = args.int_or("events", spec.num_events, 1, 1 << 26);
  if (!events.is_ok()) return flag_error(args, events.status());
  spec.num_events = static_cast<int>(events.value());
  const auto fpgas = args.int_or("fpgas", spec.num_fpgas, 1, 1 << 20);
  if (!fpgas.is_ok()) return flag_error(args, fpgas.status());
  spec.num_fpgas = static_cast<int>(fpgas.value());
  const auto rate =
      args.real_or("rate", spec.arrival_rate_per_s, 1e-9, 1e9);
  if (!rate.is_ok()) return flag_error(args, rate.status());
  spec.arrival_rate_per_s = rate.value();
  const auto lifetime =
      args.real_or("lifetime", spec.mean_lifetime_s, 1e-9, 1e9);
  if (!lifetime.is_ok()) return flag_error(args, lifetime.status());
  spec.mean_lifetime_s = lifetime.value();

  const mfa::scenario::Trace trace =
      mfa::scenario::generate_trace(spec, seed.value());
  const std::string text = mfa::io::to_json(trace).dump(2) + "\n";
  if (out_path == "-") {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  if (mfa::Status st = mfa::io::write_file(out_path, text); !st.is_ok()) {
    std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (seed %llu, %zu events, %d FPGAs)\n",
               out_path.c_str(),
               static_cast<unsigned long long>(seed.value()),
               trace.events.size(), trace.platform.num_fpgas);
  return 0;
}

int cmd_serve(const ArgParser& args) {
  auto text = mfa::io::read_file(args.value_or("trace", ""));
  if (!text.is_ok()) {
    std::fprintf(stderr, "error: %s\n", text.status().to_string().c_str());
    return 1;
  }
  auto trace = mfa::io::trace_from_text(text.value());
  if (!trace.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 trace.status().to_string().c_str());
    return 1;
  }

  mfa::service::ServerOptions options;
  options.warm_start = !args.flag_set("cold");
  options.portfolio.gpa.use_interior_point = args.flag_set("interior-point");
  options.portfolio.run_exact = args.flag_set("exact");
  const auto jobs = args.int_or("jobs", options.solver_threads, 0, 4096);
  if (!jobs.is_ok()) return flag_error(args, jobs.status());
  options.solver_threads = static_cast<int>(jobs.value());
  const auto max_moves = args.int_or("max-moves", -1, -1, 1 << 30);
  if (!max_moves.is_ok()) return flag_error(args, max_moves.status());
  options.max_moves = static_cast<int>(max_moves.value());
  const auto max_disturbed = args.int_or("max-disturbed", -1, -1, 1 << 30);
  if (!max_disturbed.is_ok()) {
    return flag_error(args, max_disturbed.status());
  }
  options.max_disturbed = static_cast<int>(max_disturbed.value());

  mfa::service::AllocServer server(trace.value().platform, options);
  // Replay as fast as the solver allows: submit in trace order, wait
  // per event (the queue is MPMC; a replay is a single producer).
  std::vector<mfa::service::EventOutcome> outcomes;
  outcomes.reserve(trace.value().events.size());
  for (const mfa::service::Event& event : trace.value().events) {
    outcomes.push_back(server.apply(event));
  }
  server.stop();

  // Per-event latency/goal JSON on stdout, plus a latency summary.
  mfa::io::Json doc = mfa::io::Json::object();
  doc.set("events",
          mfa::io::Json::number(static_cast<double>(outcomes.size())));
  doc.set("warm_start", mfa::io::Json::boolean(options.warm_start));
  double total_s = 0.0;
  double max_s = 0.0;
  mfa::io::Json per_event = mfa::io::Json::array();
  for (const mfa::service::EventOutcome& o : outcomes) {
    total_s += o.seconds;
    max_s = std::max(max_s, o.seconds);
    mfa::io::Json row = mfa::io::to_json(o);
    row.set("latency_ms", mfa::io::Json::number(o.seconds * 1e3));
    per_event.push_back(std::move(row));
  }
  doc.set("mean_latency_ms",
          mfa::io::Json::number(outcomes.empty()
                                    ? 0.0
                                    : 1e3 * total_s / outcomes.size()));
  doc.set("max_latency_ms", mfa::io::Json::number(1e3 * max_s));
  const auto cache = server.cache_stats();
  doc.set("cache_hits",
          mfa::io::Json::number(static_cast<double>(cache.hits)));
  doc.set("cache_entries",
          mfa::io::Json::number(static_cast<double>(cache.entries)));
  doc.set("cache_evictions",
          mfa::io::Json::number(static_cast<double>(cache.evictions)));
  const auto models = server.model_cache_stats();
  doc.set("model_cache_hits",
          mfa::io::Json::number(static_cast<double>(models.hits)));
  doc.set("model_cache_entries",
          mfa::io::Json::number(static_cast<double>(models.entries)));
  doc.set("model_cache_evictions",
          mfa::io::Json::number(static_cast<double>(models.evictions)));
  doc.set("per_event", std::move(per_event));
  std::printf("%s\n", doc.dump(2).c_str());

  if (const std::string log_path = args.value_or("log", "");
      !log_path.empty()) {
    mfa::io::Json log = mfa::io::Json::array();
    for (const mfa::service::EventOutcome& o : outcomes) {
      // The deterministic outcome slice (io::to_json drops wall-clock
      // seconds) — byte-identical across runs, what CI diffs.
      log.push_back(mfa::io::to_json(o));
    }
    if (mfa::Status st = mfa::io::write_file(log_path, log.dump(2) + "\n");
        !st.is_ok()) {
      std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
      return 1;
    }
  }
  return 0;
}

/// Client events the daemon already processed, per GET /v1/stats
/// "events_processed" — the resume point after a crash + recovery. The
/// daemon de-duplicates broadcast resizes (counted by every shard), so
/// for an in-order single client this equals the count it posted.
mfa::StatusOr<std::size_t> daemon_progress(const std::string& host,
                                           std::uint16_t port) {
  auto reply = mfa::net::http_get(host, port, "/v1/stats");
  if (!reply.is_ok()) return reply.status();
  if (reply.value().status != 200) {
    return mfa::Status{mfa::Code::kInvalid,
                       "GET /v1/stats: HTTP " +
                           std::to_string(reply.value().status)};
  }
  auto doc = mfa::io::Json::parse(reply.value().body);
  if (!doc.is_ok()) return doc.status();
  const mfa::io::Json* done = doc.value().find("events_processed");
  if (done == nullptr || !done->is_number()) {
    return mfa::Status{mfa::Code::kInvalid,
                       "GET /v1/stats: no 'events_processed'"};
  }
  return static_cast<std::size_t>(done->as_number());
}

int cmd_post(const ArgParser& args) {
  auto text = mfa::io::read_file(args.value_or("trace", ""));
  if (!text.is_ok()) {
    std::fprintf(stderr, "error: %s\n", text.status().to_string().c_str());
    return 1;
  }
  auto trace = mfa::io::trace_from_text(text.value());
  if (!trace.is_ok()) {
    std::fprintf(stderr, "error: %s\n", trace.status().to_string().c_str());
    return 1;
  }
  const std::vector<mfa::service::Event>& events = trace.value().events;

  const std::string host = args.value_or("host", "127.0.0.1");
  const auto port = args.int_or("port", 0, 1, 65535);
  if (!port.is_ok()) return flag_error(args, port.status());
  const auto from_flag =
      args.int_or("from", 0, 0, static_cast<long long>(events.size()));
  if (!from_flag.is_ok()) return flag_error(args, from_flag.status());
  const auto count = args.int_or("count", -1, 0, 1LL << 32);
  if (!count.is_ok()) return flag_error(args, count.status());
  const auto batch = args.int_or("batch", 16, 1, 4096);
  if (!batch.is_ok()) return flag_error(args, batch.status());

  std::size_t from = static_cast<std::size_t>(from_flag.value());
  if (args.flag_set("resume")) {
    auto done = daemon_progress(host,
                                static_cast<std::uint16_t>(port.value()));
    if (!done.is_ok()) {
      std::fprintf(stderr, "error: %s\n",
                   done.status().to_string().c_str());
      return 1;
    }
    from = std::min(done.value(), events.size());
    std::fprintf(stderr, "resume: daemon has processed %zu events\n",
                 done.value());
  }
  std::size_t end = events.size();
  if (count.value() >= 0) {
    end = std::min(end, from + static_cast<std::size_t>(count.value()));
  }

  // Ship [from, end) in batches; print one outcome JSON line per event.
  std::size_t posted = 0;
  for (std::size_t i = from; i < end;) {
    const std::size_t n =
        std::min(static_cast<std::size_t>(batch.value()), end - i);
    mfa::io::Json body = mfa::io::Json::object();
    body.set("schema_version",
             mfa::io::Json::number(mfa::io::kSchemaVersion));
    mfa::io::Json list = mfa::io::Json::array();
    for (std::size_t k = 0; k < n; ++k) {
      list.push_back(mfa::io::to_json(events[i + k]));
    }
    body.set("events", std::move(list));
    auto reply = mfa::net::http_post(
        host, static_cast<std::uint16_t>(port.value()), "/v1/events",
        body.dump() + "\n");
    if (!reply.is_ok()) {
      std::fprintf(stderr, "error: %s (posted %zu of %zu)\n",
                   reply.status().to_string().c_str(), posted, end - from);
      return 1;
    }
    if (reply.value().status != 200) {
      std::fprintf(stderr, "error: HTTP %d: %s", reply.value().status,
                   reply.value().body.c_str());
      return 1;
    }
    auto doc = mfa::io::Json::parse(reply.value().body);
    if (!doc.is_ok()) {
      std::fprintf(stderr, "error: bad reply: %s\n",
                   doc.status().to_string().c_str());
      return 1;
    }
    const mfa::io::Json* outcomes = doc.value().find("outcomes");
    if (outcomes == nullptr || !outcomes->is_array() ||
        outcomes->size() != n) {
      std::fprintf(stderr, "error: reply lacks %zu outcomes\n", n);
      return 1;
    }
    for (std::size_t k = 0; k < outcomes->size(); ++k) {
      std::printf("%s\n", outcomes->at(k).dump().c_str());
    }
    posted += n;
    i += n;
  }
  std::fprintf(stderr, "posted %zu events [%zu, %zu) to %s:%lld\n", posted,
               from, end, host.c_str(),
               static_cast<long long>(port.value()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string program = "mfalloc_cli";
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    std::fputs(mfa::cli::global_usage(program).c_str(),
               argc < 2 ? stderr : stdout);
    return argc < 2 ? 2 : 0;
  }
  auto parser = mfa::cli::command_parser(program, argv[1]);
  if (!parser.is_ok()) {
    std::fprintf(stderr, "error: %s\n", parser.status().message().c_str());
    return 2;
  }
  ArgParser& args = parser.value();
  if (mfa::Status st = args.parse(argc - 2, argv + 2); !st.is_ok()) {
    return flag_error(args, st);
  }
  if (args.help_requested()) {
    std::fputs(args.help_text().c_str(), stdout);
    return 0;
  }

  const std::string command = argv[1];
  if (command == "gen") return cmd_gen(args);
  if (command == "gentrace") return cmd_gentrace(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "post") return cmd_post(args);

  auto problem = load(args.positionals()[0]);
  if (!problem.is_ok()) {
    std::fprintf(stderr, "error: %s\n",
                 problem.status().to_string().c_str());
    return 2;
  }
  if (command == "solve") return cmd_solve(problem.value(), args);
  if (command == "portfolio") return cmd_portfolio(problem.value(), args);
  if (command == "sweep") return cmd_sweep(problem.value(), args);
  if (command == "simulate") return cmd_simulate(problem.value(), args);
  std::fputs(mfa::cli::global_usage(program).c_str(), stderr);
  return 2;
}
