#include "cli/commands.hpp"

#include <algorithm>
#include <cstddef>

namespace mfa::cli {
namespace {

struct CommandSpec {
  const char* name;
  const char* summary;
  void (*declare)(ArgParser&);
};

void declare_solve(ArgParser& p) {
  p.positional("problem.json", "problem file (see src/io/serialize.hpp)")
      .flag("exact", "prove the optimum with the exact branch-and-bound")
      .flag("json", "print the allocation as JSON instead of text");
}

void declare_portfolio(ArgParser& p) {
  p.positional("problem.json", "problem file (see src/io/serialize.hpp)")
      .option("seconds", "S", "shared wall-clock deadline for all lanes")
      .flag("naive", "also race the naive branch-and-bound lane")
      .option("jobs", "N", "worker threads (0 = hardware size)");
}

void declare_sweep(ArgParser& p) {
  p.positional("problem.json", "problem file (see src/io/serialize.hpp)")
      .positional("lo%", "resource-fraction grid start, percent")
      .positional("hi%", "grid end, percent")
      .positional("step%", "grid step, percent")
      .option("method", "gpa|minlp|minlpg", "solver per grid point")
      .option("jobs", "N", "grid points solved concurrently (default 1)");
}

void declare_simulate(ArgParser& p) {
  p.positional("problem.json", "problem file (see src/io/serialize.hpp)")
      .option("images", "N", "images to push through the pipeline");
}

void declare_gen(ArgParser& p) {
  p.positional("out.json|-", "output path, or - for stdout")
      .option("seed", "S", "RNG seed (same seed, same file, byte for byte)")
      .option("kernels", "N", "exact pipeline depth")
      .option("fpgas", "F", "exact pool size")
      .option("classes", "C", "max device classes (heterogeneous pools)")
      .option("tightness", "X", "resource pressure in (0, 1]")
      .option("skew", "X", "device-class imbalance in (0, 1]");
}

void declare_gentrace(ArgParser& p) {
  p.positional("out.json|-", "output path, or - for stdout")
      .option("seed", "S", "RNG seed (same seed, same file, byte for byte)")
      .option("events", "N", "trace length")
      .option("fpgas", "F", "pool size")
      .option("rate", "R", "Poisson arrival rate, pipelines/s")
      .option("lifetime", "S", "mean pipeline lifetime, seconds");
}

void declare_serve(ArgParser& p) {
  p.option("trace", "trace.json", "arrival trace to replay",
           /*required=*/true)
      .option("jobs", "N", "solver threads (1 = deterministic lanes)")
      .flag("cold", "disable the incumbent warm start")
      .option("log", "out.json", "also write the deterministic event log")
      .flag("interior-point", "interior-point root relaxation")
      .flag("exact", "add the budgeted exact lane per event")
      .option("max-moves", "K",
              "stability budget: max CUs torn from surviving pipelines "
              "per event (default unlimited)")
      .option("max-disturbed", "K",
              "stability budget: max non-target pipelines disturbed per "
              "event (default unlimited)");
}

void declare_post(ArgParser& p) {
  p.option("trace", "trace.json", "arrival trace whose events to POST",
           /*required=*/true)
      .option("port", "P", "mfallocd port", /*required=*/true)
      .option("host", "A", "mfallocd IPv4 address (default 127.0.0.1)")
      .option("from", "N", "skip the first N events")
      .option("count", "N", "post at most N events")
      .option("batch", "N", "events per POST /v1/events request (default 16)")
      .flag("resume",
            "ask GET /v1/stats how many events the daemon already "
            "processed and skip those (overrides --from)");
}

constexpr CommandSpec kCommands[] = {
    {"solve", "Solve one problem with GP+A, or prove the optimum.",
     declare_solve},
    {"portfolio",
     "Race every solving strategy under one deadline; report the winner.",
     declare_portfolio},
    {"sweep", "Sweep the resource-fraction grid and tabulate II/phi/goal.",
     declare_sweep},
    {"simulate", "Solve, then cycle-simulate the resulting allocation.",
     declare_simulate},
    {"gen", "Write a seeded random scenario as a problem JSON.", declare_gen},
    {"gentrace", "Write a seeded arrival trace (Poisson arrivals, churn).",
     declare_gentrace},
    {"serve", "Replay an arrival trace through a long-lived AllocServer.",
     declare_serve},
    {"post", "POST a trace's events to a running mfallocd over HTTP.",
     declare_post},
};

}  // namespace

const std::vector<std::string>& command_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const CommandSpec& c : kCommands) v.emplace_back(c.name);
    return v;
  }();
  return names;
}

StatusOr<ArgParser> command_parser(const std::string& program,
                                   const std::string& command) {
  for (const CommandSpec& c : kCommands) {
    if (command == c.name) {
      ArgParser parser(program, c.name, c.summary);
      c.declare(parser);
      return parser;
    }
  }
  return Status{Code::kInvalid, "unknown command '" + command + "' (run '" +
                                    program + " --help' for the list)"};
}

ArgParser mfallocd_parser(const std::string& program) {
  ArgParser p(program, "",
              "Allocation daemon: serves the versioned wire API (POST "
              "/v1/events, GET /v1/allocation|/v1/occupancy|/v1/stats|"
              "/v1/healthz) over HTTP, sharding pipelines across "
              "AllocServers by consistent hashing, with optional "
              "write-ahead-log durability.");
  p.option("platform", "file.json",
           "initial pool: a platform JSON, or any problem/trace file with "
           "a \"platform\" field (required unless --recover)")
      .option("port", "P", "listen port (default 8080; 0 = ephemeral)")
      .option("bind", "A", "bind address (default 127.0.0.1)")
      .option("data", "dir",
              "WAL root; shard i logs to <dir>/shard-<i> (empty = no "
              "durability)")
      .option("shards", "N",
              "AllocServer shards (default 2; part of the WAL layout)")
      .option("snapshot-every", "N",
              "snapshot each shard's workload every N events (default 256)")
      .option("jobs", "N", "solver threads per shard (default 1)")
      .option("max-moves", "K",
              "stability budget: max CUs torn from surviving pipelines "
              "per event (default unlimited)")
      .option("max-disturbed", "K",
              "stability budget: max non-target pipelines disturbed per "
              "event (default unlimited)")
      .flag("recover",
            "rebuild every shard from --data WALs instead of starting "
            "fresh (ignores --platform)")
      .flag("no-fsync", "skip fsync on WAL appends (benchmarking only)");
  return p;
}

std::string global_usage(const std::string& program) {
  std::string out = "usage: " + program + " <command> [args]\n\ncommands:\n";
  std::size_t width = 0;
  for (const CommandSpec& c : kCommands) {
    width = std::max(width, std::string(c.name).size());
  }
  for (const CommandSpec& c : kCommands) {
    const std::string name = c.name;
    out += "  " + name + std::string(width - name.size() + 2, ' ') +
           c.summary + "\n";
  }
  out += "\nRun '" + program + " <command> --help' for flags.\n";
  return out;
}

}  // namespace mfa::cli
