#include "cli/args.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <utility>

namespace mfa::cli {
namespace {

Status invalid(std::string message) {
  return Status{Code::kInvalid, std::move(message)};
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string command,
                     std::string summary)
    : program_(std::move(program)),
      command_(std::move(command)),
      summary_(std::move(summary)) {}

ArgParser& ArgParser::positional(std::string name, std::string help) {
  positionals_.push_back({std::move(name), std::move(help)});
  return *this;
}

ArgParser& ArgParser::flag(std::string name, std::string help) {
  flags_.push_back({std::move(name), "", std::move(help), false});
  return *this;
}

ArgParser& ArgParser::option(std::string name, std::string placeholder,
                             std::string help, bool required) {
  flags_.push_back(
      {std::move(name), std::move(placeholder), std::move(help), required});
  return *this;
}

const ArgParser::Flag* ArgParser::find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status ArgParser::parse(int argc, char** argv) {
  const std::string where =
      command_.empty() ? program_ : program_ + " " + command_;
  for (int i = 0; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      help_requested_ = true;
      return Status::ok();
    }
    const bool is_flag =
        token.size() > 1 && token[0] == '-' && !(token == "-");
    if (!is_flag) {
      if (positional_values_.size() >= positionals_.size()) {
        return invalid("unexpected argument '" + token + "' for '" + where +
                       "' (see --help)");
      }
      positional_values_.push_back(token);
      continue;
    }
    if (token.size() < 3 || token[1] != '-') {
      return invalid("unknown flag '" + token + "' for '" + where +
                     "' (see --help)");
    }
    std::string name = token.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const std::size_t eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name.resize(eq);
      has_inline = true;
    }
    const Flag* spec = find(name);
    if (spec == nullptr) {
      return invalid("unknown flag '--" + name + "' for '" + where +
                     "' (see --help)");
    }
    if (!spec->takes_value()) {
      if (has_inline) {
        return invalid("flag '--" + name + "' takes no value");
      }
      set_flags_.push_back(name);
      continue;
    }
    if (has_inline) {
      values_.emplace_back(name, std::move(inline_value));
      continue;
    }
    if (i + 1 >= argc) {
      return invalid("flag '--" + name + "' needs a value <" +
                     spec->placeholder + ">");
    }
    values_.emplace_back(name, argv[++i]);
  }
  if (positional_values_.size() < positionals_.size()) {
    return invalid("missing argument <" +
                   positionals_[positional_values_.size()].name + "> for '" +
                   where + "' (see --help)");
  }
  for (const Flag& f : flags_) {
    if (f.required && !has_value(f.name)) {
      return invalid("missing required flag '--" + f.name + " <" +
                     f.placeholder + ">' for '" + where + "'");
    }
  }
  return Status::ok();
}

bool ArgParser::flag_set(const std::string& name) const {
  return std::find(set_flags_.begin(), set_flags_.end(), name) !=
         set_flags_.end();
}

bool ArgParser::has_value(const std::string& name) const {
  for (const auto& [key, value] : values_) {
    if (key == name) return true;
  }
  return false;
}

std::string ArgParser::value_or(const std::string& name,
                                std::string fallback) const {
  // Last occurrence wins, matching the common "override earlier flags"
  // shell idiom.
  for (auto it = values_.rbegin(); it != values_.rend(); ++it) {
    if (it->first == name) return it->second;
  }
  return fallback;
}

StatusOr<long long> ArgParser::parse_int(const std::string& text,
                                         const std::string& what,
                                         long long min, long long max) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || *end != '\0' || errno == ERANGE || v < min || v > max) {
    return invalid(what + ": expected an integer in [" + std::to_string(min) +
                   ", " + std::to_string(max) + "], got '" + text + "'");
  }
  return v;
}

StatusOr<double> ArgParser::parse_real(const std::string& text,
                                       const std::string& what, double min,
                                       double max) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || *end != '\0' || errno == ERANGE || !(v >= min) ||
      !(v <= max)) {
    return invalid(what + ": expected a number in [" + std::to_string(min) +
                   ", " + std::to_string(max) + "], got '" + text + "'");
  }
  return v;
}

StatusOr<long long> ArgParser::int_or(const std::string& name,
                                      long long fallback, long long min,
                                      long long max) const {
  if (!has_value(name)) return fallback;
  return parse_int(value_or(name, ""), "--" + name, min, max);
}

StatusOr<double> ArgParser::real_or(const std::string& name, double fallback,
                                    double min, double max) const {
  if (!has_value(name)) return fallback;
  return parse_real(value_or(name, ""), "--" + name, min, max);
}

StatusOr<std::uint64_t> ArgParser::uint64_or(const std::string& name,
                                             std::uint64_t fallback) const {
  if (!has_value(name)) return fallback;
  const std::string text = value_or(name, "");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || *end != '\0' || errno == ERANGE ||
      text.find('-') != std::string::npos) {
    return invalid("--" + name + ": expected an unsigned integer, got '" +
                   text + "'");
  }
  return static_cast<std::uint64_t>(v);
}

std::string ArgParser::usage_line() const {
  std::string line = "usage: " + program_;
  if (!command_.empty()) line += " " + command_;
  for (const Positional& p : positionals_) line += " <" + p.name + ">";
  bool any_optional = false;
  for (const Flag& f : flags_) {
    if (f.required) {
      line += " --" + f.name + " <" + f.placeholder + ">";
    } else {
      any_optional = true;
    }
  }
  if (any_optional) line += " [options]";
  return line;
}

std::string ArgParser::help_text() const {
  std::string out = usage_line() + "\n";
  if (!summary_.empty()) out += "\n" + summary_ + "\n";

  // One aligned row per argument: "  --name <P>  help".
  std::vector<std::pair<std::string, std::string>> rows;
  for (const Positional& p : positionals_) {
    rows.emplace_back("<" + p.name + ">", p.help);
  }
  for (const Flag& f : flags_) {
    std::string label = "--" + f.name;
    if (f.takes_value()) label += " <" + f.placeholder + ">";
    rows.emplace_back(std::move(label),
                      f.required ? "(required) " + f.help : f.help);
  }
  rows.emplace_back("--help", "show this help and exit");
  std::size_t width = 0;
  for (const auto& [label, help] : rows) {
    width = std::max(width, label.size());
  }
  out += "\noptions:\n";
  for (const auto& [label, help] : rows) {
    out += "  " + label + std::string(width - label.size() + 2, ' ') + help +
           "\n";
  }
  return out;
}

}  // namespace mfa::cli
