// Declarative command-line parsing for the CLI binaries.
//
// Before this existed every mfalloc_cli subcommand hand-rolled its own
// strcmp loops (has_flag/flag_value), which meant typos were silently
// ignored, `--help` did not exist, and mfallocd would have grown a
// third copy. ArgParser centralizes the idiom: a subcommand declares
// its positionals, boolean flags and value options once; parse()
// rejects unknown flags and missing values with a typed Status; and
// help_text() renders a deterministic usage/help block (golden-tested
// in tests/cli_test.cpp so the user-facing text is part of the
// contract).
//
// Scope is deliberately the repo's needs, nothing more: long `--flag`
// spellings (plus `--flag=value`), a bare `-` positional for stdout,
// and typed accessors with range checks. No short-option bundling, no
// subcommand dispatch (the binaries own that), no auto-exit — callers
// decide what to do with help_requested().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace mfa::cli {

class ArgParser {
 public:
  /// `program`/`command` only feed the usage text ("mfalloc_cli solve");
  /// pass an empty command for single-purpose binaries like mfallocd.
  ArgParser(std::string program, std::string command, std::string summary);

  // ---- Declaration (fluent; order = display order). --------------------

  /// Required positional argument, e.g. "problem.json".
  ArgParser& positional(std::string name, std::string help);
  /// Boolean flag: present or absent, never takes a value.
  ArgParser& flag(std::string name, std::string help);
  /// Value option, e.g. option("seconds", "S", "deadline"). `required`
  /// options appear in the usage line instead of under [options].
  ArgParser& option(std::string name, std::string placeholder,
                    std::string help, bool required = false);

  // ---- Parsing. --------------------------------------------------------

  /// Parses the argv slice *after* program/subcommand. kInvalid on
  /// unknown flags, missing values, or missing required arguments.
  /// `--help` short-circuits: parse() returns ok with help_requested()
  /// set and skips required-argument checks.
  Status parse(int argc, char** argv);

  [[nodiscard]] bool help_requested() const { return help_requested_; }

  // ---- Results. --------------------------------------------------------

  [[nodiscard]] bool flag_set(const std::string& name) const;
  /// The option's value, or `fallback` when absent.
  [[nodiscard]] std::string value_or(const std::string& name,
                                     std::string fallback) const;
  [[nodiscard]] bool has_value(const std::string& name) const;
  /// Typed accessors: fallback when absent, kInvalid (naming the flag)
  /// on garbage or out-of-range text. Bounds are inclusive.
  [[nodiscard]] StatusOr<long long> int_or(const std::string& name,
                                           long long fallback, long long min,
                                           long long max) const;
  [[nodiscard]] StatusOr<double> real_or(const std::string& name,
                                         double fallback, double min,
                                         double max) const;
  [[nodiscard]] StatusOr<std::uint64_t> uint64_or(
      const std::string& name, std::uint64_t fallback) const;
  /// Positional values, in declaration order.
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positional_values_;
  }

  // ---- Rendering (deterministic; see tests/cli_test.cpp). --------------

  /// "usage: mfalloc_cli solve <problem.json> [options]"
  [[nodiscard]] std::string usage_line() const;
  /// Full block: usage line, summary, aligned flag table.
  [[nodiscard]] std::string help_text() const;

  // ---- Bare parsing helpers (shared by positional handling). -----------

  static StatusOr<long long> parse_int(const std::string& text,
                                       const std::string& what, long long min,
                                       long long max);
  static StatusOr<double> parse_real(const std::string& text,
                                     const std::string& what, double min,
                                     double max);

 private:
  struct Flag {
    std::string name;
    std::string placeholder;  ///< empty = boolean flag
    std::string help;
    bool required = false;
    bool takes_value() const { return !placeholder.empty(); }
  };
  struct Positional {
    std::string name;
    std::string help;
  };

  [[nodiscard]] const Flag* find(const std::string& name) const;

  std::string program_;
  std::string command_;
  std::string summary_;
  std::vector<Positional> positionals_;
  std::vector<Flag> flags_;

  bool help_requested_ = false;
  std::vector<std::string> positional_values_;
  /// Parsed `--option value` pairs, in occurrence order.
  std::vector<std::pair<std::string, std::string>> values_;
  std::vector<std::string> set_flags_;
};

}  // namespace mfa::cli
