// The mfalloc_cli / mfallocd flag specifications, in one place.
//
// Declaring the subcommands here (instead of inline in examples/)
// keeps the user-facing surface testable: tests/cli_test.cpp golden-
// compares every generated --help block, so renaming a flag or
// dropping a subcommand is a visible diff, not a silent behavior
// change. The binaries build their parsers through these functions and
// dispatch on the returned values.
#pragma once

#include <string>
#include <vector>

#include "cli/args.hpp"
#include "support/status.hpp"

namespace mfa::cli {

/// mfalloc_cli subcommand names, in display order.
const std::vector<std::string>& command_names();

/// Fully-declared parser for one mfalloc_cli subcommand; kInvalid for
/// an unknown name. `program` only feeds the usage text.
StatusOr<ArgParser> command_parser(const std::string& program,
                                   const std::string& command);

/// The daemon's flags (single-purpose binary, no subcommands).
ArgParser mfallocd_parser(const std::string& program);

/// The whole-program usage block bare `mfalloc_cli` prints: one row
/// per subcommand plus the --help hint.
std::string global_usage(const std::string& program);

}  // namespace mfa::cli
