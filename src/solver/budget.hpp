// Search budgets for the exact solvers.
//
// Exact search is worst-case exponential; every solver in this module
// takes a Budget and reports whether it *proved* optimality or stopped at
// the budget with the incumbent. Benchmarks rely on this to stay bounded
// on small machines while tests use effectively-unlimited budgets on
// small instances.
//
// A Budget may be shared by several solver threads (the runtime portfolio
// races strategies under one deadline): tick()/consume() are lock-free,
// the node count is exact under concurrency, and expire() cooperatively
// cancels every solver polling the same budget.
//
// Thread model (for -Wthread-safety readers): Budget holds no mutex and
// therefore carries no capability annotations — every shared member is
// a relaxed atomic and every invariant is per-field, so there is no
// multi-field critical section for the analysis to check. The
// non-atomic members (max_nodes_, deadline_, has_deadline_) are set at
// construction and immutable afterwards; copy/assign are *not*
// concurrency-safe against a racing tick() on the source and are only
// used before a budget is shared.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace mfa::solver {

class Budget {
 public:
  /// Unlimited budget.
  Budget() = default;

  // max_seconds is clamped to ~30 years: beyond that the duration_cast
  // to the clock's integer representation would overflow (UB) — callers
  // pass user-supplied values (e.g. the CLI's --seconds).
  Budget(std::int64_t max_nodes, double max_seconds)
      : max_nodes_(max_nodes),
        deadline_(Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          std::min(max_seconds, 1e9)))),
        has_deadline_(true) {}

  static Budget nodes_only(std::int64_t max_nodes) {
    Budget b;
    b.max_nodes_ = max_nodes;
    return b;
  }

  // Copies snapshot the counters (atomics are not copyable themselves);
  // a copy is an independent budget, not a shared handle.
  Budget(const Budget& other)
      : max_nodes_(other.max_nodes_),
        nodes_(other.nodes_.load(std::memory_order_relaxed)),
        ticks_(other.ticks_.load(std::memory_order_relaxed)),
        deadline_(other.deadline_),
        has_deadline_(other.has_deadline_),
        exhausted_(other.exhausted_.load(std::memory_order_relaxed)) {}
  Budget& operator=(const Budget& other) {
    max_nodes_ = other.max_nodes_;
    nodes_.store(other.nodes_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    ticks_.store(other.ticks_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    deadline_ = other.deadline_;
    has_deadline_ = other.has_deadline_;
    exhausted_.store(other.exhausted_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    return *this;
  }

  /// Counts one search node; returns false once the budget is exhausted.
  /// The deadline is polled every 1024 of *this budget's* ticks, counted
  /// by a dedicated tick counter — never against the shared node count,
  /// which bulk consume() calls from racing lanes can jump past every
  /// multiple of 1024, starving an alignment-based poll indefinitely.
  /// Since consume() never touches the tick counter, every 1024th tick
  /// lands exactly on a poll regardless of what other lanes do, and the
  /// shared exhausted_ flag stops all of them.
  /// Safe to call from several threads; each node is counted exactly once.
  bool tick() {
    const std::int64_t n =
        nodes_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n > max_nodes_) {
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    if (has_deadline_) {
      const std::int64_t t =
          ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
      if ((t & 1023) == 0 && Clock::now() > deadline_) {
        exhausted_.store(true, std::memory_order_relaxed);
        return false;
      }
    }
    return !exhausted_.load(std::memory_order_relaxed);
  }

  /// Bulk-accounts `n` nodes spent elsewhere (e.g. a sub-solver that ran
  /// under its own per-call budget) and polls the deadline once.
  void consume(std::int64_t n) {
    const std::int64_t total =
        nodes_.fetch_add(n, std::memory_order_relaxed) + n;
    if (total > max_nodes_ ||
        (has_deadline_ && Clock::now() > deadline_)) {
      exhausted_.store(true, std::memory_order_relaxed);
    }
  }

  /// Cooperative cancellation: every subsequent tick() (from any thread)
  /// returns false. Used by the portfolio once a strategy has proved
  /// optimality and the remaining races are pointless.
  void expire() { exhausted_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t nodes_used() const {
    return nodes_.load(std::memory_order_relaxed);
  }

  /// Nodes still spendable (0 when exhausted/overrun).
  [[nodiscard]] std::int64_t remaining_nodes() const {
    if (exhausted()) return 0;
    return std::max<std::int64_t>(0, max_nodes_ - nodes_used());
  }

  /// Seconds until the deadline (+inf without one, 0 when exhausted).
  [[nodiscard]] double remaining_seconds() const {
    if (exhausted()) return 0.0;
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::max(
        0.0,
        std::chrono::duration<double>(deadline_ - Clock::now()).count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  std::int64_t max_nodes_ = std::numeric_limits<std::int64_t>::max();
  std::atomic<std::int64_t> nodes_{0};
  /// tick()-only counter driving deadline polls (see tick()).
  std::atomic<std::int64_t> ticks_{0};
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::atomic<bool> exhausted_{false};
};

}  // namespace mfa::solver
