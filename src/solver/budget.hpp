// Search budgets for the exact solvers.
//
// Exact search is worst-case exponential; every solver in this module
// takes a Budget and reports whether it *proved* optimality or stopped at
// the budget with the incumbent. Benchmarks rely on this to stay bounded
// on small machines while tests use effectively-unlimited budgets on
// small instances.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>

namespace mfa::solver {

class Budget {
 public:
  /// Unlimited budget.
  Budget() = default;

  Budget(std::int64_t max_nodes, double max_seconds)
      : max_nodes_(max_nodes),
        deadline_(Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(max_seconds))),
        has_deadline_(true) {}

  static Budget nodes_only(std::int64_t max_nodes) {
    Budget b;
    b.max_nodes_ = max_nodes;
    return b;
  }

  /// Counts one search node; returns false once the budget is exhausted.
  /// The deadline is polled every 1024 nodes to keep the check cheap.
  bool tick() {
    ++nodes_;
    if (nodes_ > max_nodes_) {
      exhausted_ = true;
      return false;
    }
    if (has_deadline_ && (nodes_ & 1023) == 0 &&
        Clock::now() > deadline_) {
      exhausted_ = true;
      return false;
    }
    return !exhausted_;
  }

  [[nodiscard]] bool exhausted() const { return exhausted_; }
  [[nodiscard]] std::int64_t nodes_used() const { return nodes_; }

 private:
  using Clock = std::chrono::steady_clock;
  std::int64_t max_nodes_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t nodes_ = 0;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  bool exhausted_ = false;
};

}  // namespace mfa::solver
