#include "solver/exact.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "solver/candidates.hpp"
#include "solver/packing.hpp"

namespace mfa::solver {
namespace {

using core::Allocation;
using core::Problem;

}  // namespace

StatusOr<ExactResult> ExactSolver::solve(const Problem& problem) const {
  const Status valid = problem.validate();
  if (!valid.is_ok()) return valid;

  const auto t_start = std::chrono::steady_clock::now();
  auto elapsed = [&t_start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t_start)
        .count();
  };

  PackingSolver packer(problem);
  const std::vector<double> candidates = candidate_iis(problem);
  MFA_ASSERT(!candidates.empty());

  bool all_proved = true;
  bool out_of_budget = false;
  int evaluated = 0;
  std::int64_t nodes_total = 0;

  // Each packing runs under its own node cap (see ExactOptions) within
  // the remaining global node/time budget.
  auto pack = [&](const std::vector<int>& totals,
                  PackingMode mode) -> PackingResult {
    ++evaluated;
    std::int64_t remaining = options_.max_nodes - nodes_total;
    double seconds_left = options_.max_seconds - elapsed();
    if (options_.shared != nullptr) {
      remaining = std::min(remaining, options_.shared->remaining_nodes());
      seconds_left =
          std::min(seconds_left, options_.shared->remaining_seconds());
    }
    if (remaining <= 0 || seconds_left <= 0.0) {
      out_of_budget = true;
      all_proved = false;
      return PackingResult{};
    }
    Budget budget(std::min(options_.max_nodes_per_pack, remaining),
                  seconds_left);
    PackingResult r = packer.pack(totals, mode, budget);
    nodes_total += budget.nodes_used();
    if (options_.shared != nullptr) {
      options_.shared->consume(budget.nodes_used());
    }
    if (!r.proved_optimal) all_proved = false;
    return r;
  };

  // ---- Stage 1 (β = 0 optimum): binary search for the smallest
  // candidate II whose minimal totals admit a feasible packing.
  // "Unknown" (budget-aborted) packings are treated as infeasible but
  // poison the optimality proof.
  auto feasibility = [&](std::size_t idx) -> PackingResult {
    return pack(minimal_totals(problem, candidates[idx]),
                PackingMode::kFeasibility);
  };

  PackingResult top = feasibility(candidates.size() - 1);
  if (!top.feasible) {
    // Even one CU per kernel cannot be placed.
    if (top.proved_optimal) {
      return Status{Code::kInfeasible,
                    "no feasible placement exists even at N_k = 1"};
    }
    return Status{Code::kLimit, "budget exhausted before a first solution"};
  }

  std::size_t lo = 0;
  std::size_t hi = candidates.size() - 1;
  PackingResult best_pack = std::move(top);
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    PackingResult r = feasibility(mid);
    if (r.feasible) {
      hi = mid;
      best_pack = std::move(r);
    } else {
      lo = mid + 1;
    }
  }
  const std::size_t first_feasible = hi;

  ExactResult result{*best_pack.allocation,
                     best_pack.allocation->ii(),
                     best_pack.allocation->phi(),
                     0.0,
                     all_proved,
                     0,
                     0.0,
                     0};
  result.goal = best_pack.allocation->goal();

  // ---- Stage 2 (β > 0): ascend the candidate list with min-spreading
  // packings. φ ≥ 1/2 always (N_k ≥ 1 ⇒ φ_k ≥ 1/2), which yields the
  // termination cutoff; capacity-forced chunk bounds skip hopeless
  // candidates early.
  if (problem.beta > 0.0) {
    double best_g = std::numeric_limits<double>::infinity();
    std::optional<Allocation> best_alloc;
    for (std::size_t idx = first_feasible; idx < candidates.size(); ++idx) {
      const double t = candidates[idx];
      if (problem.alpha * t + problem.beta * 0.5 >= best_g) break;
      const std::vector<int> totals = minimal_totals(problem, t);
      double phi_lb = 0.0;
      for (std::size_t k = 0; k < totals.size(); ++k) {
        phi_lb = std::max(phi_lb, phi_lower_bound(problem, k, totals[k]));
      }
      if (problem.alpha * t + problem.beta * phi_lb >= best_g) continue;
      PackingResult r = pack(totals, PackingMode::kMinSpreading);
      if (out_of_budget) break;
      if (!r.feasible) continue;  // possible just above first_feasible ties
      const double g = r.allocation->goal();
      if (g < best_g) {
        best_g = g;
        best_alloc = std::move(r.allocation);
      }
    }
    if (best_alloc) {
      result.allocation = std::move(*best_alloc);
      result.ii = result.allocation.ii();
      result.phi = result.allocation.phi();
      result.goal = result.allocation.goal();
    }
  }
  result.proved_optimal = all_proved && !out_of_budget;

  result.nodes = nodes_total;
  result.seconds = elapsed();
  result.candidates_evaluated = evaluated;
  MFA_ASSERT_MSG(result.allocation.feasible(),
                 "exact solver produced an infeasible allocation");
  return result;
}

}  // namespace mfa::solver
