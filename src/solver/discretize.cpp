#include "solver/discretize.hpp"

#include <array>
#include <cmath>
#include <deque>
#include <limits>

namespace mfa::solver {
namespace {

using core::CuBounds;
using core::Problem;
using core::RelaxedSolution;

/// Index of the most fractional component, or npos if all are integral.
std::size_t most_fractional(const std::vector<double>& n_hat, double tol) {
  std::size_t best = std::string::npos;
  double best_dist = tol;
  for (std::size_t k = 0; k < n_hat.size(); ++k) {
    const double frac = n_hat[k] - std::floor(n_hat[k]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = k;
    }
  }
  return best;
}

}  // namespace

namespace {

/// Solves one node relaxation, through the shared cache when configured.
/// The cache key captures (problem, bounds, hint) exactly, so a hit is
/// bit-identical to solving — see core/relax_cache.hpp.
StatusOr<core::RelaxedSolution> solve_node(const Problem& problem,
                                           const CuBounds& bounds,
                                           double ii_hint,
                                           core::RelaxationCache* cache) {
  if (cache == nullptr) {
    return core::solve_relaxation(problem, bounds, ii_hint);
  }
  auto entry = cache->get_or_solve(
      core::relaxation_cache_key(problem, bounds, ii_hint), [&] {
        return core::solve_relaxation(problem, bounds, ii_hint);
      });
  return *entry;
}

/// Solves the two sibling children of one branch as a batch: cache hits
/// are taken per child, the misses go through one
/// core::solve_relaxation_batch call (bit-identical per lane to the
/// scalar solve, so the published cache entries are indistinguishable
/// from unbatched ones), and solutions are returned in (down, up) order.
std::array<StatusOr<core::RelaxedSolution>, 2> solve_children_batched(
    const Problem& problem, const CuBounds& down_bounds,
    const CuBounds& up_bounds, double ii_hint,
    core::RelaxationCache* cache) {
  const CuBounds* child_bounds[2] = {&down_bounds, &up_bounds};
  std::array<StatusOr<core::RelaxedSolution>, 2> out = {
      Status{Code::kNumeric, "unsolved"}, Status{Code::kNumeric, "unsolved"}};
  core::Fingerprint keys[2];
  bool solved[2] = {false, false};
  if (cache != nullptr) {
    for (int i = 0; i < 2; ++i) {
      keys[i] = core::relaxation_cache_key(problem, *child_bounds[i], ii_hint);
      if (auto hit = cache->lookup(keys[i])) {
        out[i] = *hit;
        solved[i] = true;
      }
    }
  }
  std::vector<CuBounds> miss_bounds;
  std::vector<int> miss_slot;
  for (int i = 0; i < 2; ++i) {
    if (!solved[i]) {
      miss_bounds.push_back(*child_bounds[i]);
      miss_slot.push_back(i);
    }
  }
  if (!miss_bounds.empty()) {
    std::vector<StatusOr<core::RelaxedSolution>> fresh =
        core::solve_relaxation_batch(
            problem, miss_bounds,
            std::vector<double>(miss_bounds.size(), ii_hint));
    for (std::size_t m = 0; m < miss_slot.size(); ++m) {
      const int i = miss_slot[m];
      if (cache != nullptr) {
        // First-writer-wins: the stored entry is what any thread would
        // have computed, so returning our own copy stays deterministic.
        cache->insert(keys[i], fresh[m]);
      }
      out[i] = std::move(fresh[m]);
    }
  }
  return out;
}

/// Patched-mode node solve: fills `out` (a pooled solution whose n_hat
/// capacity is reused across the search) instead of returning a fresh
/// RelaxedSolution. Cache interaction mirrors the legacy paths — per
/// child lookup, scalar solve of the miss, first-writer-wins insert —
/// and is hit/miss-identical to solve_children_batched's
/// lookup-both-then-batch-solve order because sibling keys always
/// differ (the down child tightens upper[k], the up child lower[k],
/// and floor < ceil), so neither sibling's insert can satisfy the
/// other's lookup. The solve itself is core::solve_relaxation_into,
/// bit-identical to the scalar (and therefore the batch) solver.
Status solve_node_into(const Problem& problem, const CuBounds& bounds,
                       double ii_hint, core::RelaxationCache* cache,
                       core::RelaxedSolution& out) {
  if (cache == nullptr) {
    return core::solve_relaxation_into(problem, bounds, ii_hint, out);
  }
  const core::Fingerprint key =
      core::relaxation_cache_key(problem, bounds, ii_hint);
  if (auto hit = cache->lookup(key)) {
    if (!hit->is_ok()) return hit->status();
    out = hit->value();  // copy-assign: pooled capacity absorbs it
    return Status::ok();
  }
  const Status solved =
      core::solve_relaxation_into(problem, bounds, ii_hint, out);
  // First-writer-wins: the stored entry is what any thread would have
  // computed, so keeping our own copy stays deterministic.
  cache->insert(key, solved.is_ok() ? core::CachedRelaxation(out)
                                    : core::CachedRelaxation(solved));
  return solved;
}

/// The in-place branch-and-bound of DiscretizeOptions::patched_bounds:
/// one shared CuBounds patched/restored around each subtree, per-depth
/// pooled child solutions, and a recursion whose visit order is exactly
/// the explicit-stack search's pop order (children solved down-then-up
/// at the parent, up's subtree explored first). Equivalence argument:
/// pushing {down, up} and popping LIFO *is* "recurse into up, then into
/// down", the incumbent/prune state threads through in the same order,
/// the node counter increments at visit entry exactly as it did at pop,
/// and an exhausted node budget aborts every not-yet-visited frame just
/// as the stack search abandoned its remaining stack.
struct PatchedSearch {
  const Problem& problem;
  const DiscretizeOptions& options;
  CuBounds bounds;  ///< THE bounds: patched in place, restored on return

  double best_ii = std::numeric_limits<double>::infinity();
  std::vector<int> best_totals;
  std::int64_t nodes = 0;
  bool aborted = false;

  /// pool[d] holds the down/up solutions solved at depth d — alive for
  /// the whole subtree below them, reused (capacity and all) by every
  /// other branch that reaches depth d. A deque, not a vector: deeper
  /// recursions append while shallower frames hold references.
  std::deque<std::array<core::RelaxedSolution, 2>> pool;

  void visit(const core::RelaxedSolution& relax, std::size_t depth) {
    if (aborted) return;  // a deeper frame exhausted the node budget
    if (nodes >= options.max_nodes) {
      aborted = true;
      return;
    }
    ++nodes;

    // Prune: the node relaxation bounds every integer solution below it.
    if (relax.ii >= best_ii * (1.0 - 1e-12)) return;

    const std::size_t k =
        most_fractional(relax.n_hat, options.integrality_tol);
    if (k == std::string::npos) {
      // Integral node: a candidate totals vector.
      std::vector<int> totals(problem.num_kernels());
      double ii = 0.0;
      for (std::size_t j = 0; j < totals.size(); ++j) {
        totals[j] = static_cast<int>(std::llround(relax.n_hat[j]));
        MFA_ASSERT(totals[j] >= 1);
        ii = std::max(ii, problem.app.kernels[j].wcet_ms / totals[j]);
      }
      if (ii < best_ii) {
        best_ii = ii;
        best_totals = std::move(totals);
      }
      return;
    }

    const double floor_v = std::floor(relax.n_hat[k]);
    const double ceil_v = std::ceil(relax.n_hat[k]);
    const double hint = options.warm_start_nodes ? relax.ii : 0.0;
    if (pool.size() <= depth) pool.resize(depth + 1);
    std::array<core::RelaxedSolution, 2>& kids = pool[depth];

    // Solve both children at the parent, down then up — the order the
    // stack search solves (or batch-solves, bit-identically) them in.
    const double saved_upper = bounds.upper[k];
    const double saved_lower = bounds.lower[k];
    bounds.upper[k] = std::min(saved_upper, floor_v);
    const bool down_ok =
        solve_node_into(problem, bounds, hint, options.cache, kids[0])
            .is_ok();
    bounds.upper[k] = saved_upper;
    bounds.lower[k] = std::max(saved_lower, ceil_v);
    const bool up_ok =
        solve_node_into(problem, bounds, hint, options.cache, kids[1])
            .is_ok();

    // Descend up-first (more CUs → lower II incumbent sooner, and the
    // stack search pushes up last so it pops first), re-applying each
    // child's single-bound patch around its subtree. `relax` may alias
    // a shallower pool row but is dead past this point.
    if (up_ok) visit(kids[1], depth + 1);
    bounds.lower[k] = saved_lower;
    if (down_ok) {
      bounds.upper[k] = std::min(saved_upper, floor_v);
      visit(kids[0], depth + 1);
      bounds.upper[k] = saved_upper;
    }
  }
};

}  // namespace

StatusOr<DiscretizeResult> Discretizer::run(const Problem& problem) const {
  auto root = solve_node(problem, CuBounds::defaults(problem), 0.0,
                         options_.cache);
  if (!root.is_ok()) return root.status();
  return run(problem, root.value());
}

StatusOr<DiscretizeResult> Discretizer::run(const Problem& problem,
                                            const RelaxedSolution& root) const {
  MFA_ASSERT(root.n_hat.size() == problem.num_kernels());

  DiscretizeResult result;
  result.relaxed_ii = root.ii;

  double best_ii = std::numeric_limits<double>::infinity();
  std::vector<int> best_totals;
  std::int64_t nodes = 0;
  bool aborted = false;

  if (options_.patched_bounds) {
    // In-place bound patching over one shared CuBounds; the explicit
    // stack below is the bit-parity oracle (differential_fuzz
    // --patched-bounds replays both and compares).
    PatchedSearch search{problem, options_, CuBounds::defaults(problem)};
    search.visit(root, 0);
    best_ii = search.best_ii;
    best_totals = std::move(search.best_totals);
    nodes = search.nodes;
    aborted = search.aborted;
    result.nodes = nodes;
    result.proved_optimal = !aborted;
    if (best_totals.empty()) {
      if (aborted) {
        return Status{Code::kLimit,
                      "node cap reached before an integral solution"};
      }
      return Status{Code::kInfeasible, "no integral totals satisfy the "
                                       "pooled resource constraints"};
    }
    result.totals = std::move(best_totals);
    result.ii = best_ii;
    return result;
  }

  struct Node {
    CuBounds bounds;
    RelaxedSolution relax;
  };
  std::vector<Node> stack;
  stack.push_back({CuBounds::defaults(problem), root});

  while (!stack.empty()) {
    if (nodes >= options_.max_nodes) {
      aborted = true;
      break;
    }
    ++nodes;
    Node node = std::move(stack.back());
    stack.pop_back();

    // Prune: the node relaxation bounds every integer solution below it.
    if (node.relax.ii >= best_ii * (1.0 - 1e-12)) continue;

    const std::size_t k =
        most_fractional(node.relax.n_hat, options_.integrality_tol);
    if (k == std::string::npos) {
      // Integral node: a candidate totals vector.
      std::vector<int> totals(problem.num_kernels());
      double ii = 0.0;
      for (std::size_t j = 0; j < totals.size(); ++j) {
        totals[j] = static_cast<int>(std::llround(node.relax.n_hat[j]));
        MFA_ASSERT(totals[j] >= 1);
        ii = std::max(ii, problem.app.kernels[j].wcet_ms / totals[j]);
      }
      if (ii < best_ii) {
        best_ii = ii;
        best_totals = std::move(totals);
      }
      continue;
    }

    // Branch: N_k ≤ ⌊N̂_k⌋ and N_k ≥ ⌈N̂_k⌉ (paper §3.2.2). The ceil
    // child is pushed last so it is explored first: more CUs means a
    // lower II incumbent sooner, which sharpens pruning. Children are
    // warm-started from this node's ÎI: tightening a bound can only
    // raise the relaxed optimum, so the parent value brackets the child
    // bisection from below.
    const double floor_v = std::floor(node.relax.n_hat[k]);
    const double ceil_v = std::ceil(node.relax.n_hat[k]);
    const double hint = options_.warm_start_nodes ? node.relax.ii : 0.0;

    Node down{node.bounds, {}};
    down.bounds.upper[k] = std::min(down.bounds.upper[k], floor_v);
    Node up{std::move(node.bounds), {}};
    up.bounds.lower[k] = std::max(up.bounds.lower[k], ceil_v);

    if (options_.batch_children) {
      // Siblings share the parent's structure, so both relaxations go
      // through one batch solve (lane-for-lane bit-identical to the
      // unbatched calls below — the push order and hence the search
      // trace are unchanged).
      auto pair = solve_children_batched(problem, down.bounds, up.bounds,
                                         hint, options_.cache);
      if (pair[0].is_ok()) {
        down.relax = std::move(pair[0].value());
        stack.push_back(std::move(down));
      }
      if (pair[1].is_ok()) {
        up.relax = std::move(pair[1].value());
        stack.push_back(std::move(up));
      }
      continue;
    }

    if (auto rel = solve_node(problem, down.bounds, hint, options_.cache);
        rel.is_ok()) {
      down.relax = std::move(rel.value());
      stack.push_back(std::move(down));
    }
    if (auto rel = solve_node(problem, up.bounds, hint, options_.cache);
        rel.is_ok()) {
      up.relax = std::move(rel.value());
      stack.push_back(std::move(up));
    }
  }

  result.nodes = nodes;
  result.proved_optimal = !aborted;
  if (best_totals.empty()) {
    if (aborted) {
      return Status{Code::kLimit,
                    "node cap reached before an integral solution"};
    }
    return Status{Code::kInfeasible, "no integral totals satisfy the "
                                     "pooled resource constraints"};
  }
  result.totals = std::move(best_totals);
  result.ii = best_ii;
  return result;
}

}  // namespace mfa::solver
