// Exact solver for the full MINLP (eqs. 5–10).
//
// Plays the role of Couenne in the paper ("MINLP" with β = 0, "MINLP+G"
// with the Table-4 weights), but exploits problem structure instead of
// general spatial branch-and-bound:
//
//  * II only takes the finitely many values WCET_k/m (solver/candidates);
//  * for a fixed target II the cheapest totals are N_k(t) = ⌈WCET_k/t⌉,
//    and raising any N_k above that can only worsen both the packing
//    pressure and the spreading φ (φ_k is increasing in every n_{k,f}),
//    so minimal totals are optimal for each candidate;
//  * feasibility of minimal totals is monotone in t (larger t → fewer
//    CUs → easier packing), so the β = 0 optimum is found by binary
//    search over the candidate list with an exact packing check;
//  * for β > 0 the candidates are scanned in ascending order, each
//    evaluated with a min-spreading exact packing, with the cutoff
//    α·t + β·φ_min ≥ g_best terminating the scan (φ ≥ 1/2 always since
//    N_k ≥ 1, and capacity-forced chunk bounds sharpen the cutoff).
//
// Every result states whether optimality was *proved* within the budget.
#pragma once

#include <cstdint>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "solver/budget.hpp"
#include "support/status.hpp"

namespace mfa::solver {

struct ExactOptions {
  std::int64_t max_nodes = 50'000'000;  ///< total packing-node cap
  double max_seconds = 300.0;           ///< wall-clock cap
  /// Node cap for each individual packing (feasibility or min-φ) call.
  /// Without it, one adversarial infeasibility proof mid-search could
  /// drain the whole budget and degrade every later candidate; with it,
  /// a stuck call is abandoned ("unknown", treated conservatively) and
  /// the search continues at full strength.
  std::int64_t max_nodes_per_pack = 500'000;
  /// Optional budget *shared with other solvers* (the runtime portfolio
  /// races several strategies under one deadline). When set, the solver
  /// additionally charges every packing's nodes against it, respects its
  /// remaining node/time allowance, and stops early — keeping its own
  /// incumbent — once the shared budget is exhausted or expire()d. The
  /// pointee must outlive the solve; it is safe to share across threads.
  Budget* shared = nullptr;
};

struct ExactResult {
  core::Allocation allocation;   ///< best allocation found
  double ii = 0.0;               ///< II of that allocation (ms)
  double phi = 0.0;              ///< spreading of that allocation
  double goal = 0.0;             ///< α·II + β·φ
  bool proved_optimal = false;   ///< true iff the search completed
  std::int64_t nodes = 0;        ///< packing nodes expanded
  double seconds = 0.0;          ///< wall-clock time spent
  int candidates_evaluated = 0;  ///< candidate IIs subjected to packing
};

class ExactSolver {
 public:
  explicit ExactSolver(ExactOptions options = {}) : options_(options) {}

  /// Solves the problem with its α/β weights (β = 0 reproduces the
  /// paper's "MINLP" curves; β > 0 reproduces "MINLP+G").
  /// Returns kInfeasible when no allocation satisfies eqs. 8–10, or
  /// kLimit when the budget expired before *any* solution was found.
  [[nodiscard]] StatusOr<ExactResult> solve(
      const core::Problem& problem) const;

 private:
  ExactOptions options_;
};

}  // namespace mfa::solver
