// Candidate initiation intervals.
//
// For integer CU counts the initiation interval II = max_k WCET_k/N_k can
// only take values of the form WCET_k/m with m ∈ N. Enumerating this
// finite set turns the outer minimization of the MINLP into a search over
// a sorted list — the key structural fact behind solver::ExactSolver.
#pragma once

#include <vector>

#include "core/problem.hpp"

namespace mfa::solver {

/// All achievable II values WCET_k/m for m ∈ [1, max_cu_total(k)],
/// deduplicated (relative tolerance 1e-12) and sorted ascending.
/// The largest entry is max_k WCET_k (every N_k = 1); values below
/// max_k WCET_k/max_cu_total(k) are unachievable and excluded.
std::vector<double> candidate_iis(const core::Problem& problem);

/// Minimal integer CU count for kernel k to meet a target II t:
/// the smallest N with WCET_k/N ≤ t, i.e. ⌈WCET_k/t⌉ with a relative
/// guard so that t values taken from candidate_iis round exactly.
int needed_cus(double wcet_ms, double target_ii);

/// The minimal totals vector N_k(t) = max(1, ⌈WCET_k/t⌉) for all kernels.
std::vector<int> minimal_totals(const core::Problem& problem,
                                double target_ii);

}  // namespace mfa::solver
