// Branch-and-bound discretization of the relaxed CU counts
// (paper §3.2.2, first half).
//
// The GP step yields fractional totals N̂_k. Integrality is enforced the
// way the paper describes: branch on a fractional N̂_k into the two
// subproblems N_k ≤ ⌊N̂_k⌋ and N_k ≥ ⌈N̂_k⌉, re-solve the (bounded)
// relaxation at each node, and prune nodes whose relaxed ÎI already
// meets or exceeds the best integer ÎI found. The node relaxation is the
// exact bisection solver, so nodes cost microseconds; the number of
// branched variables is |K|, not |K|·F as in the raw MINLP.
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"
#include "core/relax_cache.hpp"
#include "core/relaxation.hpp"
#include "support/status.hpp"

namespace mfa::solver {

struct DiscretizeResult {
  std::vector<int> totals;     ///< integral N_k
  double relaxed_ii = 0.0;     ///< root relaxation ÎI (lower bound)
  double ii = 0.0;             ///< max_k WCET_k / N_k of the totals
  std::int64_t nodes = 0;      ///< B&B nodes expanded
  bool proved_optimal = false; ///< search completed within the node cap
};

struct DiscretizeOptions {
  std::int64_t max_nodes = 1'000'000;
  double integrality_tol = 1e-6;
  /// Seed each child node's bisection with its parent's relaxed ÎI — a
  /// valid bracket end after bound tightening, so the search result is
  /// unchanged and the node solve converges in fewer iterations.
  bool warm_start_nodes = true;
  /// Solve both branch children through one
  /// core::solve_relaxation_batch call instead of two separate solves.
  /// Siblings share the parent's kernel set (only one bound differs), so
  /// the batch reuses the bisection scratch across lanes; lane results
  /// are bit-identical to the unbatched path and interoperate with the
  /// shared relaxation cache (hits are taken per child, only the misses
  /// are batch-solved, and solutions are published per child key).
  bool batch_children = true;
  /// Branch by patching the branched variable's two bound values in
  /// place on ONE shared CuBounds (each child's patch applied around
  /// its subtree and restored on backtrack) instead of materializing a
  /// CuBounds copy per node, with per-depth pooled node solutions
  /// (core::solve_relaxation_into) instead of a fresh n_hat per node —
  /// the allocation-free warm-path half of ROADMAP item 1's B&B work.
  /// Purely a memory/speed change: visit order, prune timing, node
  /// counts, cache keys/hits and results are bit-identical to the
  /// explicit-stack search (patched_bounds = false, kept as the parity
  /// oracle; differential_fuzz --patched-bounds asserts the
  /// equivalence across seeds).
  bool patched_bounds = true;
  /// Optional shared memoization of node relaxations, keyed by problem
  /// fingerprint × bounds × warm hint (core/relax_cache.hpp). Portfolio
  /// lanes and duplicate batch instances walk identical trees, so a
  /// shared cache collapses their node solves to lookups. Not owned;
  /// may be used from several threads concurrently.
  core::RelaxationCache* cache = nullptr;
};

/// Discretizes the relaxation of `problem`. An externally computed root
/// relaxation may be supplied (e.g. the interior-point GP result) so the
/// pipeline matches the paper's GP→discretize flow; otherwise the root is
/// solved internally by bisection.
class Discretizer {
 public:
  explicit Discretizer(DiscretizeOptions options = {}) : options_(options) {}

  [[nodiscard]] StatusOr<DiscretizeResult> run(
      const core::Problem& problem) const;

  [[nodiscard]] StatusOr<DiscretizeResult> run(
      const core::Problem& problem,
      const core::RelaxedSolution& root) const;

 private:
  DiscretizeOptions options_;
};

}  // namespace mfa::solver
