#include "solver/packing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace mfa::solver {
namespace {

using core::Allocation;
using core::Kernel;
using core::Problem;
using core::ResourceVec;

constexpr double kEps = 1e-9;

double phi_of(int n) { return static_cast<double>(n) / (1.0 + n); }

/// Depth-first packing search over one problem instance.
class Search {
 public:
  Search(const Problem& problem, const std::vector<int>& totals,
         PackingMode mode, Budget& budget,
         const StabilityOptions* stability)
      : p_(problem),
        totals_(totals),
        mode_(mode),
        budget_(budget),
        stab_(stability),
        fpgas_(static_cast<std::size_t>(problem.num_fpgas())),
        counts_(totals.size(),
                std::vector<int>(fpgas_, 0)),
        fpga_class_(fpgas_, 0),
        fpga_load_(fpgas_, 0) {
    if (stab_ != nullptr) {
      int groups = 1;
      for (const int g : stab_->group_of) groups = std::max(groups, g + 1);
      group_changed_.assign(static_cast<std::size_t>(groups), 0);
      // A positive move cost changes the objective away from pure φ, so
      // the static-φ early stop below no longer proves optimality.
      stop_on_static_lb_ = stab_->move_cost <= 0.0;
      // A reference placement makes otherwise-identical FPGAs
      // distinguishable (torn CUs depend on *which* device a CU leaves),
      // so the within-class symmetry clamp would wrongly prune e.g. the
      // reference itself when its rows are not in canonical order. Only
      // an active budget or move cost actually reads the reference.
      symmetric_ = stab_->max_moves < 0 && stab_->max_disturbed < 0 &&
                   stab_->move_cost <= 0.0;
    }
    slack_res_.reserve(fpgas_);
    slack_bw_.reserve(fpgas_);
    for (std::size_t f = 0; f < fpgas_; ++f) {
      const int fi = static_cast<int>(f);
      slack_res_.push_back(problem.cap(fi));
      slack_bw_.push_back(problem.bw_cap(fi));
      fpga_class_[f] = problem.platform.class_index(fi);
    }
    // Hardest kernels first: largest single-axis share of one FPGA.
    order_.resize(totals.size());
    std::iota(order_.begin(), order_.end(), std::size_t{0});
    std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      return demand_score(a) > demand_score(b);
    });
    // The optimum can never beat the capacity-forced spreading bound.
    for (std::size_t k = 0; k < totals.size(); ++k) {
      static_lb_ = std::max(static_lb_,
                            phi_lower_bound(problem, k, totals[k]));
    }
  }

  PackingResult run() {
    PackingResult result;
    if (!pooled_feasible()) {
      result.feasible = false;
      result.proved_optimal = true;
      return result;
    }
    assign_kernel(0, 0.0);
    result.feasible = found_;
    result.proved_optimal = !aborted_;
    if (found_) {
      result.phi = best_phi_;
      result.cus_moved = best_moves_;
      result.disturbed = best_disturbed_;
      Allocation alloc(p_);
      for (std::size_t k = 0; k < totals_.size(); ++k) {
        for (std::size_t f = 0; f < fpgas_; ++f) {
          alloc.set_cu(k, static_cast<int>(f), best_counts_[k][f]);
        }
      }
      result.allocation = std::move(alloc);
    }
    return result;
  }

 private:
  /// Branching-order heuristic: how much of the *friendliest* FPGA one
  /// CU consumes, times the CU count. On mixed fleets the friendliest
  /// device (smallest ratio) keeps the score a lower bound on pressure.
  [[nodiscard]] double demand_score(std::size_t k) const {
    const Kernel& kern = p_.app.kernels[k];
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t f = 0; f < fpgas_; ++f) {
      const int fi = static_cast<int>(f);
      double score = kern.res.max_ratio(p_.cap(fi));
      const double bw_cap = p_.bw_cap(fi);
      if (bw_cap > 0.0) score = std::max(score, kern.bw / bw_cap);
      best = std::min(best, score);
    }
    return best * totals_[k];
  }

  /// Necessary condition: pooled demand fits pooled capacity.
  [[nodiscard]] bool pooled_feasible() const {
    ResourceVec demand;
    double bw = 0.0;
    for (std::size_t k = 0; k < totals_.size(); ++k) {
      demand += p_.app.kernels[k].res * static_cast<double>(totals_[k]);
      bw += p_.app.kernels[k].bw * totals_[k];
    }
    return demand.fits_within(p_.pooled_cap(), 1e-6) &&
           bw <= p_.pooled_bw_cap() + 1e-6;
  }

  /// Max CUs of kernel k that fit in FPGA f's current slack.
  [[nodiscard]] int fit(std::size_t k, std::size_t f, int limit) const {
    const Kernel& kern = p_.app.kernels[k];
    int q = kern.res.max_multiples(slack_res_[f], limit);
    if (kern.bw > 0.0) {
      q = std::min(q, static_cast<int>(std::floor(
                          slack_bw_[f] * (1.0 + 1e-12) / kern.bw + 1e-9)));
    }
    return std::max(q, 0);
  }

  void assign_kernel(std::size_t order_idx, double phi_so_far) {
    if (done_ || aborted_) return;
    if (order_idx == order_.size()) {
      found_ = true;
      // With stability the incumbent comparison is on the composite
      // objective φ + move_cost·moves; unconstrained it degenerates to φ
      // (moves_ stays 0), keeping this branch bit-identical to before.
      const double obj = phi_so_far + move_cost() * moves_;
      if (obj < best_obj_) {
        best_obj_ = obj;
        best_phi_ = phi_so_far;
        best_moves_ = moves_;
        best_disturbed_ = disturbed_;
        best_counts_ = counts_;
      }
      if (mode_ == PackingMode::kFeasibility ||
          (stop_on_static_lb_ && best_phi_ <= static_lb_ + kEps)) {
        done_ = true;
      }
      return;
    }
    const std::size_t k = order_[order_idx];
    if (totals_[k] == 0) {
      // A zero total still tears down whatever the reference had placed.
      StabStep step;
      if (stab_enter(k, step)) assign_kernel(order_idx + 1, phi_so_far);
      stab_exit(step);
      return;
    }
    // Snapshot which FPGAs are empty now: empty FPGAs *of the same
    // device class* are interchangeable for this kernel, so counts
    // placed on them are forced non-increasing within each class.
    std::vector<bool> empty_at_start(fpgas_);
    for (std::size_t f = 0; f < fpgas_; ++f) {
      empty_at_start[f] = symmetric_ && fpga_load_[f] == 0;
    }
    // Per-class cap on the count the next empty-at-start FPGA of that
    // class may receive. Owned by this kernel's frame (not a member):
    // the recursion interleaves later kernels' assign_kernel calls,
    // which must not disturb this kernel's in-flight clamp state.
    std::vector<int> last_empty(p_.platform.num_classes(), totals_[k]);
    distribute(order_idx, k, totals_[k], 0, 0.0, phi_so_far, empty_at_start,
               last_empty);
  }

  // NOLINTNEXTLINE(misc-no-recursion)
  void distribute(std::size_t order_idx, std::size_t k, int rem,
                  std::size_t f, double partial_phi, double phi_so_far,
                  const std::vector<bool>& empty_at_start,
                  std::vector<int>& last_empty) {
    if (done_ || aborted_) return;
    if (!budget_.tick()) {
      aborted_ = true;
      return;
    }
    if (rem == 0) {
      // Kernel k is fully placed (trailing FPGAs hold 0): charge its
      // torn CUs / group disturbance before descending, undo after.
      StabStep step;
      if (stab_enter(k, step)) {
        assign_kernel(order_idx + 1, std::max(phi_so_far, partial_phi));
      }
      stab_exit(step);
      return;
    }
    if (f == fpgas_) return;  // CUs left but no FPGAs left
    if (mode_ == PackingMode::kMinSpreading) {
      // Concavity bound: the unplaced remainder adds at least rem/(1+rem),
      // and moves only ever grow, so moves-so-far lower-bounds the cost.
      const double lb = std::max(phi_so_far, partial_phi + phi_of(rem));
      if (lb + move_cost() * moves_ >= best_obj_ - kEps) return;
    }
    // Remaining CUs must fit in the remaining FPGAs' aggregate fit.
    int aggregate = 0;
    for (std::size_t g = f; g < fpgas_ && aggregate < rem; ++g) {
      aggregate += fit(k, g, rem);
    }
    if (aggregate < rem) return;

    const auto cls = static_cast<std::size_t>(fpga_class_[f]);
    int cmax = fit(k, f, rem);
    if (empty_at_start[f]) cmax = std::min(cmax, last_empty[cls]);
    const Kernel& kern = p_.app.kernels[k];
    // Larger counts first: consolidated placements make good incumbents.
    for (int c = cmax; c >= 0; --c) {
      if (c > 0) {
        slack_res_[f] -= kern.res * static_cast<double>(c);
        slack_bw_[f] -= kern.bw * c;
        fpga_load_[f] += c;
        counts_[k][f] = c;
      }
      const int saved_empty_cap = last_empty[cls];
      if (empty_at_start[f]) last_empty[cls] = c;
      distribute(order_idx, k, rem - c, f + 1, partial_phi + phi_of(c),
                 phi_so_far, empty_at_start, last_empty);
      last_empty[cls] = saved_empty_cap;
      if (c > 0) {
        slack_res_[f] += kern.res * static_cast<double>(c);
        slack_bw_[f] += kern.bw * c;
        fpga_load_[f] -= c;
        counts_[k][f] = 0;
      }
      if (done_ || aborted_) return;
    }
  }

  [[nodiscard]] double move_cost() const {
    return stab_ != nullptr ? stab_->move_cost : 0.0;
  }

  /// Undo record for one kernel's stability accounting.
  struct StabStep {
    int torn = 0;
    bool counted_group = false;
    std::size_t group = 0;
  };

  /// Charges kernel k's completed placement against the migration
  /// budgets. Returns false when a hard budget is exceeded — the caller
  /// must skip the subtree (and still call stab_exit to undo). No-op
  /// (always true) without stability, for an exempt kernel, or for a
  /// kernel with no reference row.
  bool stab_enter(std::size_t k, StabStep& step) {
    if (stab_ == nullptr) return true;
    const std::vector<int>& ref = stab_->reference[k];
    if (ref.empty()) return true;  // new arrival: nothing to preserve
    const std::size_t g =
        stab_->group_of.empty()
            ? 0
            : static_cast<std::size_t>(stab_->group_of[k]);
    if (stab_->exempt_group >= 0 &&
        g == static_cast<std::size_t>(stab_->exempt_group)) {
      return true;
    }
    int torn = 0;
    bool changed = false;
    for (std::size_t f = 0; f < fpgas_; ++f) {
      const int old_n = f < ref.size() ? ref[f] : 0;
      const int new_n = counts_[k][f];
      if (old_n != new_n) changed = true;
      if (old_n > new_n) torn += old_n - new_n;
    }
    for (std::size_t f = fpgas_; f < ref.size(); ++f) {
      // The pool shrank under the reference: those CUs are gone.
      if (ref[f] > 0) {
        changed = true;
        torn += ref[f];
      }
    }
    step.torn = torn;
    moves_ += torn;
    if (changed && group_changed_[g] == 0) {
      group_changed_[g] = 1;
      step.counted_group = true;
      step.group = g;
      ++disturbed_;
    }
    return (stab_->max_moves < 0 || moves_ <= stab_->max_moves) &&
           (stab_->max_disturbed < 0 || disturbed_ <= stab_->max_disturbed);
  }

  void stab_exit(const StabStep& step) {
    moves_ -= step.torn;
    if (step.counted_group) {
      group_changed_[step.group] = 0;
      --disturbed_;
    }
  }

  const Problem& p_;
  const std::vector<int>& totals_;
  PackingMode mode_;
  Budget& budget_;
  const StabilityOptions* stab_;
  std::size_t fpgas_;

  std::vector<std::size_t> order_;
  std::vector<std::vector<int>> counts_;
  std::vector<int> fpga_class_;
  std::vector<ResourceVec> slack_res_;
  std::vector<double> slack_bw_;
  std::vector<int> fpga_load_;

  double static_lb_ = 0.0;
  bool stop_on_static_lb_ = true;
  bool symmetric_ = true;
  double best_phi_ = std::numeric_limits<double>::infinity();
  double best_obj_ = std::numeric_limits<double>::infinity();
  int moves_ = 0;
  int disturbed_ = 0;
  int best_moves_ = 0;
  int best_disturbed_ = 0;
  std::vector<char> group_changed_;
  std::vector<std::vector<int>> best_counts_;
  bool found_ = false;
  bool done_ = false;
  bool aborted_ = false;
};

}  // namespace

int min_chunks(const Problem& problem, std::size_t k, int n) {
  MFA_ASSERT(k < problem.num_kernels());
  MFA_ASSERT(n >= 0);
  if (n == 0) return 0;
  // The roomiest device class bounds any chunk, so this stays a valid
  // (if looser) lower bound on mixed fleets.
  const int per_fpga = problem.max_cu_per_fpga(k);
  if (per_fpga <= 0) return problem.num_fpgas() + 1;  // unplaceable
  return (n + per_fpga - 1) / per_fpga;
}

double phi_lower_bound(const Problem& problem, std::size_t k, int n) {
  if (n <= 0) return 0.0;
  const int per_fpga = problem.max_cu_per_fpga(k);
  if (per_fpga <= 0) return std::numeric_limits<double>::infinity();
  // Most-unequal split: maxed-out chunks plus one remainder chunk is the
  // minimizer of the concave sum Σ n_i/(1+n_i) with parts ≤ per_fpga.
  // per_fpga is the roomiest class's fit, so every feasible chunk obeys
  // the part bound and the value remains a lower bound on mixed fleets.
  double phi = 0.0;
  int rem = n;
  while (rem >= per_fpga) {
    phi += phi_of(per_fpga);
    rem -= per_fpga;
  }
  if (rem > 0) phi += phi_of(rem);
  return phi;
}

PackingResult PackingSolver::pack(const std::vector<int>& totals,
                                  PackingMode mode, Budget& budget) const {
  return pack(totals, mode, budget, nullptr);
}

PackingResult PackingSolver::pack(const std::vector<int>& totals,
                                  PackingMode mode, Budget& budget,
                                  const StabilityOptions* stability) const {
  MFA_ASSERT(totals.size() == problem_->num_kernels());
  for (int n : totals) MFA_ASSERT_MSG(n >= 0, "negative CU total");
  if (stability != nullptr) {
    MFA_ASSERT_MSG(stability->reference.size() == totals.size(),
                   "stability reference not aligned to the kernel set");
    MFA_ASSERT_MSG(stability->group_of.empty() ||
                       stability->group_of.size() == totals.size(),
                   "stability group map not aligned to the kernel set");
  }
  Search search(*problem_, totals, mode, budget, stability);
  return search.run();
}

}  // namespace mfa::solver
