#include "solver/naive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace mfa::solver {
namespace {

using core::Allocation;
using core::Kernel;
using core::Problem;
using core::ResourceVec;

class NaiveSearch {
 public:
  NaiveSearch(const Problem& problem, Budget& budget)
      : p_(problem),
        budget_(budget),
        fpgas_(static_cast<std::size_t>(problem.num_fpgas())),
        current_(problem) {
    slack_res_.reserve(fpgas_);
    slack_bw_.reserve(fpgas_);
    for (std::size_t f = 0; f < fpgas_; ++f) {
      slack_res_.push_back(problem.cap(static_cast<int>(f)));
      slack_bw_.push_back(problem.bw_cap(static_cast<int>(f)));
    }
    // Cap each N_k at the count that already achieves the best II this
    // kernel could ever need; more CUs cannot reduce g (φ only grows).
    max_total_.resize(problem.num_kernels());
    for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
      max_total_[k] = problem.max_cu_total(k);
    }
  }

  std::optional<Allocation> run() {
    place_kernel(0, 0.0, 0.0);
    if (!best_) return std::nullopt;
    return best_;
  }

  [[nodiscard]] bool aborted() const { return aborted_; }
  [[nodiscard]] double best_goal() const { return best_goal_; }

 private:
  // NOLINTNEXTLINE(misc-no-recursion)
  void place_kernel(std::size_t k, double partial_ii, double partial_phi) {
    if (aborted_) return;
    if (k == p_.num_kernels()) {
      const double g = p_.alpha * partial_ii + p_.beta * partial_phi;
      if (g < best_goal_ - 1e-12) {
        best_goal_ = g;
        best_ = current_;
      }
      return;
    }
    // Bound: II and φ over the kernels already fixed can only grow.
    if (p_.alpha * partial_ii + p_.beta * std::max(partial_phi, 0.5) >=
        best_goal_ - 1e-12) {
      return;
    }
    choose_counts(k, 0, 0, 0.0, partial_ii, partial_phi);
  }

  // NOLINTNEXTLINE(misc-no-recursion)
  void choose_counts(std::size_t k, std::size_t f, int placed, double phi_k,
                     double partial_ii, double partial_phi) {
    if (aborted_) return;
    if (!budget_.tick()) {
      aborted_ = true;
      return;
    }
    if (f == fpgas_) {
      if (placed < 1 || placed > max_total_[k]) return;  // eq. 8 / cap
      const double et = p_.app.kernels[k].wcet_ms / placed;
      place_kernel(k + 1, std::max(partial_ii, et),
                   std::max(partial_phi, phi_k));
      return;
    }
    const Kernel& kern = p_.app.kernels[k];
    int cmax = kern.res.max_multiples(slack_res_[f],
                                      max_total_[k] - placed);
    if (kern.bw > 0.0) {
      cmax = std::min(cmax,
                      static_cast<int>(std::floor(
                          slack_bw_[f] * (1.0 + 1e-12) / kern.bw + 1e-9)));
    }
    for (int c = 0; c <= cmax; ++c) {
      if (c > 0) {
        slack_res_[f] -= kern.res * static_cast<double>(c);
        slack_bw_[f] -= kern.bw * c;
        current_.set_cu(k, static_cast<int>(f), c);
      }
      choose_counts(k, f + 1, placed + c,
                    phi_k + static_cast<double>(c) / (1.0 + c), partial_ii,
                    partial_phi);
      if (c > 0) {
        slack_res_[f] += kern.res * static_cast<double>(c);
        slack_bw_[f] += kern.bw * c;
        current_.set_cu(k, static_cast<int>(f), 0);
      }
      if (aborted_) return;
    }
  }

  const Problem& p_;
  Budget& budget_;
  std::size_t fpgas_;

  Allocation current_;
  std::vector<ResourceVec> slack_res_;
  std::vector<double> slack_bw_;
  std::vector<int> max_total_;

  double best_goal_ = std::numeric_limits<double>::infinity();
  std::optional<Allocation> best_;
  bool aborted_ = false;
};

}  // namespace

StatusOr<NaiveResult> NaiveMinlp::solve(const Problem& problem) {
  const Status valid = problem.validate();
  if (!valid.is_ok()) return valid;

  Budget& budget = shared_ != nullptr ? *shared_ : budget_;
  // A shared budget may arrive pre-charged by other solvers; report only
  // the nodes this solve spent.
  const std::int64_t nodes_before = budget.nodes_used();
  NaiveSearch search(problem, budget);
  std::optional<Allocation> best = search.run();
  if (!best) {
    if (search.aborted()) {
      return Status{Code::kLimit, "budget exhausted before a first solution"};
    }
    return Status{Code::kInfeasible, "no feasible allocation exists"};
  }
  NaiveResult result{std::move(*best), search.best_goal(), !search.aborted(),
                     budget.nodes_used() - nodes_before};
  return result;
}

}  // namespace mfa::solver
