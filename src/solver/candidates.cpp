#include "solver/candidates.hpp"

#include <algorithm>
#include <cmath>

namespace mfa::solver {

std::vector<double> candidate_iis(const core::Problem& problem) {
  // Nothing below this is achievable even with every FPGA dedicated to
  // the slowest kernel.
  double floor_ii = 0.0;
  double ceil_ii = 0.0;
  for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
    const double wcet = problem.app.kernels[k].wcet_ms;
    const int max_total = problem.max_cu_total(k);
    if (max_total >= 1) floor_ii = std::max(floor_ii, wcet / max_total);
    ceil_ii = std::max(ceil_ii, wcet);
  }

  std::vector<double> values;
  for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
    const double wcet = problem.app.kernels[k].wcet_ms;
    const int max_total = std::max(problem.max_cu_total(k), 1);
    for (int m = 1; m <= max_total; ++m) {
      const double t = wcet / m;
      if (t >= floor_ii * (1.0 - 1e-12) && t <= ceil_ii * (1.0 + 1e-12)) {
        values.push_back(t);
      }
    }
  }
  std::sort(values.begin(), values.end());
  // Relative-tolerance dedup: WCET ratios can collide inexactly.
  std::vector<double> unique;
  for (double v : values) {
    if (unique.empty() || v > unique.back() * (1.0 + 1e-12)) {
      unique.push_back(v);
    }
  }
  return unique;
}

int needed_cus(double wcet_ms, double target_ii) {
  MFA_ASSERT(wcet_ms > 0.0 && target_ii > 0.0);
  // Relative guard: when target_ii is exactly WCET/m the quotient may
  // land at m ± ulp; snap to the intended integer.
  const double q = wcet_ms / target_ii;
  const int n = static_cast<int>(std::ceil(q * (1.0 - 1e-9)));
  return std::max(n, 1);
}

std::vector<int> minimal_totals(const core::Problem& problem,
                                double target_ii) {
  std::vector<int> totals(problem.num_kernels());
  for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
    totals[k] = needed_cus(problem.app.kernels[k].wcet_ms, target_ii);
  }
  return totals;
}

}  // namespace mfa::solver
