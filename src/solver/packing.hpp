// Exact placement of integer CU counts onto the platform's FPGAs
// (identical or mixed-class).
//
// Given the totals N_k, this solves the inner problem of the MINLP: find
// n_{k,f} with Σ_f n_{k,f} = N_k respecting the per-FPGA resource and
// bandwidth caps (eqs. 9–10, per device class on heterogeneous
// platforms), either as a pure feasibility question (MINLP with β = 0 —
// the placement does not affect II) or minimizing the spreading
// objective φ = max_k φ_k (the β > 0 case).
//
// The search is depth-first branch-and-bound over per-kernel count
// vectors with three accelerations:
//  1. within-class symmetry breaking — FPGAs of the *same device class*
//     still empty when a kernel is placed are interchangeable, so counts
//     assigned to them are forced non-increasing (class by class; FPGAs
//     of different classes are never conflated);
//  2. capacity pruning — remaining CUs of the kernel must fit in the
//     remaining FPGAs' aggregate fit;
//  3. spreading pruning — a partial φ_k plus the concavity bound
//     rem/(1+rem) for the unplaced remainder cannot already exceed the
//     incumbent, and the global optimum cannot beat the static
//     chunk-count lower bound (search stops once it is attained).
#pragma once

#include <optional>
#include <vector>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "solver/budget.hpp"

namespace mfa::solver {

/// What the packing search optimizes.
enum class PackingMode {
  kFeasibility,    ///< stop at the first feasible placement
  kMinSpreading,   ///< minimize φ = max_k φ_k over feasible placements
};

/// Migration awareness for re-packs against an incumbent placement
/// (ROADMAP item 2): the online service must not shuffle CUs across the
/// whole fleet for a tiny goal gain. A kernel *moves* a CU when its
/// reference row had the CU on an FPGA where the new placement does not
/// (CUs torn down; newly added CUs are free). A *group* — in the service,
/// one pipeline — is disturbed when any of its kernels' rows changed.
///
/// Kernels with an empty reference row (new arrivals) and kernels of
/// `exempt_group` (the event's own target) are never counted. With all
/// budgets < 0 and move_cost = 0 the search is bit-identical to the
/// unconstrained one.
struct StabilityOptions {
  /// Incumbent placement, aligned to the problem's kernel order:
  /// reference[k][f] = CUs of kernel k on FPGA f before the event. An
  /// empty row exempts the kernel (no incumbent placement). Rows may be
  /// shorter/longer than the current fleet (the pool was resized);
  /// missing entries read as 0, entries beyond the fleet count as torn.
  std::vector<std::vector<int>> reference;
  /// Kernel → group id (the service uses the pipeline index). Empty
  /// means every kernel forms group 0.
  std::vector<int> group_of;
  /// Group whose kernels are never counted (the event's target); -1
  /// disables the exemption.
  int exempt_group = -1;
  /// Hard cap on CUs torn down across all counted kernels (-1 = off).
  int max_moves = -1;
  /// Hard cap on disturbed groups (-1 = off).
  int max_disturbed = -1;
  /// Soft migration cost: kMinSpreading minimizes φ + move_cost · moves
  /// instead of φ alone (0 keeps the pure-φ objective).
  double move_cost = 0.0;
  /// Deterministic node budget callers use for stability re-packs (the
  /// service must never let a repack's cost depend on wall clock).
  std::int64_t repack_nodes = 200'000;

  /// True when any constraint or cost term is active.
  [[nodiscard]] bool constrained() const {
    return max_moves >= 0 || max_disturbed >= 0 || move_cost > 0.0;
  }
};

struct PackingResult {
  bool feasible = false;        ///< a placement satisfying eqs. 9–10 exists
  bool proved_optimal = false;  ///< search completed within budget
  double phi = 0.0;             ///< φ of the returned placement
  int cus_moved = 0;   ///< CUs torn down vs the stability reference
  int disturbed = 0;   ///< groups disturbed vs the stability reference
  std::optional<core::Allocation> allocation;
};

/// Smallest number of FPGAs kernel k alone must span to host `n` CUs
/// under the problem's effective caps (capacity-forced chunk count).
int min_chunks(const core::Problem& problem, std::size_t k, int n);

/// Lower bound on φ_k for placing n CUs of kernel k, from the
/// most-unequal split across min_chunks FPGAs (concavity of x/(1+x)).
double phi_lower_bound(const core::Problem& problem, std::size_t k, int n);

class PackingSolver {
 public:
  explicit PackingSolver(const core::Problem& problem) : problem_(&problem) {}

  /// Packs the given totals. `totals[k]` is N_k (must be ≥ 0; a zero
  /// total is allowed here so callers can probe partial configurations,
  /// though eq. 8 requires ≥ 1 for full solutions).
  [[nodiscard]] PackingResult pack(const std::vector<int>& totals,
                                   PackingMode mode, Budget& budget) const;

  /// Migration-aware pack: same search, with torn-CU/disturbed-group
  /// accounting against `stability->reference` and its budgets enforced
  /// as hard constraints (see StabilityOptions). A null `stability` is
  /// exactly the unconstrained overload.
  [[nodiscard]] PackingResult pack(const std::vector<int>& totals,
                                   PackingMode mode, Budget& budget,
                                   const StabilityOptions* stability) const;

 private:
  const core::Problem* problem_;
};

}  // namespace mfa::solver
