// Exact placement of integer CU counts onto the platform's FPGAs
// (identical or mixed-class).
//
// Given the totals N_k, this solves the inner problem of the MINLP: find
// n_{k,f} with Σ_f n_{k,f} = N_k respecting the per-FPGA resource and
// bandwidth caps (eqs. 9–10, per device class on heterogeneous
// platforms), either as a pure feasibility question (MINLP with β = 0 —
// the placement does not affect II) or minimizing the spreading
// objective φ = max_k φ_k (the β > 0 case).
//
// The search is depth-first branch-and-bound over per-kernel count
// vectors with three accelerations:
//  1. within-class symmetry breaking — FPGAs of the *same device class*
//     still empty when a kernel is placed are interchangeable, so counts
//     assigned to them are forced non-increasing (class by class; FPGAs
//     of different classes are never conflated);
//  2. capacity pruning — remaining CUs of the kernel must fit in the
//     remaining FPGAs' aggregate fit;
//  3. spreading pruning — a partial φ_k plus the concavity bound
//     rem/(1+rem) for the unplaced remainder cannot already exceed the
//     incumbent, and the global optimum cannot beat the static
//     chunk-count lower bound (search stops once it is attained).
#pragma once

#include <optional>
#include <vector>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "solver/budget.hpp"

namespace mfa::solver {

/// What the packing search optimizes.
enum class PackingMode {
  kFeasibility,    ///< stop at the first feasible placement
  kMinSpreading,   ///< minimize φ = max_k φ_k over feasible placements
};

struct PackingResult {
  bool feasible = false;        ///< a placement satisfying eqs. 9–10 exists
  bool proved_optimal = false;  ///< search completed within budget
  double phi = 0.0;             ///< φ of the returned placement
  std::optional<core::Allocation> allocation;
};

/// Smallest number of FPGAs kernel k alone must span to host `n` CUs
/// under the problem's effective caps (capacity-forced chunk count).
int min_chunks(const core::Problem& problem, std::size_t k, int n);

/// Lower bound on φ_k for placing n CUs of kernel k, from the
/// most-unequal split across min_chunks FPGAs (concavity of x/(1+x)).
double phi_lower_bound(const core::Problem& problem, std::size_t k, int n);

class PackingSolver {
 public:
  explicit PackingSolver(const core::Problem& problem) : problem_(&problem) {}

  /// Packs the given totals. `totals[k]` is N_k (must be ≥ 0; a zero
  /// total is allowed here so callers can probe partial configurations,
  /// though eq. 8 requires ≥ 1 for full solutions).
  [[nodiscard]] PackingResult pack(const std::vector<int>& totals,
                                   PackingMode mode, Budget& budget) const;

 private:
  const core::Problem* problem_;
};

}  // namespace mfa::solver
