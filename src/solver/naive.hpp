// Plain branch-and-bound over the raw n_{k,f} variables.
//
// This is the test oracle: a direct, transformation-free search of the
// original MINLP with only two self-evidently sound prunings (per-FPGA
// capacity, and a partial-objective bound that uses nothing but already
// fixed kernels). It carries none of ExactSolver's structural arguments
// or symmetry breaking, so agreement between the two on randomized
// instances validates those arguments. Exponential — use on instances
// with a handful of kernels/FPGAs only.
#pragma once

#include <cstdint>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "solver/budget.hpp"
#include "support/status.hpp"

namespace mfa::solver {

struct NaiveResult {
  core::Allocation allocation;
  double goal = 0.0;
  bool proved_optimal = false;
  std::int64_t nodes = 0;
};

class NaiveMinlp {
 public:
  explicit NaiveMinlp(Budget budget = Budget::nodes_only(20'000'000))
      : budget_(budget) {}

  /// Runs against a budget owned elsewhere — e.g. one shared (and
  /// possibly expire()d) by the runtime portfolio. The pointee must
  /// outlive the solver.
  explicit NaiveMinlp(Budget* shared) : shared_(shared) {}

  [[nodiscard]] StatusOr<NaiveResult> solve(const core::Problem& problem);

 private:
  Budget budget_;
  Budget* shared_ = nullptr;
};

}  // namespace mfa::solver
