// Dense factorizations used by the Newton steps of the GP solver.
//
// Cholesky (LLᵀ) with optional diagonal regularization covers the
// symmetric positive-definite Newton systems; LU with partial pivoting is
// the general fallback and the reference used in tests.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace mfa::linalg {

/// Cholesky factorization A = L·Lᵀ of a symmetric positive-definite matrix.
///
/// `factor()` returns false when a non-positive pivot is met (A not PD
/// within tolerance); the object is then unusable. With `regularize > 0`
/// the factorization is of A + regularize·I, which the caller uses to keep
/// near-singular Newton systems solvable.
class Cholesky {
 public:
  /// Attempts the factorization; returns std::nullopt if A is not
  /// (numerically) positive definite.
  static std::optional<Cholesky> factor(const Matrix& a,
                                        double regularize = 0.0);

  /// Solves A·x = b using the stored factors.
  [[nodiscard]] Vector solve(const Vector& b) const;

  [[nodiscard]] std::size_t dim() const { return l_.rows(); }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;  // lower triangular factor
};

/// LU factorization with partial pivoting, P·A = L·U.
class Lu {
 public:
  /// Attempts the factorization; returns std::nullopt for (numerically)
  /// singular matrices.
  static std::optional<Lu> factor(const Matrix& a);

  /// Solves A·x = b using the stored factors.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Determinant of A (product of pivots with permutation sign).
  [[nodiscard]] double determinant() const;

  [[nodiscard]] std::size_t dim() const { return lu_.rows(); }

 private:
  Lu(Matrix lu, std::vector<std::size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), sign_(sign) {}
  Matrix lu_;                       // packed L (unit diag) and U
  std::vector<std::size_t> perm_;  // row permutation
  int sign_;                       // permutation parity
};

/// Solves the symmetric positive-semidefinite system A·x = b, escalating
/// the diagonal regularization until Cholesky succeeds. Intended for
/// Newton systems where A is PSD by construction but may be rank
/// deficient. Returns std::nullopt only if even strong regularization
/// fails (pathological input).
std::optional<Vector> solve_spd(const Matrix& a, const Vector& b);

/// Scratch buffers for solve_spd_reuse(); grown on first use, then reused.
struct SpdWorkspace {
  Matrix l;  ///< Cholesky factor storage
  Vector y;  ///< forward-substitution intermediate
};

/// Allocation-free variant of solve_spd(): factors into ws.l and writes
/// the solution into x (resized once), so a Newton loop calling it every
/// iteration performs no steady-state allocation. Returns false only when
/// even strong regularization fails.
bool solve_spd_reuse(const Matrix& a, const Vector& b, SpdWorkspace& ws,
                     Vector& x);

}  // namespace mfa::linalg
