// Dense row-major matrix and vector types for the GP interior-point solver.
//
// The problems solved here are small (tens of variables), so the design
// favours clarity and checkability over cache blocking: bounds-asserted
// element access, value-semantic containers, no expression templates.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "support/assert.hpp"

namespace mfa::linalg {

/// Dense real vector with bounds-asserted access.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) {
    MFA_ASSERT(i < data_.size());
    return data_[i];
  }
  double operator[](std::size_t i) const {
    MFA_ASSERT(i < data_.size());
    return data_[i];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double s);

  friend Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
  friend Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
  friend Vector operator*(Vector lhs, double s) { return lhs *= s; }
  friend Vector operator*(double s, Vector rhs) { return rhs *= s; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  [[nodiscard]] auto begin() const { return data_.begin(); }
  [[nodiscard]] auto end() const { return data_.end(); }

 private:
  std::vector<double> data_;
};

/// Euclidean dot product; operands must have equal size.
double dot(const Vector& a, const Vector& b);

/// Euclidean (L2) norm.
double norm2(const Vector& v);

/// Maximum absolute entry; 0 for the empty vector.
double norm_inf(const Vector& v);

/// Dense row-major matrix with bounds-asserted access.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested braces; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// n-by-n identity.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    MFA_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    MFA_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }

  /// Matrix-vector product; x.size() must equal cols().
  [[nodiscard]] Vector mul(const Vector& x) const;

  /// Transposed matrix-vector product (Aᵀx); x.size() must equal rows().
  [[nodiscard]] Vector mul_transposed(const Vector& x) const;

  /// Matrix-matrix product; this->cols() must equal rhs.rows().
  [[nodiscard]] Matrix mul(const Matrix& rhs) const;

  [[nodiscard]] Matrix transposed() const;

  /// Largest |a_ij|; 0 for an empty matrix.
  [[nodiscard]] double norm_inf() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace mfa::linalg
