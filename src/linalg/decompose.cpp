#include "linalg/decompose.hpp"

#include <cmath>
#include <numeric>

namespace mfa::linalg {
namespace {

/// Cholesky factorization of a + regularize·I into the caller's l (which
/// must already be n×n). Only the lower triangle of l is written or read.
bool factor_into(const Matrix& a, double regularize, Matrix& l) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + regularize;
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0)) return false;  // also rejects NaN
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / l(j, j);
    }
  }
  return true;
}

}  // namespace

std::optional<Cholesky> Cholesky::factor(const Matrix& a, double regularize) {
  MFA_ASSERT(a.rows() == a.cols());
  Matrix l(a.rows(), a.rows());
  if (!factor_into(a, regularize, l)) return std::nullopt;
  return Cholesky(std::move(l));
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = dim();
  MFA_ASSERT(b.size() == n);
  // Forward substitution L·y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
    y[i] = acc / l_(i, i);
  }
  // Backward substitution Lᵀ·x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

std::optional<Lu> Lu::factor(const Matrix& a) {
  MFA_ASSERT(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  int sign = 1;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining entry to the diagonal.
    std::size_t pivot = col;
    double best = std::fabs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(lu(r, col)) > best) {
        best = std::fabs(lu(r, col));
        pivot = r;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) return std::nullopt;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu(col, c), lu(pivot, c));
      std::swap(perm[col], perm[pivot]);
      sign = -sign;
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      lu(r, col) /= lu(col, col);
      const double m = lu(r, col);
      if (m == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c) lu(r, c) -= m * lu(col, c);
    }
  }
  return Lu(std::move(lu), std::move(perm), sign);
}

Vector Lu::solve(const Vector& b) const {
  const std::size_t n = dim();
  MFA_ASSERT(b.size() == n);
  // Apply permutation, then L (unit lower) forward substitution.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t k = 0; k < i; ++k) acc -= lu_(i, k) * y[k];
    y[i] = acc;
  }
  // U backward substitution.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= lu_(ii, k) * x[k];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

double Lu::determinant() const {
  double det = sign_;
  for (std::size_t i = 0; i < dim(); ++i) det *= lu_(i, i);
  return det;
}

std::optional<Vector> solve_spd(const Matrix& a, const Vector& b) {
  MFA_ASSERT(a.rows() == a.cols() && a.rows() == b.size());
  SpdWorkspace ws;
  Vector x;
  if (!solve_spd_reuse(a, b, ws, x)) return std::nullopt;
  return x;
}

bool solve_spd_reuse(const Matrix& a, const Vector& b, SpdWorkspace& ws,
                     Vector& x) {
  MFA_ASSERT(a.rows() == a.cols() && a.rows() == b.size());
  const std::size_t n = a.rows();
  if (ws.l.rows() != n || ws.l.cols() != n) ws.l = Matrix(n, n);
  if (ws.y.size() != n) ws.y = Vector(n);
  if (x.size() != n) x = Vector(n);
  // Scale regularization with the matrix magnitude so conditioning, not
  // absolute size, decides when it kicks in.
  const double scale = std::max(a.norm_inf(), 1.0);
  double reg = 0.0;
  for (int attempt = 0; attempt < 12; ++attempt) {
    if (!factor_into(a, reg, ws.l)) {
      reg = (reg == 0.0) ? 1e-12 * scale : reg * 100.0;
      continue;
    }
    const Matrix& l = ws.l;
    // Forward substitution L·y = b.
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b[i];
      for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * ws.y[k];
      ws.y[i] = acc / l(i, i);
    }
    // Backward substitution Lᵀ·x = y.
    for (std::size_t ii = n; ii-- > 0;) {
      double acc = ws.y[ii];
      for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
      x[ii] = acc / l(ii, ii);
    }
    return true;
  }
  return false;
}

}  // namespace mfa::linalg
