#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace mfa::linalg {

Vector& Vector::operator+=(const Vector& rhs) {
  MFA_ASSERT(size() == rhs.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  MFA_ASSERT(size() == rhs.size());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

double dot(const Vector& a, const Vector& b) {
  MFA_ASSERT(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    MFA_ASSERT_MSG(row.size() == cols_, "ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  MFA_ASSERT(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Vector Matrix::mul(const Vector& x) const {
  MFA_ASSERT(x.size() == cols_);
  Vector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

Vector Matrix::mul_transposed(const Vector& x) const {
  MFA_ASSERT(x.size() == rows_);
  Vector y(cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += (*this)(r, c) * xr;
  }
  return y;
}

Matrix Matrix::mul(const Matrix& rhs) const {
  MFA_ASSERT(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double Matrix::norm_inf() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace mfa::linalg
