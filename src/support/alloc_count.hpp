// Opt-in runtime allocation counting for the warm event path.
//
// The static half of the zero-allocation guarantee is mfa_lint's
// warm-path-alloc rule: no in-tree call chain from an MFA_WARM_PATH
// root may reach heap allocation *lexically*. This header is the
// dynamic half: when the counting interposer TU
// (support/alloc_interpose.cpp) is linked into a binary — CMake option
// MFA_COUNT_ALLOC adds it to the bench and test executables — every
// global `operator new` (plain, array, nothrow and aligned forms) bumps
// a thread-local counter, and a WarmAllocScope placed around the warm
// deltas in AllocServer::process() reads off exactly how many
// allocations the event's apply performed. `service_churn --check`
// gates that number at zero.
//
// Without the interposer the counter never moves: scopes report zero
// allocations and alloc_counting_linked() returns false, so gates know
// to skip (with a notice) instead of vacuously passing. The counter is
// thread-local, so a scope only observes its own thread — which is the
// point: the dispatcher's warm path must be allocation-free regardless
// of what other threads do.
#pragma once

#include <cstdint>

namespace mfa {

/// True when the counting `operator new` interposer TU is linked into
/// this binary (set during its static initialization).
[[nodiscard]] bool alloc_counting_linked();

/// Number of global operator-new calls this thread has performed since
/// it started (0 forever when the interposer is not linked).
[[nodiscard]] std::uint64_t thread_alloc_count();

/// RAII window over thread_alloc_count(): allocations() is the number
/// of heap allocations the current thread performed since construction.
class WarmAllocScope {
 public:
  WarmAllocScope() : start_(thread_alloc_count()) {}

  /// Allocations on this thread since the scope opened.
  [[nodiscard]] std::uint64_t allocations() const {
    return thread_alloc_count() - start_;
  }

 private:
  std::uint64_t start_;
};

namespace detail {

/// Called by the interposer TU: once from a static initializer (flips
/// alloc_counting_linked) and once per operator-new call.
void note_interposer_linked();
void count_allocation();

}  // namespace detail

}  // namespace mfa
