#include "support/alloc_count.hpp"

#include <atomic>

namespace mfa {
namespace {

// Constant-initialized (no dynamic initializer), so the interposer's
// static-init call and allocations during other TUs' dynamic init are
// both safe regardless of initialization order.
std::atomic<bool> g_interposer_linked{false};

// Plain thread-local integer: zero-initialized per thread, no guard
// variable, safe to touch from inside operator new.
thread_local std::uint64_t t_alloc_count = 0;

}  // namespace

bool alloc_counting_linked() {
  return g_interposer_linked.load(std::memory_order_relaxed);
}

std::uint64_t thread_alloc_count() { return t_alloc_count; }

namespace detail {

void note_interposer_linked() {
  g_interposer_linked.store(true, std::memory_order_relaxed);
}

void count_allocation() { ++t_alloc_count; }

}  // namespace detail

}  // namespace mfa
