// Clang Thread Safety Analysis attribute macros, plus the repo's own
// static-contract markers.
//
// Under clang, -Wthread-safety turns GUARDED_BY/REQUIRES/ACQUIRE/...
// into *compile-time* lock-discipline checking: accessing a
// MFA_GUARDED_BY(mu) member without holding `mu`, or calling a
// MFA_REQUIRES(mu) function from an unlocked context, is a build error
// in CI (-Werror=thread-safety). Under every other compiler the macros
// expand to nothing, so gcc builds are unaffected.
//
// The annotations only bite on capability-annotated types: use
// mfa::Mutex / mfa::LockGuard / mfa::CondVar (support/mutex.hpp), never
// raw std::mutex (mfa_lint rule mutex-hygiene enforces this outside the
// wrapper itself).
//
// MFA_WARM_PATH is *not* a compiler attribute: it marks functions on
// the steady-state event path (AllocServer numeric-event dispatch →
// CompositeBuilder coefficient/RHS deltas → CompiledGp::patch_* →
// batched kernel lane loops) that must not allocate. tools/mfa_lint
// walks the lexical call graph from every MFA_WARM_PATH function and
// rejects reachable allocating calls (rule warm-path-alloc) — the
// static face of ROADMAP item 1's zero-allocation gate, next to the
// runtime `service_churn --check` gate.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define MFA_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define MFA_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Declares a type to be a capability ("mutex") the analysis tracks.
#define MFA_CAPABILITY(x) MFA_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type that acquires on construction / releases on
/// destruction (LockGuard).
#define MFA_SCOPED_CAPABILITY MFA_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define MFA_GUARDED_BY(x) MFA_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself
/// may be read freely).
#define MFA_PT_GUARDED_BY(x) MFA_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering edges (deadlock detection).
#define MFA_ACQUIRED_BEFORE(...) \
  MFA_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define MFA_ACQUIRED_AFTER(...) \
  MFA_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function precondition: the caller must hold the capabilities
/// (exclusively / shared).
#define MFA_REQUIRES(...) \
  MFA_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define MFA_REQUIRES_SHARED(...) \
  MFA_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires/releases the capabilities (must not already hold /
/// must hold them).
#define MFA_ACQUIRE(...) \
  MFA_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define MFA_ACQUIRE_SHARED(...) \
  MFA_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define MFA_RELEASE(...) \
  MFA_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define MFA_RELEASE_SHARED(...) \
  MFA_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire and reports success as `ret`.
#define MFA_TRY_ACQUIRE(...) \
  MFA_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function must be called *without* the capabilities held (it acquires
/// them itself — the public-API side of a REQUIRES helper).
#define MFA_EXCLUDES(...) MFA_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by analysis).
#define MFA_ASSERT_CAPABILITY(x) \
  MFA_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define MFA_RETURN_CAPABILITY(x) MFA_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch. Allowed only at documented callback boundaries — every
/// use must carry a comment explaining why the analysis cannot see the
/// invariant (mfa_lint does not count these, but reviewers do).
#define MFA_NO_THREAD_SAFETY_ANALYSIS \
  MFA_THREAD_ANNOTATION__(no_thread_safety_analysis)

/// Marks a function as part of the steady-state (warm) event path: no
/// allocation may be reachable from it through the in-tree call graph.
/// Checked by tools/mfa_lint (rule warm-path-alloc), not by the
/// compiler. There is an `allow(...)`-comment suppression syntax for
/// deliberate cold branches, but src/ must stay suppression-free for
/// this rule (CI runs mfa_lint --forbid-suppression warm-path-alloc):
/// restructure so sizing happens at setup instead — see
/// gp::BatchedModel::ensure_workspace for the pattern. The runtime
/// half of the same contract is support/alloc_count.hpp's counting
/// interposer, gated by bench/service_churn --check.
#define MFA_WARM_PATH
