// Lightweight status / status-or types used across module boundaries.
//
// The library reports *expected* failures (infeasible problem, malformed
// input, iteration limit) by value rather than by exception, so callers in
// exploration loops can branch on them cheaply. See DESIGN.md §6.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "support/assert.hpp"

namespace mfa {

/// Outcome categories shared by solvers and parsers.
enum class Code {
  kOk,           ///< Success.
  kInfeasible,   ///< The problem instance admits no feasible solution.
  kLimit,        ///< A node/iteration/time budget was exhausted.
  kInvalid,      ///< Malformed input (bad file, inconsistent problem).
  kNumeric,      ///< Numerical failure (singular system, no convergence).
};

/// Human-readable name of a status code (stable, for logs and tests).
const char* code_name(Code code);

/// A status code plus an optional diagnostic message.
class Status {
 public:
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == Code::kOk; }
  [[nodiscard]] Code code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>" for diagnostics.
  [[nodiscard]] std::string to_string() const;

 private:
  Code code_;
  std::string message_;
};

/// A value or the status explaining its absence.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}           // NOLINT implicit
  StatusOr(Status status) : status_(std::move(status)) {    // NOLINT implicit
    MFA_ASSERT_MSG(!status_.is_ok(), "StatusOr from ok status needs a value");
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    MFA_ASSERT_MSG(value_.has_value(), status_.message().c_str());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    MFA_ASSERT_MSG(value_.has_value(), status_.message().c_str());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    MFA_ASSERT_MSG(value_.has_value(), status_.message().c_str());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace mfa
