#include "support/status.hpp"

namespace mfa {

const char* code_name(Code code) {
  switch (code) {
    case Code::kOk:
      return "ok";
    case Code::kInfeasible:
      return "infeasible";
    case Code::kLimit:
      return "limit";
    case Code::kInvalid:
      return "invalid";
    case Code::kNumeric:
      return "numeric";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mfa
