// Capability-annotated mutex/lock/condvar wrappers.
//
// These are the only synchronization primitives src/ is allowed to use
// directly (mfa_lint rule mutex-hygiene bans raw std::mutex &
// std::lock_guard elsewhere): clang's Thread Safety Analysis only
// checks lock discipline on types that carry capability attributes, so
// routing every mutex through mfa::Mutex is what makes MFA_GUARDED_BY
// membership annotations enforceable at compile time.
//
// The wrappers are zero-cost shims over the std primitives, with one
// deliberate substitution: CondVar is a std::condition_variable_any
// waiting on the Mutex itself rather than a std::unique_lock. That
// keeps the wait annotated (MFA_REQUIRES(m)) and keeps call sites on
// the explicit `while (!pred) cv.wait(m);` shape, which the analysis
// can follow — a predicate lambda would be analyzed as a separate
// function and spuriously flagged. Events and solver tasks here are
// coarse (each triggers a solve), so condition_variable_any's extra
// internal mutex is noise.
#pragma once

#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace mfa {

/// std::mutex with the capability attribute the analysis tracks.
class MFA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MFA_ACQUIRE() { m_.lock(); }
  void unlock() MFA_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() MFA_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  std::mutex m_;
};

/// RAII scoped lock over mfa::Mutex (the std::lock_guard shape, carrying
/// the scoped-capability attribute).
class MFA_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) MFA_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() MFA_RELEASE() { m_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable waiting directly on mfa::Mutex. Use the explicit
/// predicate-loop shape under a LockGuard:
///
///   LockGuard lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `m`, blocks, and re-acquires before returning.
  /// The analysis treats the capability as held throughout (the wake-up
  /// re-establishes it before user code runs again).
  void wait(Mutex& m) MFA_REQUIRES(m) { cv_.wait(m); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace mfa
