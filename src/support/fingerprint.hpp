// 128-bit rolling fingerprints, the cache-key primitive of the library.
//
// A Fingerprint is two independently mixed 64-bit lanes over the exact
// bit patterns of the numbers that determine a computation's result.
// Collisions would silently alias two different computations (a cached
// relaxation, a compiled GP model), so the lanes use unrelated mixing
// functions: both would have to collide simultaneously for a false cache
// hit, which is negligible at any realistic cache population.
//
// Domain-specific hashing lives with the domains: core/fingerprint.hpp
// fingerprints allocation problems, gp/problem.hpp fingerprints GP model
// *structure*. This header owns only the primitive, so gp/ can produce
// fingerprints without depending on core/.
#pragma once

#include <cstdint>
#include <cstring>

namespace mfa {

struct Fingerprint {
  std::uint64_t hi = 0x9e3779b97f4a7c15ull;
  std::uint64_t lo = 0xcbf29ce484222325ull;  // FNV-1a offset basis

  void mix(std::uint64_t v) {
    // Lane lo: FNV-1a on 64-bit words. Lane hi: xor-rotate-multiply with
    // a golden-ratio pre-scramble (splitmix-style), independent of lo.
    lo = (lo ^ v) * 0x00000100000001b3ull;  // FNV prime
    std::uint64_t x = v * 0x9e3779b97f4a7c15ull;
    x ^= x >> 29;
    hi = (hi ^ x) * 0xbf58476d1ce4e5b9ull;
    hi ^= hi >> 32;
  }

  void mix(double d) {
    if (d == 0.0) d = 0.0;  // canonicalize -0.0
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }
};

}  // namespace mfa
