// Counting replacements for the global allocation functions.
//
// NOT part of libmfa: CMake links this TU directly into bench and test
// executables when MFA_COUNT_ALLOC is ON (see support/alloc_count.hpp
// for the contract). Replacing `operator new` must happen at the final
// link, and must never leak into consumers of the library.
//
// Every form forwards to malloc — posix_memalign for the over-aligned
// overloads, so all deletes can be plain free() — and bumps the
// thread-local counter in support/alloc_count.cpp. The replacements are
// deliberately boring: same failure semantics as the defaults
// (bad_alloc on exhaustion, null for nothrow), no headers, no size
// stashing.
#include <cstdlib>
#include <new>

#include "support/alloc_count.hpp"

namespace {

// Flips mfa::alloc_counting_linked() during static initialization so
// runtime gates can tell "zero allocations" from "nobody was counting".
const bool g_interposer_registered = [] {
  mfa::detail::note_interposer_linked();
  return true;
}();

void* counted_alloc(std::size_t size) {
  mfa::detail::count_allocation();
  // Zero-size allocations must still return unique pointers.
  return std::malloc(size > 0 ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  mfa::detail::count_allocation();
  void* p = nullptr;
  std::size_t a = static_cast<std::size_t>(align);
  if (a < sizeof(void*)) a = sizeof(void*);  // posix_memalign minimum
  if (posix_memalign(&p, a, size > 0 ? size : a) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
