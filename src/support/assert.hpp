// Internal invariant checking for the mfalloc library.
//
// MFA_ASSERT guards *programming errors* (broken invariants, out-of-range
// indices). It is active in all build types: an allocation tool that
// silently returns a constraint-violating placement is worse than one that
// aborts. Expected runtime failures (infeasible problems, parse errors)
// are reported through Status/optional return values instead, never here.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mfa::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "mfalloc assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace mfa::detail

#define MFA_ASSERT(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                          \
          : ::mfa::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define MFA_ASSERT_MSG(expr, msg)                                         \
  ((expr) ? static_cast<void>(0)                                          \
          : ::mfa::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)))
