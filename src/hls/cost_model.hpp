// Analytical HLS cost model — the characterization substitute.
//
// The paper characterizes each kernel by synthesizing CU variants with
// SDAccel and running them on AWS F1 hardware (§1, Tables 2–3). Without
// that testbed, this module reproduces the characterization *code path*
// with an analytical model in the style of Zhang et al., FPGA'15: a
// tiled convolution engine with Tm × Tn parallel MACs, double-buffered
// on-chip tiles, and burst DRAM transfers. The model maps a layer shape
// plus an unroll configuration to exactly the quantities the optimizer
// consumes — WCET, resource percentages and DRAM bandwidth share of one
// FPGA — so any network, not just the two the paper measured, can be fed
// to the allocator. Absolute fidelity to Tables 2–3 is not claimed (the
// paper's exact constants are available in hls/paper.hpp); magnitudes
// and trends are validated in tests/hls_test.cpp.
#pragma once

#include "core/problem.hpp"
#include "hls/layers.hpp"

namespace mfa::hls {

enum class DataType { kFloat32, kFixed16 };

const char* datatype_name(DataType t);
int bytes_of(DataType t);

/// DSP blocks consumed by one multiply-accumulate lane.
/// UltraScale+ figures: fp32 MAC ≈ 5 DSP48E2 (3 mult + 2 add),
/// 16-bit fixed MAC = 1.
int dsp_per_mac(DataType t);

/// FPGA device resource inventory.
struct Device {
  std::string name;
  int dsp = 0;
  int bram18k = 0;
  std::int64_t luts = 0;
  std::int64_t ffs = 0;
  double clock_mhz = 0.0;   ///< achieved kernel clock
  double dram_gbps = 0.0;   ///< usable per-FPGA DRAM bandwidth

  /// Xilinx VU9P as deployed on an AWS F1 FPGA card (≈250 MHz kernels,
  /// four DDR4 channels of which ~16 GB/s/channel usable).
  static Device vu9p();
};

/// Unroll (parallelism) configuration of one CU: Tm output-channel ×
/// Tn input-channel parallel MAC lanes.
struct UnrollConfig {
  int tm = 1;
  int tn = 1;
  [[nodiscard]] int lanes() const { return tm * tn; }
};

class CostModel {
 public:
  explicit CostModel(Device device) : device_(std::move(device)) {}

  [[nodiscard]] const Device& device() const { return device_; }

  /// Characterizes one CU of the layer: WCET (ms), resource vector (% of
  /// the device) and DRAM bandwidth (% of the device), ready for the
  /// optimizer.
  [[nodiscard]] core::Kernel characterize(const Layer& layer, DataType dtype,
                                          UnrollConfig config) const;

  /// Largest power-of-two unroll whose DSP share stays within
  /// dsp_budget_pct (% of the device) — the knob the paper turns when
  /// preparing per-kernel CU variants. Pool/norm layers unroll channels
  /// only (tm = 1 lanes on tn).
  [[nodiscard]] UnrollConfig pick_unroll(const Layer& layer, DataType dtype,
                                         double dsp_budget_pct) const;

  /// Characterizes a whole network into a pipeline Application, picking
  /// each layer's unroll under the given per-CU DSP budget.
  [[nodiscard]] core::Application characterize_network(
      const Network& net, DataType dtype, double dsp_budget_pct) const;

 private:
  Device device_;
};

}  // namespace mfa::hls
