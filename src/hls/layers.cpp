#include "hls/layers.hpp"

namespace mfa::hls {

const char* layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kPool:
      return "pool";
    case LayerKind::kNorm:
      return "norm";
    case LayerKind::kFullyConnected:
      return "fc";
  }
  return "?";
}

std::int64_t Layer::ops() const {
  const std::int64_t spatial =
      static_cast<std::int64_t>(out_rows) * out_cols;
  switch (kind) {
    case LayerKind::kConv:
      return spatial * out_channels * in_channels * kernel * kernel;
    case LayerKind::kPool:
      return spatial * out_channels * kernel * kernel;
    case LayerKind::kNorm:
      // Local response normalization: one window of K² taps per element
      // plus the pointwise power/scale, folded into the window count.
      return spatial * out_channels * kernel * kernel;
    case LayerKind::kFullyConnected:
      return static_cast<std::int64_t>(out_channels) * in_channels;
  }
  return 0;
}

std::int64_t Layer::output_elements() const {
  return static_cast<std::int64_t>(out_channels) * out_rows * out_cols;
}

std::int64_t Layer::input_elements() const {
  return static_cast<std::int64_t>(in_channels) * (out_rows * stride) *
         (out_cols * stride);
}

std::int64_t Layer::weight_elements() const {
  switch (kind) {
    case LayerKind::kConv:
      return static_cast<std::int64_t>(out_channels) * in_channels * kernel *
             kernel;
    case LayerKind::kFullyConnected:
      return static_cast<std::int64_t>(out_channels) * in_channels;
    case LayerKind::kPool:
    case LayerKind::kNorm:
      return 0;
  }
  return 0;
}

std::int64_t Network::total_ops() const {
  std::int64_t acc = 0;
  for (const Layer& l : layers) acc += l.ops();
  return acc;
}

namespace {

Layer conv(std::string name, int n, int m, int out, int k, int s,
           bool fused_pool = false) {
  return Layer{std::move(name), LayerKind::kConv, n, m, out, out,
               k,               s,                fused_pool};
}

Layer pool(std::string name, int ch, int out, int k, int s) {
  return Layer{std::move(name), LayerKind::kPool, ch, ch, out, out, k, s,
               false};
}

Layer norm(std::string name, int ch, int out) {
  // AlexNet LRN uses a 5-wide channel window; model it as K = 5, S = 1.
  return Layer{std::move(name), LayerKind::kNorm, ch, ch, out, out, 5, 1,
               false};
}

}  // namespace

Network alexnet() {
  Network net;
  net.name = "AlexNet";
  net.layers = {
      conv("CONV1", 3, 96, 55, 11, 4),
      pool("POOL1", 96, 27, 3, 2),
      norm("NORM1", 96, 27),
      conv("CONV2", 96, 256, 27, 5, 1, /*fused_pool=*/true),
      norm("NORM2", 256, 13),
      conv("CONV3", 256, 384, 13, 3, 1),
      conv("CONV4", 384, 384, 13, 3, 1),
      conv("CONV5", 384, 256, 13, 3, 1, /*fused_pool=*/true),
  };
  return net;
}

Network vgg16() {
  Network net;
  net.name = "VGG16";
  net.layers = {
      conv("CONV1", 3, 64, 224, 3, 1),
      conv("CONV2", 64, 64, 224, 3, 1),
      pool("POOL2", 64, 112, 2, 2),
      conv("CONV3", 64, 128, 112, 3, 1),
      conv("CONV4", 128, 128, 112, 3, 1),
      pool("POOL4", 128, 56, 2, 2),
      conv("CONV5", 128, 256, 56, 3, 1),
      conv("CONV6", 256, 256, 56, 3, 1),
      conv("CONV7", 256, 256, 56, 3, 1),
      pool("POOL7", 256, 28, 2, 2),
      conv("CONV8", 256, 512, 28, 3, 1),
      conv("CONV9", 512, 512, 28, 3, 1),
      conv("CONV10", 512, 512, 28, 3, 1),
      pool("POOL10", 512, 14, 2, 2),
      conv("CONV11", 512, 512, 14, 3, 1),
      conv("CONV12", 512, 512, 14, 3, 1),
      conv("CONV13", 512, 512, 14, 3, 1, /*fused_pool=*/true),
  };
  return net;
}

}  // namespace mfa::hls
