// The paper's measured characterization data, embedded verbatim.
//
// Tables 2–3 of the paper give, per kernel and per CU, the BRAM %, DSP %,
// DRAM bandwidth % and WCET measured on one AWS F1 FPGA. All figure
// reproductions use these exact constants so the optimization inputs are
// the paper's own. LUT/FF columns are not reported in the paper ("much
// less critical than DSPs and BRAMs in our experiments") and are set to
// zero here, which makes those two constraint axes inactive — exactly the
// regime the paper describes.
#pragma once

#include "core/problem.hpp"

namespace mfa::hls::paper {

/// Table 2, left half: AlexNet 32-bit floating point (8 kernels).
core::Application alex32();

/// Table 2, right half: AlexNet 16-bit fixed point (8 kernels).
core::Application alex16();

/// Table 3: VGG-16, 16-bit fixed point (17 kernels; the merged rows
/// CONV6,7 / CONV9,10 / CONV11,12,13 are expanded into identical
/// per-kernel entries, matching the 17-kernel legend of Fig. 6).
core::Application vgg16();

/// The AWS F1 instance of Fig. 1: 8 FPGAs at 100 % capacity each.
core::Platform f1(int num_fpgas = 8);

/// A mixed fleet in the CXL-CCL style: `full` F1-class FPGAs at 100 %
/// capacity plus `half` previous-generation devices at 50 % capacity
/// and 60 % DRAM bandwidth. Exercises the heterogeneous solver paths on
/// the paper's own kernel characterizations.
core::Platform f1_mixed(int full = 1, int half = 1);

/// The three representative cases of §4 with their Table-4 weights.
/// Each returns a fully configured Problem (resource_fraction = 1).
core::Problem case_alex16_2fpga();  ///< α = 1, β = 0.7, F = 2
core::Problem case_alex32_4fpga();  ///< α = 1, β = 6,   F = 4
core::Problem case_vgg_8fpga();     ///< α = 1, β = 50,  F = 8

}  // namespace mfa::hls::paper
