#include "hls/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace mfa::hls {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  MFA_ASSERT(b > 0);
  return (a + b - 1) / b;
}

/// 18 kb BRAM blocks needed for `bytes` of storage, double-buffered.
int bram_blocks(std::int64_t bytes) {
  constexpr std::int64_t kBytesPer18k = 18 * 1024 / 8;
  return static_cast<int>(ceil_div(2 * bytes, kBytesPer18k));
}

}  // namespace

const char* datatype_name(DataType t) {
  return t == DataType::kFloat32 ? "fp32" : "fx16";
}

int bytes_of(DataType t) { return t == DataType::kFloat32 ? 4 : 2; }

int dsp_per_mac(DataType t) { return t == DataType::kFloat32 ? 5 : 1; }

Device Device::vu9p() {
  return Device{"VU9P (AWS F1)", 6840,      4320, 1'182'240,
                2'364'480,       250.0,     60.0};
}

core::Kernel CostModel::characterize(const Layer& layer, DataType dtype,
                                     UnrollConfig config) const {
  MFA_ASSERT(config.tm >= 1 && config.tn >= 1);
  const int tm = std::min(config.tm, layer.out_channels);
  const int tn = std::min(config.tn, layer.in_channels);
  const int bytes = bytes_of(dtype);

  // ---- Latency: tiled loop nest, inner spatial loop pipelined at II=1.
  const std::int64_t spatial =
      static_cast<std::int64_t>(layer.out_rows) * layer.out_cols;
  std::int64_t cycles = 0;
  int dsp = 0;
  std::int64_t lut = 0;
  switch (layer.kind) {
    case LayerKind::kConv:
    case LayerKind::kFullyConnected:
      cycles = ceil_div(layer.out_channels, tm) *
               ceil_div(layer.in_channels, tn) * spatial * layer.kernel *
               layer.kernel;
      dsp = tm * tn * dsp_per_mac(dtype);
      // Datapath + control: muxing and accumulation trees scale with the
      // lane count; a fixed AXI/control harness underlies every CU.
      lut = 8'000 + 220LL * tm * tn * (dtype == DataType::kFloat32 ? 3 : 1);
      break;
    case LayerKind::kPool:
      // Channel-parallel comparator lanes; no DSP consumption.
      cycles = ceil_div(layer.in_channels, tn) * spatial * layer.kernel *
               layer.kernel;
      dsp = 0;
      lut = 6'000 + 150LL * tn * bytes;
      break;
    case LayerKind::kNorm:
      // LRN: channel window accumulation plus a pointwise power/scale
      // unit per lane (a handful of DSPs in fp32, ~none in fixed point).
      cycles = ceil_div(layer.in_channels, tn) * spatial * layer.kernel *
               layer.kernel;
      dsp = tn * (dtype == DataType::kFloat32 ? 6 : 1);
      lut = 7'000 + 300LL * tn * bytes;
      break;
  }
  const double compute_ms =
      static_cast<double>(cycles) / (device_.clock_mhz * 1e3);

  // ---- On-chip buffers (double-buffered tiles), row-tiled: one output
  // row of Tm channels in flight, its input halo, and the weight tile.
  const std::int64_t in_tile_bytes =
      static_cast<std::int64_t>(tn) *
      (layer.stride + layer.kernel - 1) *
      (static_cast<std::int64_t>(layer.out_cols) * layer.stride +
       layer.kernel - 1) *
      bytes;
  const std::int64_t out_tile_bytes =
      static_cast<std::int64_t>(tm) * layer.out_cols * bytes;
  const std::int64_t weight_tile_bytes =
      layer.weight_elements() == 0
          ? 0
          : static_cast<std::int64_t>(tm) * tn * layer.kernel * layer.kernel *
                bytes;
  const int brams = bram_blocks(in_tile_bytes) + bram_blocks(out_tile_bytes) +
                    (weight_tile_bytes > 0 ? bram_blocks(weight_tile_bytes)
                                           : 0);

  // ---- DRAM traffic per image: inputs re-read once per output-channel
  // tile group (row tiling reuses them within a group), weights streamed
  // once, outputs written once (quartered when a max-pool is fused).
  const std::int64_t in_reads =
      layer.weight_elements() == 0 ? 1 : ceil_div(layer.out_channels, tm);
  std::int64_t out_elems = layer.output_elements();
  if (layer.fused_pool) out_elems /= 4;
  const std::int64_t traffic_bytes =
      (layer.input_elements() * in_reads + layer.weight_elements() +
       out_elems) *
      bytes;

  // ---- Roofline: a CU streams through one AXI/DDR port, so its latency
  // is the max of the compute and memory phases (Zhang et al.'s model).
  const double port_gbps = device_.dram_gbps / 4.0;  // one of four channels
  const double memory_ms =
      static_cast<double>(traffic_bytes) / (port_gbps * 1e6);
  const double wcet_ms = std::max(compute_ms, memory_ms);
  const double wcet_s = wcet_ms / 1e3;
  const double gbps = static_cast<double>(traffic_bytes) / wcet_s / 1e9;

  core::Kernel kernel;
  kernel.name = layer.name;
  kernel.wcet_ms = wcet_ms;
  kernel.res[core::Resource::kDsp] = 100.0 * dsp / device_.dsp;
  kernel.res[core::Resource::kBram] = 100.0 * brams / device_.bram18k;
  kernel.res[core::Resource::kLut] =
      100.0 * static_cast<double>(lut) / static_cast<double>(device_.luts);
  // Registers track LUTs closely in pipelined HLS datapaths.
  kernel.res[core::Resource::kFf] =
      100.0 * static_cast<double>(lut) * 1.1 /
      static_cast<double>(device_.ffs);
  kernel.bw = 100.0 * gbps / device_.dram_gbps;
  return kernel;
}

UnrollConfig CostModel::pick_unroll(const Layer& layer, DataType dtype,
                                    double dsp_budget_pct) const {
  const bool weighted = layer.weight_elements() > 0;
  const int dsp_budget =
      static_cast<int>(dsp_budget_pct / 100.0 * device_.dsp);

  UnrollConfig best;
  for (int tn = 1; tn <= 64; tn *= 2) {
    if (tn > layer.in_channels * 2) break;
    const int tm_limit = weighted ? 64 : 1;
    for (int tm = 1; tm <= tm_limit; tm *= 2) {
      if (tm > layer.out_channels * 2) break;
      UnrollConfig cfg{tm, tn};
      const int dsp_cost =
          layer.kind == LayerKind::kNorm
              ? tn * (dtype == DataType::kFloat32 ? 6 : 1)
              : (layer.kind == LayerKind::kPool
                     ? 0
                     : cfg.lanes() * dsp_per_mac(dtype));
      if (dsp_cost > dsp_budget && dsp_cost > 0) continue;
      if (cfg.lanes() > best.lanes() ||
          (cfg.lanes() == best.lanes() &&
           std::abs(cfg.tm - cfg.tn) < std::abs(best.tm - best.tn))) {
        best = cfg;
      }
    }
  }
  return best;
}

core::Application CostModel::characterize_network(
    const Network& net, DataType dtype, double dsp_budget_pct) const {
  core::Application app;
  app.name = net.name + " (" + datatype_name(dtype) + ", modeled)";
  app.kernels.reserve(net.size());
  for (const Layer& layer : net.layers) {
    const UnrollConfig cfg = pick_unroll(layer, dtype, dsp_budget_pct);
    app.kernels.push_back(characterize(layer, dtype, cfg));
  }
  return app;
}

}  // namespace mfa::hls
