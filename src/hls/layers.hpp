// CNN layer shape records — the inputs to kernel characterization.
//
// The paper's flow starts from CNNs "already partitioned into kernels":
// each convolutional / pooling / normalization layer becomes one pipeline
// kernel (§1, §3; some max-pool layers are merged into the preceding
// convolution, and fully connected layers are omitted — see footnote 1).
// These records carry just enough geometry for the analytical cost model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace mfa::hls {

enum class LayerKind { kConv, kPool, kNorm, kFullyConnected };

const char* layer_kind_name(LayerKind kind);

/// One layer: geometry in the usual CNN notation.
/// Convolution: N input channels × M output channels, K×K kernel,
/// stride S, producing an R×C output map. Pool/Norm reuse the same
/// fields with M = N. Fully connected: N inputs, M outputs, K=R=C=1.
struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kConv;
  int in_channels = 0;   ///< N
  int out_channels = 0;  ///< M
  int out_rows = 0;      ///< R
  int out_cols = 0;      ///< C
  int kernel = 1;        ///< K
  int stride = 1;        ///< S
  bool fused_pool = false;  ///< a max-pool merged into this conv

  /// Multiply-accumulate operations per image (conv/FC), or compare/
  /// accumulate operations (pool/norm).
  [[nodiscard]] std::int64_t ops() const;

  /// Output feature-map elements per image (M·R·C).
  [[nodiscard]] std::int64_t output_elements() const;

  /// Input feature-map elements consumed per image (N·R·S·C·S upper
  /// bound, ignoring halos).
  [[nodiscard]] std::int64_t input_elements() const;

  /// Weight parameters (conv: M·N·K²; FC: M·N; pool/norm: 0).
  [[nodiscard]] std::int64_t weight_elements() const;
};

/// An ordered CNN: the unit the characterization flow maps to a pipeline.
struct Network {
  std::string name;
  std::vector<Layer> layers;

  [[nodiscard]] std::size_t size() const { return layers.size(); }
  [[nodiscard]] std::int64_t total_ops() const;
};

/// AlexNet (Krizhevsky et al. 2012) with the paper's kernel merging:
/// 8 kernels — CONV1, POOL1, NORM1, CONV2(+pool), NORM2, CONV3, CONV4,
/// CONV5(+pool). Fully connected layers omitted (paper footnote 1).
Network alexnet();

/// VGG-16 (Simonyan & Zisserman 2014) with the paper's merging:
/// 17 kernels — CONV1..13 plus POOL2, POOL4, POOL7, POOL10 (pools after
/// conv2/4/7/10 kept standalone, the final pool merged; FC omitted),
/// matching the Fig. 6 legend.
Network vgg16();

}  // namespace mfa::hls
