#include "hls/paper.hpp"

namespace mfa::hls::paper {
namespace {

using core::Application;
using core::Kernel;
using core::Platform;
using core::Problem;
using core::ResourceVec;

/// Table row → Kernel: (name, BRAM %, DSP %, BW %, WCET ms).
Kernel row(const char* name, double bram, double dsp, double bw,
           double wcet_ms) {
  return Kernel{name, wcet_ms, ResourceVec(bram, dsp, 0.0, 0.0), bw};
}

}  // namespace

Application alex32() {
  Application app;
  app.name = "Alex-32";
  app.kernels = {
      row("CONV1", 13.07, 21.24, 1.3, 13.0),
      row("POOL1", 2.84, 0.0, 7.03, 1.78),
      row("NORM1", 6.10, 2.11, 5.7, 0.839),
      row("CONV2", 8.73, 37.59, 2.4, 7.19),
      row("NORM2", 7.75, 2.11, 3.7, 0.807),
      row("CONV3", 5.22, 28.13, 5.0, 7.78),
      row("CONV4", 2.13, 37.50, 3.7, 9.08),
      row("CONV5", 8.73, 37.50, 4.2, 4.84),
  };
  return app;
}

Application alex16() {
  Application app;
  app.name = "Alex-16";
  app.kernels = {
      row("CONV1", 10.59, 4.31, 1.8, 5.16),
      row("POOL1", 0.05, 0.0, 3.5, 1.78),
      row("NORM1", 2.53, 0.06, 3.1, 0.78),
      row("CONV2", 4.39, 7.63, 2.1, 4.11),
      row("NORM2", 6.66, 0.06, 2.2, 0.67),
      row("CONV3", 2.63, 5.66, 2.9, 6.70),
      row("CONV4", 1.91, 7.55, 3.2, 5.06),
      row("CONV5", 4.39, 7.55, 3.1, 3.29),
  };
  return app;
}

Application vgg16() {
  Application app;
  app.name = "VGG";
  app.kernels = {
      row("CONV1", 3.67, 2.95, 2.0, 28.8),
      row("CONV2", 9.97, 15.14, 2.1, 67.8),
      row("POOL2", 11.62, 0.03, 5.2, 13.3),
      row("CONV3", 9.97, 15.14, 2.3, 22.7),
      row("CONV4", 9.97, 15.14, 2.4, 32.1),
      row("POOL4", 2.94, 0.03, 5.1, 6.9),
      row("CONV5", 8.32, 15.07, 2.0, 22.8),
      row("CONV6", 8.32, 15.05, 2.3, 32.9),
      row("CONV7", 8.32, 15.05, 2.3, 32.9),
      row("POOL7", 1.50, 0.03, 5.0, 3.5),
      row("CONV8", 2.12, 15.02, 2.1, 24.5),
      row("CONV9", 2.12, 15.02, 2.5, 37.7),
      row("CONV10", 2.12, 15.02, 2.5, 37.7),
      row("POOL10", 0.05, 0.01, 4.0, 2.1),
      row("CONV11", 2.12, 14.99, 2.6, 20.3),
      row("CONV12", 2.12, 14.99, 2.6, 20.3),
      row("CONV13", 2.12, 14.99, 2.6, 20.3),
  };
  return app;
}

Platform f1(int num_fpgas) {
  MFA_ASSERT(num_fpgas >= 1);
  Platform p;
  p.name = "AWS F1";
  p.num_fpgas = num_fpgas;
  p.capacity = ResourceVec::uniform(100.0);
  p.bw_capacity = 100.0;
  return p;
}

Platform f1_mixed(int full, int half) {
  MFA_ASSERT(full >= 1 && half >= 1);
  core::DeviceClass big{"F1-full", ResourceVec::uniform(100.0), 100.0};
  core::DeviceClass small{"F1-half", ResourceVec::uniform(50.0), 60.0};
  std::vector<int> class_of;
  class_of.reserve(static_cast<std::size_t>(full + half));
  for (int i = 0; i < full; ++i) class_of.push_back(0);
  for (int i = 0; i < half; ++i) class_of.push_back(1);
  return Platform::heterogeneous("AWS F1 mixed", {big, small},
                                 std::move(class_of));
}

Problem case_alex16_2fpga() {
  Problem p;
  p.app = alex16();
  p.platform = f1(2);
  p.alpha = 1.0;
  p.beta = 0.7;  // Table 4
  return p;
}

Problem case_alex32_4fpga() {
  Problem p;
  p.app = alex32();
  p.platform = f1(4);
  p.alpha = 1.0;
  p.beta = 6.0;  // Table 4
  return p;
}

Problem case_vgg_8fpga() {
  Problem p;
  p.app = vgg16();
  p.platform = f1(8);
  p.alpha = 1.0;
  p.beta = 50.0;  // Table 4
  return p;
}

}  // namespace mfa::hls::paper
