#include "runtime/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "alloc/gpa.hpp"
#include "solver/budget.hpp"
#include "solver/exact.hpp"
#include "solver/naive.hpp"

namespace mfa::runtime {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// What one lane hands back to the aggregation step.
struct LaneRun {
  StrategyOutcome outcome;
  std::optional<core::Allocation> allocation;  // bound to the request problem
  std::optional<core::RelaxedSolution> relaxed;  // GP+A root (ÎI, N̂)
};

LaneRun run_lane(const StrategySpec& spec, const core::Problem& problem,
                 const PortfolioOptions& options,
                 const std::optional<core::RelaxedSolution>& warm,
                 solver::Budget& shared) {
  LaneRun run;
  run.outcome.strategy = spec.name();
  const auto t0 = Clock::now();

  switch (spec.kind) {
    case StrategySpec::Kind::kGpa: {
      alloc::GpaOptions o = options.gpa;
      o.greedy.t_max = spec.t_max;
      // Portfolio-level context/caches take precedence over whatever the
      // base GpaOptions carried (context first, then the deprecated
      // per-field aliases); flatten the resolution into the per-field
      // pointers so the lane sees one unambiguous wiring.
      core::RelaxationCache* cache = options.resolved_relax_cache();
      if (cache == nullptr) cache = o.resolved_relax_cache();
      core::CompiledModelCache* models = options.resolved_model_cache();
      if (models == nullptr) models = o.resolved_model_cache();
      o.context = nullptr;
      o.relax_cache = cache;
      o.model_cache = models;
      // Stability rides the same wiring as the caches: the portfolio-
      // level pointer reaches every GP+A lane unless the base GpaOptions
      // already carried its own.
      if (o.stability == nullptr) o.stability = options.stability;
      if (warm) o.warm = warm;  // root-relaxation seed (request-level)
      StatusOr<alloc::GpaResult> r = alloc::GpaSolver(o).solve(problem);
      if (r.is_ok()) {
        run.allocation = std::move(r.value().allocation);
        run.outcome.nodes = r.value().discretize_nodes;
        run.relaxed = core::RelaxedSolution{
            r.value().relaxed_ii, std::move(r.value().relaxed_n)};
      } else {
        run.outcome.status = r.status();
      }
      break;
    }
    case StrategySpec::Kind::kExact: {
      solver::ExactOptions o = options.exact;
      o.max_nodes = options.max_nodes;
      o.max_seconds = options.max_seconds;
      o.shared = &shared;
      StatusOr<solver::ExactResult> r =
          solver::ExactSolver(o).solve(problem);
      if (r.is_ok()) {
        run.allocation = std::move(r.value().allocation);
        run.outcome.nodes = r.value().nodes;
        run.outcome.proved_optimal = r.value().proved_optimal;
      } else {
        run.outcome.status = r.status();
      }
      break;
    }
    case StrategySpec::Kind::kNaive: {
      // Runs directly on the shared budget so expire() reaches it. The
      // solver reports its own node delta (exact when lanes are
      // sequential, approximate when another budgeted lane races
      // alongside); on error the delta is re-derived here.
      const std::int64_t nodes_before = shared.nodes_used();
      StatusOr<solver::NaiveResult> r =
          solver::NaiveMinlp(&shared).solve(problem);
      if (r.is_ok()) {
        run.allocation = std::move(r.value().allocation);
        run.outcome.nodes = r.value().nodes;
        run.outcome.proved_optimal = r.value().proved_optimal;
      } else {
        run.outcome.nodes = shared.nodes_used() - nodes_before;
        run.outcome.status = r.status();
      }
      break;
    }
  }

  if (run.allocation) {
    run.outcome.ii = run.allocation->ii();
    run.outcome.phi = run.allocation->phi();
    run.outcome.goal = problem.alpha * run.outcome.ii +
                       problem.beta * run.outcome.phi;
  }
  run.outcome.seconds = seconds_since(t0);

  // A completed search on the true objective makes the remaining races
  // pointless: cancel them, they keep their incumbents.
  if (options.stop_on_proved_optimal && run.outcome.proved_optimal) {
    shared.expire();
  }
  return run;
}

}  // namespace

Portfolio::Portfolio(PortfolioOptions options, int num_threads)
    : options_(std::move(options)) {
  if (num_threads == 1) return;  // sequential lanes
  if (num_threads <= 0) {
    const int lanes = static_cast<int>(options_.lanes().size());
    num_threads = std::min(
        lanes,
        std::max(1, static_cast<int>(std::thread::hardware_concurrency())));
    if (num_threads <= 1) return;
  }
  pool_ = std::make_unique<ThreadPool>(num_threads);
}

Portfolio::Portfolio(PortfolioOptions options, ThreadPool* shared_pool)
    : options_(std::move(options)), shared_pool_(shared_pool) {}

Portfolio::~Portfolio() = default;

SolveResult Portfolio::solve(const core::Problem& problem) const {
  return solve(std::make_shared<const core::Problem>(problem));
}

SolveResult Portfolio::solve(
    std::shared_ptr<const core::Problem> problem) const {
  SolveRequest request;
  request.problem = std::move(problem);
  return solve(request);
}

SolveResult Portfolio::solve(const SolveRequest& request) const {
  const PortfolioOptions& options =
      request.options ? *request.options : options_;
  const core::Problem& problem = *request.problem;
  const auto t0 = Clock::now();

  SolveResult result;
  result.problem = request.problem;

  if (Status valid = problem.validate(); !valid.is_ok()) {
    result.status = std::move(valid);
    return result;
  }

  const std::vector<StrategySpec> lanes = options.lanes();
  if (lanes.empty()) {
    result.status = Status{Code::kInvalid, "no strategies configured"};
    return result;
  }
  // The context's caller-managed budget (when set) replaces the
  // per-solve one: an online caller can expire() every in-flight lane
  // across events, at the cost of node usage accumulating across solves.
  solver::Budget local(options.max_nodes, options.max_seconds);
  solver::Budget& shared =
      options.context != nullptr && options.context->budget != nullptr
          ? *options.context->budget
          : local;

  std::vector<LaneRun> runs(lanes.size());
  ThreadPool* workers = pool();
  if (workers == nullptr && options.context != nullptr) {
    workers = options.context->pool;  // context as the pool wiring point
  }
  if (workers != nullptr && lanes.size() > 1) {
    workers->parallel_for(lanes.size(), [&](std::size_t i) {
      runs[i] = run_lane(lanes[i], problem, options, request.warm, shared);
    });
  } else {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      runs[i] = run_lane(lanes[i], problem, options, request.warm, shared);
    }
  }

  // Deterministic aggregation: best goal, ties to the earliest lane.
  std::size_t winner = lanes.size();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    result.lanes.push_back(runs[i].outcome);
    result.nodes += runs[i].outcome.nodes;
    if (runs[i].allocation &&
        (winner == lanes.size() ||
         runs[i].outcome.goal < result.lanes[winner].goal)) {
      winner = i;
    }
  }

  if (winner == lanes.size()) {
    // No lane produced an allocation. Only an exact-kind lane's
    // kInfeasible is a *proof*; GP+A's is heuristic (Algorithm 1 giving
    // up within T says nothing about the true feasible set), so a
    // portfolio of heuristic lanes must never promote their unanimous
    // failure to a proof-grade kInfeasible — it stays kLimit.
    Status status{Code::kLimit, "every lane exhausted its budget"};
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (lanes[i].kind == StrategySpec::Kind::kGpa) continue;
      if (runs[i].outcome.status.code() == Code::kInfeasible) {
        status = runs[i].outcome.status;
        break;
      }
    }
    if (status.code() == Code::kLimit) {
      const bool all_infeasible = std::all_of(
          runs.begin(), runs.end(), [](const LaneRun& r) {
            return r.outcome.status.code() == Code::kInfeasible;
          });
      if (all_infeasible) {
        status = Status{Code::kLimit,
                        "every heuristic lane reported infeasibility "
                        "(no exact lane ran; not a proof)"};
      }
    }
    result.status = std::move(status);
    result.seconds = seconds_since(t0);
    return result;
  }

  result.allocation = rebind(*runs[winner].allocation, *result.problem);
  result.relaxed = std::move(runs[winner].relaxed);
  result.ii = result.lanes[winner].ii;
  result.phi = result.lanes[winner].phi;
  result.goal = result.lanes[winner].goal;
  result.winner = result.lanes[winner].strategy;
  // "Proved" only when the returned incumbent matches (or, via a T > 0
  // cap relaxation, beats) a lane that completed its exact search.
  result.proved_optimal = std::any_of(
      result.lanes.begin(), result.lanes.end(),
      [&](const StrategyOutcome& o) {
        return o.proved_optimal && result.goal <= o.goal + 1e-12;
      });
  result.seconds = seconds_since(t0);
  return result;
}

}  // namespace mfa::runtime
