#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace mfa::runtime {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads =
        std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> future = wrapped.get_future();
  {
    LockGuard lock(mutex_);
    MFA_ASSERT_MSG(!stopping_, "submit() on a stopping ThreadPool");
    queue_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  // Collect every task before rethrowing so no future outlives `fn`.
  std::exception_ptr first;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      LockGuard lock(mutex_);
      // Explicit predicate loop (not a wait-with-lambda): the thread
      // safety analysis follows this shape; see support/mutex.hpp.
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace mfa::runtime
