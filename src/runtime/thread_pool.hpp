// A fixed-size worker pool for the solver runtime.
//
// The pool is deliberately minimal: FIFO task queue, std::future-based
// completion, no work stealing. Solver tasks are coarse (milliseconds to
// minutes each), so queue contention is irrelevant; what matters is that
// the pool is deterministic to *drive* — callers submit an indexed task
// per work item and write results into pre-sized slots, which keeps
// batch output ordering independent of the thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "support/mutex.hpp"

namespace mfa::runtime {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(int num_threads = 0);

  /// Drains the queue: blocks until every submitted task has run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; the future resolves when it has run. Exceptions
  /// propagate through the future.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(0) … fn(n-1) across the pool and blocks until all are done.
  /// The first exception (lowest index) is rethrown in the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  // mfa-lint: allow(mutex-hygiene) filled in the ctor, joined in the
  // dtor; never touched while workers run
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::packaged_task<void()>> queue_ MFA_GUARDED_BY(mutex_);
  bool stopping_ MFA_GUARDED_BY(mutex_) = false;
};

}  // namespace mfa::runtime
