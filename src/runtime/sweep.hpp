// Parallel resource-constraint sweeps — the Fig. 2–5 experiment driver,
// re-expressed on the runtime batch engine.
//
// Produces the same alloc::SweepSeries as the single-threaded
// alloc::run_sweep, but fans every (method × constraint) grid point
// through BatchRunner as an independent SolveRequest, so a whole figure
// is one batch and the pool stays saturated across methods. Point
// semantics are preserved: GP+A points report proved_optimal = true on
// success ("completed", the heuristic has no proof), exact points report
// the search's own proof flag, and kMinlp forces β = 0 per point.
#pragma once

#include <vector>

#include "alloc/sweep.hpp"
#include "core/problem.hpp"
#include "runtime/batch.hpp"

namespace mfa::runtime {

struct SweepOptions {
  /// Worker threads for the underlying BatchRunner (0 = hardware).
  int num_threads = 0;
  alloc::SweepConfig config;
};

/// One method over the configured constraint range, in parallel.
alloc::SweepSeries run_sweep(const core::Problem& problem,
                             alloc::Method method,
                             const SweepOptions& options);

/// Several methods over the same range as one batch (one figure).
/// Returned series align with `methods`.
std::vector<alloc::SweepSeries> run_sweeps(
    const core::Problem& problem, const std::vector<alloc::Method>& methods,
    const SweepOptions& options);

}  // namespace mfa::runtime
