// Parallel resource-constraint sweeps — the Fig. 2–5 experiment driver,
// re-expressed on the runtime batch engine.
//
// Produces the same alloc::SweepSeries as the single-threaded
// alloc::run_sweep, but fans every (method × constraint) grid point
// through BatchRunner as an independent SolveRequest, so a whole figure
// is one batch, the pool stays saturated across methods, and the batch's
// shared relaxation cache collapses duplicate grid points. Point
// semantics are preserved: proved_optimal carries the SolveResult's real
// provenance (true only when an exact search completed — GP+A points
// are heuristic and never claim a proof), and kMinlp forces β = 0 per
// point.
#pragma once

#include <vector>

#include "alloc/sweep.hpp"
#include "core/problem.hpp"
#include "runtime/batch.hpp"

namespace mfa::runtime {

struct SweepOptions {
  /// Worker threads for the underlying BatchRunner (0 = hardware).
  int num_threads = 0;
  alloc::SweepConfig config;
};

/// One method over the configured constraint range, in parallel.
alloc::SweepSeries run_sweep(const core::Problem& problem,
                             alloc::Method method,
                             const SweepOptions& options);

/// Several methods over the same range as one batch (one figure).
/// Returned series align with `methods`.
std::vector<alloc::SweepSeries> run_sweeps(
    const core::Problem& problem, const std::vector<alloc::Method>& methods,
    const SweepOptions& options);

}  // namespace mfa::runtime
