#include "runtime/batch.hpp"

#include <utility>

#include "runtime/portfolio.hpp"
#include "runtime/thread_pool.hpp"

namespace mfa::runtime {

std::vector<SolveResult> BatchRunner::solve_all(
    const std::vector<SolveRequest>& requests) const {
  std::vector<SolveResult> results(requests.size());
  if (requests.empty()) return results;

  // Lanes sequential inside each instance (see header).
  Portfolio portfolio(options_.portfolio, /*num_threads=*/1);
  if (options_.num_threads == 1 || requests.size() == 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      results[i] = portfolio.solve(requests[i]);
    }
    return results;
  }

  ThreadPool pool(options_.num_threads);
  pool.parallel_for(requests.size(), [&](std::size_t i) {
    results[i] = portfolio.solve(requests[i]);
  });
  return results;
}

std::vector<SolveResult> BatchRunner::solve_all(
    const std::vector<core::Problem>& problems) const {
  std::vector<SolveRequest> requests;
  requests.reserve(problems.size());
  for (const core::Problem& p : problems) {
    requests.push_back(SolveRequest::of(p));
  }
  return solve_all(requests);
}

}  // namespace mfa::runtime
