#include "runtime/batch.hpp"

#include "runtime/portfolio.hpp"
#include "runtime/thread_pool.hpp"

namespace mfa::runtime {

std::vector<SolveResult> BatchRunner::solve_all(
    const std::vector<SolveRequest>& requests) const {
  std::vector<SolveResult> results(requests.size());
  if (requests.empty()) return results;

  // One relaxation cache and one compiled-model cache for the whole
  // batch (see header); hits are bit-identical to solving (model-cache
  // hits are re-patched), so injecting them does not disturb
  // determinism.
  RelaxationCache* external_cache =
      options_.context != nullptr && options_.context->relax_cache != nullptr
          ? options_.context->relax_cache
          : options_.relax_cache;
  CompiledModelCache* external_models =
      options_.context != nullptr && options_.context->model_cache != nullptr
          ? options_.context->model_cache
          : options_.model_cache;
  RelaxationCache batch_cache;
  RelaxationCache* cache = external_cache != nullptr ? external_cache
                           : options_.share_relaxations ? &batch_cache
                                                        : nullptr;
  CompiledModelCache batch_models;
  CompiledModelCache* models = external_models != nullptr ? external_models
                               : options_.share_relaxations ? &batch_models
                                                            : nullptr;
  PortfolioOptions base = options_.portfolio;
  if (base.relax_cache == nullptr) base.relax_cache = cache;
  if (base.model_cache == nullptr) base.model_cache = models;
  // Per-request options are value copies, so injecting the caches never
  // mutates caller state; skip the copy entirely when caching is off.
  std::vector<SolveRequest> effective;
  if (cache != nullptr || models != nullptr) {
    effective = requests;
    for (SolveRequest& request : effective) {
      if (request.options && request.options->relax_cache == nullptr) {
        request.options->relax_cache = cache;
      }
      if (request.options && request.options->model_cache == nullptr) {
        request.options->model_cache = models;
      }
    }
  }
  const std::vector<SolveRequest>& work =
      cache != nullptr || models != nullptr ? effective : requests;

  // Lanes sequential inside each instance (see header).
  Portfolio portfolio(base, /*num_threads=*/1);
  if (options_.num_threads == 1 || work.size() == 1) {
    for (std::size_t i = 0; i < work.size(); ++i) {
      results[i] = portfolio.solve(work[i]);
    }
    return results;
  }

  ThreadPool pool(options_.num_threads);
  pool.parallel_for(work.size(), [&](std::size_t i) {
    results[i] = portfolio.solve(work[i]);
  });
  return results;
}

std::vector<SolveResult> BatchRunner::solve_all(
    const std::vector<core::Problem>& problems) const {
  std::vector<SolveRequest> requests;
  requests.reserve(problems.size());
  for (const core::Problem& p : problems) {
    requests.push_back(SolveRequest::of(p));
  }
  return solve_all(requests);
}

}  // namespace mfa::runtime
