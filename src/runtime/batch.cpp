#include "runtime/batch.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/compiled_cache.hpp"
#include "core/relaxation.hpp"
#include "gp/compiled.hpp"
#include "gp/solver.hpp"
#include "runtime/portfolio.hpp"
#include "runtime/thread_pool.hpp"

namespace mfa::runtime {
namespace {

/// Fingerprint-grouped batched dispatch of the root relaxations (see
/// BatchOptions::batch_structural_groups). Requests without their own
/// options whose root GPs share a structural fingerprint are solved as
/// one lock-step batch; each converged lane's (ÎI, N̂) is injected into
/// its request as GpaOptions::root_override, so the portfolio's GP+A
/// lanes skip Step 1. Everything else — singleton groups, custom-option
/// requests, lanes that did not converge — is left untouched and takes
/// the scalar path. Runs on the calling thread before the pool fans
/// out, so results cannot depend on the batch's thread count; per-lane
/// batched results are bitwise independent of group formation order
/// (gp_test pins this), so they cannot depend on request order either
/// beyond each request's own problem.
void dispatch_batched_roots(const PortfolioOptions& base,
                            CompiledModelCache* models,
                            std::vector<SolveRequest>& requests) {
  struct Lane {
    std::size_t request = 0;
    gp::GpProblem model;
    std::vector<double> x0;  ///< warm seed; empty = cold
    double t0 = 0.0;         ///< warm barrier opening; 0 = options t0
  };
  struct Group {
    Fingerprint fp;
    std::vector<std::size_t> lanes;  ///< indices into `lanes`
  };
  const gp::SolverOptions& gp_opts = base.gpa.gp;
  std::vector<Lane> lanes;
  std::vector<Group> groups;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SolveRequest& r = requests[i];
    if (r.options || r.problem == nullptr) continue;
    if (!r.problem->validate().is_ok()) continue;
    const core::CuBounds bounds = core::CuBounds::defaults(*r.problem);
    bool empty_interval = false;
    for (std::size_t k = 0; k < r.problem->num_kernels(); ++k) {
      if (bounds.lower[k] > bounds.upper[k]) empty_interval = true;
    }
    if (empty_interval) continue;  // scalar path reports kInfeasible

    Lane lane;
    lane.request = i;
    lane.model = core::build_relaxation_gp(*r.problem, bounds);
    // Warm lanes replicate the scalar warm-start recipe exactly
    // (core/relaxation.cpp solve_gp_impl): inflated ÎI seed, clamped N̂,
    // barrier opened at the seed's plausible duality gap.
    if (r.warm && r.warm->ii > 0.0 &&
        r.warm->n_hat.size() == r.problem->num_kernels()) {
      lane.x0.resize(1 + r.problem->num_kernels());
      lane.x0[0] = r.warm->ii * 1.05;
      for (std::size_t k = 0; k < r.problem->num_kernels(); ++k) {
        lane.x0[1 + k] = std::clamp(
            r.warm->n_hat[k], bounds.lower[k],
            std::isfinite(bounds.upper[k]) && bounds.upper[k] > 0.0
                ? bounds.upper[k]
                : r.warm->n_hat[k]);
      }
      const double m =
          static_cast<double>(lane.model.constraints().size()) +
          2.0 * static_cast<double>(lane.model.num_variables());
      lane.t0 = std::max(gp_opts.t0, m / gp_opts.warm_gap);
    }

    const Fingerprint fp = lane.model.structural_fingerprint();
    const std::size_t lane_index = lanes.size();
    lanes.push_back(std::move(lane));
    bool found = false;
    for (Group& g : groups) {
      if (g.fp == fp) {
        g.lanes.push_back(lane_index);
        found = true;
        break;
      }
    }
    if (!found) groups.push_back({fp, {lane_index}});
  }

  const gp::GpSolver solver(gp_opts);
  for (const Group& g : groups) {
    if (g.lanes.size() < 2) continue;  // scalar path is already optimal

    // One compiled artifact per group — from the shared model cache when
    // wired (so the scalar paths and later batches reuse it), otherwise
    // built fresh from the first lane. Every lane clones it (shared
    // Structure, private coefficients) and re-patches from its own
    // model, so lane bytes never depend on which lane built the base.
    const Fingerprint key = core::compiled_model_cache_key(g.fp);
    gp::CompiledModel base_model;
    if (models != nullptr) {
      if (auto hit = models->lookup(key)) {
        base_model = *hit;
      } else {
        base_model = gp::CompiledModel::build(lanes[g.lanes[0]].model,
                                              gp_opts.variable_box);
        models->insert(key, base_model);
      }
    } else {
      base_model = gp::CompiledModel::build(lanes[g.lanes[0]].model,
                                            gp_opts.variable_box);
    }
    std::vector<gp::CompiledModel> prepared;
    prepared.reserve(g.lanes.size());
    for (std::size_t li : g.lanes) {
      gp::CompiledModel m = base_model;
      m.patch_coefficients(lanes[li].model, gp_opts.variable_box, g.fp);
      prepared.push_back(std::move(m));
    }
    std::vector<gp::BatchLane> batch(g.lanes.size());
    for (std::size_t j = 0; j < g.lanes.size(); ++j) {
      const Lane& lane = lanes[g.lanes[j]];
      batch[j].problem = &lane.model;
      batch[j].model = &prepared[j];
      batch[j].x0 = lane.x0.empty() ? nullptr : &lane.x0;
      batch[j].t0 = lane.t0;
    }
    const std::vector<gp::GpSolution> sols = solver.solve_batch(batch);
    for (std::size_t j = 0; j < g.lanes.size(); ++j) {
      const gp::GpSolution& sol = sols[j];
      if (!sol.ok()) continue;  // lane falls back to the scalar root
      SolveRequest& r = requests[lanes[g.lanes[j]].request];
      PortfolioOptions o = base;
      o.gpa.root_override = core::RelaxedSolution{
          sol.x[0], std::vector<double>(sol.x.begin() + 1, sol.x.end())};
      r.options = std::move(o);
    }
  }
}

}  // namespace

std::vector<SolveResult> BatchRunner::solve_all(
    const std::vector<SolveRequest>& requests) const {
  std::vector<SolveResult> results(requests.size());
  if (requests.empty()) return results;

  // One relaxation cache and one compiled-model cache for the whole
  // batch (see header); hits are bit-identical to solving (model-cache
  // hits are re-patched), so injecting them does not disturb
  // determinism.
  RelaxationCache* external_cache =
      options_.context != nullptr && options_.context->relax_cache != nullptr
          ? options_.context->relax_cache
          : options_.relax_cache;
  CompiledModelCache* external_models =
      options_.context != nullptr && options_.context->model_cache != nullptr
          ? options_.context->model_cache
          : options_.model_cache;
  RelaxationCache batch_cache;
  RelaxationCache* cache = external_cache != nullptr ? external_cache
                           : options_.share_relaxations ? &batch_cache
                                                        : nullptr;
  CompiledModelCache batch_models;
  CompiledModelCache* models = external_models != nullptr ? external_models
                               : options_.share_relaxations ? &batch_models
                                                            : nullptr;
  PortfolioOptions base = options_.portfolio;
  if (base.relax_cache == nullptr) base.relax_cache = cache;
  if (base.model_cache == nullptr) base.model_cache = models;
  if (base.stability == nullptr) base.stability = options_.stability;
  // Batched structural dispatch is only meaningful when the GP+A root
  // actually runs the compiled interior-point kernel.
  const bool batching = options_.batch_structural_groups &&
                        base.gpa.use_interior_point &&
                        base.gpa.gp.use_compiled_kernel;
  // Per-request options are value copies, so injecting the caches (or a
  // batched root) never mutates caller state; skip the copy entirely
  // when neither is active.
  std::vector<SolveRequest> effective;
  if (cache != nullptr || models != nullptr || batching) {
    effective = requests;
    for (SolveRequest& request : effective) {
      if (request.options && request.options->relax_cache == nullptr) {
        request.options->relax_cache = cache;
      }
      if (request.options && request.options->model_cache == nullptr) {
        request.options->model_cache = models;
      }
    }
    if (batching) dispatch_batched_roots(base, models, effective);
  }
  const std::vector<SolveRequest>& work =
      cache != nullptr || models != nullptr || batching ? effective
                                                        : requests;

  // Lanes sequential inside each instance (see header).
  Portfolio portfolio(base, /*num_threads=*/1);
  if (options_.num_threads == 1 || work.size() == 1) {
    for (std::size_t i = 0; i < work.size(); ++i) {
      results[i] = portfolio.solve(work[i]);
    }
    return results;
  }

  ThreadPool pool(options_.num_threads);
  pool.parallel_for(work.size(), [&](std::size_t i) {
    results[i] = portfolio.solve(work[i]);
  });
  return results;
}

std::vector<SolveResult> BatchRunner::solve_all(
    const std::vector<core::Problem>& problems) const {
  std::vector<SolveRequest> requests;
  requests.reserve(problems.size());
  for (const core::Problem& p : problems) {
    requests.push_back(SolveRequest::of(p));
  }
  return solve_all(requests);
}

}  // namespace mfa::runtime
