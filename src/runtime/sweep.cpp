#include "runtime/sweep.hpp"

#include <utility>

namespace mfa::runtime {
namespace {

/// Single-lane portfolio reproducing one sweep method at one point.
PortfolioOptions method_portfolio(alloc::Method method,
                                  const alloc::SweepConfig& config) {
  PortfolioOptions o;
  if (method == alloc::Method::kGpa) {
    o.gpa = config.gpa;
    o.gpa_t_max = {config.gpa.greedy.t_max};
    o.run_exact = false;
  } else {
    o.gpa_t_max.clear();
    o.run_exact = true;
    o.exact = config.exact;
    o.max_nodes = config.exact.max_nodes;
    o.max_seconds = config.exact.max_seconds;
  }
  return o;
}

alloc::SweepPoint to_point(const SolveResult& result, double constraint) {
  alloc::SweepPoint point;
  point.constraint = constraint;
  point.seconds = result.seconds;
  if (!result.is_ok()) return point;
  point.feasible = true;
  // Real provenance from the portfolio: true only when an exact search
  // completed and the returned incumbent matches it. GP+A points are
  // heuristic and never claim a proof.
  point.proved_optimal = result.proved_optimal;
  point.ii = result.ii;
  point.phi = result.phi;
  point.goal = result.goal;
  point.avg_utilization = result.allocation->average_utilization();
  return point;
}

}  // namespace

std::vector<alloc::SweepSeries> run_sweeps(
    const core::Problem& problem, const std::vector<alloc::Method>& methods,
    const SweepOptions& options) {
  const std::vector<double>& constraints = options.config.constraints;
  std::vector<SolveRequest> requests;
  requests.reserve(methods.size() * constraints.size());
  for (alloc::Method method : methods) {
    PortfolioOptions portfolio = method_portfolio(method, options.config);
    for (double constraint : constraints) {
      core::Problem point_problem = problem;
      point_problem.resource_fraction = constraint;
      if (method == alloc::Method::kMinlp) point_problem.beta = 0.0;
      SolveRequest request = SolveRequest::of(std::move(point_problem));
      request.options = portfolio;
      requests.push_back(std::move(request));
    }
  }

  BatchOptions batch;
  batch.num_threads = options.num_threads;
  const std::vector<SolveResult> results =
      BatchRunner(batch).solve_all(requests);

  std::vector<alloc::SweepSeries> out;
  out.reserve(methods.size());
  std::size_t next = 0;
  for (alloc::Method method : methods) {
    alloc::SweepSeries series;
    series.method = method;
    series.points.reserve(constraints.size());
    for (double constraint : constraints) {
      series.points.push_back(to_point(results[next++], constraint));
    }
    out.push_back(std::move(series));
  }
  return out;
}

alloc::SweepSeries run_sweep(const core::Problem& problem,
                             alloc::Method method,
                             const SweepOptions& options) {
  return std::move(run_sweeps(problem, {method}, options).front());
}

}  // namespace mfa::runtime
