// The runtime's name for the shared solver context.
//
// The struct lives in core (core/solver_context.hpp) so alloc-layer
// options can carry a pointer to it without depending on runtime; this
// header re-exports it under the runtime namespace, which owns the
// sharing policy: BatchRunner and Portfolio consult
// PortfolioOptions::context / BatchOptions::context as the single
// wiring point for caches, a shared budget and the worker pool.
#pragma once

#include "core/solver_context.hpp"

namespace mfa::runtime {

using SolverContext = core::SolverContext;

}  // namespace mfa::runtime
