// Solver portfolio: race every configured strategy on one instance.
//
// The lanes (GP+A at several greedy deviations T, the structured exact
// search, optionally the naive B&B) attack the same Problem concurrently
// on a thread pool, sharing one solver::Budget-derived deadline. The
// exact lanes charge their packing nodes against the shared budget and
// poll it between packings, so the first lane to *prove* optimality on
// the true objective can expire() the budget and stop the others at
// their incumbents. The returned SolveResult carries the best
// α·II + β·φ incumbent plus full per-lane provenance.
//
// Determinism: the winner is chosen by (goal, lane index), never by
// completion time, so with node-only budgets the result is identical
// whether lanes run sequentially or in parallel.
#pragma once

#include <memory>

#include "runtime/solve.hpp"
#include "runtime/thread_pool.hpp"

namespace mfa::runtime {

class Portfolio {
 public:
  /// `num_threads` controls how lanes race: 1 runs them sequentially in
  /// lane order (fully deterministic, what BatchRunner uses), 0 sizes a
  /// private pool to min(#lanes, hardware threads), n > 1 uses n workers.
  explicit Portfolio(PortfolioOptions options = {}, int num_threads = 0);

  /// Races lanes on an existing pool instead of a private one (the
  /// allocation service keeps one pool for its whole lifetime rather
  /// than re-spawning workers per event). Not owned; must outlive this
  /// portfolio. nullptr falls back to sequential lanes.
  Portfolio(PortfolioOptions options, ThreadPool* shared_pool);

  ~Portfolio();

  Portfolio(const Portfolio&) = delete;
  Portfolio& operator=(const Portfolio&) = delete;

  /// Solves one instance with this portfolio's options (the problem is
  /// copied into the result so the reference may die immediately after).
  [[nodiscard]] SolveResult solve(const core::Problem& problem) const;

  /// As above without a copy when the caller already shares ownership.
  [[nodiscard]] SolveResult solve(
      std::shared_ptr<const core::Problem> problem) const;

  /// Honors request.options when set, else this portfolio's options.
  [[nodiscard]] SolveResult solve(const SolveRequest& request) const;

 private:
  /// The pool lanes race on: owned or borrowed, null → sequential lanes.
  [[nodiscard]] ThreadPool* pool() const {
    return pool_ != nullptr ? pool_.get() : shared_pool_;
  }

  PortfolioOptions options_;
  std::unique_ptr<ThreadPool> pool_;     ///< private pool, when owned
  ThreadPool* shared_pool_ = nullptr;    ///< borrowed pool, when shared
};

}  // namespace mfa::runtime
