// The runtime's shared relaxation cache.
//
// The cache type itself lives in core (core/relax_cache.hpp) so the
// solver and allocation layers can consume a pointer to it without
// depending on runtime; this header re-exports it under the runtime
// namespace, which owns the cross-request sharing policy: BatchRunner
// instantiates one cache per batch by default, and callers running many
// batches over one design space can pass a longer-lived instance through
// BatchOptions::relax_cache to keep hits across batches.
#pragma once

#include "core/compiled_cache.hpp"
#include "core/relax_cache.hpp"

namespace mfa::runtime {

using RelaxationCache = core::RelaxationCache;
using CompiledModelCache = core::CompiledModelCache;

}  // namespace mfa::runtime
