// Batch engine: fan a whole design-space sweep across the thread pool.
//
// solve_all() solves every instance with the configured portfolio and
// returns results in *input order* regardless of the thread count — each
// worker writes into its pre-assigned slot, and within one instance the
// portfolio lanes run sequentially (Portfolio num_threads = 1), so with
// node-only budgets the output is bit-for-bit identical for 1 and N
// threads. Parallelism therefore comes purely from solving different
// instances concurrently, which is the shape of the Fig. 3–5 grids.
#pragma once

#include <vector>

#include "core/problem.hpp"
#include "runtime/solve.hpp"

namespace mfa::runtime {

struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency.
  int num_threads = 0;
  /// Portfolio applied to every request without its own options.
  PortfolioOptions portfolio;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {})
      : options_(std::move(options)) {}

  /// Solves all requests; result[i] answers requests[i].
  [[nodiscard]] std::vector<SolveResult> solve_all(
      const std::vector<SolveRequest>& requests) const;

  /// Convenience: copies each problem into a request first.
  [[nodiscard]] std::vector<SolveResult> solve_all(
      const std::vector<core::Problem>& problems) const;

 private:
  BatchOptions options_;
};

}  // namespace mfa::runtime
