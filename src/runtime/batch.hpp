// Batch engine: fan a whole design-space sweep across the thread pool.
//
// solve_all() solves every instance with the configured portfolio and
// returns results in *input order* regardless of the thread count — each
// worker writes into its pre-assigned slot, and within one instance the
// portfolio lanes run sequentially (Portfolio num_threads = 1), so with
// node-only budgets the output is bit-for-bit identical for 1 and N
// threads. Parallelism therefore comes purely from solving different
// instances concurrently, which is the shape of the Fig. 3–5 grids.
//
// By default every batch shares one RelaxationCache across all its
// requests and portfolio lanes: duplicate and near-duplicate instances
// (the same grid point under several methods, the same root relaxation
// under several greedy deviations) collapse to cache hits. Cache keys
// capture every solve input, so a hit returns exactly the bytes a solve
// would have produced and the bit-for-bit determinism guarantee above
// holds with the cache enabled, whichever thread populated it first.
#pragma once

#include <vector>

#include "core/problem.hpp"
#include "runtime/context.hpp"
#include "runtime/relax_cache.hpp"
#include "runtime/solve.hpp"

namespace mfa::runtime {

struct BatchOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency.
  int num_threads = 0;
  /// Portfolio applied to every request without its own options.
  PortfolioOptions portfolio;
  /// Share one relaxation cache across the whole batch (see file
  /// comment). Disable to reproduce PR-1 cold-solve behavior.
  bool share_relaxations = true;
  /// Group requests whose root-relaxation GPs share one structural
  /// fingerprint (a design-space sweep is typically one structure with
  /// varying coefficients) and solve each group's roots through the
  /// lane-parallel batched kernel (gp/batched.hpp) in one lock-step
  /// barrier run, injecting the per-lane results via
  /// GpaOptions::root_override. Only active when the portfolio's GP+A
  /// lanes use the interior-point compiled kernel; requests with their
  /// own options, singleton groups and lanes whose batched solve did
  /// not converge fall back to the normal scalar path. Per-lane results
  /// are deterministic and independent of group formation order, but
  /// only tolerance-equal to scalar solves — batched roots therefore
  /// bypass the relaxation cache (see GpaOptions::root_override).
  bool batch_structural_groups = true;
  /// Longer-lived shared resources to use instead of the per-batch
  /// caches, so hits survive across solve_all() calls (e.g. successive
  /// sweeps over one design space — grid sweeps repeat one model
  /// structure across every instance, so interior-point roots compile
  /// once per structure). The single wiring point; see
  /// core/solver_context.hpp. Not owned; implies sharing when its cache
  /// fields are set.
  const SolverContext* context = nullptr;
  /// DEPRECATED aliases (one more PR) for the context's cache fields;
  /// still honored when `context` leaves them null. Not owned.
  RelaxationCache* relax_cache = nullptr;
  CompiledModelCache* model_cache = nullptr;
  /// Migration-aware re-solve applied to every request without its own
  /// options (next to the caches, same wiring rules): forwarded into
  /// `portfolio.stability` when that is unset. Not owned.
  const solver::StabilityOptions* stability = nullptr;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {})
      : options_(std::move(options)) {}

  /// Solves all requests; result[i] answers requests[i].
  [[nodiscard]] std::vector<SolveResult> solve_all(
      const std::vector<SolveRequest>& requests) const;

  /// Convenience: copies each problem into a request first.
  [[nodiscard]] std::vector<SolveResult> solve_all(
      const std::vector<core::Problem>& problems) const;

 private:
  BatchOptions options_;
};

}  // namespace mfa::runtime
