// The runtime's unified solve API (request in, provenance-rich result out).
//
// Every solving path in the library — GP+A (Algorithm 1) at one or more
// greedy deviations T, the structured exact MINLP search, and the naive
// branch-and-bound baseline — is expressed as a portfolio *lane*. A
// SolveRequest owns its Problem (shared_ptr, because core::Allocation
// references the Problem it was built for) so results remain valid after
// the caller's inputs go away; the winning lane's allocation is always
// re-scored against the request's own α/β, making goals comparable
// across lanes regardless of what each solver optimized internally.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "alloc/gpa.hpp"
#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "core/relaxation.hpp"
#include "core/solver_context.hpp"
#include "solver/exact.hpp"
#include "support/status.hpp"

namespace mfa::runtime {

/// One lane of a portfolio: a concrete strategy configuration.
struct StrategySpec {
  enum class Kind {
    kGpa,    ///< GP relaxation + discretization + Algorithm 1
    kExact,  ///< structured exact search (solver::ExactSolver)
    kNaive,  ///< naive B&B over n_{k,f} (solver::NaiveMinlp)
  };

  Kind kind = Kind::kGpa;
  /// Greedy deviation T for kGpa lanes (ignored otherwise).
  double t_max = 0.0;

  [[nodiscard]] std::string name() const;

  static StrategySpec gpa(double t_max) {
    return StrategySpec{Kind::kGpa, t_max};
  }
  static StrategySpec exact() { return StrategySpec{Kind::kExact, 0.0}; }
  static StrategySpec naive() { return StrategySpec{Kind::kNaive, 0.0}; }
};

/// How a portfolio attacks one instance: which lanes, under what shared
/// budget, with what per-solver knobs.
struct PortfolioOptions {
  /// One kGpa lane per entry (Fig. 2 shows II vs T is not monotone, so
  /// racing a few deviations is cheap insurance).
  std::vector<double> gpa_t_max = {0.0, 0.05, 0.10};
  bool run_exact = true;
  bool run_naive = false;

  /// Shared node/wall-clock budget across *all* exact/naive lanes (GP+A
  /// lanes are effectively instant and run unbudgeted).
  std::int64_t max_nodes = 50'000'000;
  double max_seconds = 60.0;

  /// Once a lane proves optimality on the true objective, expire() the
  /// shared budget so still-running lanes stop at their incumbents.
  bool stop_on_proved_optimal = true;

  /// Shared solver resources — caches, an optional caller-managed
  /// budget, and the worker pool lanes race on — in one wiring point
  /// (see core/solver_context.hpp). Every lane solves the identical
  /// root relaxation and walks the identical discretization tree, so
  /// with the context's caches the work is done once and reused; keys
  /// capture every solve input, so hits are bit-identical to solving
  /// and determinism across thread counts is preserved. When
  /// context->budget is set, solve() charges lanes against it instead
  /// of constructing a per-solve budget. Not owned; overrides the
  /// per-field pointers below and anything already set in `gpa`.
  const core::SolverContext* context = nullptr;

  /// DEPRECATED aliases (one more PR): the pre-SolverContext per-field
  /// cache pointers. Still honored when `context` leaves them null;
  /// prefer `context`.
  core::RelaxationCache* relax_cache = nullptr;
  core::CompiledModelCache* model_cache = nullptr;

  /// Migration-aware re-solve (next to the caches, same wiring rules):
  /// forwarded into every GP+A lane's GpaOptions::stability, where a
  /// constrained reference triggers a repack of the placed totals under
  /// the move/disturb budgets. Exact/naive lanes ignore it (they answer
  /// the unconstrained question; the budgets only shape heuristic
  /// placements). `gpa.stability` wins when both are set. Not owned.
  const solver::StabilityOptions* stability = nullptr;

  /// Context-first resolution of the shared caches.
  [[nodiscard]] core::RelaxationCache* resolved_relax_cache() const {
    if (context != nullptr && context->relax_cache != nullptr) {
      return context->relax_cache;
    }
    return relax_cache;
  }
  [[nodiscard]] core::CompiledModelCache* resolved_model_cache() const {
    if (context != nullptr && context->model_cache != nullptr) {
      return context->model_cache;
    }
    return model_cache;
  }

  alloc::GpaOptions gpa;       ///< base GP+A knobs (t_max set per lane)
  solver::ExactOptions exact;  ///< per-pack caps etc. (budget overridden)

  [[nodiscard]] std::vector<StrategySpec> lanes() const;
};

/// One instance to solve. The Problem is owned (see file comment).
struct SolveRequest {
  std::shared_ptr<const core::Problem> problem;
  /// Overrides the batch-level portfolio configuration when set.
  std::optional<PortfolioOptions> options;
  /// Warm start for the GP+A lanes' root relaxation, typically the
  /// incumbent of a closely related solve (the allocation service seeds
  /// each event's re-solve from the previous allocation's ÎI and N̂).
  /// Exact/naive lanes ignore it. Always safe: a stale seed only costs
  /// one feasibility probe, never correctness — the root solver
  /// converges to the same optimum and cache keys fold the seed in.
  std::optional<core::RelaxedSolution> warm;

  static SolveRequest of(core::Problem problem) {
    SolveRequest r;
    r.problem =
        std::make_shared<const core::Problem>(std::move(problem));
    return r;
  }
};

/// Per-lane provenance: what each strategy achieved, at what cost.
struct StrategyOutcome {
  std::string strategy;  ///< e.g. "gpa(T=0.05)", "exact", "naive"
  Status status;         ///< ok / kInfeasible / kLimit
  bool proved_optimal = false;
  double ii = std::numeric_limits<double>::infinity();
  double phi = std::numeric_limits<double>::infinity();
  /// α·II + β·φ under the *request's* weights (∞ when no allocation).
  double goal = std::numeric_limits<double>::infinity();
  std::int64_t nodes = 0;
  double seconds = 0.0;
};

/// The portfolio's answer for one instance.
struct SolveResult {
  /// ok iff some lane produced a feasible allocation. kInfeasible when a
  /// lane *proved* infeasibility; kLimit when every lane hit the budget.
  Status status;
  std::shared_ptr<const core::Problem> problem;
  /// Winning allocation, re-bound to `problem` (valid as long as this
  /// result — or any copy of `problem` — lives).
  std::optional<core::Allocation> allocation;
  double ii = 0.0;
  double phi = 0.0;
  double goal = 0.0;
  /// True when an exact lane on the true objective completed its search.
  bool proved_optimal = false;
  /// Root relaxation (ÎI, N̂) of the winning lane, when it was a GP+A
  /// lane — the seed an online caller passes back as the next related
  /// request's `warm` (exact/naive winners leave it empty).
  std::optional<core::RelaxedSolution> relaxed;
  std::string winner;       ///< name of the winning lane
  std::int64_t nodes = 0;   ///< Σ nodes across lanes
  double seconds = 0.0;     ///< wall time of the whole portfolio call
  std::vector<StrategyOutcome> lanes;  ///< in deterministic lane order

  [[nodiscard]] bool is_ok() const { return status.is_ok(); }
};

/// Rebuilds `allocation` against `problem` (same shape required). Used to
/// detach a solver's allocation from the temporary Problem it ran on.
core::Allocation rebind(const core::Allocation& allocation,
                        const core::Problem& problem);

}  // namespace mfa::runtime
