#include "runtime/solve.hpp"

#include <cstdio>

#include "support/assert.hpp"

namespace mfa::runtime {

std::string StrategySpec::name() const {
  switch (kind) {
    case Kind::kGpa: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "gpa(T=%.2f)", t_max);
      return buf;
    }
    case Kind::kExact:
      return "exact";
    case Kind::kNaive:
      return "naive";
  }
  return "?";
}

std::vector<StrategySpec> PortfolioOptions::lanes() const {
  std::vector<StrategySpec> out;
  out.reserve(gpa_t_max.size() + 2);
  for (double t : gpa_t_max) out.push_back(StrategySpec::gpa(t));
  if (run_exact) out.push_back(StrategySpec::exact());
  if (run_naive) out.push_back(StrategySpec::naive());
  return out;
}

core::Allocation rebind(const core::Allocation& allocation,
                        const core::Problem& problem) {
  MFA_ASSERT_MSG(allocation.num_kernels() == problem.num_kernels() &&
                     allocation.num_fpgas() == problem.num_fpgas(),
                 "rebind() across differently shaped problems");
  core::Allocation out(problem);
  for (std::size_t k = 0; k < allocation.num_kernels(); ++k) {
    for (int f = 0; f < allocation.num_fpgas(); ++f) {
      out.set_cu(k, f, allocation.cu(k, f));
    }
  }
  return out;
}

}  // namespace mfa::runtime
