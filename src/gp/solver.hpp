// Interior-point solver for geometric programs.
//
// The GP is solved in log space, where it is convex: with y = log x every
// posynomial constraint f_i(x) ≤ 1 becomes a log-sum-exp constraint
// F_i(y) ≤ 0. The solver is a classic two-phase barrier method:
//
//   phase I   minimize s  s.t.  F_i(y) − s ≤ 0      (always strictly
//             feasible for large s; stops as soon as s < 0, i.e. a
//             strictly feasible y is found, or proves infeasibility)
//   phase II  barrier path: Newton-center  t·F0(y) − Σ log(−F_i(y))
//             for t = t0, μ·t0, μ²·t0, … until the duality-gap bound
//             m/t drops below tolerance.
//
// Phase I reuses the phase-II machinery verbatim because subtracting s
// inside every exponent keeps each constraint a log-sum-exp in (y, s).
#pragma once

#include <cstdint>
#include <vector>

#include "gp/problem.hpp"
#include "support/status.hpp"

namespace mfa::gp {

/// Solver configuration. Defaults are tuned for allocation-model GPs
/// (tens of variables, hundreds of constraints).
struct SolverOptions {
  double tolerance = 1e-9;     ///< target duality-gap bound m/t
  double t0 = 1.0;             ///< initial barrier weight
  double mu = 20.0;            ///< barrier weight multiplier per outer step
  int max_outer = 80;          ///< barrier stages (phase II)
  int max_newton = 200;        ///< Newton iterations per centering
  double newton_tol = 1e-12;   ///< λ²/2 decrement threshold
  double feas_margin = 1e-10;  ///< strict-feasibility margin for phase I
  /// Bound |log x_j| ≤ variable_box added to every solve; keeps the
  /// phase-I merit bounded and phase II free of drift along flat
  /// directions. 46 ≈ log(1e20).
  double variable_box = 46.0;
  /// Relative duality gap a warm-start seed is assumed to carry: the
  /// warm-started barrier opens at t0 = m / warm_gap instead of
  /// replaying the whole path. 1e-3 suits a seed from the *same*
  /// problem (re-solve, cache replay); callers seeding from a
  /// *neighboring* problem — the allocation service warm-starts each
  /// event from the previous workload's optimum — should widen this
  /// (~3e-2), or the high-t opening grinds on a seed that is no longer
  /// near-optimal. Cold solves ignore it.
  double warm_gap = 1e-3;
  /// Evaluate through the compiled flat LSE IR (gp/compiled.hpp): fused
  /// value/gradient/Hessian over CSR arrays with preallocated scratch.
  /// The interpretive LseFunction path is kept for cross-validation and
  /// the bench/gp_kernel baseline.
  bool use_compiled_kernel = true;
};

enum class GpStatus {
  kOptimal,     ///< converged to tolerance
  kInfeasible,  ///< phase I proved no strictly feasible point exists
  kIterLimit,   ///< budget exhausted before convergence
  kNumeric,     ///< Newton system unsolvable even with regularization
};

/// Stable text name of a solver status.
const char* to_string(GpStatus status);

/// Process-wide running total of Newton steps executed by every
/// GpSolver::solve (both phases, all threads; relaxed counter). Sample
/// before and after a workload to attribute its solver effort — the
/// serving benchmarks use this to compare warm vs cold re-solve cost
/// without threading counters through every intermediate layer.
std::int64_t total_newton_iterations();

/// One instance of a batched (lane-parallel) solve: a problem plus its
/// prepared CompiledModel. Every model in one solve_batch call must
/// share a single compiled Structure object (the CompiledModelCache's
/// clone-then-patch path guarantees this for structurally identical
/// problems); batches that do not are counted as misgroupings and fall
/// back to per-lane scalar solves.
struct BatchLane {
  const GpProblem* problem = nullptr;
  const CompiledModel* model = nullptr;
  /// Optional warm seed (see GpSolver::solve overloads); may be null.
  const std::vector<double>* x0 = nullptr;
  /// Per-lane barrier opening t0; 0 means "use SolverOptions::t0".
  /// Warm lanes pass their m/warm_gap opening here, so one batch can
  /// mix warm and cold instances.
  double t0 = 0.0;
};

/// Result of a GP solve.
struct GpSolution {
  GpStatus status = GpStatus::kNumeric;
  std::vector<double> x;        ///< primal point, indexed by VarId (x > 0)
  double objective = 0.0;       ///< f0(x) at the returned point
  double max_violation = 0.0;   ///< max_i f_i(x) − 1 (≤ 0 when feasible)
  int newton_iterations = 0;    ///< total Newton steps (both phases)
  int outer_iterations = 0;     ///< barrier stages executed

  [[nodiscard]] bool ok() const { return status == GpStatus::kOptimal; }
};

/// Solves a GpProblem. Stateless apart from options; reusable.
class GpSolver {
 public:
  explicit GpSolver(SolverOptions options = {}) : options_(options) {}

  [[nodiscard]] GpSolution solve(const GpProblem& problem) const;

  /// Warm-started solve: seeds the barrier at y = log x0 (clamped to the
  /// variable box) instead of y = 0. x0 must be strictly positive and
  /// indexed by VarId. A strictly feasible seed skips phase I entirely;
  /// an infeasible one still speeds phase I up by starting it nearby.
  /// Converges to the same optimum as the cold solve (to tolerance).
  [[nodiscard]] GpSolution solve(const GpProblem& problem,
                                 const std::vector<double>& x0) const;

  /// Solves through a prepared CompiledModel (always the compiled
  /// kernel): zero per-call IR mutation — the box rows are already part
  /// of the artifact and the phase-I lowering is cached in it. `model`
  /// must have been built (or patched) from `problem` under this
  /// solver's variable_box; the result is bit-identical to the plain
  /// compiled-path solve, whether the model came from a fresh build or
  /// a cache clone + patch_coefficients().
  [[nodiscard]] GpSolution solve(const GpProblem& problem,
                                 const CompiledModel& model) const;

  /// Prepared-model solve, warm-started from x0 (see above).
  [[nodiscard]] GpSolution solve(const GpProblem& problem,
                                 const CompiledModel& model,
                                 const std::vector<double>& x0) const;

  /// Lane-parallel solve of K structurally identical prepared models
  /// through the batched kernel (gp/batched.hpp): a lock-step two-phase
  /// barrier where all lanes advance together, each lane runs its own
  /// t-ladder, converged lanes retire early (frozen, then compacted out
  /// once occupancy drops below half). Results are returned in lane
  /// order and are deterministic per lane — independent of which other
  /// lanes share the batch and of the batch's formation order — but
  /// only tolerance-comparable to the scalar path (the scalar kernel
  /// stays the parity oracle). Falls back to per-lane scalar solves for
  /// K ≤ 1, for use_compiled_kernel = false, and for misgrouped batches
  /// (lanes not sharing one Structure).
  [[nodiscard]] std::vector<GpSolution> solve_batch(
      const std::vector<BatchLane>& lanes) const;

  [[nodiscard]] const SolverOptions& options() const { return options_; }

 private:
  SolverOptions options_;
};

}  // namespace mfa::gp
