#include "gp/solver.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <utility>

#include "gp/compiled.hpp"
#include "linalg/decompose.hpp"

namespace mfa::gp {
namespace {

using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Compiled path: barrier over the flat LSE IR. All evaluation scratch is
// owned by the barrier and preallocated, so center() performs no per-
// iteration allocation.
// ---------------------------------------------------------------------------

class CompiledBarrier {
 public:
  CompiledBarrier(const CompiledGp& gp, const SolverOptions& opts)
      : gp_(gp),
        opts_(opts),
        n_(gp.num_vars()),
        grad_(n_),
        hess_(n_, n_),
        rhs_(n_),
        step_(n_),
        trial_(n_) {}

  /// h(y) = t·F0(y) − Σ log(−F_i(y)), +inf outside the domain.
  double merit(const Vector& y, double t) {
    double h = t * gp_.value(0, y, ws_);
    for (std::size_t f = 1; f < gp_.num_functions(); ++f) {
      const double fi = gp_.value(f, y, ws_);
      if (fi >= 0.0) return std::numeric_limits<double>::infinity();
      h -= std::log(-fi);
    }
    return h;
  }

  /// Newton-minimizes the centering merit from y in place.
  /// Returns false on an unrecoverable numeric failure.
  /// `early_stop` (optional) is checked after every accepted step.
  bool center(Vector& y, double t, int& newton_budget,
              const std::function<bool(const Vector&)>& early_stop) {
    while (newton_budget > 0) {
      --newton_budget;
      ++newton_used_;
      // Assemble gradient and Hessian of the merit: the objective
      // contributes t·∇F0 / t·∇²F0, each constraint κ·∇F_i and
      // κ·∇²F_i + κ²·∇F_i∇F_iᵀ with κ = 1/(−F_i). With ∇²F = M − ggᵀ
      // the fused weights are (t, t, −t) and (κ, κ, κ² − κ).
      for (std::size_t i = 0; i < n_; ++i) {
        grad_[i] = 0.0;
        for (std::size_t j = 0; j < n_; ++j) hess_(i, j) = 0.0;
      }
      (void)gp_.prepare(0, y, ws_);
      gp_.scatter(0, t, t, -t, grad_, hess_, ws_);
      for (std::size_t f = 1; f < gp_.num_functions(); ++f) {
        const double fi = gp_.prepare(f, y, ws_);
        MFA_ASSERT_MSG(fi < 0.0, "centering left the barrier domain");
        const double inv = 1.0 / (-fi);
        gp_.scatter(f, inv, inv, inv * inv - inv, grad_, hess_, ws_);
      }
      // Newton step.
      for (std::size_t i = 0; i < n_; ++i) rhs_[i] = -grad_[i];
      if (!linalg::solve_spd_reuse(hess_, rhs_, spd_ws_, step_)) return false;
      const double decrement = -linalg::dot(grad_, step_) / 2.0;
      if (decrement < opts_.newton_tol) return true;  // centered
      // Trust region in log space: far from all constraints the barrier
      // Hessian vanishes and the Newton step explodes along affine
      // directions; cap the step so iterates move at most a factor
      // e^±kMaxLogStep per coordinate per iteration.
      constexpr double kMaxLogStep = 8.0;
      const double step_len = linalg::norm_inf(step_);
      if (step_len > kMaxLogStep) step_ *= kMaxLogStep / step_len;
      // Backtracking line search on the merit (Armijo, slope 0.3).
      const double h0 = merit(y, t);
      const double slope = linalg::dot(grad_, step_);
      double alpha = 1.0;
      double h_trial = 0.0;
      for (;;) {
        for (std::size_t i = 0; i < n_; ++i) {
          trial_[i] = y[i] + alpha * step_[i];
        }
        h_trial = merit(trial_, t);
        if (h_trial <= h0 + 0.3 * alpha * slope) break;
        alpha *= 0.5;
        if (alpha < 1e-14) return true;  // stalled: accept current center
      }
      y = trial_;
      if (early_stop && early_stop(y)) return true;
      // Numerical floor: when the merit stops moving, further Newton
      // steps only burn budget — declare the point centered.
      if (h0 - h_trial < 1e-13 * (1.0 + std::fabs(h0))) return true;
    }
    return true;  // budget exhausted; caller checks newton_budget
  }

  struct PathResult {
    int outer = 0;
    bool converged = false;  ///< duality-gap bound met (or early_stop hit)
    bool numeric_ok = true;  ///< no unrecoverable Newton failure
  };

  /// Full barrier path from a strictly feasible y; y ends at the solution.
  PathResult path(Vector& y, int& newton_budget,
                  const std::function<bool(const Vector&)>& early_stop) {
    const double m = static_cast<double>(gp_.num_functions() - 1);
    double t = opts_.t0;
    PathResult res;
    while (res.outer < opts_.max_outer) {
      ++res.outer;
      if (!center(y, t, newton_budget, early_stop)) {
        res.numeric_ok = false;
        return res;
      }
      if (early_stop && early_stop(y)) {
        res.converged = true;
        return res;
      }
      if (m == 0.0 || m / t < opts_.tolerance) {
        res.converged = true;
        return res;
      }
      if (newton_budget <= 0) return res;
      t *= opts_.mu;
    }
    return res;
  }

  [[nodiscard]] double max_constraint(const Vector& y) {
    double worst = -std::numeric_limits<double>::infinity();
    for (std::size_t f = 1; f < gp_.num_functions(); ++f) {
      worst = std::max(worst, gp_.value(f, y, ws_));
    }
    return worst;
  }

  [[nodiscard]] int newton_used() const { return newton_used_; }

 private:
  const CompiledGp& gp_;
  const SolverOptions& opts_;
  std::size_t n_;
  GpWorkspace ws_;
  linalg::SpdWorkspace spd_ws_;
  Vector grad_;
  Matrix hess_;
  Vector rhs_;
  Vector step_;
  Vector trial_;
  int newton_used_ = 0;
};

// ---------------------------------------------------------------------------
// Legacy interpretive path: dense LseFunction evaluation with per-call
// buffers. Kept behind SolverOptions::use_compiled_kernel = false as the
// cross-check and the bench/gp_kernel baseline.
// ---------------------------------------------------------------------------

/// Evaluates one LSE function's value, gradient and Hessian at y.
struct Derivatives {
  double value;
  Vector grad;
  Matrix hess;
};

Derivatives eval_full(const LseFunction& f, const Vector& y) {
  Derivatives d{f.value(y), Vector(y.size()), Matrix(y.size(), y.size())};
  f.add_derivatives(y, 1.0, d.grad, d.hess);
  return d;
}

/// The barrier-method working set: objective + inequality constraints in
/// log space, with the Newton centering loop shared by both phases.
class Barrier {
 public:
  Barrier(LseFunction objective, std::vector<LseFunction> constraints,
          const SolverOptions& opts)
      : objective_(std::move(objective)),
        constraints_(std::move(constraints)),
        opts_(opts) {}

  /// h(y) = t·F0(y) − Σ log(−F_i(y)), +inf outside the domain.
  double merit(const Vector& y, double t) const {
    double h = t * objective_.value(y);
    for (const LseFunction& c : constraints_) {
      const double fi = c.value(y);
      if (fi >= 0.0) return std::numeric_limits<double>::infinity();
      h -= std::log(-fi);
    }
    return h;
  }

  /// Newton-minimizes the centering merit from y in place.
  bool center(Vector& y, double t, int& newton_budget,
              const std::function<bool(const Vector&)>& early_stop) const {
    const std::size_t n = y.size();
    while (newton_budget > 0) {
      --newton_budget;
      ++newton_used_;
      Derivatives obj = eval_full(objective_, y);
      Vector grad = obj.grad * t;
      Matrix hess = obj.hess * t;
      for (const LseFunction& c : constraints_) {
        Derivatives ci = eval_full(c, y);
        MFA_ASSERT_MSG(ci.value < 0.0, "centering left the barrier domain");
        const double inv = 1.0 / (-ci.value);
        for (std::size_t i = 0; i < n; ++i) {
          grad[i] += inv * ci.grad[i];
          for (std::size_t j = 0; j < n; ++j) {
            hess(i, j) += inv * ci.hess(i, j) +
                          inv * inv * ci.grad[i] * ci.grad[j];
          }
        }
      }
      Vector rhs = grad * -1.0;
      auto step = linalg::solve_spd(hess, rhs);
      if (!step) return false;
      const double decrement = -linalg::dot(grad, *step) / 2.0;
      if (decrement < opts_.newton_tol) return true;  // centered
      constexpr double kMaxLogStep = 8.0;
      const double step_len = linalg::norm_inf(*step);
      if (step_len > kMaxLogStep) *step *= kMaxLogStep / step_len;
      const double h0 = merit(y, t);
      const double slope = linalg::dot(grad, *step);
      double alpha = 1.0;
      Vector trial = y;
      double h_trial = 0.0;
      for (;;) {
        trial = y;
        trial += *step * alpha;
        h_trial = merit(trial, t);
        if (h_trial <= h0 + 0.3 * alpha * slope) break;
        alpha *= 0.5;
        if (alpha < 1e-14) return true;  // stalled: accept current center
      }
      y = trial;
      if (early_stop && early_stop(y)) return true;
      if (h0 - h_trial < 1e-13 * (1.0 + std::fabs(h0))) return true;
    }
    return true;  // budget exhausted; caller checks newton_budget
  }

  using PathResult = CompiledBarrier::PathResult;

  /// Full barrier path from a strictly feasible y; y ends at the solution.
  PathResult path(Vector& y, int& newton_budget,
                  const std::function<bool(const Vector&)>& early_stop) const {
    const double m = static_cast<double>(constraints_.size());
    double t = opts_.t0;
    PathResult res;
    while (res.outer < opts_.max_outer) {
      ++res.outer;
      if (!center(y, t, newton_budget, early_stop)) {
        res.numeric_ok = false;
        return res;
      }
      if (early_stop && early_stop(y)) {
        res.converged = true;
        return res;
      }
      if (m == 0.0 || m / t < opts_.tolerance) {
        res.converged = true;
        return res;
      }
      if (newton_budget <= 0) return res;
      t *= opts_.mu;
    }
    return res;
  }

  [[nodiscard]] double max_constraint(const Vector& y) const {
    double worst = -std::numeric_limits<double>::infinity();
    for (const LseFunction& c : constraints_) {
      worst = std::max(worst, c.value(y));
    }
    return worst;
  }

  [[nodiscard]] int newton_used() const { return newton_used_; }

 private:
  LseFunction objective_;
  std::vector<LseFunction> constraints_;
  const SolverOptions& opts_;
  mutable int newton_used_ = 0;
};

/// Widens every LSE row with one extra trailing variable s, coefficient
/// −s inside each exponent — turning F(y) ≤ 0 into F(y) − s ≤ 0 while
/// remaining log-sum-exp in (y, s).
LseFunction augment_with_slack(const LseFunction& f) {
  LseFunction out;
  out.a = Matrix(f.a.rows(), f.a.cols() + 1);
  out.b = f.b;
  for (std::size_t r = 0; r < f.a.rows(); ++r) {
    for (std::size_t c = 0; c < f.a.cols(); ++c) out.a(r, c) = f.a(r, c);
    out.a(r, f.a.cols()) = -1.0;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared solve scaffolding
// ---------------------------------------------------------------------------

/// The barrier start point: y = 0, or log x0 clamped strictly inside the
/// variable box when a warm seed is given.
Vector initial_y(std::size_t n, const std::vector<double>* x0, double box) {
  Vector y(n, 0.0);
  if (x0 == nullptr) return y;
  MFA_ASSERT_MSG(x0->size() == n, "warm-start point has wrong dimension");
  const double cap = 0.999 * box;
  for (std::size_t i = 0; i < n; ++i) {
    MFA_ASSERT_MSG((*x0)[i] > 0.0, "warm-start point must be positive");
    y[i] = std::clamp(std::log((*x0)[i]), -cap, cap);
  }
  return y;
}

void export_point(const GpProblem& problem, const Vector& y,
                  double max_constraint, GpSolution& sol) {
  // Clamp before exponentiating: a flat objective can let y drift far
  // along a null direction, and exp() must stay positive and finite.
  for (std::size_t i = 0; i < y.size(); ++i) {
    sol.x[i] = std::exp(std::clamp(y[i], -700.0, 700.0));
    if (sol.x[i] == 0.0) sol.x[i] = 1e-300;
  }
  sol.objective = problem.objective().eval(sol.x);
  sol.max_violation = std::exp(max_constraint) - 1.0;
}

/// Phase I + phase II over either barrier implementation. BarrierT must
/// provide merit/center/path/max_constraint with the shared signatures;
/// MakePhase1 builds the slack-augmented barrier on demand.
template <typename BarrierT, typename MakePhase1>
GpSolution run_two_phase(const GpProblem& problem, const SolverOptions& options,
                         BarrierT& main_barrier, MakePhase1&& make_phase1,
                         std::size_t num_constraints, Vector y) {
  const std::size_t n = problem.num_variables();
  GpSolution sol;
  sol.x.assign(n, 1.0);
  int newton_budget = options.max_newton * options.max_outer;

  // ---- Phase I: find a strictly feasible y (skipped if y already is).
  if (num_constraints > 0 &&
      main_barrier.max_constraint(y) >= -options.feas_margin) {
    auto phase1 = make_phase1();
    Vector ys(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) ys[i] = y[i];
    // s0 strictly above the worst violation keeps the start interior.
    ys[n] = main_barrier.max_constraint(y) + 1.0;
    const double margin = options.feas_margin;
    Vector yy(n);
    auto feasible_found = [&](const Vector& p) {
      // Check the *original* constraints at the y part of the iterate.
      for (std::size_t i = 0; i < n; ++i) yy[i] = p[i];
      return main_barrier.max_constraint(yy) < -margin;
    };
    const auto p1 = phase1->path(ys, newton_budget, feasible_found);
    sol.newton_iterations += phase1->newton_used();

    for (std::size_t i = 0; i < n; ++i) yy[i] = ys[i];
    const double worst = main_barrier.max_constraint(yy);
    if (worst >= -margin) {
      // Phase I finished without reaching s < 0: either the problem is
      // infeasible (phase I converged) or we ran out of budget.
      sol.status = p1.converged && newton_budget > 0 ? GpStatus::kInfeasible
                   : p1.numeric_ok                   ? GpStatus::kIterLimit
                                                     : GpStatus::kNumeric;
      export_point(problem, yy, worst, sol);
      return sol;
    }
    y = yy;
  }

  // ---- Phase II: barrier path on the true objective.
  const auto p2 = main_barrier.path(y, newton_budget, nullptr);
  sol.outer_iterations = p2.outer;
  sol.newton_iterations += main_barrier.newton_used();
  export_point(problem, y,
               num_constraints == 0
                   ? -std::numeric_limits<double>::infinity()
                   : main_barrier.max_constraint(y),
               sol);
  if (num_constraints == 0) sol.max_violation = 0.0;
  sol.status = p2.converged    ? GpStatus::kOptimal
               : p2.numeric_ok ? GpStatus::kIterLimit
                               : GpStatus::kNumeric;
  return sol;
}

/// Barrier solve over a prepared artifact: no per-call IR mutation at
/// all. The box rows are already part of the model, and the phase-I
/// slack problem is derived through the structure-level cache only when
/// phase I actually runs (a warm, strictly feasible seed never pays for
/// the lowering — and a cold one pays it once per *structure*, not per
/// solve).
GpSolution solve_prepared(const GpProblem& problem, const CompiledModel& model,
                          const SolverOptions& options,
                          const std::vector<double>* x0) {
  const std::size_t n = problem.num_variables();
  MFA_ASSERT_MSG(model.num_vars() == n &&
                     model.variable_box() == options.variable_box,
                 "prepared model does not match the problem/options");
  const CompiledGp& gp = model.gp();
  CompiledBarrier main_barrier(gp, options);
  CompiledGp slack_gp;  // assigned lazily; must outlive the barrier
  std::unique_ptr<CompiledBarrier> phase1;
  auto make_phase1 = [&]() -> CompiledBarrier* {
    slack_gp = model.phase1();
    phase1 = std::make_unique<CompiledBarrier>(slack_gp, options);
    return phase1.get();
  };
  return run_two_phase(problem, options, main_barrier, make_phase1,
                       gp.num_functions() - 1,
                       initial_y(n, x0, options.variable_box));
}

GpSolution solve_compiled(const GpProblem& problem,
                          const SolverOptions& options,
                          const std::vector<double>* x0) {
  // Y = 46 (the default variable_box) allows x ∈ [1e-20, 1e20], far
  // beyond any meaningful allocation quantity; the box rows themselves
  // now live in the compiled artifact (CompiledModel::build).
  const CompiledModel model =
      CompiledModel::build(problem, options.variable_box);
  return solve_prepared(problem, model, options, x0);
}

GpSolution solve_legacy(const GpProblem& problem, const SolverOptions& options,
                        const std::vector<double>* x0) {
  const std::size_t n = problem.num_variables();
  LseFunction obj = problem.compile(problem.objective());
  std::vector<LseFunction> cons;
  cons.reserve(problem.constraints().size() + 2 * n);
  for (const Posynomial& p : problem.constraints()) {
    cons.push_back(problem.compile(p));
  }
  for (std::size_t j = 0; j < n; ++j) {
    for (double sign : {1.0, -1.0}) {
      LseFunction bound;
      bound.a = Matrix(1, n);
      bound.a(0, j) = sign;
      bound.b = Vector(1);
      bound.b[0] = -options.variable_box;
      cons.push_back(std::move(bound));
    }
  }
  const std::size_t num_constraints = cons.size();
  Barrier main_barrier(obj, cons, options);
  std::unique_ptr<Barrier> phase1;
  auto make_phase1 = [&]() -> Barrier* {
    LseFunction slack_obj;
    slack_obj.a = Matrix(1, n + 1);
    slack_obj.a(0, n) = 1.0;  // F0(y, s) = s
    slack_obj.b = Vector(1);
    std::vector<LseFunction> slack_cons;
    slack_cons.reserve(cons.size());
    for (const LseFunction& c : cons) {
      slack_cons.push_back(augment_with_slack(c));
    }
    phase1 = std::make_unique<Barrier>(std::move(slack_obj),
                                       std::move(slack_cons), options);
    return phase1.get();
  };
  return run_two_phase(problem, options, main_barrier, make_phase1,
                       num_constraints,
                       initial_y(n, x0, options.variable_box));
}

std::atomic<std::int64_t> g_newton_iterations{0};

}  // namespace

std::int64_t total_newton_iterations() {
  return g_newton_iterations.load(std::memory_order_relaxed);
}

const char* to_string(GpStatus status) {
  switch (status) {
    case GpStatus::kOptimal:
      return "optimal";
    case GpStatus::kInfeasible:
      return "infeasible";
    case GpStatus::kIterLimit:
      return "iteration-limit";
    case GpStatus::kNumeric:
      return "numeric-failure";
  }
  return "unknown";
}

GpSolution GpSolver::solve(const GpProblem& problem) const {
  GpSolution sol = options_.use_compiled_kernel
                       ? solve_compiled(problem, options_, nullptr)
                       : solve_legacy(problem, options_, nullptr);
  g_newton_iterations.fetch_add(sol.newton_iterations,
                                std::memory_order_relaxed);
  return sol;
}

GpSolution GpSolver::solve(const GpProblem& problem,
                           const std::vector<double>& x0) const {
  GpSolution sol = options_.use_compiled_kernel
                       ? solve_compiled(problem, options_, &x0)
                       : solve_legacy(problem, options_, &x0);
  g_newton_iterations.fetch_add(sol.newton_iterations,
                                std::memory_order_relaxed);
  return sol;
}

GpSolution GpSolver::solve(const GpProblem& problem,
                           const CompiledModel& model) const {
  GpSolution sol = solve_prepared(problem, model, options_, nullptr);
  g_newton_iterations.fetch_add(sol.newton_iterations,
                                std::memory_order_relaxed);
  return sol;
}

GpSolution GpSolver::solve(const GpProblem& problem, const CompiledModel& model,
                           const std::vector<double>& x0) const {
  GpSolution sol = solve_prepared(problem, model, options_, &x0);
  g_newton_iterations.fetch_add(sol.newton_iterations,
                                std::memory_order_relaxed);
  return sol;
}

}  // namespace mfa::gp
