#include "gp/solver.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <utility>

#include "gp/batched.hpp"
#include "gp/compiled.hpp"
#include "linalg/decompose.hpp"

namespace mfa::gp {
namespace {

using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------------------
// Compiled path: barrier over the flat LSE IR. All evaluation scratch is
// owned by the barrier and preallocated, so center() performs no per-
// iteration allocation.
// ---------------------------------------------------------------------------

class CompiledBarrier {
 public:
  CompiledBarrier(const CompiledGp& gp, const SolverOptions& opts)
      : gp_(gp),
        opts_(opts),
        n_(gp.num_vars()),
        grad_(n_),
        hess_(n_, n_),
        rhs_(n_),
        step_(n_),
        trial_(n_) {}

  /// h(y) = t·F0(y) − Σ log(−F_i(y)), +inf outside the domain.
  double merit(const Vector& y, double t) {
    double h = t * gp_.value(0, y, ws_);
    for (std::size_t f = 1; f < gp_.num_functions(); ++f) {
      const double fi = gp_.value(f, y, ws_);
      if (fi >= 0.0) return std::numeric_limits<double>::infinity();
      h -= std::log(-fi);
    }
    return h;
  }

  /// Newton-minimizes the centering merit from y in place.
  /// Returns false on an unrecoverable numeric failure.
  /// `early_stop` (optional) is checked after every accepted step.
  bool center(Vector& y, double t, int& newton_budget,
              const std::function<bool(const Vector&)>& early_stop) {
    while (newton_budget > 0) {
      --newton_budget;
      ++newton_used_;
      // Assemble gradient and Hessian of the merit: the objective
      // contributes t·∇F0 / t·∇²F0, each constraint κ·∇F_i and
      // κ·∇²F_i + κ²·∇F_i∇F_iᵀ with κ = 1/(−F_i). With ∇²F = M − ggᵀ
      // the fused weights are (t, t, −t) and (κ, κ, κ² − κ).
      for (std::size_t i = 0; i < n_; ++i) {
        grad_[i] = 0.0;
        for (std::size_t j = 0; j < n_; ++j) hess_(i, j) = 0.0;
      }
      (void)gp_.prepare(0, y, ws_);
      gp_.scatter(0, t, t, -t, grad_, hess_, ws_);
      for (std::size_t f = 1; f < gp_.num_functions(); ++f) {
        const double fi = gp_.prepare(f, y, ws_);
        MFA_ASSERT_MSG(fi < 0.0, "centering left the barrier domain");
        const double inv = 1.0 / (-fi);
        gp_.scatter(f, inv, inv, inv * inv - inv, grad_, hess_, ws_);
      }
      // Newton step.
      for (std::size_t i = 0; i < n_; ++i) rhs_[i] = -grad_[i];
      if (!linalg::solve_spd_reuse(hess_, rhs_, spd_ws_, step_)) return false;
      const double decrement = -linalg::dot(grad_, step_) / 2.0;
      if (decrement < opts_.newton_tol) return true;  // centered
      // Trust region in log space: far from all constraints the barrier
      // Hessian vanishes and the Newton step explodes along affine
      // directions; cap the step so iterates move at most a factor
      // e^±kMaxLogStep per coordinate per iteration.
      constexpr double kMaxLogStep = 8.0;
      const double step_len = linalg::norm_inf(step_);
      if (step_len > kMaxLogStep) step_ *= kMaxLogStep / step_len;
      // Backtracking line search on the merit (Armijo, slope 0.3).
      const double h0 = merit(y, t);
      const double slope = linalg::dot(grad_, step_);
      double alpha = 1.0;
      double h_trial = 0.0;
      for (;;) {
        for (std::size_t i = 0; i < n_; ++i) {
          trial_[i] = y[i] + alpha * step_[i];
        }
        h_trial = merit(trial_, t);
        if (h_trial <= h0 + 0.3 * alpha * slope) break;
        alpha *= 0.5;
        if (alpha < 1e-14) return true;  // stalled: accept current center
      }
      y = trial_;
      if (early_stop && early_stop(y)) return true;
      // Numerical floor: when the merit stops moving, further Newton
      // steps only burn budget — declare the point centered.
      if (h0 - h_trial < 1e-13 * (1.0 + std::fabs(h0))) return true;
    }
    return true;  // budget exhausted; caller checks newton_budget
  }

  struct PathResult {
    int outer = 0;
    bool converged = false;  ///< duality-gap bound met (or early_stop hit)
    bool numeric_ok = true;  ///< no unrecoverable Newton failure
  };

  /// Full barrier path from a strictly feasible y; y ends at the solution.
  PathResult path(Vector& y, int& newton_budget,
                  const std::function<bool(const Vector&)>& early_stop) {
    const double m = static_cast<double>(gp_.num_functions() - 1);
    double t = opts_.t0;
    PathResult res;
    while (res.outer < opts_.max_outer) {
      ++res.outer;
      if (!center(y, t, newton_budget, early_stop)) {
        res.numeric_ok = false;
        return res;
      }
      if (early_stop && early_stop(y)) {
        res.converged = true;
        return res;
      }
      if (m == 0.0 || m / t < opts_.tolerance) {
        res.converged = true;
        return res;
      }
      if (newton_budget <= 0) return res;
      t *= opts_.mu;
    }
    return res;
  }

  [[nodiscard]] double max_constraint(const Vector& y) {
    double worst = -std::numeric_limits<double>::infinity();
    for (std::size_t f = 1; f < gp_.num_functions(); ++f) {
      worst = std::max(worst, gp_.value(f, y, ws_));
    }
    return worst;
  }

  [[nodiscard]] int newton_used() const { return newton_used_; }

 private:
  const CompiledGp& gp_;
  const SolverOptions& opts_;
  std::size_t n_;
  GpWorkspace ws_;
  linalg::SpdWorkspace spd_ws_;
  Vector grad_;
  Matrix hess_;
  Vector rhs_;
  Vector step_;
  Vector trial_;
  int newton_used_ = 0;
};

// ---------------------------------------------------------------------------
// Legacy interpretive path: dense LseFunction evaluation with per-call
// buffers. Kept behind SolverOptions::use_compiled_kernel = false as the
// cross-check and the bench/gp_kernel baseline.
// ---------------------------------------------------------------------------

/// Evaluates one LSE function's value, gradient and Hessian at y.
struct Derivatives {
  double value;
  Vector grad;
  Matrix hess;
};

Derivatives eval_full(const LseFunction& f, const Vector& y) {
  Derivatives d{f.value(y), Vector(y.size()), Matrix(y.size(), y.size())};
  f.add_derivatives(y, 1.0, d.grad, d.hess);
  return d;
}

/// The barrier-method working set: objective + inequality constraints in
/// log space, with the Newton centering loop shared by both phases.
class Barrier {
 public:
  Barrier(LseFunction objective, std::vector<LseFunction> constraints,
          const SolverOptions& opts)
      : objective_(std::move(objective)),
        constraints_(std::move(constraints)),
        opts_(opts) {}

  /// h(y) = t·F0(y) − Σ log(−F_i(y)), +inf outside the domain.
  double merit(const Vector& y, double t) const {
    double h = t * objective_.value(y);
    for (const LseFunction& c : constraints_) {
      const double fi = c.value(y);
      if (fi >= 0.0) return std::numeric_limits<double>::infinity();
      h -= std::log(-fi);
    }
    return h;
  }

  /// Newton-minimizes the centering merit from y in place.
  bool center(Vector& y, double t, int& newton_budget,
              const std::function<bool(const Vector&)>& early_stop) const {
    const std::size_t n = y.size();
    while (newton_budget > 0) {
      --newton_budget;
      ++newton_used_;
      Derivatives obj = eval_full(objective_, y);
      Vector grad = obj.grad * t;
      Matrix hess = obj.hess * t;
      for (const LseFunction& c : constraints_) {
        Derivatives ci = eval_full(c, y);
        MFA_ASSERT_MSG(ci.value < 0.0, "centering left the barrier domain");
        const double inv = 1.0 / (-ci.value);
        for (std::size_t i = 0; i < n; ++i) {
          grad[i] += inv * ci.grad[i];
          for (std::size_t j = 0; j < n; ++j) {
            hess(i, j) += inv * ci.hess(i, j) +
                          inv * inv * ci.grad[i] * ci.grad[j];
          }
        }
      }
      Vector rhs = grad * -1.0;
      auto step = linalg::solve_spd(hess, rhs);
      if (!step) return false;
      const double decrement = -linalg::dot(grad, *step) / 2.0;
      if (decrement < opts_.newton_tol) return true;  // centered
      constexpr double kMaxLogStep = 8.0;
      const double step_len = linalg::norm_inf(*step);
      if (step_len > kMaxLogStep) *step *= kMaxLogStep / step_len;
      const double h0 = merit(y, t);
      const double slope = linalg::dot(grad, *step);
      double alpha = 1.0;
      Vector trial = y;
      double h_trial = 0.0;
      for (;;) {
        trial = y;
        trial += *step * alpha;
        h_trial = merit(trial, t);
        if (h_trial <= h0 + 0.3 * alpha * slope) break;
        alpha *= 0.5;
        if (alpha < 1e-14) return true;  // stalled: accept current center
      }
      y = trial;
      if (early_stop && early_stop(y)) return true;
      if (h0 - h_trial < 1e-13 * (1.0 + std::fabs(h0))) return true;
    }
    return true;  // budget exhausted; caller checks newton_budget
  }

  using PathResult = CompiledBarrier::PathResult;

  /// Full barrier path from a strictly feasible y; y ends at the solution.
  PathResult path(Vector& y, int& newton_budget,
                  const std::function<bool(const Vector&)>& early_stop) const {
    const double m = static_cast<double>(constraints_.size());
    double t = opts_.t0;
    PathResult res;
    while (res.outer < opts_.max_outer) {
      ++res.outer;
      if (!center(y, t, newton_budget, early_stop)) {
        res.numeric_ok = false;
        return res;
      }
      if (early_stop && early_stop(y)) {
        res.converged = true;
        return res;
      }
      if (m == 0.0 || m / t < opts_.tolerance) {
        res.converged = true;
        return res;
      }
      if (newton_budget <= 0) return res;
      t *= opts_.mu;
    }
    return res;
  }

  [[nodiscard]] double max_constraint(const Vector& y) const {
    double worst = -std::numeric_limits<double>::infinity();
    for (const LseFunction& c : constraints_) {
      worst = std::max(worst, c.value(y));
    }
    return worst;
  }

  [[nodiscard]] int newton_used() const { return newton_used_; }

 private:
  LseFunction objective_;
  std::vector<LseFunction> constraints_;
  const SolverOptions& opts_;
  mutable int newton_used_ = 0;
};

/// Widens every LSE row with one extra trailing variable s, coefficient
/// −s inside each exponent — turning F(y) ≤ 0 into F(y) − s ≤ 0 while
/// remaining log-sum-exp in (y, s).
LseFunction augment_with_slack(const LseFunction& f) {
  LseFunction out;
  out.a = Matrix(f.a.rows(), f.a.cols() + 1);
  out.b = f.b;
  for (std::size_t r = 0; r < f.a.rows(); ++r) {
    for (std::size_t c = 0; c < f.a.cols(); ++c) out.a(r, c) = f.a(r, c);
    out.a(r, f.a.cols()) = -1.0;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared solve scaffolding
// ---------------------------------------------------------------------------

/// The barrier start point: y = 0, or log x0 clamped strictly inside the
/// variable box when a warm seed is given.
Vector initial_y(std::size_t n, const std::vector<double>* x0, double box) {
  Vector y(n, 0.0);
  if (x0 == nullptr) return y;
  MFA_ASSERT_MSG(x0->size() == n, "warm-start point has wrong dimension");
  const double cap = 0.999 * box;
  for (std::size_t i = 0; i < n; ++i) {
    MFA_ASSERT_MSG((*x0)[i] > 0.0, "warm-start point must be positive");
    y[i] = std::clamp(std::log((*x0)[i]), -cap, cap);
  }
  return y;
}

void export_point(const GpProblem& problem, const Vector& y,
                  double max_constraint, GpSolution& sol) {
  // Clamp before exponentiating: a flat objective can let y drift far
  // along a null direction, and exp() must stay positive and finite.
  for (std::size_t i = 0; i < y.size(); ++i) {
    sol.x[i] = std::exp(std::clamp(y[i], -700.0, 700.0));
    if (sol.x[i] == 0.0) sol.x[i] = 1e-300;
  }
  sol.objective = problem.objective().eval(sol.x);
  sol.max_violation = std::exp(max_constraint) - 1.0;
}

/// Phase I + phase II over either barrier implementation. BarrierT must
/// provide merit/center/path/max_constraint with the shared signatures;
/// MakePhase1 builds the slack-augmented barrier on demand.
template <typename BarrierT, typename MakePhase1>
GpSolution run_two_phase(const GpProblem& problem, const SolverOptions& options,
                         BarrierT& main_barrier, MakePhase1&& make_phase1,
                         std::size_t num_constraints, Vector y) {
  const std::size_t n = problem.num_variables();
  GpSolution sol;
  sol.x.assign(n, 1.0);
  int newton_budget = options.max_newton * options.max_outer;

  // ---- Phase I: find a strictly feasible y (skipped if y already is).
  if (num_constraints > 0 &&
      main_barrier.max_constraint(y) >= -options.feas_margin) {
    auto phase1 = make_phase1();
    Vector ys(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) ys[i] = y[i];
    // s0 strictly above the worst violation keeps the start interior.
    ys[n] = main_barrier.max_constraint(y) + 1.0;
    const double margin = options.feas_margin;
    Vector yy(n);
    auto feasible_found = [&](const Vector& p) {
      // Check the *original* constraints at the y part of the iterate.
      for (std::size_t i = 0; i < n; ++i) yy[i] = p[i];
      return main_barrier.max_constraint(yy) < -margin;
    };
    const auto p1 = phase1->path(ys, newton_budget, feasible_found);
    sol.newton_iterations += phase1->newton_used();

    for (std::size_t i = 0; i < n; ++i) yy[i] = ys[i];
    const double worst = main_barrier.max_constraint(yy);
    if (worst >= -margin) {
      // Phase I finished without reaching s < 0: either the problem is
      // infeasible (phase I converged) or we ran out of budget.
      sol.status = p1.converged && newton_budget > 0 ? GpStatus::kInfeasible
                   : p1.numeric_ok                   ? GpStatus::kIterLimit
                                                     : GpStatus::kNumeric;
      export_point(problem, yy, worst, sol);
      return sol;
    }
    y = yy;
  }

  // ---- Phase II: barrier path on the true objective.
  const auto p2 = main_barrier.path(y, newton_budget, nullptr);
  sol.outer_iterations = p2.outer;
  sol.newton_iterations += main_barrier.newton_used();
  export_point(problem, y,
               num_constraints == 0
                   ? -std::numeric_limits<double>::infinity()
                   : main_barrier.max_constraint(y),
               sol);
  if (num_constraints == 0) sol.max_violation = 0.0;
  sol.status = p2.converged    ? GpStatus::kOptimal
               : p2.numeric_ok ? GpStatus::kIterLimit
                               : GpStatus::kNumeric;
  return sol;
}

/// Barrier solve over a prepared artifact: no per-call IR mutation at
/// all. The box rows are already part of the model, and the phase-I
/// slack problem is derived through the structure-level cache only when
/// phase I actually runs (a warm, strictly feasible seed never pays for
/// the lowering — and a cold one pays it once per *structure*, not per
/// solve).
GpSolution solve_prepared(const GpProblem& problem, const CompiledModel& model,
                          const SolverOptions& options,
                          const std::vector<double>* x0) {
  const std::size_t n = problem.num_variables();
  MFA_ASSERT_MSG(model.num_vars() == n &&
                     model.variable_box() == options.variable_box,
                 "prepared model does not match the problem/options");
  const CompiledGp& gp = model.gp();
  CompiledBarrier main_barrier(gp, options);
  CompiledGp slack_gp;  // assigned lazily; must outlive the barrier
  std::unique_ptr<CompiledBarrier> phase1;
  auto make_phase1 = [&]() -> CompiledBarrier* {
    slack_gp = model.phase1();
    phase1 = std::make_unique<CompiledBarrier>(slack_gp, options);
    return phase1.get();
  };
  return run_two_phase(problem, options, main_barrier, make_phase1,
                       gp.num_functions() - 1,
                       initial_y(n, x0, options.variable_box));
}

GpSolution solve_compiled(const GpProblem& problem,
                          const SolverOptions& options,
                          const std::vector<double>* x0) {
  // Y = 46 (the default variable_box) allows x ∈ [1e-20, 1e20], far
  // beyond any meaningful allocation quantity; the box rows themselves
  // now live in the compiled artifact (CompiledModel::build).
  const CompiledModel model =
      CompiledModel::build(problem, options.variable_box);
  return solve_prepared(problem, model, options, x0);
}

GpSolution solve_legacy(const GpProblem& problem, const SolverOptions& options,
                        const std::vector<double>* x0) {
  const std::size_t n = problem.num_variables();
  LseFunction obj = problem.compile(problem.objective());
  std::vector<LseFunction> cons;
  cons.reserve(problem.constraints().size() + 2 * n);
  for (const Posynomial& p : problem.constraints()) {
    cons.push_back(problem.compile(p));
  }
  for (std::size_t j = 0; j < n; ++j) {
    for (double sign : {1.0, -1.0}) {
      LseFunction bound;
      bound.a = Matrix(1, n);
      bound.a(0, j) = sign;
      bound.b = Vector(1);
      bound.b[0] = -options.variable_box;
      cons.push_back(std::move(bound));
    }
  }
  const std::size_t num_constraints = cons.size();
  Barrier main_barrier(obj, cons, options);
  std::unique_ptr<Barrier> phase1;
  auto make_phase1 = [&]() -> Barrier* {
    LseFunction slack_obj;
    slack_obj.a = Matrix(1, n + 1);
    slack_obj.a(0, n) = 1.0;  // F0(y, s) = s
    slack_obj.b = Vector(1);
    std::vector<LseFunction> slack_cons;
    slack_cons.reserve(cons.size());
    for (const LseFunction& c : cons) {
      slack_cons.push_back(augment_with_slack(c));
    }
    phase1 = std::make_unique<Barrier>(std::move(slack_obj),
                                       std::move(slack_cons), options);
    return phase1.get();
  };
  return run_two_phase(problem, options, main_barrier, make_phase1,
                       num_constraints,
                       initial_y(n, x0, options.variable_box));
}

// ---------------------------------------------------------------------------
// Batched lock-step driver (GpSolver::solve_batch). Every lane replays the
// scalar two-phase barrier semantics — same centering criteria, trust
// region, Armijo schedule, budget accounting and status mapping — but all
// lanes advance through one fused batched assemble/solve per round. Each
// lane runs its *own* t-ladder (its t advances when that lane centers):
// a literally shared t would make a lane's trajectory depend on its
// slowest batchmate, breaking the "results independent of group
// formation" contract. Converged lanes retire early: they are frozen
// (zero assemble weights, still computed) and physically compacted out
// once active occupancy drops below half.
// ---------------------------------------------------------------------------

/// Per-lane path state, indexed by the lane's slot in the initial batch.
struct BatchLaneState {
  double t = 1.0;           ///< current barrier weight (per-lane ladder)
  int outer = 0;            ///< barrier stages entered
  int budget = 0;           ///< remaining Newton budget (shared by phases)
  int newton_used = 0;      ///< Newton rounds this lane participated in
  bool begin_center = true; ///< next round opens a new centering stage
  bool active = true;
  bool converged = false;
  bool numeric_ok = true;
};

/// Early-stop hook for the batched path (phase I's feasibility check).
/// Indices are *current-slot* indices; compact() keeps the hook's own
/// lane-parallel state in sync with the path's compaction.
class BatchEarlyStop {
 public:
  virtual ~BatchEarlyStop() = default;
  /// For every current slot with mask[slot] set, sets retire[slot] when
  /// the lane's stop condition holds at its column of y.
  virtual void check(const LaneArray& y, const std::vector<std::uint8_t>& mask,
                     std::vector<std::uint8_t>& retire) = 0;
  /// The path compacted to the given current-slot subset.
  virtual void compact(const std::vector<std::uint32_t>& keep) = 0;
};

/// Phase-I early stop: retire a lane as soon as the *original*
/// constraints are strictly satisfied at the y-part of its slack
/// iterate. Evaluates the main model batched, directly on the slack
/// iterate — the slack variable is the last row, so the main model's
/// var-major reads never touch it.
class FeasibilityStop final : public BatchEarlyStop {
 public:
  FeasibilityStop(std::vector<const CompiledGp*> main_gps, double margin)
      : gps_(std::move(main_gps)), margin_(margin) {
    rebuild();
  }

  void check(const LaneArray& y, const std::vector<std::uint8_t>& mask,
             std::vector<std::uint8_t>& retire) override {
    const std::size_t L = model_->lanes();
    bool any = false;
    for (std::size_t l = 0; l < L; ++l) any = any || mask[l] != 0;
    if (!any) return;
    fval_.resize(L);
    worst_.assign(L, -std::numeric_limits<double>::infinity());
    for (std::size_t f = 1; f < model_->num_functions(); ++f) {
      model_->value(f, y, ws_, fval_.data());
      for (std::size_t l = 0; l < L; ++l) {
        worst_[l] = std::max(worst_[l], fval_[l]);
      }
    }
    for (std::size_t l = 0; l < L; ++l) {
      if (mask[l] != 0 && worst_[l] < -margin_) retire[l] = 1;
    }
  }

  void compact(const std::vector<std::uint32_t>& keep) override {
    std::vector<const CompiledGp*> kept;
    kept.reserve(keep.size());
    for (const std::uint32_t slot : keep) kept.push_back(gps_[slot]);
    gps_ = std::move(kept);
    rebuild();
  }

 private:
  void rebuild() {
    auto m = BatchedModel::build(gps_);
    MFA_ASSERT_MSG(m.has_value(), "phase-I lanes lost their shared structure");
    model_.emplace(std::move(*m));
    // Presize here so check()'s value() calls stay allocation-free.
    model_->ensure_workspace(ws_);
  }

  std::vector<const CompiledGp*> gps_;
  std::optional<BatchedModel> model_;
  BatchedWorkspace ws_;
  std::vector<double> fval_;
  std::vector<double> worst_;
  double margin_;
};

/// Lock-step barrier path over the lanes of `gps0` (which must share one
/// Structure). `states` and `y` are parallel to gps0 and indexed by the
/// initial slot; y carries the start points in and the final iterates
/// out. Every lane ends retired, with its converged/numeric_ok/budget/
/// newton_used fields holding exactly what the scalar path() would have
/// produced for it alone.
void run_batched_path(const SolverOptions& opts,
                      const std::vector<const CompiledGp*>& gps0,
                      std::vector<BatchLaneState>& states,
                      std::vector<Vector>& y, BatchEarlyStop* early) {
  const std::size_t n = gps0.front()->num_vars();
  const double m = static_cast<double>(gps0.front()->num_functions() - 1);
  const std::size_t num_fun = gps0.front()->num_functions();

  std::vector<const CompiledGp*> gps = gps0;
  std::vector<std::uint32_t> origin(gps.size());
  for (std::size_t i = 0; i < origin.size(); ++i) {
    origin[i] = static_cast<std::uint32_t>(i);
  }
  auto built = BatchedModel::build(gps);
  MFA_ASSERT_MSG(built.has_value(), "batched lanes must share one structure");
  BatchedModel model = std::move(*built);

  std::size_t L = gps.size();
  LaneArray Y(n * L);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t l = 0; l < L; ++l) Y[j * L + l] = y[origin[l]][j];
  }

  BatchedWorkspace ws;
  BatchedSpdWorkspace spd_ws;
  LaneArray grad(n * L), hess(n * n * L), rhs(n * L), step(n * L),
      trial(n * L);
  // All evaluation/solve scratch is sized here, before the iteration
  // loop: value()/scatter()/batched_spd_solve assert rather than grow.
  model.ensure_workspace(ws);
  reserve_spd_workspace(n, L, spd_ws, step);
  std::vector<double> wg(L), wm(L), wr(L), fval(L), h0(L), h_acc(L), slope(L),
      alpha(L), h_trial(L);
  std::vector<std::uint8_t> ok(L), centered(L), searching(L), stepped(L),
      dom(L), mask(L), retire(L);
  // Scalar fallback scratch for lanes whose unregularized Cholesky fails.
  Matrix a_s(n, n);
  Vector b_s(n), x_s(n);
  linalg::SpdWorkspace scalar_spd;

  auto lane_state = [&](std::size_t slot) -> BatchLaneState& {
    return states[origin[slot]];
  };
  auto retire_lane = [&](std::size_t slot, bool converged) {
    BatchLaneState& st = lane_state(slot);
    st.active = false;
    st.converged = converged;
    Vector& out = y[origin[slot]];
    for (std::size_t j = 0; j < n; ++j) out[j] = Y[j * L + slot];
  };

  for (;;) {
    // ---- Occupancy: stop when everyone retired; compact below half.
    std::vector<std::uint32_t> live;
    for (std::size_t l = 0; l < L; ++l) {
      if (lane_state(l).active) live.push_back(static_cast<std::uint32_t>(l));
    }
    if (live.empty()) return;
    if (live.size() * 2 < L) {
      const std::size_t L2 = live.size();
      std::vector<const CompiledGp*> gps2;
      std::vector<std::uint32_t> origin2;
      gps2.reserve(L2);
      origin2.reserve(L2);
      LaneArray Y2(n * L2);
      for (std::size_t i = 0; i < L2; ++i) {
        gps2.push_back(gps[live[i]]);
        origin2.push_back(origin[live[i]]);
        for (std::size_t j = 0; j < n; ++j) {
          Y2[j * L2 + i] = Y[j * L + live[i]];
        }
      }
      gps = std::move(gps2);
      origin = std::move(origin2);
      Y = std::move(Y2);
      auto rebuilt = BatchedModel::build(gps);
      MFA_ASSERT(rebuilt.has_value());
      model = std::move(*rebuilt);
      // Compaction only shrinks L, so this is a no-op resize-wise, but
      // it keeps the sized-before-use invariant explicit.
      model.ensure_workspace(ws);
      if (early != nullptr) early->compact(live);
      L = L2;
      grad.resize(n * L);
      hess.resize(n * n * L);
      rhs.resize(n * L);
      step.resize(n * L);
      trial.resize(n * L);
      wg.resize(L);
      wm.resize(L);
      wr.resize(L);
      fval.resize(L);
      h0.resize(L);
      h_acc.resize(L);
      slope.resize(L);
      alpha.resize(L);
      h_trial.resize(L);
      ok.resize(L);
      centered.resize(L);
      searching.resize(L);
      stepped.resize(L);
      dom.resize(L);
      mask.resize(L);
      retire.resize(L);
      live.clear();
      for (std::size_t l = 0; l < L; ++l) {
        live.push_back(static_cast<std::uint32_t>(l));
      }
    }

    // ---- Round bookkeeping: open new centering stages, and give lanes
    // whose budget is spent the same last early-stop/gap look the
    // scalar path performs before returning.
    std::fill(mask.begin(), mask.end(), std::uint8_t{0});
    std::fill(retire.begin(), retire.end(), std::uint8_t{0});
    bool any_exhausted = false;
    for (std::size_t l = 0; l < L; ++l) {
      BatchLaneState& st = lane_state(l);
      if (!st.active) continue;
      if (st.begin_center) {
        if (st.outer >= opts.max_outer) {
          retire_lane(l, /*converged=*/false);
          continue;
        }
        ++st.outer;
        st.begin_center = false;
      }
      if (st.budget <= 0) {
        mask[l] = 1;
        any_exhausted = true;
      }
    }
    if (any_exhausted) {
      if (early != nullptr) early->check(Y, mask, retire);
      for (std::size_t l = 0; l < L; ++l) {
        if (mask[l] == 0) continue;
        const BatchLaneState& st = lane_state(l);
        const bool conv =
            retire[l] != 0 || m == 0.0 || m / st.t < opts.tolerance;
        retire_lane(l, conv);
      }
    }
    bool any_active = false;
    for (std::size_t l = 0; l < L; ++l) any_active |= lane_state(l).active;
    if (!any_active) continue;  // loop top handles termination

    // ---- Assemble: one fused batched prepare/scatter pass per
    // function, with per-lane barrier weights; retired lanes are frozen
    // with zero weights. The centering merit h0 is accumulated from the
    // same prepared values the scalar merit() recomputes.
    grad.fill(0.0);
    hess.fill(0.0);
    for (std::size_t l = 0; l < L; ++l) {
      BatchLaneState& st = lane_state(l);
      if (st.active) {
        --st.budget;
        ++st.newton_used;
        wg[l] = st.t;
        wm[l] = st.t;
        wr[l] = -st.t;
      } else {
        wg[l] = wm[l] = wr[l] = 0.0;
      }
    }
    model.prepare(0, Y, ws, fval.data());
    for (std::size_t l = 0; l < L; ++l) {
      h0[l] = lane_state(l).active ? lane_state(l).t * fval[l] : 0.0;
    }
    model.scatter(0, wg.data(), wm.data(), wr.data(), grad, hess, ws);
    for (std::size_t f = 1; f < num_fun; ++f) {
      model.prepare(f, Y, ws, fval.data());
      for (std::size_t l = 0; l < L; ++l) {
        if (!lane_state(l).active) {
          wg[l] = wm[l] = wr[l] = 0.0;
          continue;
        }
        MFA_ASSERT_MSG(fval[l] < 0.0, "centering left the barrier domain");
        const double inv = 1.0 / (-fval[l]);
        wg[l] = inv;
        wm[l] = inv;
        wr[l] = inv * inv - inv;
        h0[l] -= std::log(-fval[l]);
      }
      model.scatter(f, wg.data(), wm.data(), wr.data(), grad, hess, ws);
    }

    // ---- Newton systems: lock-step unregularized Cholesky; lanes that
    // hit a bad pivot re-solve through the scalar escalating-
    // regularization path (identical to what they would do alone).
    for (std::size_t i = 0; i < n * L; ++i) rhs[i] = -grad[i];
    batched_spd_solve(hess, rhs, n, L, spd_ws, step, ok.data());
    for (std::size_t l = 0; l < L; ++l) {
      if (!lane_state(l).active || ok[l] != 0) continue;
      for (std::size_t i = 0; i < n; ++i) {
        b_s[i] = rhs[i * L + l];
        for (std::size_t j = 0; j < n; ++j) {
          a_s(i, j) = hess[(i * n + j) * L + l];
        }
      }
      if (!linalg::solve_spd_reuse(a_s, b_s, scalar_spd, x_s)) {
        lane_state(l).numeric_ok = false;
        retire_lane(l, /*converged=*/false);
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) step[j * L + l] = x_s[j];
    }

    // ---- Decrement test, trust region, and per-lane line-search prep.
    std::fill(centered.begin(), centered.end(), std::uint8_t{0});
    std::fill(searching.begin(), searching.end(), std::uint8_t{0});
    std::fill(stepped.begin(), stepped.end(), std::uint8_t{0});
    for (std::size_t l = 0; l < L; ++l) {
      if (!lane_state(l).active) continue;
      double dec = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        dec += grad[j * L + l] * step[j * L + l];
      }
      dec = -dec / 2.0;
      if (dec < opts.newton_tol) {
        centered[l] = 1;  // centered: no step this round
        continue;
      }
      constexpr double kMaxLogStep = 8.0;
      double step_len = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        step_len = std::max(step_len, std::fabs(step[j * L + l]));
      }
      if (step_len > kMaxLogStep) {
        const double scale = kMaxLogStep / step_len;
        for (std::size_t j = 0; j < n; ++j) step[j * L + l] *= scale;
      }
      double sl = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        sl += grad[j * L + l] * step[j * L + l];
      }
      slope[l] = sl;
      alpha[l] = 1.0;
      searching[l] = 1;
    }

    // ---- Lock-step Armijo backtracking: shared rounds, per-lane alpha.
    // Non-searching lanes hold trial at their current (feasible) point
    // so every batched merit evaluation stays inside the domain.
    for (std::size_t i = 0; i < n * L; ++i) trial[i] = Y[i];
    for (;;) {
      bool any_search = false;
      for (std::size_t l = 0; l < L; ++l) any_search |= searching[l] != 0;
      if (!any_search) break;
      for (std::size_t l = 0; l < L; ++l) {
        if (searching[l] == 0) continue;
        for (std::size_t j = 0; j < n; ++j) {
          trial[j * L + l] = Y[j * L + l] + alpha[l] * step[j * L + l];
        }
      }
      // Batched merit at the trial points; dom[l] == 0 flags +inf.
      model.value(0, trial, ws, fval.data());
      for (std::size_t l = 0; l < L; ++l) {
        h_trial[l] = lane_state(l).t * fval[l];
        dom[l] = 1;
      }
      for (std::size_t f = 1; f < num_fun; ++f) {
        // Mirror of the scalar merit's early domain exit: once every
        // searching lane has left the domain, the remaining constraint
        // values cannot influence any lane's merit (violated lanes are
        // +inf regardless), so skip them. Output-identical — the break
        // only elides evaluations whose results would be masked.
        bool any_live = false;
        for (std::size_t l = 0; l < L; ++l) {
          any_live |= searching[l] != 0 && dom[l] != 0;
        }
        if (!any_live) break;
        model.value(f, trial, ws, fval.data());
        for (std::size_t l = 0; l < L; ++l) {
          if (searching[l] == 0 || dom[l] == 0) continue;
          if (fval[l] >= 0.0) {
            dom[l] = 0;
          } else {
            h_trial[l] -= std::log(-fval[l]);
          }
        }
      }
      for (std::size_t l = 0; l < L; ++l) {
        if (searching[l] == 0) continue;
        if (dom[l] != 0 &&
            h_trial[l] <= h0[l] + 0.3 * alpha[l] * slope[l]) {
          searching[l] = 0;
          stepped[l] = 1;
          h_acc[l] = h_trial[l];
          for (std::size_t j = 0; j < n; ++j) {
            Y[j * L + l] = trial[j * L + l];
          }
          continue;
        }
        alpha[l] *= 0.5;
        if (alpha[l] < 1e-14) {
          searching[l] = 0;
          centered[l] = 1;  // stalled: accept current center
        }
      }
    }

    // ---- Early stop (phase I): checked for lanes that just stepped and
    // for lanes that centered, exactly where the scalar path checks.
    if (early != nullptr) {
      std::fill(mask.begin(), mask.end(), std::uint8_t{0});
      std::fill(retire.begin(), retire.end(), std::uint8_t{0});
      bool any = false;
      for (std::size_t l = 0; l < L; ++l) {
        if (lane_state(l).active && (stepped[l] != 0 || centered[l] != 0)) {
          mask[l] = 1;
          any = true;
        }
      }
      if (any) {
        early->check(Y, mask, retire);
        for (std::size_t l = 0; l < L; ++l) {
          if (retire[l] != 0) retire_lane(l, /*converged=*/true);
        }
      }
    }

    // ---- Flat-merit floor, then post-center ladder bookkeeping.
    for (std::size_t l = 0; l < L; ++l) {
      BatchLaneState& st = lane_state(l);
      if (!st.active) continue;
      if (stepped[l] != 0 && centered[l] == 0 &&
          h0[l] - h_acc[l] < 1e-13 * (1.0 + std::fabs(h0[l]))) {
        centered[l] = 1;
      }
      if (centered[l] == 0) continue;
      if (m == 0.0 || m / st.t < opts.tolerance) {
        retire_lane(l, /*converged=*/true);
      } else if (st.budget <= 0) {
        retire_lane(l, /*converged=*/false);
      } else {
        st.t *= opts.mu;
        st.begin_center = true;
      }
    }
  }
}

std::atomic<std::int64_t> g_newton_iterations{0};

}  // namespace

std::int64_t total_newton_iterations() {
  return g_newton_iterations.load(std::memory_order_relaxed);
}

const char* to_string(GpStatus status) {
  switch (status) {
    case GpStatus::kOptimal:
      return "optimal";
    case GpStatus::kInfeasible:
      return "infeasible";
    case GpStatus::kIterLimit:
      return "iteration-limit";
    case GpStatus::kNumeric:
      return "numeric-failure";
  }
  return "unknown";
}

GpSolution GpSolver::solve(const GpProblem& problem) const {
  GpSolution sol = options_.use_compiled_kernel
                       ? solve_compiled(problem, options_, nullptr)
                       : solve_legacy(problem, options_, nullptr);
  g_newton_iterations.fetch_add(sol.newton_iterations,
                                std::memory_order_relaxed);
  return sol;
}

GpSolution GpSolver::solve(const GpProblem& problem,
                           const std::vector<double>& x0) const {
  GpSolution sol = options_.use_compiled_kernel
                       ? solve_compiled(problem, options_, &x0)
                       : solve_legacy(problem, options_, &x0);
  g_newton_iterations.fetch_add(sol.newton_iterations,
                                std::memory_order_relaxed);
  return sol;
}

GpSolution GpSolver::solve(const GpProblem& problem,
                           const CompiledModel& model) const {
  GpSolution sol = solve_prepared(problem, model, options_, nullptr);
  g_newton_iterations.fetch_add(sol.newton_iterations,
                                std::memory_order_relaxed);
  return sol;
}

GpSolution GpSolver::solve(const GpProblem& problem, const CompiledModel& model,
                           const std::vector<double>& x0) const {
  GpSolution sol = solve_prepared(problem, model, options_, &x0);
  g_newton_iterations.fetch_add(sol.newton_iterations,
                                std::memory_order_relaxed);
  return sol;
}

std::vector<GpSolution> GpSolver::solve_batch(
    const std::vector<BatchLane>& lanes) const {
  std::vector<GpSolution> out(lanes.size());
  if (lanes.empty()) return out;

  std::vector<const CompiledGp*> gps;
  gps.reserve(lanes.size());
  for (const BatchLane& lane : lanes) {
    MFA_ASSERT(lane.problem != nullptr && lane.model != nullptr);
    MFA_ASSERT_MSG(lane.model->num_vars() == lane.problem->num_variables() &&
                       lane.model->variable_box() == options_.variable_box,
                   "prepared model does not match the problem/options");
    gps.push_back(&lane.model->gp());
  }

  // Scalar fallback: singletons, interpretive-kernel solves, and
  // misgrouped batches (build() counted those) run lane by lane.
  std::optional<BatchedModel> batched;
  if (options_.use_compiled_kernel && lanes.size() >= 2) {
    batched = BatchedModel::build(gps);
  }
  if (!batched.has_value()) {
    std::int64_t total = 0;
    for (std::size_t k = 0; k < lanes.size(); ++k) {
      SolverOptions o = options_;
      if (lanes[k].t0 > 0.0) o.t0 = lanes[k].t0;
      out[k] = options_.use_compiled_kernel
                   ? solve_prepared(*lanes[k].problem, *lanes[k].model, o,
                                    lanes[k].x0)
                   : solve_legacy(*lanes[k].problem, o, lanes[k].x0);
      total += out[k].newton_iterations;
    }
    g_newton_iterations.fetch_add(total, std::memory_order_relaxed);
    return out;
  }
  detail::count_batched_solve(lanes.size());

  const std::size_t K = lanes.size();
  const std::size_t n = lanes[0].problem->num_variables();
  const std::size_t num_constraints = gps[0]->num_functions() - 1;

  // Initial points, and one batched pass to classify which lanes need
  // phase I.
  std::vector<Vector> y(K);
  std::vector<double> worst(K, -std::numeric_limits<double>::infinity());
  for (std::size_t k = 0; k < K; ++k) {
    y[k] = initial_y(n, lanes[k].x0, options_.variable_box);
    out[k].x.assign(n, 1.0);
  }
  {
    LaneArray y0(n * K);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < K; ++k) y0[j * K + k] = y[k][j];
    }
    BatchedWorkspace ws;
    batched->ensure_workspace(ws);
    std::vector<double> fval(K);
    for (std::size_t f = 1; f <= num_constraints; ++f) {
      batched->value(f, y0, ws, fval.data());
      for (std::size_t k = 0; k < K; ++k) {
        worst[k] = std::max(worst[k], fval[k]);
      }
    }
  }

  std::vector<double> lane_t0(K);
  std::vector<int> budget(K, options_.max_newton * options_.max_outer);
  std::vector<bool> finished(K, false);
  for (std::size_t k = 0; k < K; ++k) {
    lane_t0[k] = lanes[k].t0 > 0.0 ? lanes[k].t0 : options_.t0;
  }
  GpWorkspace scalar_ws;
  auto scalar_worst = [&](std::size_t k, const Vector& yy) {
    double w = -std::numeric_limits<double>::infinity();
    for (std::size_t f = 1; f <= num_constraints; ++f) {
      w = std::max(w, gps[k]->value(f, yy, scalar_ws));
    }
    return w;
  };

  // ---- Phase I over the lanes that start infeasible. The slack GPs all
  // share the structure-level cached slack lowering, so they batch too.
  std::vector<std::size_t> p1;
  if (num_constraints > 0) {
    for (std::size_t k = 0; k < K; ++k) {
      if (worst[k] >= -options_.feas_margin) p1.push_back(k);
    }
  }
  if (!p1.empty()) {
    std::vector<CompiledGp> slack_gps;
    std::vector<const CompiledGp*> slack_ptrs, main_ptrs;
    slack_gps.reserve(p1.size());
    for (const std::size_t idx : p1) {
      slack_gps.push_back(lanes[idx].model->phase1());
      main_ptrs.push_back(gps[idx]);
    }
    for (const CompiledGp& g : slack_gps) slack_ptrs.push_back(&g);
    std::vector<Vector> ys(p1.size());
    std::vector<BatchLaneState> st(p1.size());
    for (std::size_t i = 0; i < p1.size(); ++i) {
      const std::size_t idx = p1[i];
      ys[i] = Vector(n + 1, 0.0);
      for (std::size_t j = 0; j < n; ++j) ys[i][j] = y[idx][j];
      // s0 strictly above the worst violation keeps the start interior.
      ys[i][n] = worst[idx] + 1.0;
      st[i].t = lane_t0[idx];
      st[i].budget = budget[idx];
    }
    FeasibilityStop stop(main_ptrs, options_.feas_margin);
    run_batched_path(options_, slack_ptrs, st, ys, &stop);
    for (std::size_t i = 0; i < p1.size(); ++i) {
      const std::size_t idx = p1[i];
      budget[idx] = st[i].budget;
      out[idx].newton_iterations += st[i].newton_used;
      Vector yy(n);
      for (std::size_t j = 0; j < n; ++j) yy[j] = ys[i][j];
      const double w = scalar_worst(idx, yy);
      if (w >= -options_.feas_margin) {
        // Phase I finished without reaching s < 0: either the problem is
        // infeasible (the path converged) or the budget ran out.
        out[idx].status = st[i].converged && budget[idx] > 0
                              ? GpStatus::kInfeasible
                          : st[i].numeric_ok ? GpStatus::kIterLimit
                                             : GpStatus::kNumeric;
        export_point(*lanes[idx].problem, yy, w, out[idx]);
        finished[idx] = true;
      } else {
        y[idx] = yy;
      }
    }
  }

  // ---- Phase II over the feasible survivors.
  std::vector<std::size_t> p2;
  for (std::size_t k = 0; k < K; ++k) {
    if (!finished[k]) p2.push_back(k);
  }
  if (!p2.empty()) {
    std::vector<const CompiledGp*> ptrs;
    std::vector<Vector> y2;
    std::vector<BatchLaneState> st(p2.size());
    for (std::size_t i = 0; i < p2.size(); ++i) {
      const std::size_t idx = p2[i];
      ptrs.push_back(gps[idx]);
      y2.push_back(y[idx]);
      st[i].t = lane_t0[idx];
      st[i].budget = budget[idx];
    }
    run_batched_path(options_, ptrs, st, y2, nullptr);
    for (std::size_t i = 0; i < p2.size(); ++i) {
      const std::size_t idx = p2[i];
      out[idx].outer_iterations = st[i].outer;
      out[idx].newton_iterations += st[i].newton_used;
      const double w = num_constraints == 0
                           ? -std::numeric_limits<double>::infinity()
                           : scalar_worst(idx, y2[i]);
      export_point(*lanes[idx].problem, y2[i], w, out[idx]);
      if (num_constraints == 0) out[idx].max_violation = 0.0;
      out[idx].status = st[i].converged    ? GpStatus::kOptimal
                        : st[i].numeric_ok ? GpStatus::kIterLimit
                                           : GpStatus::kNumeric;
    }
  }

  std::int64_t total = 0;
  for (const GpSolution& s : out) total += s.newton_iterations;
  g_newton_iterations.fetch_add(total, std::memory_order_relaxed);
  return out;
}

}  // namespace mfa::gp
