#include "gp/batched.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "gp/structure.hpp"

// Lane loops of pure arithmetic carry an omp-simd hint (compiled with
// -fopenmp-simd: vectorization without an OpenMP runtime, and — load
// bearing for determinism — without defining _OPENMP, so libm's vector
// variants of exp/log never get declared). libm exp is an opaque call
// that would keep the hot weight loop scalar, so the softmax uses
// lane_exp() below: pure elementwise straight-line arithmetic,
// vectorizable, and bit-stable per lane regardless of batch width or
// position. The log of the normalizer stays libm — it runs once per
// lane per constraint (not once per term) and libm wins there.
#if defined(__clang__) || defined(__GNUC__)
#define MFA_SIMD _Pragma("omp simd")
#else
#define MFA_SIMD
#endif

namespace mfa::gp {
namespace {

std::atomic<std::int64_t> g_batched_solves{0};
std::atomic<std::int64_t> g_batched_lanes{0};
std::atomic<std::int64_t> g_batched_misgroupings{0};

}  // namespace

std::int64_t total_batched_solves() {
  return g_batched_solves.load(std::memory_order_relaxed);
}

std::int64_t total_batched_lanes() {
  return g_batched_lanes.load(std::memory_order_relaxed);
}

std::int64_t total_batched_misgroupings() {
  return g_batched_misgroupings.load(std::memory_order_relaxed);
}

namespace detail {

void count_batched_solve(std::size_t lanes) {
  g_batched_solves.fetch_add(1, std::memory_order_relaxed);
  g_batched_lanes.fetch_add(static_cast<std::int64_t>(lanes),
                            std::memory_order_relaxed);
}

void count_batched_misgrouping() {
  g_batched_misgroupings.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// LaneArray
// ---------------------------------------------------------------------------

namespace {

double* aligned_alloc_doubles(std::size_t n) {
  return static_cast<double*>(
      ::operator new(n * sizeof(double), std::align_val_t{64}));
}

/// exp(x) for the softmax weights, x = z − zmax ≤ 0. libm exp is the
/// dominant cost of the batched kernel and cannot vectorize (it is an
/// opaque call); this is the classic Cephes rational approximation
/// (~1 ulp over the reduced interval) written as straight-line
/// arithmetic so the surrounding lane loop vectorizes. Determinism:
/// every operation is an elementwise IEEE op (mul/add/div, compare
/// select, exact int truncation, exponent-bit scaling), so a lane
/// produces the same bits whether it lands in a vector body or the
/// scalar epilogue — batch width and lane position cannot change the
/// result. The batched↔scalar parity contract is tolerance-level, so
/// differing from libm exp by an ulp is within contract.
inline double lane_exp(double x) {
  x = std::max(x, -708.0);  // underflow guard; exp(-708) ~ 3e-308
  // x = n·ln2 + r, n = round-to-nearest(x/ln2), |r| <= ln2/2. The magic
  // constant 1.5·2^52 forces the FPU's own round-to-nearest and parks n
  // in the low mantissa bits — no double→int conversion, which is what
  // keeps the loop branch-free and vectorizable on baseline SSE2.
  const double kMagic = 6755399441055744.0;  // 1.5·2^52
  const double t = x * 1.4426950408889634074 + kMagic;
  const double nd = t - kMagic;
  // Cody–Waite two-step reduction keeps r exact to the last bit.
  const double r = (x - nd * 6.93145751953125e-1) -
                   nd * 1.42860682030941723212e-6;
  const double rr = r * r;
  // exp(r) = 1 + 2·r·P(r²) / (Q(r²) − r·P(r²))  (Cephes expml-style).
  double p = 1.26177193074810590878e-4;
  p = p * rr + 3.02994407707441961300e-2;
  p = p * rr + 9.99999999999999999910e-1;
  p *= r;
  double q = 3.00198505138664455042e-6;
  q = q * rr + 2.52448340349684104192e-3;
  q = q * rr + 2.27265548208155028766e-1;
  q = q * rr + 2.0;
  const double e = 1.0 + 2.0 * p / (q - p);
  // ·2^n: t's low mantissa bits are 2^51 + n, and 2^51 ≡ 0 (mod 2^12),
  // so (bits(t) + 1023) << 52 is exactly the IEEE encoding of 2^n for
  // the guarded range n ∈ [-1022, 0].
  std::uint64_t ti;
  std::memcpy(&ti, &t, sizeof ti);
  const std::uint64_t bits = (ti + 1023) << 52;
  double scale;
  std::memcpy(&scale, &bits, sizeof scale);
  return e * scale;
}

}  // namespace

LaneArray::LaneArray(const LaneArray& other) : size_(other.size_) {
  if (size_ == 0) return;
  data_.reset(aligned_alloc_doubles(size_));
  std::memcpy(data_.get(), other.data_.get(), size_ * sizeof(double));
}

LaneArray& LaneArray::operator=(const LaneArray& other) {
  if (this == &other) return *this;
  if (size_ != other.size_) {
    data_.reset(other.size_ > 0 ? aligned_alloc_doubles(other.size_)
                                : nullptr);
    size_ = other.size_;
  }
  if (size_ > 0) {
    std::memcpy(data_.get(), other.data_.get(), size_ * sizeof(double));
  }
  return *this;
}

void LaneArray::resize(std::size_t n) {
  if (n == size_) return;
  data_.reset(n > 0 ? aligned_alloc_doubles(n) : nullptr);
  size_ = n;
  fill(0.0);
}

void LaneArray::fill(double v) {
  double* p = data_.get();
  for (std::size_t i = 0; i < size_; ++i) p[i] = v;
}

// ---------------------------------------------------------------------------
// BatchedModel
// ---------------------------------------------------------------------------

BatchedModel::BatchedModel() = default;
BatchedModel::BatchedModel(const BatchedModel&) = default;
BatchedModel::BatchedModel(BatchedModel&&) noexcept = default;
BatchedModel& BatchedModel::operator=(const BatchedModel&) = default;
BatchedModel& BatchedModel::operator=(BatchedModel&&) noexcept = default;
BatchedModel::~BatchedModel() = default;

std::optional<BatchedModel> BatchedModel::build(
    const std::vector<const CompiledGp*>& lanes) {
  MFA_ASSERT_MSG(!lanes.empty(), "batched model needs at least one lane");
  for (std::size_t l = 1; l < lanes.size(); ++l) {
    if (!lanes[0]->same_structure(*lanes[l])) {
      detail::count_batched_misgrouping();
      return std::nullopt;
    }
  }
  BatchedModel m;
  m.s_ = lanes[0]->s_;
  m.lanes_ = lanes.size();
  const std::size_t terms = lanes[0]->log_coeff_.size();
  const std::size_t L = m.lanes_;
  m.coeff_.resize(terms * L);
  double* coeff = m.coeff_.data();
  for (std::size_t t = 0; t < terms; ++t) {
    for (std::size_t l = 0; l < L; ++l) {
      coeff[t * L + l] = lanes[l]->log_coeff_[t];
    }
  }
  return m;
}

std::size_t BatchedModel::num_vars() const { return s_->num_vars; }

std::size_t BatchedModel::num_functions() const {
  return s_->fun_begin.size() - 1;
}

// Cold-path sizing: called at build/rebuild time, never from the warm
// evaluators (which assert sufficiency instead — see value()), so the
// warm path performs zero allocations by construction rather than
// amortized-zero.
void BatchedModel::ensure_workspace(BatchedWorkspace& ws) const {
  const std::size_t L = lanes_;
  if (ws.z.size() < s_->max_terms * L) {
    ws.z.resize(s_->max_terms * L);
    ws.w.resize(s_->max_terms * L);
  }
  if (ws.g.size() < s_->num_vars * L) ws.g.resize(s_->num_vars * L);
  if (ws.zmax.size() < L) {
    ws.zmax.resize(L);
    ws.sum.resize(L);
  }
}

MFA_WARM_PATH void BatchedModel::value(std::size_t f, const LaneArray& y,
                                       BatchedWorkspace& ws,
                                       double* out) const {
  const CompiledGp::Structure& s = *s_;
  const std::size_t L = lanes_;
  MFA_ASSERT(f + 1 < s.fun_begin.size() && y.size() >= s.num_vars * L);
  // The workspace is sized by ensure_workspace at model build time; the
  // warm evaluators only verify that contract.
  MFA_ASSERT(ws.z.size() >= s.max_terms * L && ws.w.size() >= s.max_terms * L);
  MFA_ASSERT(ws.zmax.size() >= L && ws.sum.size() >= L);
  const std::uint32_t t0 = s.fun_begin[f];
  const std::uint32_t t1 = s.fun_begin[f + 1];
  const std::uint32_t m = t1 - t0;
  double* z = ws.z.data();
  const double* yd = y.data();
  const double* coeff = coeff_.data();
  // z[(t−t0)·L + l] = log_coeff[t, l] + Σ_k exp[k]·y[var[k], l]: one walk
  // over the CSR arrays, all lanes in the inner loop.
  for (std::uint32_t t = t0; t < t1; ++t) {
    double* zt = z + static_cast<std::size_t>(t - t0) * L;
    const double* ct = coeff + static_cast<std::size_t>(t) * L;
    MFA_SIMD
    for (std::size_t l = 0; l < L; ++l) zt[l] = ct[l];
    const std::uint32_t r = s.row_of[t];
    for (std::uint32_t k = s.row_begin[r]; k < s.row_begin[r + 1]; ++k) {
      const double e = s.exp[k];
      const double* yv = yd + static_cast<std::size_t>(s.var[k]) * L;
      MFA_SIMD
      for (std::size_t l = 0; l < L; ++l) zt[l] += e * yv[l];
    }
  }
  double* zmax = ws.zmax.data();
  double* sum = ws.sum.data();
  MFA_SIMD
  for (std::size_t l = 0; l < L; ++l) {
    zmax[l] = -std::numeric_limits<double>::infinity();
    sum[l] = 0.0;
  }
  for (std::uint32_t i = 0; i < m; ++i) {
    const double* zt = z + static_cast<std::size_t>(i) * L;
    MFA_SIMD
    for (std::size_t l = 0; l < L; ++l) {
      zmax[l] = std::max(zmax[l], zt[l]);
    }
  }
  // Fused exp pass: the un-normalized softmax weights land in ws.w as a
  // side effect, so prepare() never has to exponentiate a second time.
  double* w = ws.w.data();
  for (std::uint32_t i = 0; i < m; ++i) {
    const double* zt = z + static_cast<std::size_t>(i) * L;
    double* wt = w + static_cast<std::size_t>(i) * L;
    MFA_SIMD
    for (std::size_t l = 0; l < L; ++l) {
      wt[l] = lane_exp(zt[l] - zmax[l]);
      sum[l] += wt[l];
    }
  }
  for (std::size_t l = 0; l < L; ++l) {
    out[l] = zmax[l] + std::log(sum[l]);
  }
}

MFA_WARM_PATH void BatchedModel::prepare(std::size_t f, const LaneArray& y,
                                         BatchedWorkspace& ws,
                                         double* out) const {
  value(f, y, ws, out);
  const std::size_t L = lanes_;
  const std::uint32_t m = s_->fun_begin[f + 1] - s_->fun_begin[f];
  double* w = ws.w.data();
  const double* sum = ws.sum.data();
  // value() already left the un-normalized weights exp(z − zmax) in ws.w
  // and their per-lane totals in ws.sum; normalizing is all that is left.
  for (std::uint32_t i = 0; i < m; ++i) {
    double* wt = w + static_cast<std::size_t>(i) * L;
    MFA_SIMD
    for (std::size_t l = 0; l < L; ++l) wt[l] /= sum[l];
  }
}

MFA_WARM_PATH void BatchedModel::scatter(std::size_t f, const double* wg,
                                         const double* wm, const double* wr,
                                         LaneArray& grad, LaneArray& hess,
                                         BatchedWorkspace& ws) const {
  const CompiledGp::Structure& s = *s_;
  const std::size_t L = lanes_;
  const std::size_t n = s.num_vars;
  const std::uint32_t t0 = s.fun_begin[f];
  const std::uint32_t t1 = s.fun_begin[f + 1];
  const std::vector<std::uint32_t>& sup = s.support[f];
  MFA_ASSERT(grad.size() == n * L && hess.size() == n * n * L);
  MFA_ASSERT(ws.g.size() >= n * L && ws.w.size() >= (t1 - t0) * L);
  double* g = ws.g.data();
  double* gd = grad.data();
  double* hd = hess.data();
  const double* w = ws.w.data();

  // g_l = Aᵀw_l over the function's support only. Unlike the scalar
  // scatter, lanes with w == 0 are not skipped — they add an exact 0,
  // which is what keeps every lane's op sequence independent of its
  // batch (and is covered by the tolerance-level scalar parity
  // contract).
  for (const std::uint32_t v : sup) {
    double* gv = g + static_cast<std::size_t>(v) * L;
    MFA_SIMD
    for (std::size_t l = 0; l < L; ++l) gv[l] = 0.0;
  }
  for (std::uint32_t t = t0; t < t1; ++t) {
    const double* wt = w + static_cast<std::size_t>(t - t0) * L;
    const std::uint32_t r = s.row_of[t];
    for (std::uint32_t k = s.row_begin[r]; k < s.row_begin[r + 1]; ++k) {
      const double e = s.exp[k];
      double* gv = g + static_cast<std::size_t>(s.var[k]) * L;
      MFA_SIMD
      for (std::size_t l = 0; l < L; ++l) gv[l] += wt[l] * e;
    }
  }
  for (const std::uint32_t v : sup) {
    const double* gv = g + static_cast<std::size_t>(v) * L;
    double* out = gd + static_cast<std::size_t>(v) * L;
    MFA_SIMD
    for (std::size_t l = 0; l < L; ++l) out[l] += wg[l] * gv[l];
  }

  // wm · Σ_t w_t·a_t·a_tᵀ — sparse outer products over each term's nnz.
  for (std::uint32_t t = t0; t < t1; ++t) {
    const double* wt = w + static_cast<std::size_t>(t - t0) * L;
    const std::uint32_t r = s.row_of[t];
    const std::uint32_t begin = s.row_begin[r];
    const std::uint32_t end = s.row_begin[r + 1];
    for (std::uint32_t k1 = begin; k1 < end; ++k1) {
      const double e1 = s.exp[k1];
      const std::size_t v1 = s.var[k1];
      for (std::uint32_t k2 = begin; k2 < end; ++k2) {
        const double e2 = s.exp[k2];
        double* h = hd + (v1 * n + s.var[k2]) * L;
        MFA_SIMD
        for (std::size_t l = 0; l < L; ++l) {
          const double c = wm[l] * wt[l] * e1;
          h[l] += c * e2;
        }
      }
    }
  }

  // wr · g·gᵀ — rank-one update over the support.
  for (const std::uint32_t v1 : sup) {
    const double* g1 = g + static_cast<std::size_t>(v1) * L;
    for (const std::uint32_t v2 : sup) {
      const double* g2 = g + static_cast<std::size_t>(v2) * L;
      double* h = hd + (static_cast<std::size_t>(v1) * n + v2) * L;
      MFA_SIMD
      for (std::size_t l = 0; l < L; ++l) {
        const double c = wr[l] * g1[l];
        h[l] += c * g2[l];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Batched SPD solve
// ---------------------------------------------------------------------------

void reserve_spd_workspace(std::size_t n, std::size_t lanes,
                           BatchedSpdWorkspace& ws, LaneArray& x) {
  if (ws.l.size() < n * n * lanes) ws.l.resize(n * n * lanes);
  if (ws.fw.size() < n * lanes) ws.fw.resize(n * lanes);
  if (x.size() < n * lanes) x.resize(n * lanes);
}

MFA_WARM_PATH void batched_spd_solve(const LaneArray& a, const LaneArray& b,
                                     std::size_t n, std::size_t lanes,
                                     BatchedSpdWorkspace& ws, LaneArray& x,
                                     std::uint8_t* ok) {
  const std::size_t L = lanes;
  MFA_ASSERT(a.size() == n * n * L && b.size() == n * L);
  // Scratch and solution are presized by reserve_spd_workspace at setup;
  // the warm solve only verifies that contract.
  MFA_ASSERT(ws.l.size() >= n * n * L && ws.fw.size() >= n * L &&
             x.size() >= n * L);
  for (std::size_t l = 0; l < L; ++l) ok[l] = 1;
  const double* ad = a.data();
  const double* bd = b.data();
  double* ld = ws.l.data();
  double* fw = ws.fw.data();
  double* xd = x.data();

  // Unregularized Cholesky, all lanes in lock-step. A lane that meets a
  // non-positive pivot is flagged and its factor goes NaN from there on —
  // contained to that lane; the caller re-solves flagged lanes through
  // the scalar escalating-regularization path.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < j; ++k) {
      double* ljk = ld + (j * n + k) * L;
      const double* ajk = ad + (j * n + k) * L;
      MFA_SIMD
      for (std::size_t l = 0; l < L; ++l) ljk[l] = ajk[l];
      for (std::size_t m = 0; m < k; ++m) {
        const double* ljm = ld + (j * n + m) * L;
        const double* lkm = ld + (k * n + m) * L;
        MFA_SIMD
        for (std::size_t l = 0; l < L; ++l) ljk[l] -= ljm[l] * lkm[l];
      }
      const double* lkk = ld + (k * n + k) * L;
      MFA_SIMD
      for (std::size_t l = 0; l < L; ++l) ljk[l] /= lkk[l];
    }
    double* ljj = ld + (j * n + j) * L;
    const double* ajj = ad + (j * n + j) * L;
    MFA_SIMD
    for (std::size_t l = 0; l < L; ++l) ljj[l] = ajj[l];
    for (std::size_t m = 0; m < j; ++m) {
      const double* ljm = ld + (j * n + m) * L;
      MFA_SIMD
      for (std::size_t l = 0; l < L; ++l) ljj[l] -= ljm[l] * ljm[l];
    }
    for (std::size_t l = 0; l < L; ++l) {
      if (!(ljj[l] > 0.0)) ok[l] = 0;
    }
    MFA_SIMD
    for (std::size_t l = 0; l < L; ++l) ljj[l] = std::sqrt(ljj[l]);
  }

  // Forward substitution L·fw = b.
  for (std::size_t i = 0; i < n; ++i) {
    double* fi = fw + i * L;
    const double* bi = bd + i * L;
    MFA_SIMD
    for (std::size_t l = 0; l < L; ++l) fi[l] = bi[l];
    for (std::size_t k = 0; k < i; ++k) {
      const double* lik = ld + (i * n + k) * L;
      const double* fk = fw + k * L;
      MFA_SIMD
      for (std::size_t l = 0; l < L; ++l) fi[l] -= lik[l] * fk[l];
    }
    const double* lii = ld + (i * n + i) * L;
    MFA_SIMD
    for (std::size_t l = 0; l < L; ++l) fi[l] /= lii[l];
  }

  // Backward substitution Lᵀ·x = fw.
  for (std::size_t ii = n; ii-- > 0;) {
    double* xi = xd + ii * L;
    const double* fi = fw + ii * L;
    MFA_SIMD
    for (std::size_t l = 0; l < L; ++l) xi[l] = fi[l];
    for (std::size_t k = ii + 1; k < n; ++k) {
      const double* lki = ld + (k * n + ii) * L;
      const double* xk = xd + k * L;
      MFA_SIMD
      for (std::size_t l = 0; l < L; ++l) xi[l] -= lki[l] * xk[l];
    }
    const double* lii = ld + (ii * n + ii) * L;
    MFA_SIMD
    for (std::size_t l = 0; l < L; ++l) xi[l] /= lii[l];
  }
}

}  // namespace mfa::gp
