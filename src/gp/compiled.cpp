#include "gp/compiled.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>

#include "gp/problem.hpp"
#include "gp/structure.hpp"

namespace mfa::gp {
namespace {

std::atomic<std::int64_t> g_structure_compiles{0};
std::atomic<std::int64_t> g_coefficient_patches{0};
std::atomic<std::int64_t> g_slack_lowerings{0};

}  // namespace

std::int64_t total_structure_compiles() {
  return g_structure_compiles.load(std::memory_order_relaxed);
}

std::int64_t total_coefficient_patches() {
  return g_coefficient_patches.load(std::memory_order_relaxed);
}

std::int64_t total_slack_lowerings() {
  return g_slack_lowerings.load(std::memory_order_relaxed);
}

namespace detail {
void count_structure_compile() {
  g_structure_compiles.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

// CompiledGp::Structure itself is defined in gp/structure.hpp so the
// batched evaluator (gp/batched.cpp) can walk the same CSR arrays.

CompiledGp::CompiledGp(std::size_t num_vars)
    : s_(std::make_shared<Structure>()) {
  s_->num_vars = num_vars;
}

CompiledGp::~CompiledGp() = default;
CompiledGp::CompiledGp(const CompiledGp&) = default;
CompiledGp::CompiledGp(CompiledGp&&) noexcept = default;
CompiledGp& CompiledGp::operator=(const CompiledGp&) = default;
CompiledGp& CompiledGp::operator=(CompiledGp&&) noexcept = default;

std::size_t CompiledGp::num_vars() const { return s_->num_vars; }

std::size_t CompiledGp::num_functions() const {
  return s_->fun_begin.size() - 1;
}

std::size_t CompiledGp::num_terms(std::size_t f) const {
  MFA_ASSERT(f + 1 < s_->fun_begin.size());
  return s_->fun_begin[f + 1] - s_->fun_begin[f];
}

std::size_t CompiledGp::num_rows() const { return s_->num_rows(); }

const std::vector<std::uint32_t>& CompiledGp::support(std::size_t f) const {
  MFA_ASSERT(f < s_->support.size());
  return s_->support[f];
}

std::size_t CompiledGp::add(const Posynomial& p) {
  MFA_ASSERT_MSG(!p.empty(), "cannot compile an empty posynomial");
  MFA_ASSERT_MSG(s_.use_count() == 1,
                 "cannot append functions to a shared CompiledGp structure");
  MFA_ASSERT_MSG(!s_->derived.load(std::memory_order_relaxed),
                 "cannot append functions after with_slack() or "
                 "structure_fingerprint() — the cached artifacts would "
                 "go stale");
  Structure& s = *s_;
  // Merge duplicate monomials (identical exponent rows) by summing their
  // coefficients; first-seen order is preserved so compilation is
  // deterministic. The source→slot assignment is recorded as the merge
  // plan for patch_function().
  std::vector<std::uint32_t> rows;
  std::vector<double> coeffs;  // plain coefficients until merged
  rows.reserve(p.terms().size());
  std::vector<std::pair<VarId, double>> entries;
  const auto first_term = static_cast<std::uint32_t>(log_coeff_.size());
  for (const Monomial& m : p.terms()) {
    entries.assign(m.exponents().begin(), m.exponents().end());
    const std::uint32_t r = s.intern_row(entries);
    const auto it = std::find(rows.begin(), rows.end(), r);
    std::size_t slot = 0;
    if (it == rows.end()) {
      slot = rows.size();
      rows.push_back(r);
      coeffs.push_back(m.coeff());
    } else {
      slot = static_cast<std::size_t>(it - rows.begin());
      coeffs[slot] += m.coeff();
    }
    s.term_of_src.push_back(first_term + static_cast<std::uint32_t>(slot));
  }
  s.src_begin.push_back(static_cast<std::uint32_t>(s.term_of_src.size()));
  for (double c : coeffs) log_coeff_.push_back(std::log(c));
  s.finish_function(rows);
  return num_functions() - 1;
}

std::size_t CompiledGp::add_affine(
    const std::vector<std::pair<VarId, double>>& entries, double log_coeff) {
  MFA_ASSERT_MSG(s_.use_count() == 1,
                 "cannot append functions to a shared CompiledGp structure");
  MFA_ASSERT_MSG(!s_->derived.load(std::memory_order_relaxed),
                 "cannot append functions after with_slack() or "
                 "structure_fingerprint() — the cached artifacts would "
                 "go stale");
  Structure& s = *s_;
  s.term_of_src.push_back(static_cast<std::uint32_t>(log_coeff_.size()));
  s.src_begin.push_back(static_cast<std::uint32_t>(s.term_of_src.size()));
  log_coeff_.push_back(log_coeff);
  s.finish_function({s.intern_row(entries)});
  return num_functions() - 1;
}

MFA_WARM_PATH void CompiledGp::patch_function(std::size_t f,
                                              const Posynomial& p) {
  const Structure& s = *s_;
  MFA_ASSERT(f + 1 < s.fun_begin.size());
  const std::uint32_t t0 = s.fun_begin[f];
  const std::uint32_t t1 = s.fun_begin[f + 1];
  const std::uint32_t s0 = s.src_begin[f];
  MFA_ASSERT_MSG(p.terms().size() == s.src_begin[f + 1] - s0,
                 "patch source has a different monomial count");
  // Replay the merge plan in source order: every partial sum repeats the
  // compile-time arithmetic exactly (coefficients are positive, so the
  // 0.0 seed is absorbed bit-exactly), making the patched coefficients
  // indistinguishable from a fresh compile's.
  for (std::uint32_t t = t0; t < t1; ++t) log_coeff_[t] = 0.0;
  for (std::size_t i = 0; i < p.terms().size(); ++i) {
    const Monomial& m = p.terms()[i];
    const std::uint32_t t = s.term_of_src[s0 + i];
    // Structural guard: the monomial must carry the exponent row it was
    // compiled to. Cheap (O(nnz) compares, no hashing) and catches a
    // caller patching from a structurally different problem.
    const std::uint32_t r = s.row_of[t];
    const std::uint32_t begin = s.row_begin[r];
    MFA_ASSERT_MSG(m.exponents().size() == s.row_begin[r + 1] - begin,
                   "patch monomial has a different exponent row");
    std::size_t k = 0;
    for (const auto& [v, e] : m.exponents()) {
      MFA_ASSERT_MSG(s.var[begin + k] == v && s.exp[begin + k] == e,
                     "patch monomial has a different exponent row");
      ++k;
    }
    log_coeff_[t] += m.coeff();
  }
  for (std::uint32_t t = t0; t < t1; ++t) {
    log_coeff_[t] = std::log(log_coeff_[t]);
  }
}

MFA_WARM_PATH void CompiledGp::patch_affine(std::size_t f, double log_coeff) {
  const Structure& s = *s_;
  MFA_ASSERT(f + 1 < s.fun_begin.size());
  MFA_ASSERT_MSG(s.fun_begin[f + 1] - s.fun_begin[f] == 1,
                 "patch_affine on a multi-term function");
  log_coeff_[s.fun_begin[f]] = log_coeff;
}

const Fingerprint& CompiledGp::structure_fingerprint() const {
  const Structure& s = *s_;
  std::call_once(s.fp_once, [&s] {
    s.derived.store(true, std::memory_order_relaxed);
    Fingerprint fp;
    fp.mix(static_cast<std::uint64_t>(s.num_vars));
    auto mix_u32s = [&fp](const std::vector<std::uint32_t>& v) {
      fp.mix(static_cast<std::uint64_t>(v.size()));
      for (const std::uint32_t x : v) fp.mix(static_cast<std::uint64_t>(x));
    };
    mix_u32s(s.fun_begin);
    mix_u32s(s.row_of);
    mix_u32s(s.row_begin);
    mix_u32s(s.var);
    fp.mix(static_cast<std::uint64_t>(s.exp.size()));
    for (const double e : s.exp) fp.mix(e);
    mix_u32s(s.src_begin);
    mix_u32s(s.term_of_src);
    s.fp = fp;
  });
  return s.fp;
}

void CompiledGp::ensure_workspace(GpWorkspace& ws) const {
  if (ws.z.size() < s_->max_terms) {
    ws.z.resize(s_->max_terms);
    ws.w.resize(s_->max_terms);
  }
  if (ws.g.size() < s_->num_vars) ws.g.resize(s_->num_vars);
}

double CompiledGp::value(std::size_t f, const linalg::Vector& y,
                         GpWorkspace& ws) const {
  const Structure& s = *s_;
  MFA_ASSERT(f + 1 < s.fun_begin.size() && y.size() == s.num_vars);
  ensure_workspace(ws);
  const std::uint32_t t0 = s.fun_begin[f];
  const std::uint32_t t1 = s.fun_begin[f + 1];
  double zmax = -std::numeric_limits<double>::infinity();
  for (std::uint32_t t = t0; t < t1; ++t) {
    double acc = log_coeff_[t];
    const std::uint32_t r = s.row_of[t];
    for (std::uint32_t k = s.row_begin[r]; k < s.row_begin[r + 1]; ++k) {
      acc += s.exp[k] * y[s.var[k]];
    }
    ws.z[t - t0] = acc;
    zmax = std::max(zmax, acc);
  }
  double sum = 0.0;
  for (std::uint32_t i = 0; i < t1 - t0; ++i) {
    sum += std::exp(ws.z[i] - zmax);
  }
  return zmax + std::log(sum);
}

double CompiledGp::prepare(std::size_t f, const linalg::Vector& y,
                           GpWorkspace& ws) const {
  const double val = value(f, y, ws);
  const std::uint32_t m = s_->fun_begin[f + 1] - s_->fun_begin[f];
  // value() left the shifted exponents in ws.z; normalize to softmax
  // weights. Recomputing the shift from val keeps one pass over z.
  double sum = 0.0;
  double zmax = -std::numeric_limits<double>::infinity();
  for (std::uint32_t i = 0; i < m; ++i) zmax = std::max(zmax, ws.z[i]);
  for (std::uint32_t i = 0; i < m; ++i) {
    ws.w[i] = std::exp(ws.z[i] - zmax);
    sum += ws.w[i];
  }
  for (std::uint32_t i = 0; i < m; ++i) ws.w[i] /= sum;
  return val;
}

void CompiledGp::scatter(std::size_t f, double wg, double wm, double wr,
                         linalg::Vector& grad, linalg::Matrix& hess,
                         GpWorkspace& ws) const {
  const Structure& s = *s_;
  const std::uint32_t t0 = s.fun_begin[f];
  const std::uint32_t t1 = s.fun_begin[f + 1];
  const std::vector<std::uint32_t>& sup = s.support[f];
  MFA_ASSERT(grad.size() == s.num_vars && hess.rows() == s.num_vars);

  // g = Aᵀw over the function's support only.
  for (std::uint32_t v : sup) ws.g[v] = 0.0;
  for (std::uint32_t t = t0; t < t1; ++t) {
    const double w = ws.w[t - t0];
    if (w == 0.0) continue;
    const std::uint32_t r = s.row_of[t];
    for (std::uint32_t k = s.row_begin[r]; k < s.row_begin[r + 1]; ++k) {
      ws.g[s.var[k]] += w * s.exp[k];
    }
  }
  for (std::uint32_t v : sup) grad[v] += wg * ws.g[v];

  // wm · Σ_t w_t·a_t·a_tᵀ — sparse outer products over each term's nnz.
  for (std::uint32_t t = t0; t < t1; ++t) {
    const double w = ws.w[t - t0];
    if (w == 0.0) continue;
    const std::uint32_t r = s.row_of[t];
    const std::uint32_t begin = s.row_begin[r];
    const std::uint32_t end = s.row_begin[r + 1];
    for (std::uint32_t k1 = begin; k1 < end; ++k1) {
      const double c = wm * w * s.exp[k1];
      if (c == 0.0) continue;
      const std::uint32_t v1 = s.var[k1];
      for (std::uint32_t k2 = begin; k2 < end; ++k2) {
        hess(v1, s.var[k2]) += c * s.exp[k2];
      }
    }
  }

  // wr · g·gᵀ — rank-one update over the support.
  if (wr != 0.0) {
    for (std::uint32_t v1 : sup) {
      const double c = wr * ws.g[v1];
      if (c == 0.0) continue;
      for (std::uint32_t v2 : sup) {
        hess(v1, v2) += c * ws.g[v2];
      }
    }
  }
}

CompiledGp CompiledGp::with_slack() const {
  const Structure& src = *s_;
  std::call_once(src.slack_once, [&src] {
    src.derived.store(true, std::memory_order_relaxed);
    // Coefficient-independent lowering: replicate every constraint
    // term's exponent row with one extra (s, −1) entry, and make the
    // objective the single affine term F₀(y, s) = s. Runs at most once
    // per structure; every clone of a cached model shares the result.
    auto out = std::make_shared<Structure>();
    out->num_vars = src.num_vars + 1;
    const auto slack_var = static_cast<VarId>(src.num_vars);
    out->term_of_src.push_back(0);
    out->src_begin.push_back(1);
    out->finish_function({out->intern_row({{slack_var, 1.0}})});
    std::vector<std::pair<VarId, double>> entries;
    for (std::size_t f = 1; f + 1 < src.fun_begin.size(); ++f) {
      std::vector<std::uint32_t> rows;
      for (std::uint32_t t = src.fun_begin[f]; t < src.fun_begin[f + 1];
           ++t) {
        const std::uint32_t r = src.row_of[t];
        entries.clear();
        for (std::uint32_t k = src.row_begin[r]; k < src.row_begin[r + 1];
             ++k) {
          entries.emplace_back(src.var[k], src.exp[k]);
        }
        entries.emplace_back(slack_var, -1.0);
        out->term_of_src.push_back(
            static_cast<std::uint32_t>(out->row_of.size() + rows.size()));
        rows.push_back(out->intern_row(entries));
      }
      out->src_begin.push_back(
          static_cast<std::uint32_t>(out->term_of_src.size()));
      out->finish_function(rows);
    }
    src.slack = std::move(out);
    g_slack_lowerings.fetch_add(1, std::memory_order_relaxed);
  });

  // Coefficients derive from this instance's: the slack objective is
  // log 1 = 0, each constraint keeps its term coefficients verbatim.
  CompiledGp out;
  out.s_ = src.slack;
  out.log_coeff_.clear();
  out.log_coeff_.reserve(1 + log_coeff_.size() - src.fun_begin[1]);
  out.log_coeff_.push_back(0.0);
  out.log_coeff_.insert(out.log_coeff_.end(),
                        log_coeff_.begin() + src.fun_begin[1],
                        log_coeff_.end());
  return out;
}

// ---------------------------------------------------------------------------
// CompiledModel
// ---------------------------------------------------------------------------

CompiledModel CompiledModel::build(const GpProblem& problem,
                                   double variable_box) {
  CompiledModel model;
  model.gp_ = problem.compile();
  // Box constraints |y_j| ≤ Y keep both phases bounded: without them the
  // phase-I merit is unbounded below (riding a free direction to ∞
  // collects −log barrier rewards from ever-slacker constraints faster
  // than t·s charges for the violated ones), and phase II can drift
  // along flat objective directions.
  const std::size_t n = problem.num_variables();
  for (std::size_t j = 0; j < n; ++j) {
    for (double sign : {1.0, -1.0}) {
      model.gp_.add_affine({{static_cast<VarId>(j), sign}}, -variable_box);
    }
  }
  model.problem_fp_ = problem.structural_fingerprint();
  model.variable_box_ = variable_box;
  return model;
}

void CompiledModel::patch_coefficients(const GpProblem& problem,
                                       double variable_box) {
  patch_coefficients(problem, variable_box,
                     problem.structural_fingerprint());
}

MFA_WARM_PATH void CompiledModel::patch_coefficients(
    const GpProblem& problem, double variable_box,
    const Fingerprint& problem_fp) {
  MFA_ASSERT_MSG(problem_fp == problem_fp_,
                 "patch_coefficients on a structurally different problem");
  gp_.patch_function(0, problem.objective());
  const std::vector<Posynomial>& constraints = problem.constraints();
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    gp_.patch_function(1 + i, constraints[i]);
  }
  std::size_t f = 1 + constraints.size();
  const std::size_t n = problem.num_variables();
  MFA_ASSERT(gp_.num_functions() == f + 2 * n);
  for (std::size_t j = 0; j < 2 * n; ++j) {
    gp_.patch_affine(f++, -variable_box);
  }
  variable_box_ = variable_box;
  g_coefficient_patches.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mfa::gp
