#include "gp/compiled.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace mfa::gp {
namespace {

/// FNV-1a over the bit patterns of a row signature. Collisions are
/// resolved by exact comparison in intern_row(), so this only needs to
/// spread well.
std::uint64_t row_hash(const std::vector<std::pair<VarId, double>>& entries) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& [v, e] : entries) {
    mix(v);
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(e));
    std::memcpy(&bits, &e, sizeof(bits));
    mix(bits);
  }
  return h;
}

}  // namespace

std::uint32_t CompiledGp::intern_row(
    const std::vector<std::pair<VarId, double>>& entries) {
  const std::uint64_t h = row_hash(entries);
  auto [lo, hi] = row_index_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    const std::uint32_t r = it->second;
    const std::uint32_t begin = row_begin_[r];
    if (row_begin_[r + 1] - begin != entries.size()) continue;
    bool same = true;
    for (std::size_t k = 0; k < entries.size(); ++k) {
      if (var_[begin + k] != entries[k].first ||
          exp_[begin + k] != entries[k].second) {
        same = false;
        break;
      }
    }
    if (same) return r;
  }
  const auto r = static_cast<std::uint32_t>(num_rows());
  for (const auto& [v, e] : entries) {
    MFA_ASSERT_MSG(v < num_vars_, "monomial uses unknown variable");
    var_.push_back(v);
    exp_.push_back(e);
  }
  row_begin_.push_back(static_cast<std::uint32_t>(var_.size()));
  row_index_.emplace(h, r);
  return r;
}

std::size_t CompiledGp::finish_function(std::vector<std::uint32_t> rows,
                                        std::vector<double> coeffs) {
  MFA_ASSERT(rows.size() == coeffs.size());
  std::vector<std::uint32_t> support;
  for (std::size_t t = 0; t < rows.size(); ++t) {
    row_of_.push_back(rows[t]);
    log_coeff_.push_back(coeffs[t]);
    for (std::uint32_t k = row_begin_[rows[t]]; k < row_begin_[rows[t] + 1];
         ++k) {
      support.push_back(var_[k]);
    }
  }
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  support_.push_back(std::move(support));
  fun_begin_.push_back(static_cast<std::uint32_t>(row_of_.size()));
  max_terms_ = std::max(max_terms_, rows.size());
  return num_functions() - 1;
}

std::size_t CompiledGp::add(const Posynomial& p) {
  MFA_ASSERT_MSG(!p.empty(), "cannot compile an empty posynomial");
  // Merge duplicate monomials (identical exponent rows) by summing their
  // coefficients; first-seen order is preserved so compilation is
  // deterministic.
  std::vector<std::uint32_t> rows;
  std::vector<double> coeffs;  // plain coefficients until merged
  rows.reserve(p.terms().size());
  std::vector<std::pair<VarId, double>> entries;
  for (const Monomial& m : p.terms()) {
    entries.assign(m.exponents().begin(), m.exponents().end());
    const std::uint32_t r = intern_row(entries);
    const auto it = std::find(rows.begin(), rows.end(), r);
    if (it == rows.end()) {
      rows.push_back(r);
      coeffs.push_back(m.coeff());
    } else {
      coeffs[static_cast<std::size_t>(it - rows.begin())] += m.coeff();
    }
  }
  for (double& c : coeffs) c = std::log(c);
  return finish_function(std::move(rows), std::move(coeffs));
}

std::size_t CompiledGp::add_affine(
    const std::vector<std::pair<VarId, double>>& entries, double log_coeff) {
  return finish_function({intern_row(entries)}, {log_coeff});
}

void CompiledGp::ensure_workspace(GpWorkspace& ws) const {
  if (ws.z.size() < max_terms_) {
    ws.z.resize(max_terms_);
    ws.w.resize(max_terms_);
  }
  if (ws.g.size() < num_vars_) ws.g.resize(num_vars_);
}

double CompiledGp::value(std::size_t f, const linalg::Vector& y,
                         GpWorkspace& ws) const {
  MFA_ASSERT(f + 1 < fun_begin_.size() && y.size() == num_vars_);
  ensure_workspace(ws);
  const std::uint32_t t0 = fun_begin_[f];
  const std::uint32_t t1 = fun_begin_[f + 1];
  double zmax = -std::numeric_limits<double>::infinity();
  for (std::uint32_t t = t0; t < t1; ++t) {
    double acc = log_coeff_[t];
    const std::uint32_t r = row_of_[t];
    for (std::uint32_t k = row_begin_[r]; k < row_begin_[r + 1]; ++k) {
      acc += exp_[k] * y[var_[k]];
    }
    ws.z[t - t0] = acc;
    zmax = std::max(zmax, acc);
  }
  double sum = 0.0;
  for (std::uint32_t i = 0; i < t1 - t0; ++i) {
    sum += std::exp(ws.z[i] - zmax);
  }
  return zmax + std::log(sum);
}

double CompiledGp::prepare(std::size_t f, const linalg::Vector& y,
                           GpWorkspace& ws) const {
  const double val = value(f, y, ws);
  const std::uint32_t m =
      fun_begin_[f + 1] - fun_begin_[f];
  // value() left the shifted exponents in ws.z; normalize to softmax
  // weights. Recomputing the shift from val keeps one pass over z.
  double sum = 0.0;
  double zmax = -std::numeric_limits<double>::infinity();
  for (std::uint32_t i = 0; i < m; ++i) zmax = std::max(zmax, ws.z[i]);
  for (std::uint32_t i = 0; i < m; ++i) {
    ws.w[i] = std::exp(ws.z[i] - zmax);
    sum += ws.w[i];
  }
  for (std::uint32_t i = 0; i < m; ++i) ws.w[i] /= sum;
  return val;
}

void CompiledGp::scatter(std::size_t f, double wg, double wm, double wr,
                         linalg::Vector& grad, linalg::Matrix& hess,
                         GpWorkspace& ws) const {
  const std::uint32_t t0 = fun_begin_[f];
  const std::uint32_t t1 = fun_begin_[f + 1];
  const std::vector<std::uint32_t>& sup = support_[f];
  MFA_ASSERT(grad.size() == num_vars_ && hess.rows() == num_vars_);

  // g = Aᵀw over the function's support only.
  for (std::uint32_t v : sup) ws.g[v] = 0.0;
  for (std::uint32_t t = t0; t < t1; ++t) {
    const double w = ws.w[t - t0];
    if (w == 0.0) continue;
    const std::uint32_t r = row_of_[t];
    for (std::uint32_t k = row_begin_[r]; k < row_begin_[r + 1]; ++k) {
      ws.g[var_[k]] += w * exp_[k];
    }
  }
  for (std::uint32_t v : sup) grad[v] += wg * ws.g[v];

  // wm · Σ_t w_t·a_t·a_tᵀ — sparse outer products over each term's nnz.
  for (std::uint32_t t = t0; t < t1; ++t) {
    const double w = ws.w[t - t0];
    if (w == 0.0) continue;
    const std::uint32_t r = row_of_[t];
    const std::uint32_t begin = row_begin_[r];
    const std::uint32_t end = row_begin_[r + 1];
    for (std::uint32_t k1 = begin; k1 < end; ++k1) {
      const double c = wm * w * exp_[k1];
      if (c == 0.0) continue;
      const std::uint32_t v1 = var_[k1];
      for (std::uint32_t k2 = begin; k2 < end; ++k2) {
        hess(v1, var_[k2]) += c * exp_[k2];
      }
    }
  }

  // wr · g·gᵀ — rank-one update over the support.
  if (wr != 0.0) {
    for (std::uint32_t v1 : sup) {
      const double c = wr * ws.g[v1];
      if (c == 0.0) continue;
      for (std::uint32_t v2 : sup) {
        hess(v1, v2) += c * ws.g[v2];
      }
    }
  }
}

CompiledGp CompiledGp::with_slack() const {
  CompiledGp out(num_vars_ + 1);
  const auto s = static_cast<VarId>(num_vars_);
  // Slack objective F₀(y, s) = s.
  out.add_affine({{s, 1.0}}, 0.0);
  std::vector<std::pair<VarId, double>> entries;
  for (std::size_t f = 1; f < num_functions(); ++f) {
    std::vector<std::uint32_t> rows;
    std::vector<double> coeffs;
    for (std::uint32_t t = fun_begin_[f]; t < fun_begin_[f + 1]; ++t) {
      const std::uint32_t r = row_of_[t];
      entries.clear();
      for (std::uint32_t k = row_begin_[r]; k < row_begin_[r + 1]; ++k) {
        entries.emplace_back(var_[k], exp_[k]);
      }
      entries.emplace_back(s, -1.0);
      rows.push_back(out.intern_row(entries));
      coeffs.push_back(log_coeff_[t]);
    }
    out.finish_function(std::move(rows), std::move(coeffs));
  }
  return out;
}

}  // namespace mfa::gp
