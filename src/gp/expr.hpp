// Monomial / posynomial expression types for geometric programming.
//
// A monomial is  c · Π_j x_j^{a_j}  with c > 0; a posynomial is a sum of
// monomials. Variables are integer ids handed out by GpProblem; exponents
// are stored sparsely so typical allocation models (each constraint touches
// a few variables) stay compact.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "support/assert.hpp"

namespace mfa::gp {

/// Opaque id of a GP decision variable (index into the problem's registry).
using VarId = std::uint32_t;

/// A positive-coefficient monomial  c · Π x_j^{a_j}.
class Monomial {
 public:
  /// Constant monomial. Coefficient must be strictly positive (GP domain).
  explicit Monomial(double coeff = 1.0) : coeff_(coeff) {
    MFA_ASSERT_MSG(coeff > 0.0, "monomial coefficient must be > 0");
  }

  /// The bare variable x_v.
  static Monomial var(VarId v) {
    Monomial m;
    m.exponents_[v] = 1.0;
    return m;
  }

  [[nodiscard]] double coeff() const { return coeff_; }
  [[nodiscard]] const std::map<VarId, double>& exponents() const {
    return exponents_;
  }

  /// Exponent of variable v (0 if absent).
  [[nodiscard]] double exponent(VarId v) const;

  /// Evaluates at the given positive point (indexed by VarId).
  [[nodiscard]] double eval(const std::vector<double>& x) const;

  Monomial& operator*=(const Monomial& rhs);
  Monomial& operator*=(double s) {
    MFA_ASSERT_MSG(s > 0.0, "monomial scale must be > 0");
    coeff_ *= s;
    return *this;
  }
  Monomial& operator/=(const Monomial& rhs) { return *this *= rhs.inverse(); }

  /// Monomial raised to a real power (monomials are closed under powers).
  [[nodiscard]] Monomial pow(double p) const;
  [[nodiscard]] Monomial inverse() const { return pow(-1.0); }

  friend Monomial operator*(Monomial lhs, const Monomial& rhs) {
    return lhs *= rhs;
  }
  friend Monomial operator*(Monomial lhs, double s) { return lhs *= s; }
  friend Monomial operator*(double s, Monomial rhs) { return rhs *= s; }
  friend Monomial operator/(Monomial lhs, const Monomial& rhs) {
    return lhs /= rhs;
  }

 private:
  double coeff_ = 1.0;
  std::map<VarId, double> exponents_;  // ordered for canonical printing
};

/// A sum of monomials (closed under +, and under · by a monomial).
class Posynomial {
 public:
  Posynomial() = default;
  Posynomial(const Monomial& m) : terms_{m} {}  // NOLINT implicit by design
  Posynomial(double c) : terms_{Monomial(c)} {}  // NOLINT implicit by design

  [[nodiscard]] const std::vector<Monomial>& terms() const { return terms_; }
  [[nodiscard]] bool empty() const { return terms_.empty(); }

  /// True when the posynomial has exactly one term (is a monomial).
  [[nodiscard]] bool is_monomial() const { return terms_.size() == 1; }

  [[nodiscard]] double eval(const std::vector<double>& x) const;

  Posynomial& operator+=(const Posynomial& rhs);
  Posynomial& operator*=(const Monomial& m);
  Posynomial& operator*=(double s);

  friend Posynomial operator+(Posynomial lhs, const Posynomial& rhs) {
    return lhs += rhs;
  }
  friend Posynomial operator*(Posynomial lhs, const Monomial& m) {
    return lhs *= m;
  }
  friend Posynomial operator*(const Monomial& m, Posynomial rhs) {
    return rhs *= m;
  }
  friend Posynomial operator*(Posynomial lhs, double s) { return lhs *= s; }
  friend Posynomial operator*(double s, Posynomial rhs) { return rhs *= s; }

 private:
  std::vector<Monomial> terms_;
};

/// Monomials sum to posynomials (ADL cannot see Posynomial's operator+
/// when both operands are monomials, so it is provided explicitly).
inline Posynomial operator+(const Monomial& a, const Monomial& b) {
  return Posynomial(a) + Posynomial(b);
}
inline Posynomial operator+(const Monomial& a, double c) {
  return Posynomial(a) + Posynomial(c);
}
inline Posynomial operator+(double c, const Monomial& a) {
  return Posynomial(c) + Posynomial(a);
}

}  // namespace mfa::gp
