#include "gp/problem.hpp"

#include <cmath>

namespace mfa::gp {

double LseFunction::value(const linalg::Vector& y) const {
  MFA_ASSERT(y.size() == a.cols());
  // Max-shifted log-sum-exp for numerical stability.
  double zmax = -1e300;
  std::vector<double> z(terms());
  for (std::size_t r = 0; r < terms(); ++r) {
    double acc = b[r];
    for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * y[c];
    z[r] = acc;
    zmax = std::max(zmax, acc);
  }
  double sum = 0.0;
  for (double zi : z) sum += std::exp(zi - zmax);
  return zmax + std::log(sum);
}

void LseFunction::add_derivatives(const linalg::Vector& y, double t,
                                  linalg::Vector& grad,
                                  linalg::Matrix& hess) const {
  const std::size_t n = a.cols();
  MFA_ASSERT(grad.size() == n && hess.rows() == n && hess.cols() == n);
  // Softmax weights w_r = exp(z_r) / Σ exp(z).
  double zmax = -1e300;
  std::vector<double> z(terms());
  for (std::size_t r = 0; r < terms(); ++r) {
    double acc = b[r];
    for (std::size_t c = 0; c < n; ++c) acc += a(r, c) * y[c];
    z[r] = acc;
    zmax = std::max(zmax, acc);
  }
  double sum = 0.0;
  for (double& zi : z) {
    zi = std::exp(zi - zmax);
    sum += zi;
  }
  std::vector<double> w(terms());
  for (std::size_t r = 0; r < terms(); ++r) w[r] = z[r] / sum;

  // ∇F = Aᵀw;  ∇²F = Aᵀ(diag(w) − wwᵀ)A.
  linalg::Vector g(n);
  for (std::size_t r = 0; r < terms(); ++r) {
    if (w[r] == 0.0) continue;
    for (std::size_t c = 0; c < n; ++c) g[c] += w[r] * a(r, c);
  }
  for (std::size_t c = 0; c < n; ++c) grad[c] += t * g[c];

  for (std::size_t r = 0; r < terms(); ++r) {
    if (w[r] == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const double wa = t * w[r] * a(r, i);
      if (wa == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) hess(i, j) += wa * a(r, j);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double tg = t * g[i];
    if (tg == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) hess(i, j) -= tg * g[j];
  }
}

VarId GpProblem::add_variable(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<VarId>(names_.size() - 1);
}

void GpProblem::set_objective(Posynomial objective) {
  MFA_ASSERT_MSG(!objective.empty(), "objective must be non-empty");
  objective_ = std::move(objective);
}

void GpProblem::add_le1(Posynomial p, std::string label) {
  MFA_ASSERT_MSG(!p.empty(), "constraint must be non-empty");
  constraints_.push_back(std::move(p));
  labels_.push_back(std::move(label));
}

void GpProblem::add_eq1(const Monomial& m, const std::string& label) {
  // A strict equality has no interior, which a barrier method cannot
  // traverse; relax symmetrically to |log m| ≤ log(1+ε). The solution
  // satisfies the equality to within ε (documented in the header).
  constexpr double kEqSlack = 1e-7;
  add_le1(Posynomial(m * (1.0 / (1.0 + kEqSlack))),
          label.empty() ? label : label + " (<=)");
  add_le1(Posynomial(m.inverse() * (1.0 / (1.0 + kEqSlack))),
          label.empty() ? label : label + " (>=)");
}

CompiledGp GpProblem::compile() const {
  MFA_ASSERT_MSG(!objective_.empty(), "compile() before set_objective()");
  detail::count_structure_compile();
  CompiledGp out(num_variables());
  out.add(objective_);
  for (const Posynomial& p : constraints_) out.add(p);
  return out;
}

Fingerprint GpProblem::structural_fingerprint() const {
  MFA_ASSERT_MSG(!objective_.empty(),
                 "structural_fingerprint() before set_objective()");
  Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(num_variables()));
  // The exact ordered monomial/exponent sequence determines the lowered
  // structure (row interning, duplicate merging, supports) completely;
  // coefficients are deliberately excluded so a re-weighted problem maps
  // to the same compiled model.
  auto mix_posynomial = [&fp](const Posynomial& p) {
    fp.mix(static_cast<std::uint64_t>(p.terms().size()));
    for (const Monomial& m : p.terms()) {
      fp.mix(static_cast<std::uint64_t>(m.exponents().size()));
      for (const auto& [v, e] : m.exponents()) {
        fp.mix(static_cast<std::uint64_t>(v));
        fp.mix(e);
      }
    }
  };
  mix_posynomial(objective_);
  fp.mix(static_cast<std::uint64_t>(constraints_.size()));
  for (const Posynomial& c : constraints_) mix_posynomial(c);
  return fp;
}

LseFunction GpProblem::compile(const Posynomial& p) const {
  const std::size_t rows = p.terms().size();
  LseFunction f;
  f.a = linalg::Matrix(rows, num_variables());
  f.b = linalg::Vector(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const Monomial& m = p.terms()[r];
    f.b[r] = std::log(m.coeff());
    for (const auto& [v, e] : m.exponents()) {
      MFA_ASSERT_MSG(v < num_variables(), "monomial uses unknown variable");
      f.a(r, v) = e;
    }
  }
  return f;
}

}  // namespace mfa::gp
