// Geometric-program container and its log-space compilation.
//
// Standard form: minimize posynomial f0(x) subject to posynomial
// constraints f_i(x) ≤ 1 and monomial equalities m_j(x) = 1, over x > 0.
// Monomial equalities are lowered to the inequality pair m ≤ 1, 1/m ≤ 1
// (both log-affine, so convexity in log space is preserved), which keeps
// the solver free of an equality-constrained Newton path.
//
// The log-space compilation maps each posynomial to a log-sum-exp function
//   F(y) = log Σ_t exp(A_t·y + b_t),  y = log x,
// which is the form consumed by gp::Solver.
#pragma once

#include <string>
#include <vector>

#include "gp/compiled.hpp"
#include "gp/expr.hpp"
#include "linalg/matrix.hpp"

namespace mfa::gp {

/// One log-sum-exp function F(y) = log Σ_r exp(row_r(A)·y + b_r).
struct LseFunction {
  linalg::Matrix a;  ///< terms × variables exponent matrix
  linalg::Vector b;  ///< per-term log coefficients

  /// Number of summed exponential terms.
  [[nodiscard]] std::size_t terms() const { return a.rows(); }

  /// F(y); numerically stable (max-shifted) log-sum-exp.
  [[nodiscard]] double value(const linalg::Vector& y) const;

  /// Appends t·∇F(y) to grad and t·∇²F(y) weighted into hess (softmax
  /// gradient/Hessian); used by the barrier Newton assembly.
  void add_derivatives(const linalg::Vector& y, double t, linalg::Vector& grad,
                       linalg::Matrix& hess) const;
};

/// A GP in standard form, built incrementally.
class GpProblem {
 public:
  /// Registers a decision variable; the name is kept for diagnostics.
  VarId add_variable(std::string name);

  [[nodiscard]] std::size_t num_variables() const { return names_.size(); }
  [[nodiscard]] const std::string& name(VarId v) const {
    MFA_ASSERT(v < names_.size());
    return names_[v];
  }

  /// Sets the posynomial objective (minimized). Must be non-empty.
  void set_objective(Posynomial objective);

  /// Adds the constraint p(x) ≤ 1.
  void add_le1(Posynomial p, std::string label = {});

  /// Adds the monomial equality m(x) = 1, lowered to the inequality pair
  /// |log m| ≤ log(1+ε) with ε = 1e-7 (a strict equality has no interior
  /// for the barrier method); the returned solution satisfies the
  /// equality to within ε relative error.
  void add_eq1(const Monomial& m, const std::string& label = {});

  [[nodiscard]] const Posynomial& objective() const { return objective_; }
  [[nodiscard]] const std::vector<Posynomial>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] const std::string& constraint_label(std::size_t i) const {
    MFA_ASSERT(i < labels_.size());
    return labels_[i];
  }

  /// Compiles a posynomial into its log-space form over this problem's
  /// variable set.
  [[nodiscard]] LseFunction compile(const Posynomial& p) const;

  /// Compiles the whole problem into the flat LSE IR consumed by the
  /// solver's hot path: function 0 is the objective, functions 1..m the
  /// posynomial constraints in order. Exponent rows are hash-consed and
  /// duplicate monomials merged (see gp/compiled.hpp).
  [[nodiscard]] CompiledGp compile() const;

  /// 128-bit fingerprint of the problem's *structure*: the variable
  /// count and the exact ordered sequence of monomial exponent rows of
  /// the objective and every constraint — everything that determines
  /// the compiled IR's shape — and deliberately not the coefficients.
  /// Two problems with equal structural fingerprints compile() to
  /// identical structures (same rows, same merge plan), so one compiled
  /// model serves both after a patch_coefficients(); this is the
  /// core::CompiledModelCache key.
  [[nodiscard]] Fingerprint structural_fingerprint() const;

 private:
  std::vector<std::string> names_;
  Posynomial objective_;
  std::vector<Posynomial> constraints_;
  std::vector<std::string> labels_;
};

}  // namespace mfa::gp
