#include "gp/expr.hpp"

#include <cmath>

namespace mfa::gp {

double Monomial::exponent(VarId v) const {
  auto it = exponents_.find(v);
  return it == exponents_.end() ? 0.0 : it->second;
}

double Monomial::eval(const std::vector<double>& x) const {
  double value = coeff_;
  for (const auto& [v, e] : exponents_) {
    MFA_ASSERT(v < x.size());
    MFA_ASSERT_MSG(x[v] > 0.0, "GP evaluation requires x > 0");
    // Fast-path the exponents allocation models are made of (x, x², 1/x):
    // a multiply or divide instead of a ~20× costlier std::pow. (The
    // compiled kernel needs no analogue — in log space an exponent is
    // always a plain multiply; see gp/compiled.hpp.)
    if (e == 1.0) {
      value *= x[v];
    } else if (e == 2.0) {
      value *= x[v] * x[v];
    } else if (e == -1.0) {
      value /= x[v];
    } else {
      value *= std::pow(x[v], e);
    }
  }
  return value;
}

Monomial& Monomial::operator*=(const Monomial& rhs) {
  coeff_ *= rhs.coeff_;
  for (const auto& [v, e] : rhs.exponents_) {
    const double merged = exponents_[v] + e;
    if (merged == 0.0) {
      exponents_.erase(v);
    } else {
      exponents_[v] = merged;
    }
  }
  return *this;
}

Monomial Monomial::pow(double p) const {
  Monomial out(std::pow(coeff_, p));
  for (const auto& [v, e] : exponents_) {
    if (e * p != 0.0) out.exponents_[v] = e * p;
  }
  return out;
}

double Posynomial::eval(const std::vector<double>& x) const {
  double acc = 0.0;
  for (const Monomial& m : terms_) acc += m.eval(x);
  return acc;
}

Posynomial& Posynomial::operator+=(const Posynomial& rhs) {
  terms_.insert(terms_.end(), rhs.terms_.begin(), rhs.terms_.end());
  return *this;
}

Posynomial& Posynomial::operator*=(const Monomial& m) {
  for (Monomial& t : terms_) t *= m;
  return *this;
}

Posynomial& Posynomial::operator*=(double s) {
  for (Monomial& t : terms_) t *= s;
  return *this;
}

}  // namespace mfa::gp
