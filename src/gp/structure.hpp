// Internal definition of CompiledGp::Structure — the immutable (once
// shared) half of a compiled GP.
//
// Lives in its own header (rather than compiled.cpp) so that the batched
// evaluator (gp/batched.cpp) can walk the same CSR arrays the scalar
// kernel uses without duplicating the layout or widening CompiledGp's
// public API. Only gp/*.cpp translation units may include this; the
// Structure stays a private nested type of CompiledGp, reachable through
// friendship.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gp/compiled.hpp"
#include "support/assert.hpp"

namespace mfa::gp {
namespace detail {

/// FNV-1a over the bit patterns of a row signature. Collisions are
/// resolved by exact comparison in intern_row(), so this only needs to
/// spread well.
inline std::uint64_t row_hash(
    const std::vector<std::pair<VarId, double>>& entries) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& [v, e] : entries) {
    mix(v);
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(e));
    std::memcpy(&bits, &e, sizeof(bits));
    mix(bits);
  }
  return h;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Structure: everything the sparsity-level compiler produces, including
// the monomial→term merge plan that patch_function() replays and the
// cached phase-I slack lowering.
// ---------------------------------------------------------------------------

struct CompiledGp::Structure {
  std::size_t num_vars = 0;
  std::vector<std::uint32_t> fun_begin{0};  // function → first term
  std::vector<std::uint32_t> row_of;        // per term → row id
  std::vector<std::uint32_t> row_begin{0};  // row → first nnz entry
  std::vector<std::uint32_t> var;           // nnz variable indices
  std::vector<double> exp;                  // nnz exponents
  std::vector<std::vector<std::uint32_t>> support;  // per function
  // Merge plan: source monomial i of function f (global source index in
  // [src_begin[f], src_begin[f+1])) accumulates into term term_of_src[i].
  // patch_function() replays exactly this plan, in source order, so
  // patched coefficients are bit-identical to a fresh add().
  std::vector<std::uint32_t> src_begin{0};
  std::vector<std::uint32_t> term_of_src;
  std::size_t max_terms = 0;
  // hash-consing index: row signature hash → candidate row ids
  // (build-time only; untouched by evaluation and patching)
  std::unordered_multimap<std::uint64_t, std::uint32_t> row_index;

  // Lazily derived artifacts, cached per structure and shared by every
  // clone. call_once makes first use thread-safe even when the owning
  // CompiledModel sits in a concurrent cache. `derived` flags that one
  // of them exists: appending functions after that would silently
  // leave a stale slack problem or fingerprint behind, so the building
  // API asserts it is still false.
  mutable std::once_flag slack_once;
  mutable std::shared_ptr<Structure> slack;
  mutable std::once_flag fp_once;
  mutable Fingerprint fp;
  mutable std::atomic<bool> derived{false};

  [[nodiscard]] std::size_t num_rows() const { return row_begin.size() - 1; }

  /// Returns the id of the row with exactly these entries, interning it
  /// into the row table on first sight.
  std::uint32_t intern_row(
      const std::vector<std::pair<VarId, double>>& entries) {
    const std::uint64_t h = detail::row_hash(entries);
    auto [lo, hi] = row_index.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      const std::uint32_t r = it->second;
      const std::uint32_t begin = row_begin[r];
      if (row_begin[r + 1] - begin != entries.size()) continue;
      bool same = true;
      for (std::size_t k = 0; k < entries.size(); ++k) {
        if (var[begin + k] != entries[k].first ||
            exp[begin + k] != entries[k].second) {
          same = false;
          break;
        }
      }
      if (same) return r;
    }
    const auto r = static_cast<std::uint32_t>(num_rows());
    for (const auto& [v, e] : entries) {
      MFA_ASSERT_MSG(v < num_vars, "monomial uses unknown variable");
      var.push_back(v);
      exp.push_back(e);
    }
    row_begin.push_back(static_cast<std::uint32_t>(var.size()));
    row_index.emplace(h, r);
    return r;
  }

  /// Appends a function from its per-term rows, deriving its support.
  void finish_function(const std::vector<std::uint32_t>& rows) {
    std::vector<std::uint32_t> sup;
    for (const std::uint32_t r : rows) {
      row_of.push_back(r);
      for (std::uint32_t k = row_begin[r]; k < row_begin[r + 1]; ++k) {
        sup.push_back(var[k]);
      }
    }
    std::sort(sup.begin(), sup.end());
    sup.erase(std::unique(sup.begin(), sup.end()), sup.end());
    support.push_back(std::move(sup));
    fun_begin.push_back(static_cast<std::uint32_t>(row_of.size()));
    max_terms = std::max(max_terms, rows.size());
  }
};

}  // namespace mfa::gp
