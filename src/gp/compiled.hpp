// Compiled flat IR for families of log-sum-exp functions, split into
// immutable *structure* and per-instance *coefficients*.
//
// The interpretive GP path walks `std::map<VarId,double>`-backed monomial
// ASTs and dense terms×variables matrices on every evaluation. CompiledGp
// lowers a whole problem (objective + constraints) once into CSR-style
// contiguous arrays:
//
//   function f  →  terms   [fun_begin[f], fun_begin[f+1])
//   term t      →  log-coefficient log_coeff_[t] and exponent row
//                  row_of[t] (an index into the shared row table)
//   row r       →  nnz pairs (var[k], exp[k]) for
//                  k ∈ [row_begin[r], row_begin[r+1])
//
// Exponent rows are hash-consed: structurally identical monomial exponent
// patterns — frequent in allocation GPs, where every latency constraint is
// WCET·II⁻¹·N_k⁻¹ and every box constraint touches one variable — are
// stored once and shared by every term that uses them. Duplicate monomials
// *within* one posynomial are merged by summing coefficients.
//
// Structure/coefficient split: everything except the per-term log
// coefficients (the sparsity pattern, exponent rows, function shapes, the
// monomial→term merge plan) lives in a shared_ptr-owned Structure that is
// immutable once built. Copying a CompiledGp shares the structure and
// copies only the coefficient vector, and patch_function() rewrites the
// coefficients in place — bit-identical to a fresh compile, with zero
// hash-consing or allocation. Online solvers exploit this through
// CompiledModel + core::CompiledModelCache: structurally identical solves
// (a serving loop where only priorities or capacities move) reuse one
// compiled structure forever and pay only an O(terms) coefficient replay
// per solve instead of a full lowering.
//
// Evaluation is fused: prepare() computes the max-shifted softmax weights
// for one function (and its value); scatter() then accumulates gradient
// and Hessian contributions with caller-chosen weights straight into the
// caller's buffers, touching only each function's variable support. All
// scratch lives in a caller-owned GpWorkspace, so steady-state evaluation
// performs no allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "gp/expr.hpp"
#include "linalg/matrix.hpp"
#include "support/fingerprint.hpp"
#include "support/thread_annotations.hpp"

namespace mfa::gp {

class GpProblem;  // gp/problem.hpp

/// Reusable scratch buffers for CompiledGp evaluation. One workspace per
/// thread of evaluation; sized lazily by the CompiledGp that uses it.
struct GpWorkspace {
  std::vector<double> z;  ///< per-term shifted exponents of one function
  std::vector<double> w;  ///< per-term softmax weights (prepare → scatter)
  std::vector<double> g;  ///< dense ∇F accumulator (num_vars entries)
};

// ---------------------------------------------------------------------------
// Process-wide compilation counters (relaxed atomics). Benches and the
// allocation service sample deltas around a workload to verify that
// structurally-stable event streams stop paying for full lowerings:
// bench/service_churn --check asserts Reprioritize/ResizePlatform events
// perform *zero* full compiles.
// ---------------------------------------------------------------------------

/// Full IR lowerings (GpProblem::compile() calls) since process start.
std::int64_t total_structure_compiles();
/// In-place coefficient patches (CompiledModel::patch_coefficients).
std::int64_t total_coefficient_patches();
/// Phase-I slack lowerings actually performed (lazy + cached per
/// structure, so warm solves that skip phase I never pay one).
std::int64_t total_slack_lowerings();

namespace detail {
void count_structure_compile();  // bumped by GpProblem::compile()
}  // namespace detail

/// A compiled family of LSE functions F_f(y) = log Σ_t exp(a_t·y + b_t)
/// over one shared variable set. Function 0 is the objective by the
/// GpProblem::compile() convention. Cheap to copy: copies share the
/// immutable structure and duplicate only the coefficient vector.
class CompiledGp {
 public:
  CompiledGp() : CompiledGp(0) {}
  explicit CompiledGp(std::size_t num_vars);
  ~CompiledGp();
  CompiledGp(const CompiledGp&);
  CompiledGp(CompiledGp&&) noexcept;
  CompiledGp& operator=(const CompiledGp&);
  CompiledGp& operator=(CompiledGp&&) noexcept;

  // ---- Building (valid only while this instance solely owns its
  // structure — before any copy was taken — and before a derived
  // artifact (with_slack, structure_fingerprint) was requested; both
  // are asserted). -----------------------------------------------------

  /// Appends a posynomial as the next function; duplicate monomials are
  /// merged and exponent rows hash-consed. Returns the function index.
  std::size_t add(const Posynomial& p);

  /// Appends a single-term function Σ e_i·y_{v_i} + log_coeff (a monomial
  /// in log space). `entries` must have strictly increasing var ids.
  std::size_t add_affine(const std::vector<std::pair<VarId, double>>& entries,
                         double log_coeff);

  // ---- Coefficient patching (structure stays shared + untouched). ----

  /// Recomputes function f's log-coefficients from `p`, replaying the
  /// compile-time duplicate-merge plan in source order — bit-identical
  /// to what a fresh add(p) would have produced. `p` must have the same
  /// monomial structure (count and exponent rows) as the posynomial the
  /// function was compiled from; shape mismatches assert.
  MFA_WARM_PATH void patch_function(std::size_t f, const Posynomial& p);

  /// Rewrites the log-coefficient of a single-term (add_affine-built)
  /// function.
  MFA_WARM_PATH void patch_affine(std::size_t f, double log_coeff);

  // ---- Observers. ----------------------------------------------------

  [[nodiscard]] std::size_t num_vars() const;
  [[nodiscard]] std::size_t num_functions() const;
  [[nodiscard]] std::size_t num_terms(std::size_t f) const;
  [[nodiscard]] std::size_t total_terms() const { return log_coeff_.size(); }
  /// Number of distinct (hash-consed) exponent rows in the row table.
  [[nodiscard]] std::size_t num_rows() const;
  /// Sorted variable ids function f touches.
  [[nodiscard]] const std::vector<std::uint32_t>& support(std::size_t f) const;

  /// 128-bit fingerprint of the *structure* only (shapes, rows,
  /// exponents, merge plan — not coefficients). Computed lazily once per
  /// structure; two CompiledGps patched from different coefficients
  /// report the same value. Structures lowered from GpProblems with
  /// equal GpProblem::structural_fingerprint()s are identical.
  [[nodiscard]] const Fingerprint& structure_fingerprint() const;

  /// True when both share one structure object (O(1); the cache's
  /// clone-then-patch path preserves this).
  [[nodiscard]] bool same_structure(const CompiledGp& other) const {
    return s_ == other.s_;
  }

  // ---- Evaluation. ---------------------------------------------------

  /// F_f(y), numerically stable. Cheap path for merit/line-search loops.
  [[nodiscard]] double value(std::size_t f, const linalg::Vector& y,
                             GpWorkspace& ws) const;

  /// Computes F_f(y) and leaves the normalized softmax weights of f in
  /// ws.w for a following scatter() call. Returns F_f(y).
  double prepare(std::size_t f, const linalg::Vector& y,
                 GpWorkspace& ws) const;

  /// Consumes the weights produced by the latest prepare(f, …) and
  /// accumulates, with g = ∇F = Aᵀw and M = Σ_t w_t·a_t·a_tᵀ (so that
  /// ∇²F = M − g·gᵀ):
  ///
  ///   grad += wg·g,   hess += wm·M + wr·g·gᵀ.
  ///
  /// The barrier uses (t, t, −t) for the objective term t·F₀ and
  /// (κ, κ, κ² − κ) with κ = 1/(−F_i) per constraint. Only rows/columns
  /// in support(f) are touched.
  void scatter(std::size_t f, double wg, double wm, double wr,
               linalg::Vector& grad, linalg::Matrix& hess,
               GpWorkspace& ws) const;

  /// Phase-I transform: appends one slack variable s, gives every term of
  /// every function an extra exponent −1 on s (F(y) ≤ 0 becomes
  /// F(y) − s ≤ 0 and stays log-sum-exp), and replaces function 0 by the
  /// slack objective F₀(y, s) = s. The slack *structure* is lowered at
  /// most once per source structure (thread-safe, cached inside it), so
  /// repeated phase-I runs over one cached model — and every clone of
  /// it — pay only the O(terms) coefficient derivation.
  [[nodiscard]] CompiledGp with_slack() const;

 private:
  friend class CompiledModel;
  friend class BatchedModel;  // gp/batched.hpp: lane-parallel evaluation
  struct Structure;           // defined in gp/structure.hpp

  void ensure_workspace(GpWorkspace& ws) const;

  std::shared_ptr<Structure> s_;   ///< immutable once shared
  std::vector<double> log_coeff_;  ///< per term; the mutable half
};

/// A solver-ready compiled artifact: the problem's functions plus the
/// per-variable box-constraint rows |y_j| ≤ variable_box, so
/// GpSolver::solve on a prepared model performs zero per-call IR
/// mutation (no box appends, no re-lowering — the phase-I slack problem
/// is derived lazily through the structure cache above).
///
/// Built once per *structure* via build() and thereafter refreshed with
/// patch_coefficients(), which rewrites every coefficient (objective,
/// constraints, box rows) from a structurally-identical problem —
/// bit-identical to a fresh build(), at O(terms) arithmetic cost with no
/// hashing or allocation. core::CompiledModelCache stores models by
/// GpProblem::structural_fingerprint(); every hit is cloned (shared
/// structure, private coefficients) and patched, which is what makes the
/// cache transparent under the determinism contract.
class CompiledModel {
 public:
  CompiledModel() = default;

  /// Full lowering: compiles `problem` and appends the 2·n box rows
  /// with log-coefficient −variable_box.
  static CompiledModel build(const GpProblem& problem, double variable_box);

  /// Rewrites every coefficient from `problem` (+ the box rows from
  /// `variable_box`). `problem` must have the structure this model was
  /// built from (asserted via the structural fingerprint).
  void patch_coefficients(const GpProblem& problem, double variable_box);

  /// As above with the caller's already-computed
  /// problem.structural_fingerprint(), so a cache hit (which hashed the
  /// problem to find the entry) does not hash it a second time. This is
  /// the overload the steady-state numeric path takes.
  MFA_WARM_PATH void patch_coefficients(const GpProblem& problem,
                                        double variable_box,
                                        const Fingerprint& problem_fp);

  /// The compiled functions: objective, problem constraints, box rows.
  [[nodiscard]] const CompiledGp& gp() const { return gp_; }
  /// Slack-augmented phase-I problem (see CompiledGp::with_slack).
  [[nodiscard]] CompiledGp phase1() const { return gp_.with_slack(); }

  /// Structural fingerprint of the source GpProblem (the cache key this
  /// model is stored under).
  [[nodiscard]] const Fingerprint& problem_fingerprint() const {
    return problem_fp_;
  }
  /// The variable_box the current coefficients encode.
  [[nodiscard]] double variable_box() const { return variable_box_; }
  /// Source-problem variable count (box rows span these).
  [[nodiscard]] std::size_t num_vars() const { return gp_.num_vars(); }
  /// Constraint functions including the box rows.
  [[nodiscard]] std::size_t num_constraints() const {
    return gp_.num_functions() - 1;
  }

 private:
  CompiledGp gp_;
  Fingerprint problem_fp_;
  double variable_box_ = 0.0;
};

}  // namespace mfa::gp
