// Compiled flat IR for families of log-sum-exp functions.
//
// The interpretive GP path walks `std::map<VarId,double>`-backed monomial
// ASTs and dense terms×variables matrices on every evaluation. CompiledGp
// lowers a whole problem (objective + constraints) once into CSR-style
// contiguous arrays:
//
//   function f  →  terms   [fun_begin_[f], fun_begin_[f+1])
//   term t      →  log-coefficient log_coeff_[t] and exponent row
//                  row_of_[t] (an index into the shared row table)
//   row r       →  nnz pairs (var_[k], exp_[k]) for
//                  k ∈ [row_begin_[r], row_begin_[r+1])
//
// Exponent rows are hash-consed: structurally identical monomial exponent
// patterns — frequent in allocation GPs, where every latency constraint is
// WCET·II⁻¹·N_k⁻¹ and every box constraint touches one variable — are
// stored once and shared by every term that uses them. Duplicate monomials
// *within* one posynomial are merged by summing coefficients.
//
// Evaluation is fused: prepare() computes the max-shifted softmax weights
// for one function (and its value); scatter() then accumulates gradient
// and Hessian contributions with caller-chosen weights straight into the
// caller's buffers, touching only each function's variable support. All
// scratch lives in a caller-owned GpWorkspace, so steady-state evaluation
// performs no allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gp/expr.hpp"
#include "linalg/matrix.hpp"

namespace mfa::gp {

/// Reusable scratch buffers for CompiledGp evaluation. One workspace per
/// thread of evaluation; sized lazily by the CompiledGp that uses it.
struct GpWorkspace {
  std::vector<double> z;  ///< per-term shifted exponents of one function
  std::vector<double> w;  ///< per-term softmax weights (prepare → scatter)
  std::vector<double> g;  ///< dense ∇F accumulator (num_vars entries)
};

/// A compiled family of LSE functions F_f(y) = log Σ_t exp(a_t·y + b_t)
/// over one shared variable set. Function 0 is the objective by the
/// GpProblem::compile() convention; the solver appends box constraints.
class CompiledGp {
 public:
  explicit CompiledGp(std::size_t num_vars) : num_vars_(num_vars) {}

  /// Appends a posynomial as the next function; duplicate monomials are
  /// merged and exponent rows hash-consed. Returns the function index.
  std::size_t add(const Posynomial& p);

  /// Appends a single-term function Σ e_i·y_{v_i} + log_coeff (a monomial
  /// in log space). `entries` must have strictly increasing var ids.
  std::size_t add_affine(const std::vector<std::pair<VarId, double>>& entries,
                         double log_coeff);

  [[nodiscard]] std::size_t num_vars() const { return num_vars_; }
  [[nodiscard]] std::size_t num_functions() const {
    return fun_begin_.size() - 1;
  }
  [[nodiscard]] std::size_t num_terms(std::size_t f) const {
    MFA_ASSERT(f + 1 < fun_begin_.size());
    return fun_begin_[f + 1] - fun_begin_[f];
  }
  [[nodiscard]] std::size_t total_terms() const { return log_coeff_.size(); }
  /// Number of distinct (hash-consed) exponent rows in the row table.
  [[nodiscard]] std::size_t num_rows() const { return row_begin_.size() - 1; }
  /// Sorted variable ids function f touches.
  [[nodiscard]] const std::vector<std::uint32_t>& support(
      std::size_t f) const {
    MFA_ASSERT(f < support_.size());
    return support_[f];
  }

  /// F_f(y), numerically stable. Cheap path for merit/line-search loops.
  [[nodiscard]] double value(std::size_t f, const linalg::Vector& y,
                             GpWorkspace& ws) const;

  /// Computes F_f(y) and leaves the normalized softmax weights of f in
  /// ws.w for a following scatter() call. Returns F_f(y).
  double prepare(std::size_t f, const linalg::Vector& y,
                 GpWorkspace& ws) const;

  /// Consumes the weights produced by the latest prepare(f, …) and
  /// accumulates, with g = ∇F = Aᵀw and M = Σ_t w_t·a_t·a_tᵀ (so that
  /// ∇²F = M − g·gᵀ):
  ///
  ///   grad += wg·g,   hess += wm·M + wr·g·gᵀ.
  ///
  /// The barrier uses (t, t, −t) for the objective term t·F₀ and
  /// (κ, κ, κ² − κ) with κ = 1/(−F_i) per constraint. Only rows/columns
  /// in support(f) are touched.
  void scatter(std::size_t f, double wg, double wm, double wr,
               linalg::Vector& grad, linalg::Matrix& hess,
               GpWorkspace& ws) const;

  /// Phase-I transform: appends one slack variable s, gives every term of
  /// every function an extra exponent −1 on s (F(y) ≤ 0 becomes
  /// F(y) − s ≤ 0 and stays log-sum-exp), and replaces function 0 by the
  /// slack objective F₀(y, s) = s.
  [[nodiscard]] CompiledGp with_slack() const;

 private:
  void ensure_workspace(GpWorkspace& ws) const;
  /// Returns the id of the row with exactly these entries, interning it
  /// into the row table on first sight.
  std::uint32_t intern_row(
      const std::vector<std::pair<VarId, double>>& entries);
  std::size_t finish_function(std::vector<std::uint32_t> rows,
                              std::vector<double> coeffs);

  std::size_t num_vars_;
  std::vector<std::uint32_t> fun_begin_{0};  // function → first term
  std::vector<double> log_coeff_;            // per term
  std::vector<std::uint32_t> row_of_;        // per term → row id
  std::vector<std::uint32_t> row_begin_{0};  // row → first nnz entry
  std::vector<std::uint32_t> var_;           // nnz variable indices
  std::vector<double> exp_;                  // nnz exponents
  std::vector<std::vector<std::uint32_t>> support_;  // per function
  // hash-consing index: row signature hash → candidate row ids
  std::unordered_multimap<std::uint64_t, std::uint32_t> row_index_;
  std::size_t max_terms_ = 0;
};

}  // namespace mfa::gp
