// Batched (SIMD-friendly) evaluation of K structurally-identical
// compiled GPs — "lanes" — over one shared Structure.
//
// PR 5's structure/coefficient split means a parameter sweep, a B&B
// frontier and a multi-tenant event burst are all N solves of *one*
// compiled Structure with N coefficient vectors. BatchedModel pins K such
// instances together and stores their coefficients structure-major SoA:
// for each CSR term t, the K log-coefficients sit contiguously at
// coeff[t·K + lane], in a 64-byte-aligned buffer. The fused
// value/gradient/Hessian pass then walks the CSR arrays (terms, exponent
// rows) exactly once per term while an inner `#pragma omp simd` loop
// computes all K lanes — no intrinsics, autovectorizes to AVX2/NEON.
//
// Per-lane arithmetic is a strict scalar chain: no reduction ever crosses
// lanes, and exp/log stay scalar libm calls (their loops carry no simd
// pragma, and -fopenmp-simd does not define _OPENMP, so glibc's vector
// math declarations never activate). A lane therefore computes the exact
// same bit pattern regardless of which other lanes share its batch, how
// wide the batch is, or where in the batch it sits — which is what makes
// batched results deterministic and independent of group formation order.
// Against the *scalar* kernel the contract is tolerance-level parity only
// (the scalar scatter's w==0 skips and its separately-reassociated merit
// are not replayed bit-for-bit); the scalar path remains the oracle via
// differential_fuzz --batched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <vector>

#include "gp/compiled.hpp"
#include "support/assert.hpp"
#include "support/thread_annotations.hpp"

namespace mfa::gp {

// ---------------------------------------------------------------------------
// Process-wide batching counters (relaxed atomics). bench/service_churn
// --check asserts zero misgroupings across its replay: a misgrouping means
// a fingerprint-formed batch did not actually share one Structure object
// and had to fall back to scalar solves.
// ---------------------------------------------------------------------------

/// Batched solves dispatched (solve_batch calls that ran the batched
/// kernel rather than falling back to per-lane scalar solves).
std::int64_t total_batched_solves();
/// Total lanes across those batched solves.
std::int64_t total_batched_lanes();
/// Groups whose members did not share one Structure object (each such
/// group fell back to scalar solves).
std::int64_t total_batched_misgroupings();

namespace detail {
void count_batched_solve(std::size_t lanes);
void count_batched_misgrouping();
}  // namespace detail

/// A 64-byte-aligned array of doubles used for lane-strided (SoA) state:
/// element (i, lane) of an n×L quantity lives at data()[i*L + lane].
/// resize() discards contents (zero-fills); copying copies the payload.
class LaneArray {
 public:
  LaneArray() = default;
  explicit LaneArray(std::size_t n) { resize(n); }
  LaneArray(const LaneArray& other);
  LaneArray(LaneArray&&) noexcept = default;
  LaneArray& operator=(const LaneArray& other);
  LaneArray& operator=(LaneArray&&) noexcept = default;

  /// Reallocates to exactly n doubles, zero-filled. No-op when the size
  /// already matches (contents are kept in that case).
  void resize(std::size_t n);
  void fill(double v);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] double* data() { return data_.get(); }
  [[nodiscard]] const double* data() const { return data_.get(); }

  double& operator[](std::size_t i) {
    MFA_ASSERT(i < size_);
    return data_.get()[i];
  }
  double operator[](std::size_t i) const {
    MFA_ASSERT(i < size_);
    return data_.get()[i];
  }

 private:
  struct Deleter {
    void operator()(double* p) const noexcept {
      ::operator delete(static_cast<void*>(p), std::align_val_t{64});
    }
  };
  std::unique_ptr<double, Deleter> data_;
  std::size_t size_ = 0;
};

/// Reusable scratch for BatchedModel evaluation; sized up front by the
/// model that uses it (ensure_workspace, called at build/rebuild time —
/// the warm evaluators only assert sufficiency). One per thread of
/// evaluation.
struct BatchedWorkspace {
  LaneArray z;     ///< per-term shifted exponents, [max_terms × L]
  LaneArray w;     ///< per-term softmax weights,   [max_terms × L]
  LaneArray g;     ///< dense ∇F accumulator,       [num_vars × L]
  LaneArray zmax;  ///< per-lane max shift, [L]
  LaneArray sum;   ///< per-lane softmax normalizer, [L]
};

/// K coefficient instances of one shared CompiledGp Structure, evaluated
/// lane-parallel. Built from lanes that must share one Structure object
/// (the CompiledModelCache's clone-then-patch path guarantees this);
/// build() refuses — and counts a misgrouping — otherwise.
class BatchedModel {
 public:
  BatchedModel(const BatchedModel&);
  BatchedModel(BatchedModel&&) noexcept;
  BatchedModel& operator=(const BatchedModel&);
  BatchedModel& operator=(BatchedModel&&) noexcept;
  ~BatchedModel();

  /// Pins the lanes' coefficients into the SoA buffer. Returns nullopt
  /// (and bumps total_batched_misgroupings) when the lanes do not all
  /// share lanes[0]'s Structure object.
  static std::optional<BatchedModel> build(
      const std::vector<const CompiledGp*>& lanes);

  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  [[nodiscard]] std::size_t num_vars() const;
  [[nodiscard]] std::size_t num_functions() const;

  /// Sizes `ws` for this model (cold path — grows only, never shrinks,
  /// so one workspace serves a sequence of models). Call after build()
  /// and after every rebuild; value()/prepare()/scatter() assert the
  /// workspace is large enough instead of growing it, which is what
  /// keeps the warm evaluation path allocation-free by construction.
  void ensure_workspace(BatchedWorkspace& ws) const;

  /// F_f(y_l) for every lane l: y is var-major SoA (y[j·L + l] is
  /// variable j of lane l; y may have more than num_vars rows — extra
  /// trailing rows are ignored, which lets the phase-I feasibility check
  /// evaluate the main model directly on the slack iterate). out[l]
  /// receives lane l's value.
  MFA_WARM_PATH void value(std::size_t f, const LaneArray& y,
                           BatchedWorkspace& ws, double* out) const;

  /// As value(), and leaves each lane's normalized softmax weights in
  /// ws.w (term-major SoA) for a following scatter().
  MFA_WARM_PATH void prepare(std::size_t f, const LaneArray& y,
                             BatchedWorkspace& ws, double* out) const;

  /// Consumes the weights of the latest prepare(f, …): with g_l = ∇F_f
  /// of lane l and M_l = Σ_t w_t·a_t·a_tᵀ, accumulates per lane
  ///
  ///   grad[j·L+l] += wg[l]·g_l[j]
  ///   hess[(i·n+j)·L+l] += wm[l]·M_l(i,j) + wr[l]·g_l[i]·g_l[j].
  ///
  /// A lane with all-zero weights is frozen: it still computes but
  /// contributes exactly zero.
  MFA_WARM_PATH void scatter(std::size_t f, const double* wg, const double* wm,
                             const double* wr, LaneArray& grad, LaneArray& hess,
                             BatchedWorkspace& ws) const;

 private:
  BatchedModel();

  std::shared_ptr<const CompiledGp::Structure> s_;
  std::size_t lanes_ = 0;
  LaneArray coeff_;  ///< [total_terms × L], term-major SoA
};

/// Scratch for batched_spd_solve; size with reserve_spd_workspace.
struct BatchedSpdWorkspace {
  LaneArray l;   ///< Cholesky factors, [n·n × L]
  LaneArray fw;  ///< forward-substitution intermediate, [n × L]
};

/// Sizes `ws` and the solution array `x` for batched_spd_solve calls of
/// up to n variables × lanes lanes (cold path — grows only). The solve
/// itself asserts sufficiency instead of growing, so presizing here is
/// what keeps the warm Newton step allocation-free.
void reserve_spd_workspace(std::size_t n, std::size_t lanes,
                           BatchedSpdWorkspace& ws, LaneArray& x);

/// Lane-strided dense SPD solve: factors each lane's n×n matrix
/// a[(i·n+j)·L+l] with an unregularized Cholesky and solves for
/// x[j·L+l]. ok[l] is set false where the factorization met a
/// non-positive pivot (that lane's x is garbage; the caller re-solves it
/// through the scalar regularizing path). Lanes are fully independent —
/// a failing lane never perturbs its neighbors.
MFA_WARM_PATH void batched_spd_solve(const LaneArray& a, const LaneArray& b,
                                     std::size_t n, std::size_t lanes,
                                     BatchedSpdWorkspace& ws, LaneArray& x,
                                     std::uint8_t* ok);

}  // namespace mfa::gp
