#include "core/allocation.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

namespace mfa::core {

Allocation::Allocation(const Problem& problem)
    : problem_(&problem),
      counts_(problem.num_kernels(),
              std::vector<int>(static_cast<std::size_t>(problem.num_fpgas()),
                               0)) {}

int Allocation::cu(std::size_t k, int f) const {
  MFA_ASSERT(k < counts_.size());
  MFA_ASSERT(f >= 0 && f < num_fpgas());
  return counts_[k][static_cast<std::size_t>(f)];
}

void Allocation::set_cu(std::size_t k, int f, int count) {
  MFA_ASSERT(k < counts_.size());
  MFA_ASSERT(f >= 0 && f < num_fpgas());
  MFA_ASSERT_MSG(count >= 0, "CU counts cannot be negative");
  counts_[k][static_cast<std::size_t>(f)] = count;
}

int Allocation::total_cu(std::size_t k) const {
  MFA_ASSERT(k < counts_.size());
  int total = 0;
  for (int n : counts_[k]) total += n;
  return total;
}

double Allocation::et(std::size_t k) const {
  const int n = total_cu(k);
  if (n == 0) return std::numeric_limits<double>::infinity();
  return problem_->app.kernels[k].wcet_ms / n;
}

double Allocation::ii() const {
  double worst = 0.0;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    worst = std::max(worst, et(k));
  }
  return worst;
}

double Allocation::phi_k(std::size_t k) const {
  MFA_ASSERT(k < counts_.size());
  double acc = 0.0;
  for (int n : counts_[k]) {
    acc += static_cast<double>(n) / (1.0 + n);
  }
  return acc;
}

double Allocation::phi() const {
  double worst = 0.0;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    worst = std::max(worst, phi_k(k));
  }
  return worst;
}

double Allocation::goal() const {
  return problem_->alpha * ii() + problem_->beta * phi();
}

int Allocation::fpgas_used_by(std::size_t k) const {
  MFA_ASSERT(k < counts_.size());
  int used = 0;
  for (int n : counts_[k]) used += (n > 0) ? 1 : 0;
  return used;
}

ResourceVec Allocation::fpga_resources(int f) const {
  MFA_ASSERT(f >= 0 && f < num_fpgas());
  ResourceVec acc;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    const int n = counts_[k][static_cast<std::size_t>(f)];
    if (n > 0) acc += problem_->app.kernels[k].res * static_cast<double>(n);
  }
  return acc;
}

double Allocation::fpga_bw(int f) const {
  MFA_ASSERT(f >= 0 && f < num_fpgas());
  double acc = 0.0;
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    acc += problem_->app.kernels[k].bw *
           counts_[k][static_cast<std::size_t>(f)];
  }
  return acc;
}

double Allocation::fpga_utilization(int f) const {
  return fpga_resources(f).max_ratio(problem_->platform.fpga_capacity(f));
}

double Allocation::average_utilization() const {
  double acc = 0.0;
  for (int f = 0; f < num_fpgas(); ++f) acc += fpga_utilization(f);
  return acc / num_fpgas();
}

std::vector<std::string> Allocation::check() const {
  std::vector<std::string> violations;
  char buf[256];
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    if (total_cu(k) < 1) {
      std::snprintf(buf, sizeof(buf), "kernel '%s' has no CU (eq. 8)",
                    problem_->app.kernels[k].name.c_str());
      violations.emplace_back(buf);
    }
  }
  for (int f = 0; f < num_fpgas(); ++f) {
    const ResourceVec cap = problem_->cap(f);
    const double bw_cap = problem_->bw_cap(f);
    const ResourceVec used = fpga_resources(f);
    if (!used.fits_within(cap, 1e-6)) {
      std::snprintf(buf, sizeof(buf),
                    "FPGA %d exceeds resource cap (eq. 9): used [%s] vs "
                    "cap [%s]",
                    f + 1, used.to_string().c_str(), cap.to_string().c_str());
      violations.emplace_back(buf);
    }
    const double bw = fpga_bw(f);
    if (bw > bw_cap + 1e-6) {
      std::snprintf(buf, sizeof(buf),
                    "FPGA %d exceeds bandwidth cap (eq. 10): %.3f%% vs "
                    "%.3f%%",
                    f + 1, bw, bw_cap);
      violations.emplace_back(buf);
    }
  }
  return violations;
}

std::string Allocation::to_string() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-12s", "kernel");
  out += buf;
  for (int f = 0; f < num_fpgas(); ++f) {
    std::snprintf(buf, sizeof(buf), "  F%-3d", f + 1);
    out += buf;
  }
  out += "   N_k    ET(ms)\n";
  for (std::size_t k = 0; k < counts_.size(); ++k) {
    std::snprintf(buf, sizeof(buf), "%-12s",
                  problem_->app.kernels[k].name.c_str());
    out += buf;
    for (int f = 0; f < num_fpgas(); ++f) {
      std::snprintf(buf, sizeof(buf), "  %-4d", cu(k, f));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "   %-4d  %.3f\n", total_cu(k), et(k));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "II = %.4f ms   phi = %.4f   g = %.4f   avg util = %.1f%%\n",
                ii(), phi(), goal(), 100.0 * average_utilization());
  out += buf;
  return out;
}

}  // namespace mfa::core
