// The symmetric continuous relaxation (paper §3.2.1, eqs. 14–18).
//
// With β = 0 and n_{k,f} ∈ R the per-FPGA structure drops out and only
// the totals N̂_k matter, constrained by the *pooled* platform capacity
// (F·R for F identical FPGAs; Σ_f R_f on a mixed fleet):
//
//   minimize ÎI  s.t.  ÎI ≥ WCET_k/N̂_k,  N̂_k ≥ 1,
//                      Σ_k N̂_k·R_k ≤ Σ_f R_f,  Σ_k N̂_k·B_k ≤ Σ_f B_f.
//
// Two independent solvers are provided:
//  * solve()    — exact bisection on the target ÎI. For a target t the
//                 cheapest feasible choice is N̂_k(t) = max(L_k, WCET_k/t)
//                 and resource use is monotone in t, so feasibility is a
//                 monotone predicate. This is the paper's "GP step" in
//                 closed form, and it accepts per-kernel bounds, which is
//                 what the discretizer's branch-and-bound nodes need.
//  * solve_gp() — the same model through the general gp::GpSolver, as the
//                 paper does with GPkit. Used for cross-validation and to
//                 exercise the GP substrate on the real problem.
#pragma once

#include <vector>

#include "core/compiled_cache.hpp"
#include "core/problem.hpp"
#include "gp/solver.hpp"
#include "support/fingerprint.hpp"
#include "support/status.hpp"

namespace mfa::core {

/// Per-kernel interval bounds on the *total* CU count N_k, used by the
/// discretizer's branch-and-bound. Defaults to [1, max_cu_total(k)].
struct CuBounds {
  std::vector<double> lower;
  std::vector<double> upper;

  /// Default bounds for a problem: L_k = 1, U_k = F · max-per-FPGA.
  static CuBounds defaults(const Problem& problem);
};

/// Result of the continuous relaxation.
struct RelaxedSolution {
  double ii = 0.0;             ///< optimal relaxed ÎI (ms)
  std::vector<double> n_hat;   ///< N̂_k, the relaxed total CUs per kernel
};

/// Solves the relaxation exactly by bisection. Returns kInfeasible when
/// even N̂_k = L_k violates a pooled resource constraint or L > U.
StatusOr<RelaxedSolution> solve_relaxation(const Problem& problem,
                                           const CuBounds& bounds);

/// Convenience overload with default bounds.
StatusOr<RelaxedSolution> solve_relaxation(const Problem& problem);

/// Warm-started bisection: `ii_hint` — typically a related solve's
/// optimal ÎI, e.g. the parent node's in branch-and-bound — is probed
/// once and, depending on feasibility, replaces one end of the initial
/// bracket. The returned optimum is the same as the cold solve's (to
/// bisection tolerance); only the iteration count changes. A hint
/// outside the bracket is ignored, so any positive value is safe.
StatusOr<RelaxedSolution> solve_relaxation(const Problem& problem,
                                           const CuBounds& bounds,
                                           double ii_hint);

/// Allocation-free flavor of the warm-started bisection: writes the
/// solution into `out`, reusing its n_hat capacity, instead of
/// returning a fresh RelaxedSolution. Bit-identical arithmetic to
/// solve_relaxation(problem, bounds, ii_hint) — same probes, same
/// bits — so results remain interchangeable with cached entries under
/// relaxation_cache_key. On a non-ok status `out` is unspecified. The
/// discretizer's patched-bounds search routes every node solve through
/// this with per-depth pooled solutions, which is what removes the
/// per-node n_hat allocation from branch-and-bound.
Status solve_relaxation_into(const Problem& problem, const CuBounds& bounds,
                             double ii_hint, RelaxedSolution& out);

/// Solves several bounds variants of one problem back to back — the
/// discretizer routes sibling branch-and-bound children (which share the
/// parent's kernel set and differ only in one tightened bound) through
/// this. Lane i is bit-identical to
/// solve_relaxation(problem, bounds[i], ii_hints[i]) — the bisection has
/// no cross-lane arithmetic — so results stay interchangeable with
/// individually cached entries under relaxation_cache_key. `ii_hints`
/// may be empty (no hints) or one hint per lane.
std::vector<StatusOr<RelaxedSolution>> solve_relaxation_batch(
    const Problem& problem, const std::vector<CuBounds>& bounds,
    const std::vector<double>& ii_hints);

/// Builds the GP model (14)–(18) for the problem, with bounds folded in
/// as monomial constraints. Variable 0 is ÎI; variable 1+k is N̂_k.
gp::GpProblem build_relaxation_gp(const Problem& problem,
                                  const CuBounds& bounds);

/// Solves the relaxation through the interior-point GP solver. When
/// `models` is non-null (and the compiled kernel is enabled), the
/// compiled artifact is fetched from / published to the cache by the GP
/// model's structural fingerprint: a hit skips the whole lowering and
/// only patches coefficients, producing byte-identical results to a
/// fresh compile (see core/compiled_cache.hpp).
StatusOr<RelaxedSolution> solve_relaxation_gp(
    const Problem& problem, const gp::SolverOptions& options = {},
    CompiledModelCache* models = nullptr);

/// Warm-started interior-point solve: seeds the barrier from `warm`
/// (e.g. a neighboring sweep point's relaxation). The ÎI seed is
/// inflated a few percent so latency constraints start strictly slack;
/// if the seed is still infeasible, phase I runs from it instead of from
/// scratch. Converges to the cold-start optimum (to solver tolerance).
/// `models` as above.
StatusOr<RelaxedSolution> solve_relaxation_gp(const Problem& problem,
                                              const gp::SolverOptions& options,
                                              const RelaxedSolution& warm,
                                              CompiledModelCache* models =
                                                  nullptr);

/// Cache key for a bisection solve of (problem, bounds, ii_hint): hashes
/// every input the result depends on plus an algorithm tag, so entries
/// never alias interior-point results. See core/relax_cache.hpp for the
/// determinism contract this upholds.
Fingerprint relaxation_cache_key(const Problem& problem,
                                 const CuBounds& bounds, double ii_hint);

/// Cache key for a default-bounds interior-point solve under `options`
/// (solver options are folded in — they change the returned bits).
Fingerprint relaxation_gp_cache_key(const Problem& problem,
                                    const gp::SolverOptions& options);

/// Cache key for a *warm-started* interior-point solve: the warm seed
/// changes the returned bits (same optimum only to tolerance), so warm
/// entries must never alias the cold ones — the seed's ÎI and N̂ are
/// folded into the key.
Fingerprint relaxation_gp_cache_key(const Problem& problem,
                                    const gp::SolverOptions& options,
                                    const RelaxedSolution& warm);

}  // namespace mfa::core
