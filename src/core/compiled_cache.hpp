// Thread-safe cache of compiled GP models, keyed by structural
// fingerprint.
//
// The serving hot loop re-solves the relaxation GP on every workload
// event, yet most events change only *numbers* — a priority weight
// rescales WCETs, a platform resize moves capacities — while the model's
// structure (variables, monomial sparsity, exponent rows, constraint
// shapes) is untouched. solve_relaxation_gp() therefore keys compiled
// artifacts by gp::GpProblem::structural_fingerprint(): a hit clones the
// stored model (cheap — the structure is shared, only the coefficient
// vector is copied) and rewrites the coefficients in place with
// patch_coefficients(), skipping the whole hash-consing lowering. A miss
// compiles once and publishes the artifact for every later structurally
// identical solve.
//
// Determinism: a hit is *always* re-patched from the caller's own
// problem before solving, so the solved bytes are identical to a fresh
// compile no matter which problem populated the entry — the cache is
// transparent under the PR-2 determinism contract even though entries
// are shared across different coefficient vectors.
//
// The cache machinery (sharding, FIFO bounding, first-writer-wins) is
// core::ShardedCache, shared with RelaxationCache.
#pragma once

#include "core/sharded_cache.hpp"
#include "gp/compiled.hpp"
#include "gp/problem.hpp"

namespace mfa::core {

using CompiledModelCache = ShardedCache<gp::CompiledModel>;

/// Cache key for the compiled artifact of a GP model: its structural
/// fingerprint plus an artifact tag (the stored model also carries the
/// box rows, which a future artifact variant might not).
inline Fingerprint compiled_model_cache_key(const Fingerprint& structural) {
  Fingerprint key = structural;
  key.mix(std::uint64_t{0xc03de1});  // artifact tag: boxed barrier model
  return key;
}

/// Convenience overload hashing `model` itself. Hot paths that also
/// patch should hash once and use the Fingerprint overload.
inline Fingerprint compiled_model_cache_key(const gp::GpProblem& model) {
  return compiled_model_cache_key(model.structural_fingerprint());
}

}  // namespace mfa::core
