#include "core/fingerprint.hpp"

#include "core/relaxation.hpp"

namespace mfa::core {

Fingerprint relaxation_fingerprint(const Problem& problem) {
  Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(problem.num_kernels()));
  for (const Kernel& k : problem.app.kernels) {
    fp.mix(k.wcet_ms);
    for (std::size_t axis = 0; axis < kNumResources; ++axis) {
      fp.mix(k.res.axis(axis));
    }
    fp.mix(k.bw);
  }
  fp.mix(static_cast<std::uint64_t>(problem.num_fpgas()));
  if (problem.platform.homogeneous()) {
    // Seed key layout, preserved so homogeneous keys stay stable.
    const ResourceVec cap = problem.cap();
    for (std::size_t axis = 0; axis < kNumResources; ++axis) {
      fp.mix(cap.axis(axis));
    }
    fp.mix(problem.bw_cap());
  } else {
    // Heterogeneous: the effective cap of *every* FPGA is a solve input
    // (pooled constraints and per-kernel CU bounds both depend on the
    // class vector), so key on the full per-FPGA cap sequence. The tag
    // separates the layout from a homogeneous key that happens to start
    // with the same numbers.
    fp.mix(std::uint64_t{0x4e7e90});  // layout tag: per-FPGA caps
    for (int f = 0; f < problem.num_fpgas(); ++f) {
      const ResourceVec cap = problem.cap(f);
      for (std::size_t axis = 0; axis < kNumResources; ++axis) {
        fp.mix(cap.axis(axis));
      }
      fp.mix(problem.bw_cap(f));
    }
  }
  return fp;
}

void mix_bounds(Fingerprint& fp, const CuBounds& bounds) {
  fp.mix(static_cast<std::uint64_t>(bounds.lower.size()));
  for (double v : bounds.lower) fp.mix(v);
  for (double v : bounds.upper) fp.mix(v);
}

}  // namespace mfa::core
