#include "core/fingerprint.hpp"

#include <cstring>

#include "core/relaxation.hpp"

namespace mfa::core {

void Fingerprint::mix(double d) {
  if (d == 0.0) d = 0.0;  // canonicalize -0.0
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  mix(bits);
}

Fingerprint relaxation_fingerprint(const Problem& problem) {
  Fingerprint fp;
  fp.mix(static_cast<std::uint64_t>(problem.num_kernels()));
  for (const Kernel& k : problem.app.kernels) {
    fp.mix(k.wcet_ms);
    for (std::size_t axis = 0; axis < kNumResources; ++axis) {
      fp.mix(k.res.axis(axis));
    }
    fp.mix(k.bw);
  }
  fp.mix(static_cast<std::uint64_t>(problem.num_fpgas()));
  const ResourceVec cap = problem.cap();
  for (std::size_t axis = 0; axis < kNumResources; ++axis) {
    fp.mix(cap.axis(axis));
  }
  fp.mix(problem.bw_cap());
  return fp;
}

void mix_bounds(Fingerprint& fp, const CuBounds& bounds) {
  fp.mix(static_cast<std::uint64_t>(bounds.lower.size()));
  for (double v : bounds.lower) fp.mix(v);
  for (double v : bounds.upper) fp.mix(v);
}

}  // namespace mfa::core
