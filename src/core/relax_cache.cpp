#include "core/relax_cache.hpp"

#include <utility>

#include "support/assert.hpp"

namespace mfa::core {
namespace {

/// Smallest power of two >= n (n >= 1).
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

RelaxationCache::RelaxationCache(RelaxCacheConfig config) {
  // Guard before rounding: round_up_pow2 would loop forever once the
  // doubling overflows, so an absurd shard count must assert first.
  MFA_ASSERT_MSG(config.shards <= (std::size_t{1} << 20),
                 "implausible relaxation-cache shard count");
  const std::size_t shards = round_up_pow2(
      config.shards == 0 ? std::size_t{1} : config.shards);
  shards_ = std::vector<Shard>(shards);
  unsigned bits = 0;
  for (std::size_t s = shards; s > 1; s >>= 1) ++bits;
  shard_shift_ = 64 - bits;  // unused (guarded) when shards == 1
  if (config.max_entries > 0) {
    per_shard_capacity_ = config.max_entries / shards;
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  }
}

std::shared_ptr<const CachedRelaxation> RelaxationCache::lookup(
    const Fingerprint& key) const {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::shared_ptr<const CachedRelaxation> RelaxationCache::insert(
    const Fingerprint& key, CachedRelaxation result) {
  auto entry = std::make_shared<const CachedRelaxation>(std::move(result));
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.entries.emplace(key, std::move(entry));
  if (inserted && per_shard_capacity_ > 0) {
    shard.order.push_back(key);
    while (shard.entries.size() > per_shard_capacity_) {
      // FIFO: drop the shard's oldest insertion. Outstanding shared_ptr
      // holders keep the evicted bytes alive; the key itself re-solves
      // to identical bytes on its next miss (determinism contract).
      shard.entries.erase(shard.order.front());
      shard.order.pop_front();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return it->second;  // first writer wins; racers get the stored entry
}

RelaxationCache::Stats RelaxationCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    s.entries += shard.entries.size();
  }
  return s;
}

std::size_t RelaxationCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

void RelaxationCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
    shard.order.clear();
  }
}

}  // namespace mfa::core
