#include "core/relax_cache.hpp"

#include <utility>

namespace mfa::core {

std::shared_ptr<const CachedRelaxation> RelaxationCache::lookup(
    const Fingerprint& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::shared_ptr<const CachedRelaxation> RelaxationCache::insert(
    const Fingerprint& key, CachedRelaxation result) {
  auto entry = std::make_shared<const CachedRelaxation>(std::move(result));
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.emplace(key, std::move(entry));
  return it->second;  // first writer wins; racers get the stored entry
}

RelaxationCache::Stats RelaxationCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  s.entries = entries_.size();
  return s;
}

std::size_t RelaxationCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void RelaxationCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace mfa::core
