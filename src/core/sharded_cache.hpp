// Generic thread-safe sharded cache keyed by 128-bit fingerprints.
//
// This is the memoization substrate behind both RelaxationCache
// (core/relax_cache.hpp, caching relaxation solves) and
// CompiledModelCache (core/compiled_cache.hpp, caching compiled GP
// structures). One template, one set of semantics:
//
// Determinism contract: a key must capture *all* inputs that determine
// the cached bytes, so every thread that computes a given key computes
// bit-identical values. Insertion is first-writer-wins; later writers
// discard their copy. A lookup hit therefore returns exactly what the
// thread would have computed itself. (The compiled-model cache relaxes
// this to *structural* identity: every hit is re-patched with the
// caller's coefficients, which restores the bit-identical guarantee —
// see core/compiled_cache.hpp.)
//
// Entries are shared_ptr-owned, so a hit stays valid after eviction,
// clear() or cache death.
//
// Sharding and eviction (for long-lived owners, e.g. the allocation
// service): the key space can be split across several independently
// locked shards — selected by the fingerprint's high bits, so hot
// concurrent traffic does not serialize on one mutex — and each shard
// can be capacity-bounded with FIFO eviction. Eviction is *transparent*
// under the determinism contract: an evicted key simply recomputes to
// the identical bytes on its next miss. The default configuration (one
// shard, unbounded) has no eviction at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/fingerprint.hpp"
#include "support/mutex.hpp"

namespace mfa::core {

using ::mfa::Fingerprint;

/// Sharding / bounding knobs; the defaults give a single-shard
/// unbounded cache.
struct CacheConfig {
  /// Number of independently locked shards; rounded up to a power of
  /// two. Keys map to shards by their fingerprint's high bits.
  std::size_t shards = 1;
  /// Upper bound on resident entries across all shards (0 = unbounded).
  /// Enforced per shard as max_entries / shards (at least 1), with FIFO
  /// eviction of the shard's oldest insertion.
  std::size_t max_entries = 0;
};

template <typename Value>
class ShardedCache {
 public:
  ShardedCache() : ShardedCache(CacheConfig{}) {}
  explicit ShardedCache(CacheConfig config) {
    // Guard before rounding: the power-of-two doubling would loop
    // forever once it overflows, so an absurd shard count must assert
    // first.
    MFA_ASSERT_MSG(config.shards <= (std::size_t{1} << 20),
                   "implausible cache shard count");
    std::size_t shards = 1;
    while (shards < config.shards) shards <<= 1;
    shards_ = std::vector<Shard>(shards);
    unsigned bits = 0;
    for (std::size_t s = shards; s > 1; s >>= 1) ++bits;
    shard_shift_ = 64 - bits;  // unused (guarded) when shards == 1
    if (config.max_entries > 0) {
      per_shard_capacity_ = config.max_entries / shards;
      if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
    }
  }
  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// Returns the cached entry for `key`, or nullptr on a miss.
  [[nodiscard]] std::shared_ptr<const Value> lookup(
      const Fingerprint& key) const {
    Shard& shard = shard_for(key);
    LockGuard lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Inserts `value` under `key` unless another thread got there first;
  /// either way returns the entry that ends up (or already was) stored.
  /// May evict the owning shard's oldest entry when capacity-bounded.
  std::shared_ptr<const Value> insert(const Fingerprint& key, Value value) {
    auto entry = std::make_shared<const Value>(std::move(value));
    Shard& shard = shard_for(key);
    LockGuard lock(shard.mutex);
    auto [it, inserted] = shard.entries.emplace(key, std::move(entry));
    if (inserted && per_shard_capacity_ > 0) {
      shard.order.push_back(key);
      while (shard.entries.size() > per_shard_capacity_) {
        // FIFO: drop the shard's oldest insertion. Outstanding
        // shared_ptr holders keep the evicted bytes alive; the key
        // itself recomputes to identical bytes on its next miss
        // (determinism contract).
        shard.entries.erase(shard.order.front());
        shard.order.pop_front();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return it->second;  // first writer wins; racers get the stored entry
  }

  /// Convenience: lookup, and on a miss run `solve()` and insert its
  /// outcome. Exactly-once execution is NOT guaranteed under races (two
  /// threads may both solve; one insert wins), but the returned entry is
  /// identical either way per the determinism contract.
  template <typename SolveFn>
  std::shared_ptr<const Value> get_or_solve(const Fingerprint& key,
                                            SolveFn&& solve) {
    if (auto hit = lookup(key)) return hit;
    return insert(key, solve());
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      LockGuard lock(shard.mutex);
      s.entries += shard.entries.size();
    }
    return s;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      LockGuard lock(shard.mutex);
      total += shard.entries.size();
    }
    return total;
  }

  void clear() {
    for (Shard& shard : shards_) {
      LockGuard lock(shard.mutex);
      shard.entries.clear();
      shard.order.clear();
    }
  }

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  /// Resident-entry bound across all shards (0 = unbounded).
  [[nodiscard]] std::size_t capacity() const {
    return per_shard_capacity_ == 0 ? 0
                                    : per_shard_capacity_ * shards_.size();
  }

 private:
  struct KeyHash {
    std::size_t operator()(const Fingerprint& fp) const {
      return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ull));
    }
  };

  struct Shard {
    mutable Mutex mutex;
    std::unordered_map<Fingerprint, std::shared_ptr<const Value>, KeyHash>
        entries MFA_GUARDED_BY(mutex);
    /// Insertion order of resident keys, oldest first (FIFO eviction).
    std::deque<Fingerprint> order MFA_GUARDED_BY(mutex);
  };

  [[nodiscard]] Shard& shard_for(const Fingerprint& key) const {
    // High bits select the shard: the map's own hash (above) leans on
    // the low lane, so the two functions stay independent. The explicit
    // single-shard case avoids a 64-bit shift by 64 (UB).
    if (shards_.size() == 1) return shards_[0];
    return shards_[key.hi >> shard_shift_];
  }

  mutable std::vector<Shard> shards_;
  unsigned shard_shift_ = 64;           ///< 64 − log2(shard count)
  std::size_t per_shard_capacity_ = 0;  ///< 0 = unbounded
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace mfa::core
