// The multi-FPGA allocation problem instance (paper §3, Table 1),
// generalized to heterogeneous platforms.
//
// An Application is a linear pipeline of kernels, each characterized by
// its one-CU worst-case execution time (WCET_k), per-CU resource vector
// (R_k) and per-CU DRAM bandwidth (B_k). A Platform is F FPGAs drawn
// from one or more *device classes* — the paper's platform is the
// special case of a single class (F identical FPGAs with one capacity
// vector and one bandwidth cap); mixed fleets assign each FPGA a class
// with its own caps. A Problem adds the swept "resource constraint"
// fraction and the objective weights α, β of eq. 5.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/resources.hpp"
#include "support/status.hpp"

namespace mfa::core {

/// One pipeline stage, characterized per CU (rows of Tables 2–3).
struct Kernel {
  std::string name;
  double wcet_ms = 0.0;  ///< latency with a single CU (ms), eq. 1
  ResourceVec res;       ///< resources per CU, % of one FPGA (R_k)
  double bw = 0.0;       ///< DRAM bandwidth per CU, % of one FPGA (B_k)
};

/// A linear task-level pipeline of kernels (paper's K).
struct Application {
  std::string name;
  std::vector<Kernel> kernels;

  [[nodiscard]] std::size_t size() const { return kernels.size(); }

  /// Σ_k WCET_k — the single-CU pipeline II (useful scale reference).
  [[nodiscard]] double total_wcet() const;

  /// Σ_k R_k and Σ_k B_k — the "SUM" rows of Tables 2–3.
  [[nodiscard]] ResourceVec total_resources() const;
  [[nodiscard]] double total_bw() const;
};

/// One device generation in a mixed fleet: its own capacity vector and
/// DRAM bandwidth cap, in the same "% of one (reference) FPGA" units as
/// kernel demands.
struct DeviceClass {
  std::string name;
  ResourceVec capacity = ResourceVec::uniform(100.0);
  double bw_capacity = 100.0;
};

/// F FPGAs, homogeneous (e.g. the AWS F1 instance of Fig. 1) or mixed.
///
/// Homogeneous platforms use `capacity`/`bw_capacity` and leave
/// `classes` empty — the seed representation, preserved bit-for-bit.
/// Heterogeneous platforms list their device classes and map each FPGA
/// to one via `class_of` (size == num_fpgas); `capacity`/`bw_capacity`
/// are then ignored.
struct Platform {
  std::string name;
  int num_fpgas = 1;
  ResourceVec capacity = ResourceVec::uniform(100.0);  ///< full FPGA = 100 %
  double bw_capacity = 100.0;                          ///< full DRAM BW

  std::vector<DeviceClass> classes;  ///< empty ⇒ homogeneous
  std::vector<int> class_of;         ///< per-FPGA class index

  /// Builds a mixed platform; asserts `class_of` matches and indexes
  /// into `classes`. A single class is *still* stored heterogeneously —
  /// solvers treat it identically to the homogeneous encoding.
  static Platform heterogeneous(std::string name,
                                std::vector<DeviceClass> classes,
                                std::vector<int> class_of);

  [[nodiscard]] bool homogeneous() const { return classes.empty(); }
  [[nodiscard]] std::size_t num_classes() const {
    return classes.empty() ? 1 : classes.size();
  }

  /// Structural validity: at least one FPGA, non-negative capacities,
  /// and a class assignment that covers every FPGA (when mixed).
  /// Problem::validate() delegates here; online platform changes (the
  /// allocation service's ResizePlatform) check it before committing.
  [[nodiscard]] Status validate() const;

  /// Class of FPGA f (0 for every FPGA of a homogeneous platform).
  [[nodiscard]] int class_index(int f) const;

  /// Full capacity vector / bandwidth cap of FPGA f.
  [[nodiscard]] const ResourceVec& fpga_capacity(int f) const;
  [[nodiscard]] double fpga_bw_capacity(int f) const;
};

struct Problem;

/// The immutable *structural* skeleton of a Problem — everything that
/// identifies the kernel set but not its numbers: the application name,
/// kernel names, per-CU resource vectors and bandwidth demands. The
/// platform and all scalars (WCETs, fractions, α/β) are deliberately
/// absent: they are the numeric side that warm events (Reprioritize,
/// ResizePlatform) patch in place.
///
/// Shared-ptr-owned and never mutated after capture(), the structure is
/// the same split PR 5 gave compiled GP models: holders of structurally
/// identical Problem snapshots share one skeleton, and pointer equality
/// of `Problem::structure` is a constant-time witness that two
/// instances differ only in numerics — which is what lets
/// assign_numerics_from() refresh a snapshot buffer without touching
/// (or allocating) any structural field. See service/composite.hpp for
/// the publish-ring consumer.
struct ProblemStructure {
  std::string app_name;
  std::vector<std::string> kernel_names;
  std::vector<ResourceVec> kernel_res;
  std::vector<double> kernel_bw;

  /// Captures `problem`'s current structural fields into a fresh
  /// immutable skeleton.
  static std::shared_ptr<const ProblemStructure> capture(
      const Problem& problem);

  /// Deep field-by-field check that `problem`'s structural fields still
  /// match this skeleton — the honesty test behind the pointer-equality
  /// fast path (asserted in debug paths and unit tests).
  [[nodiscard]] bool matches(const Problem& problem) const;
};

/// A complete problem instance: application + platform + constraint
/// fractions + objective weights.
struct Problem {
  Application app;
  Platform platform;

  /// Optional shared structural skeleton (see ProblemStructure). Null
  /// for ad-hoc instances; the composite builder keeps it bound so
  /// snapshot buffers can be refreshed numerics-only. Copies share the
  /// skeleton; structural edits must re-capture().
  std::shared_ptr<const ProblemStructure> structure;

  /// The swept "Resource Constraint (%)" of Figs. 2–5, as a fraction of
  /// the platform capacity applied uniformly to all resource axes (R in
  /// eq. 9 is capacity · resource_fraction).
  double resource_fraction = 1.0;

  /// Fraction of the DRAM bandwidth cap available to CUs (B in eq. 10).
  /// The paper's sweeps keep this at 1.
  double bw_fraction = 1.0;

  double alpha = 1.0;  ///< II weight in eq. 5
  double beta = 0.0;   ///< spreading weight in eq. 5

  [[nodiscard]] std::size_t num_kernels() const { return app.size(); }
  [[nodiscard]] int num_fpgas() const { return platform.num_fpgas; }

  /// Effective resource cap R_f of FPGA f (eq. 9 right-hand side,
  /// per-device on heterogeneous platforms).
  [[nodiscard]] ResourceVec cap(int f) const {
    return platform.fpga_capacity(f) * resource_fraction;
  }
  /// Effective bandwidth cap B_f of FPGA f (eq. 10 right-hand side).
  [[nodiscard]] double bw_cap(int f) const {
    return platform.fpga_bw_capacity(f) * bw_fraction;
  }

  /// Homogeneous-platform effective caps (the seed API). Valid only when
  /// the platform has a single device class; heterogeneous callers must
  /// use the per-FPGA overloads or the pooled caps.
  [[nodiscard]] ResourceVec cap() const {
    MFA_ASSERT_MSG(platform.homogeneous(),
                   "cap() on a heterogeneous platform — use cap(f)");
    return platform.capacity * resource_fraction;
  }
  [[nodiscard]] double bw_cap() const {
    MFA_ASSERT_MSG(platform.homogeneous(),
                   "bw_cap() on a heterogeneous platform — use bw_cap(f)");
    return platform.bw_capacity * bw_fraction;
  }

  /// Σ_f cap(f) / Σ_f bw_cap(f) — the right-hand sides of the pooled
  /// relaxation constraints (eqs. 17–18). Computed as F·cap on
  /// homogeneous platforms so seed arithmetic is reproduced bit-for-bit.
  [[nodiscard]] ResourceVec pooled_cap() const;
  [[nodiscard]] double pooled_bw_cap() const;

  /// Largest number of CUs of kernel k that fit on (empty) FPGA f under
  /// the effective caps. Zero means kernel k cannot use FPGA f.
  [[nodiscard]] int max_cu_per_fpga(std::size_t k, int f) const;

  /// Largest per-FPGA fit across the platform (the roomiest device).
  /// Zero means kernel k is unplaceable anywhere.
  [[nodiscard]] int max_cu_per_fpga(std::size_t k) const;

  /// Upper bound on N_k: Σ_f max_cu_per_fpga(k, f).
  [[nodiscard]] int max_cu_total(std::size_t k) const;

  /// Structural validation: non-empty pipeline, positive WCETs,
  /// non-negative demands, F ≥ 1, positive caps, a well-formed class
  /// assignment, and at least one CU of every kernel placeable on some
  /// FPGA (a necessary feasibility condition).
  [[nodiscard]] Status validate() const;

  /// Copies `other`'s numeric side — WCETs, platform, fractions, α/β —
  /// into this instance, leaving every structural field untouched.
  /// Requires both instances to carry the *same* structure skeleton
  /// (pointer equality), which guarantees names/res/bw already agree,
  /// so the result is byte-identical to a full copy of `other`.
  /// Existing string/vector capacity is reused: refreshing a snapshot
  /// buffer of unchanged shape performs no heap allocation.
  void assign_numerics_from(const Problem& other);
};

}  // namespace mfa::core
