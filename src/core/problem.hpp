// The multi-FPGA allocation problem instance (paper §3, Table 1).
//
// An Application is a linear pipeline of kernels, each characterized by
// its one-CU worst-case execution time (WCET_k), per-CU resource vector
// (R_k) and per-CU DRAM bandwidth (B_k). A Platform is F identical FPGAs
// with a capacity vector and a bandwidth cap. A Problem adds the swept
// "resource constraint" fraction and the objective weights α, β of eq. 5.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/resources.hpp"
#include "support/status.hpp"

namespace mfa::core {

/// One pipeline stage, characterized per CU (rows of Tables 2–3).
struct Kernel {
  std::string name;
  double wcet_ms = 0.0;  ///< latency with a single CU (ms), eq. 1
  ResourceVec res;       ///< resources per CU, % of one FPGA (R_k)
  double bw = 0.0;       ///< DRAM bandwidth per CU, % of one FPGA (B_k)
};

/// A linear task-level pipeline of kernels (paper's K).
struct Application {
  std::string name;
  std::vector<Kernel> kernels;

  [[nodiscard]] std::size_t size() const { return kernels.size(); }

  /// Σ_k WCET_k — the single-CU pipeline II (useful scale reference).
  [[nodiscard]] double total_wcet() const;

  /// Σ_k R_k and Σ_k B_k — the "SUM" rows of Tables 2–3.
  [[nodiscard]] ResourceVec total_resources() const;
  [[nodiscard]] double total_bw() const;
};

/// F identical FPGAs (e.g. the AWS F1 instance of Fig. 1).
struct Platform {
  std::string name;
  int num_fpgas = 1;
  ResourceVec capacity = ResourceVec::uniform(100.0);  ///< full FPGA = 100 %
  double bw_capacity = 100.0;                          ///< full DRAM BW
};

/// A complete problem instance: application + platform + constraint
/// fractions + objective weights.
struct Problem {
  Application app;
  Platform platform;

  /// The swept "Resource Constraint (%)" of Figs. 2–5, as a fraction of
  /// the platform capacity applied uniformly to all resource axes (R in
  /// eq. 9 is capacity · resource_fraction).
  double resource_fraction = 1.0;

  /// Fraction of the DRAM bandwidth cap available to CUs (B in eq. 10).
  /// The paper's sweeps keep this at 1.
  double bw_fraction = 1.0;

  double alpha = 1.0;  ///< II weight in eq. 5
  double beta = 0.0;   ///< spreading weight in eq. 5

  [[nodiscard]] std::size_t num_kernels() const { return app.size(); }
  [[nodiscard]] int num_fpgas() const { return platform.num_fpgas; }

  /// Effective per-FPGA resource cap R (eq. 9 right-hand side).
  [[nodiscard]] ResourceVec cap() const {
    return platform.capacity * resource_fraction;
  }
  /// Effective per-FPGA bandwidth cap B (eq. 10 right-hand side).
  [[nodiscard]] double bw_cap() const {
    return platform.bw_capacity * bw_fraction;
  }

  /// Largest number of CUs of kernel k that fit on one (empty) FPGA
  /// under the effective caps. Zero means kernel k is unplaceable.
  [[nodiscard]] int max_cu_per_fpga(std::size_t k) const;

  /// Upper bound on N_k: F · max_cu_per_fpga(k).
  [[nodiscard]] int max_cu_total(std::size_t k) const;

  /// Structural validation: non-empty pipeline, positive WCETs,
  /// non-negative demands, F ≥ 1, positive caps, and at least one CU of
  /// every kernel placeable (a necessary feasibility condition).
  [[nodiscard]] Status validate() const;
};

}  // namespace mfa::core
