// Shared solver context: one wiring point for cross-solve resources.
//
// Before this header, every layer that wanted the process-wide caches
// threaded two raw pointers (relax_cache, model_cache) through its own
// options struct — GpaOptions, PortfolioOptions, BatchOptions and
// ServerOptions each re-declared the same plumbing, and adding a shared
// resource meant touching all of them. A SolverContext bundles the
// resources one solve stack shares:
//
//   * the relaxation memoization cache (core/relax_cache.hpp),
//   * the compiled-GP model cache (core/compiled_cache.hpp),
//   * an optional caller-managed solver::Budget the portfolio charges
//     instead of constructing its own per-solve budget (one expire()
//     then stops every lane of every in-flight solve), and
//   * an optional runtime::ThreadPool the portfolio races lanes on
//     (instead of spawning a private pool).
//
// Everything is a non-owning pointer and every field is optional; a
// default SolverContext is equivalent to no context at all. The context
// itself is passed by reference (`const SolverContext*`) through the
// options structs, so N shards of an allocation service can share one
// process-wide model cache by pointing N contexts (or one) at it — the
// sharded-cache determinism contract makes that byte-transparent
// whichever shard populates an entry first.
//
// The struct lives in core (not runtime) so alloc-layer options can
// carry it without a layering inversion; Budget and ThreadPool are
// forward-declared since only pointers are stored. runtime/context.hpp
// re-exports it as runtime::SolverContext, the name most callers use.
//
// The per-field pointers the context replaces (GpaOptions::relax_cache
// and friends) remain as deprecated aliases for one PR; resolution
// helpers on each options struct prefer the context.
#pragma once

#include "core/compiled_cache.hpp"
#include "core/relax_cache.hpp"

namespace mfa::solver {
class Budget;
}  // namespace mfa::solver

namespace mfa::runtime {
class ThreadPool;
}  // namespace mfa::runtime

namespace mfa::core {

struct SolverContext {
  /// Relaxation memoization shared across lanes/requests. Not owned.
  RelaxationCache* relax_cache = nullptr;

  /// Compiled-GP model cache shared across lanes/requests — the
  /// process-wide structure cache a sharded service hangs off one
  /// context. Not owned.
  CompiledModelCache* model_cache = nullptr;

  /// Caller-managed shared budget. When set, Portfolio::solve charges
  /// its lanes against this budget instead of constructing a fresh one
  /// from PortfolioOptions::max_nodes/max_seconds, so the caller
  /// controls deadlines across many solves and can expire() them all.
  /// Node/tick usage accumulates across solves; the caller resets or
  /// replaces the budget as it sees fit. Not owned.
  solver::Budget* budget = nullptr;

  /// Worker pool portfolio lanes race on (null → the portfolio's own
  /// policy: private pool or sequential lanes). Not owned.
  runtime::ThreadPool* pool = nullptr;
};

}  // namespace mfa::core
