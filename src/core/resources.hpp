// Multi-dimensional FPGA resource vectors.
//
// The paper's cost model is multi-dimensional: each CU consumes DSPs,
// BRAMs, LUTs and FFs (plus DRAM bandwidth, which the formulation keeps as
// its own constraint axis, eq. 10). All quantities are expressed as a
// percentage of one FPGA, exactly like the paper's Tables 2–3.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "support/assert.hpp"

namespace mfa::core {

/// The FPGA resource classes tracked per CU (eq. 9's R_k is this vector).
enum class Resource : std::size_t { kBram = 0, kDsp = 1, kLut = 2, kFf = 3 };

inline constexpr std::size_t kNumResources = 4;

/// Stable display name ("BRAM", "DSP", "LUT", "FF").
const char* resource_name(Resource r);

/// A vector over the four resource classes, in % of one FPGA.
class ResourceVec {
 public:
  constexpr ResourceVec() : v_{} {}

  /// Convenience constructor in table order (BRAM, DSP, LUT, FF).
  constexpr ResourceVec(double bram, double dsp, double lut, double ff)
      : v_{bram, dsp, lut, ff} {}

  /// The same value on every axis (e.g. a uniform capacity).
  static constexpr ResourceVec uniform(double value) {
    return ResourceVec(value, value, value, value);
  }

  double& operator[](Resource r) { return v_[static_cast<std::size_t>(r)]; }
  double operator[](Resource r) const {
    return v_[static_cast<std::size_t>(r)];
  }
  double& axis(std::size_t i) {
    MFA_ASSERT(i < kNumResources);
    return v_[i];
  }
  [[nodiscard]] double axis(std::size_t i) const {
    MFA_ASSERT(i < kNumResources);
    return v_[i];
  }

  ResourceVec& operator+=(const ResourceVec& rhs);
  ResourceVec& operator-=(const ResourceVec& rhs);
  ResourceVec& operator*=(double s);

  friend ResourceVec operator+(ResourceVec lhs, const ResourceVec& rhs) {
    return lhs += rhs;
  }
  friend ResourceVec operator-(ResourceVec lhs, const ResourceVec& rhs) {
    return lhs -= rhs;
  }
  friend ResourceVec operator*(ResourceVec lhs, double s) { return lhs *= s; }
  friend ResourceVec operator*(double s, ResourceVec rhs) { return rhs *= s; }
  friend bool operator==(const ResourceVec& a, const ResourceVec& b) {
    return a.v_ == b.v_;
  }

  /// True iff every axis of *this is ≤ the corresponding axis of cap,
  /// within an absolute tolerance (resource percentages are sums of
  /// table constants, so exact comparison would be brittle).
  [[nodiscard]] bool fits_within(const ResourceVec& cap,
                                 double tolerance = 1e-9) const;

  /// max_axis (this[axis] / cap[axis]); axes with cap = 0 require
  /// this = 0 on that axis (else returns +inf). The "utilization" of an
  /// FPGA in the paper's figures is this value for the used resources.
  [[nodiscard]] double max_ratio(const ResourceVec& cap) const;

  /// Largest integer q ≥ 0 with q·(*this) fitting inside cap;
  /// returns `limit` if *this is zero on all capped axes.
  [[nodiscard]] int max_multiples(const ResourceVec& cap, int limit) const;

  /// Largest axis value.
  [[nodiscard]] double max_axis() const;

  /// True when every axis is ≥ 0.
  [[nodiscard]] bool non_negative(double tolerance = 1e-9) const;

  /// "BRAM=.. DSP=.. LUT=.. FF=.." (fixed, two decimals) for diagnostics.
  [[nodiscard]] std::string to_string() const;

 private:
  std::array<double, kNumResources> v_;
};

}  // namespace mfa::core
