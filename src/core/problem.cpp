#include "core/problem.hpp"

#include <cmath>

namespace mfa::core {

double Application::total_wcet() const {
  double acc = 0.0;
  for (const Kernel& k : kernels) acc += k.wcet_ms;
  return acc;
}

ResourceVec Application::total_resources() const {
  ResourceVec acc;
  for (const Kernel& k : kernels) acc += k.res;
  return acc;
}

double Application::total_bw() const {
  double acc = 0.0;
  for (const Kernel& k : kernels) acc += k.bw;
  return acc;
}

int Problem::max_cu_per_fpga(std::size_t k) const {
  MFA_ASSERT(k < app.size());
  const Kernel& kern = app.kernels[k];
  // A CU with zero demand on every axis could replicate without bound;
  // cap at a generous constant so search spaces stay finite.
  constexpr int kUnboundedCus = 1024;
  int q = kern.res.max_multiples(cap(), kUnboundedCus);
  if (kern.bw > 0.0) {
    const double by_bw = bw_cap() * (1.0 + 1e-12) / kern.bw;
    q = std::min(q, static_cast<int>(std::floor(by_bw + 1e-9)));
  }
  return std::max(q, 0);
}

int Problem::max_cu_total(std::size_t k) const {
  return num_fpgas() * max_cu_per_fpga(k);
}

Status Problem::validate() const {
  if (app.kernels.empty()) {
    return {Code::kInvalid, "application has no kernels"};
  }
  if (platform.num_fpgas < 1) {
    return {Code::kInvalid, "platform must have at least one FPGA"};
  }
  if (resource_fraction <= 0.0 || bw_fraction <= 0.0) {
    return {Code::kInvalid, "constraint fractions must be positive"};
  }
  if (alpha < 0.0 || beta < 0.0) {
    return {Code::kInvalid, "objective weights must be non-negative"};
  }
  if (!platform.capacity.non_negative() || platform.bw_capacity < 0.0) {
    return {Code::kInvalid, "platform capacities must be non-negative"};
  }
  for (std::size_t k = 0; k < app.size(); ++k) {
    const Kernel& kern = app.kernels[k];
    if (!(kern.wcet_ms > 0.0) || !std::isfinite(kern.wcet_ms)) {
      return {Code::kInvalid, "kernel '" + kern.name +
                                  "' must have a positive finite WCET"};
    }
    if (!kern.res.non_negative() || kern.bw < 0.0) {
      return {Code::kInvalid,
              "kernel '" + kern.name + "' has negative resource demand"};
    }
    if (max_cu_per_fpga(k) < 1) {
      return {Code::kInfeasible, "kernel '" + kern.name +
                                     "' cannot place even one CU under the "
                                     "resource constraint"};
    }
  }
  return Status::ok();
}

}  // namespace mfa::core
