#include "core/problem.hpp"

#include <cmath>

namespace mfa::core {

std::shared_ptr<const ProblemStructure> ProblemStructure::capture(
    const Problem& problem) {
  auto s = std::make_shared<ProblemStructure>();
  s->app_name = problem.app.name;
  s->kernel_names.reserve(problem.app.size());
  s->kernel_res.reserve(problem.app.size());
  s->kernel_bw.reserve(problem.app.size());
  for (const Kernel& k : problem.app.kernels) {
    s->kernel_names.push_back(k.name);
    s->kernel_res.push_back(k.res);
    s->kernel_bw.push_back(k.bw);
  }
  return s;
}

bool ProblemStructure::matches(const Problem& problem) const {
  if (app_name != problem.app.name) return false;
  if (kernel_names.size() != problem.app.size()) return false;
  for (std::size_t k = 0; k < kernel_names.size(); ++k) {
    const Kernel& kern = problem.app.kernels[k];
    if (kernel_names[k] != kern.name) return false;
    for (std::size_t axis = 0; axis < kNumResources; ++axis) {
      if (kernel_res[k].axis(axis) != kern.res.axis(axis)) return false;
    }
    if (kernel_bw[k] != kern.bw) return false;
  }
  return true;
}

void Problem::assign_numerics_from(const Problem& other) {
  MFA_ASSERT_MSG(structure != nullptr && structure == other.structure,
                 "assign_numerics_from across different structures");
  MFA_ASSERT(app.kernels.size() == other.app.kernels.size());
  for (std::size_t k = 0; k < app.kernels.size(); ++k) {
    app.kernels[k].wcet_ms = other.app.kernels[k].wcet_ms;
  }
  // Copy-assignment reuses the destination's string/vector capacity, so
  // a same-shape platform refresh (the steady state between resizes)
  // touches no allocator.
  platform = other.platform;
  resource_fraction = other.resource_fraction;
  bw_fraction = other.bw_fraction;
  alpha = other.alpha;
  beta = other.beta;
}

double Application::total_wcet() const {
  double acc = 0.0;
  for (const Kernel& k : kernels) acc += k.wcet_ms;
  return acc;
}

ResourceVec Application::total_resources() const {
  ResourceVec acc;
  for (const Kernel& k : kernels) acc += k.res;
  return acc;
}

double Application::total_bw() const {
  double acc = 0.0;
  for (const Kernel& k : kernels) acc += k.bw;
  return acc;
}

Platform Platform::heterogeneous(std::string name,
                                 std::vector<DeviceClass> classes,
                                 std::vector<int> class_of) {
  MFA_ASSERT_MSG(!classes.empty(), "heterogeneous platform needs classes");
  MFA_ASSERT_MSG(!class_of.empty(), "heterogeneous platform needs FPGAs");
  for (int c : class_of) {
    MFA_ASSERT_MSG(c >= 0 && c < static_cast<int>(classes.size()),
                   "class_of index out of range");
  }
  Platform p;
  p.name = std::move(name);
  p.num_fpgas = static_cast<int>(class_of.size());
  p.classes = std::move(classes);
  p.class_of = std::move(class_of);
  return p;
}

int Platform::class_index(int f) const {
  MFA_ASSERT(f >= 0 && f < num_fpgas);
  if (classes.empty()) return 0;
  MFA_ASSERT_MSG(class_of.size() == static_cast<std::size_t>(num_fpgas),
                 "class_of size mismatch (validate() first)");
  return class_of[static_cast<std::size_t>(f)];
}

const ResourceVec& Platform::fpga_capacity(int f) const {
  if (classes.empty()) {
    MFA_ASSERT(f >= 0 && f < num_fpgas);
    return capacity;
  }
  return classes[static_cast<std::size_t>(class_index(f))].capacity;
}

double Platform::fpga_bw_capacity(int f) const {
  if (classes.empty()) {
    MFA_ASSERT(f >= 0 && f < num_fpgas);
    return bw_capacity;
  }
  return classes[static_cast<std::size_t>(class_index(f))].bw_capacity;
}

ResourceVec Problem::pooled_cap() const {
  if (platform.homogeneous()) {
    // Multiplication, not summation: bit-parity with the seed's F·R.
    return cap() * static_cast<double>(num_fpgas());
  }
  ResourceVec acc;
  for (int f = 0; f < num_fpgas(); ++f) acc += cap(f);
  return acc;
}

double Problem::pooled_bw_cap() const {
  if (platform.homogeneous()) {
    return bw_cap() * static_cast<double>(num_fpgas());
  }
  double acc = 0.0;
  for (int f = 0; f < num_fpgas(); ++f) acc += bw_cap(f);
  return acc;
}

int Problem::max_cu_per_fpga(std::size_t k, int f) const {
  MFA_ASSERT(k < app.size());
  const Kernel& kern = app.kernels[k];
  // A CU with zero demand on every axis could replicate without bound;
  // cap at a generous constant so search spaces stay finite.
  constexpr int kUnboundedCus = 1024;
  int q = kern.res.max_multiples(cap(f), kUnboundedCus);
  if (kern.bw > 0.0) {
    const double by_bw = bw_cap(f) * (1.0 + 1e-12) / kern.bw;
    q = std::min(q, static_cast<int>(std::floor(by_bw + 1e-9)));
  }
  return std::max(q, 0);
}

int Problem::max_cu_per_fpga(std::size_t k) const {
  // Every FPGA of a class fits the same count; probe one per class.
  int best = 0;
  if (platform.homogeneous()) return max_cu_per_fpga(k, 0);
  std::vector<bool> seen(platform.num_classes(), false);
  for (int f = 0; f < num_fpgas(); ++f) {
    const auto c = static_cast<std::size_t>(platform.class_index(f));
    if (seen[c]) continue;
    seen[c] = true;
    best = std::max(best, max_cu_per_fpga(k, f));
  }
  return best;
}

int Problem::max_cu_total(std::size_t k) const {
  if (platform.homogeneous()) {
    return num_fpgas() * max_cu_per_fpga(k, 0);
  }
  int total = 0;
  for (int f = 0; f < num_fpgas(); ++f) total += max_cu_per_fpga(k, f);
  return total;
}

Status Platform::validate() const {
  if (num_fpgas < 1) {
    return {Code::kInvalid, "platform must have at least one FPGA"};
  }
  if (homogeneous()) {
    if (!class_of.empty()) {
      return {Code::kInvalid,
              "platform has a class assignment but no device classes"};
    }
    if (!capacity.non_negative() || bw_capacity < 0.0) {
      return {Code::kInvalid, "platform capacities must be non-negative"};
    }
  } else {
    if (class_of.size() != static_cast<std::size_t>(num_fpgas)) {
      return {Code::kInvalid,
              "platform 'class_of' must assign every FPGA a class"};
    }
    for (int c : class_of) {
      if (c < 0 || c >= static_cast<int>(classes.size())) {
        return {Code::kInvalid, "platform 'class_of' index out of range"};
      }
    }
    for (const DeviceClass& dc : classes) {
      if (!dc.capacity.non_negative() || dc.bw_capacity < 0.0) {
        return {Code::kInvalid, "device class '" + dc.name +
                                    "' has negative capacities"};
      }
    }
  }
  return Status::ok();
}

Status Problem::validate() const {
  if (app.kernels.empty()) {
    return {Code::kInvalid, "application has no kernels"};
  }
  if (Status platform_valid = platform.validate(); !platform_valid.is_ok()) {
    return platform_valid;
  }
  if (resource_fraction <= 0.0 || bw_fraction <= 0.0) {
    return {Code::kInvalid, "constraint fractions must be positive"};
  }
  if (alpha < 0.0 || beta < 0.0) {
    return {Code::kInvalid, "objective weights must be non-negative"};
  }
  for (std::size_t k = 0; k < app.size(); ++k) {
    const Kernel& kern = app.kernels[k];
    if (!(kern.wcet_ms > 0.0) || !std::isfinite(kern.wcet_ms)) {
      return {Code::kInvalid, "kernel '" + kern.name +
                                  "' must have a positive finite WCET"};
    }
    if (!kern.res.non_negative() || kern.bw < 0.0) {
      return {Code::kInvalid,
              "kernel '" + kern.name + "' has negative resource demand"};
    }
    if (max_cu_per_fpga(k) < 1) {
      return {Code::kInfeasible, "kernel '" + kern.name +
                                     "' cannot place even one CU under the "
                                     "resource constraint"};
    }
  }
  return Status::ok();
}

}  // namespace mfa::core
