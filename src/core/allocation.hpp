// The decision variables n_{k,f} and every metric derived from them.
//
// An Allocation owns the integer CU-placement matrix and evaluates the
// paper's quantities: ET_k (eq. 1), II (eq. 2), N_k (eq. 3), the
// spreading function φ_k and φ (eqs. 4, 7), the goal g (eq. 5), per-FPGA
// utilization and the feasibility checks (eqs. 8–10).
//
// Lifetime: an Allocation references the Problem it was built for; the
// Problem must outlive the Allocation.
#pragma once

#include <string>
#include <vector>

#include "core/problem.hpp"

namespace mfa::core {

class Allocation {
 public:
  /// Starts with n_{k,f} = 0 everywhere.
  explicit Allocation(const Problem& problem);

  [[nodiscard]] const Problem& problem() const { return *problem_; }
  [[nodiscard]] std::size_t num_kernels() const { return counts_.size(); }
  [[nodiscard]] int num_fpgas() const { return problem_->num_fpgas(); }

  /// CUs of kernel k on FPGA f (n_{k,f}).
  [[nodiscard]] int cu(std::size_t k, int f) const;

  /// Sets n_{k,f}; count must be ≥ 0 (feasibility is checked separately).
  void set_cu(std::size_t k, int f, int count);
  void add_cu(std::size_t k, int f, int delta) {
    set_cu(k, f, cu(k, f) + delta);
  }

  /// N_k = Σ_f n_{k,f} (eq. 3).
  [[nodiscard]] int total_cu(std::size_t k) const;

  /// ET_k = WCET_k / N_k (eq. 1); +inf when N_k = 0.
  [[nodiscard]] double et(std::size_t k) const;

  /// II = max_k ET_k (eq. 2).
  [[nodiscard]] double ii() const;

  /// φ_k = Σ_f n_{k,f} / (1 + n_{k,f}) (eq. 4).
  [[nodiscard]] double phi_k(std::size_t k) const;

  /// φ = max_k φ_k (the tight value of constraint 7 when minimizing).
  [[nodiscard]] double phi() const;

  /// g = α·II + β·φ (eq. 5) with this problem's weights.
  [[nodiscard]] double goal() const;

  /// Number of distinct FPGAs hosting at least one CU of kernel k.
  [[nodiscard]] int fpgas_used_by(std::size_t k) const;

  /// Resource sum of all CUs on FPGA f (left side of eq. 9).
  [[nodiscard]] ResourceVec fpga_resources(int f) const;

  /// Bandwidth sum on FPGA f (left side of eq. 10).
  [[nodiscard]] double fpga_bw(int f) const;

  /// Utilization of FPGA f: max over resource axes of used/full-capacity.
  /// Note: measured against the *full* capacity of that FPGA's device
  /// class (the figures' "Average Resource (%)" axis), not the swept
  /// constraint.
  [[nodiscard]] double fpga_utilization(int f) const;

  /// Mean of fpga_utilization over all F FPGAs (x-axis of the right-hand
  /// graphs of Figs. 3–5).
  [[nodiscard]] double average_utilization() const;

  /// Human-readable violations of eqs. 8–10 against the effective caps;
  /// empty iff the allocation is feasible.
  [[nodiscard]] std::vector<std::string> check() const;

  [[nodiscard]] bool feasible() const { return check().empty(); }

  /// Multi-line table of the placement matrix, for logs and examples.
  [[nodiscard]] std::string to_string() const;

 private:
  const Problem* problem_;
  std::vector<std::vector<int>> counts_;  // [kernel][fpga]
};

}  // namespace mfa::core
