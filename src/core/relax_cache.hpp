// Thread-safe memoization cache for continuous-relaxation solves.
//
// Sweeps and solver portfolios hammer thousands of *identical* relaxation
// subproblems: every GP+A lane of a portfolio solves the same root
// relaxation and walks the same branch-and-bound tree, and batch grids
// repeat instances across methods. The cache memoizes those solves by a
// 128-bit fingerprint of everything the result depends on (problem,
// bounds, warm-start hint, algorithm tag — see core/fingerprint.hpp).
//
// Determinism contract: a key must capture *all* inputs of the solve, so
// every thread that computes a given key computes bit-identical bytes.
// Insertion is first-writer-wins; later writers discard their copy. A
// lookup hit therefore returns exactly what the thread would have
// computed itself, which is how BatchRunner stays bit-for-bit identical
// across thread counts with the cache enabled.
//
// Both feasible solutions and infeasibility proofs are cached (branch-
// and-bound prunes through infeasible nodes constantly). Entries are
// shared_ptr-owned, so a hit stays valid after eviction, clear() or
// cache death.
//
// Sharding and eviction (for long-lived owners, e.g. the allocation
// service): the key space can be split across several independently
// locked shards — selected by the fingerprint's high bits, so hot
// concurrent traffic does not serialize on one mutex — and each shard
// can be capacity-bounded with FIFO eviction. Eviction is *transparent*
// under the determinism contract: an evicted key simply re-solves to
// the identical bytes on its next miss. The default configuration (one
// shard, unbounded) reproduces the original behavior exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/relaxation.hpp"
#include "support/status.hpp"

namespace mfa::core {

/// One cached relaxation outcome: a solution or the status that denied it.
using CachedRelaxation = StatusOr<RelaxedSolution>;

/// Sharding / bounding knobs; the defaults reproduce the original
/// single-shard unbounded cache bit-for-bit.
struct RelaxCacheConfig {
  /// Number of independently locked shards; rounded up to a power of
  /// two. Keys map to shards by their fingerprint's high bits.
  std::size_t shards = 1;
  /// Upper bound on resident entries across all shards (0 = unbounded).
  /// Enforced per shard as max_entries / shards (at least 1), with FIFO
  /// eviction of the shard's oldest insertion.
  std::size_t max_entries = 0;
};

class RelaxationCache {
 public:
  RelaxationCache() : RelaxationCache(RelaxCacheConfig{}) {}
  explicit RelaxationCache(RelaxCacheConfig config);
  RelaxationCache(const RelaxationCache&) = delete;
  RelaxationCache& operator=(const RelaxationCache&) = delete;

  /// Returns the cached outcome for `key`, or nullptr on a miss.
  [[nodiscard]] std::shared_ptr<const CachedRelaxation> lookup(
      const Fingerprint& key) const;

  /// Inserts `result` under `key` unless another thread got there first;
  /// either way returns the entry that ends up (or already was) stored.
  /// May evict the owning shard's oldest entry when capacity-bounded.
  std::shared_ptr<const CachedRelaxation> insert(const Fingerprint& key,
                                                 CachedRelaxation result);

  /// Convenience: lookup, and on a miss run `solve()` and insert its
  /// outcome. Exactly-once execution is NOT guaranteed under races (two
  /// threads may both solve; one insert wins), but the returned entry is
  /// identical either way per the determinism contract.
  template <typename SolveFn>
  std::shared_ptr<const CachedRelaxation> get_or_solve(const Fingerprint& key,
                                                       SolveFn&& solve) {
    if (auto hit = lookup(key)) return hit;
    return insert(key, solve());
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t size() const;
  void clear();

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  /// Resident-entry bound across all shards (0 = unbounded).
  [[nodiscard]] std::size_t capacity() const {
    return per_shard_capacity_ == 0 ? 0
                                    : per_shard_capacity_ * shards_.size();
  }

 private:
  struct KeyHash {
    std::size_t operator()(const Fingerprint& fp) const {
      return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ull));
    }
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Fingerprint, std::shared_ptr<const CachedRelaxation>,
                       KeyHash>
        entries;
    /// Insertion order of resident keys, oldest first (FIFO eviction).
    std::deque<Fingerprint> order;
  };

  [[nodiscard]] Shard& shard_for(const Fingerprint& key) const {
    // High bits select the shard: the map's own hash (above) leans on
    // the low lane, so the two functions stay independent. The explicit
    // single-shard case avoids a 64-bit shift by 64 (UB).
    if (shards_.size() == 1) return shards_[0];
    return shards_[key.hi >> shard_shift_];
  }

  mutable std::vector<Shard> shards_;
  unsigned shard_shift_ = 64;     ///< 64 − log2(shard count)
  std::size_t per_shard_capacity_ = 0;  ///< 0 = unbounded
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace mfa::core
