// Thread-safe memoization cache for continuous-relaxation solves.
//
// Sweeps and solver portfolios hammer thousands of *identical* relaxation
// subproblems: every GP+A lane of a portfolio solves the same root
// relaxation and walks the same branch-and-bound tree, and batch grids
// repeat instances across methods. The cache memoizes those solves by a
// 128-bit fingerprint of everything the result depends on (problem,
// bounds, warm-start hint, algorithm tag — see core/fingerprint.hpp).
//
// Determinism contract: a key must capture *all* inputs of the solve, so
// every thread that computes a given key computes bit-identical bytes.
// Insertion is first-writer-wins; later writers discard their copy. A
// lookup hit therefore returns exactly what the thread would have
// computed itself, which is how BatchRunner stays bit-for-bit identical
// across thread counts with the cache enabled.
//
// Both feasible solutions and infeasibility proofs are cached (branch-
// and-bound prunes through infeasible nodes constantly). Entries are
// shared_ptr-owned, so a hit stays valid after clear() or cache death.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/fingerprint.hpp"
#include "core/relaxation.hpp"
#include "support/status.hpp"

namespace mfa::core {

/// One cached relaxation outcome: a solution or the status that denied it.
using CachedRelaxation = StatusOr<RelaxedSolution>;

class RelaxationCache {
 public:
  RelaxationCache() = default;
  RelaxationCache(const RelaxationCache&) = delete;
  RelaxationCache& operator=(const RelaxationCache&) = delete;

  /// Returns the cached outcome for `key`, or nullptr on a miss.
  [[nodiscard]] std::shared_ptr<const CachedRelaxation> lookup(
      const Fingerprint& key) const;

  /// Inserts `result` under `key` unless another thread got there first;
  /// either way returns the entry that ends up (or already was) stored.
  std::shared_ptr<const CachedRelaxation> insert(const Fingerprint& key,
                                                 CachedRelaxation result);

  /// Convenience: lookup, and on a miss run `solve()` and insert its
  /// outcome. Exactly-once execution is NOT guaranteed under races (two
  /// threads may both solve; one insert wins), but the returned entry is
  /// identical either way per the determinism contract.
  template <typename SolveFn>
  std::shared_ptr<const CachedRelaxation> get_or_solve(const Fingerprint& key,
                                                       SolveFn&& solve) {
    if (auto hit = lookup(key)) return hit;
    return insert(key, solve());
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t entries = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const Fingerprint& fp) const {
      return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ull));
    }
  };

  mutable std::mutex mutex_;
  std::unordered_map<Fingerprint, std::shared_ptr<const CachedRelaxation>,
                     KeyHash>
      entries_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace mfa::core
