// Thread-safe memoization cache for continuous-relaxation solves.
//
// Sweeps and solver portfolios hammer thousands of *identical* relaxation
// subproblems: every GP+A lane of a portfolio solves the same root
// relaxation and walks the same branch-and-bound tree, and batch grids
// repeat instances across methods. The cache memoizes those solves by a
// 128-bit fingerprint of everything the result depends on (problem,
// bounds, warm-start hint, algorithm tag — see core/fingerprint.hpp).
//
// Both feasible solutions and infeasibility proofs are cached (branch-
// and-bound prunes through infeasible nodes constantly).
//
// The cache machinery itself — sharding, FIFO bounding, first-writer-
// wins insertion, the determinism contract — is the generic
// core::ShardedCache (core/sharded_cache.hpp), shared with the
// compiled-GP model cache. A lookup hit returns exactly what the thread
// would have computed itself, which is how BatchRunner stays bit-for-bit
// identical across thread counts with the cache enabled; the default
// configuration (one shard, unbounded) reproduces the original
// single-map behavior exactly.
#pragma once

#include "core/relaxation.hpp"
#include "core/sharded_cache.hpp"
#include "support/status.hpp"

namespace mfa::core {

/// One cached relaxation outcome: a solution or the status that denied it.
using CachedRelaxation = StatusOr<RelaxedSolution>;

/// Sharding / bounding knobs; the defaults reproduce the original
/// single-shard unbounded cache bit-for-bit.
using RelaxCacheConfig = CacheConfig;

using RelaxationCache = ShardedCache<CachedRelaxation>;

}  // namespace mfa::core
