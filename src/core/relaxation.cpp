#include "core/relaxation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/fingerprint.hpp"

namespace mfa::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Cheapest N̂ meeting target t under bounds: max(L_k, WCET_k/t),
/// written into a caller-owned buffer so the bisection's ~200 probes per
/// solve share one allocation.
void cheapest_n_into(const Problem& p, const CuBounds& b, double t,
                     std::vector<double>& n) {
  n.resize(p.num_kernels());
  for (std::size_t k = 0; k < p.num_kernels(); ++k) {
    n[k] = std::max(b.lower[k], p.app.kernels[k].wcet_ms / t);
  }
}

/// Scratch for one bisection solve, reused across calls on the same
/// thread. Keyed by the problem's structural identity in the only way
/// the bisection cares about — the kernel count — so a thread hammering
/// one branch-and-bound tree (every node shares the root's kernel set)
/// never reallocates after the first solve. resize() is a no-op when the
/// size already matches, so switching problems just resizes once.
struct BisectionWorkspace {
  std::vector<double> n;
};

BisectionWorkspace& bisection_workspace() {
  thread_local BisectionWorkspace ws;
  return ws;
}

/// Pooled resource feasibility of a candidate N̂ (eqs. 17–18 with bounds).
/// Pooled capacity is Σ_f R_f — F·R on homogeneous platforms (bit-equal
/// to the seed arithmetic), the class-weighted sum on mixed ones.
bool pooled_feasible(const Problem& p, const CuBounds& b,
                     const std::vector<double>& n) {
  for (std::size_t k = 0; k < p.num_kernels(); ++k) {
    if (n[k] > b.upper[k] * (1.0 + 1e-12) + 1e-12) return false;
  }
  const ResourceVec pooled = p.pooled_cap();
  for (std::size_t axis = 0; axis < kNumResources; ++axis) {
    double used = 0.0;
    for (std::size_t k = 0; k < p.num_kernels(); ++k) {
      used += n[k] * p.app.kernels[k].res.axis(axis);
    }
    if (used > pooled.axis(axis) * (1.0 + 1e-12) + 1e-12) return false;
  }
  double bw = 0.0;
  for (std::size_t k = 0; k < p.num_kernels(); ++k) {
    bw += n[k] * p.app.kernels[k].bw;
  }
  return bw <= p.pooled_bw_cap() * (1.0 + 1e-12) + 1e-12;
}

}  // namespace

CuBounds CuBounds::defaults(const Problem& problem) {
  CuBounds b;
  b.lower.assign(problem.num_kernels(), 1.0);
  b.upper.resize(problem.num_kernels());
  for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
    const int cap = problem.max_cu_total(k);
    b.upper[k] = cap > 0 ? static_cast<double>(cap) : 0.0;
  }
  return b;
}

StatusOr<RelaxedSolution> solve_relaxation(const Problem& problem,
                                           const CuBounds& bounds,
                                           double ii_hint) {
  RelaxedSolution sol;
  if (Status st = solve_relaxation_into(problem, bounds, ii_hint, sol);
      !st.is_ok()) {
    return st;
  }
  return sol;
}

Status solve_relaxation_into(const Problem& problem, const CuBounds& bounds,
                             double ii_hint, RelaxedSolution& out) {
  MFA_ASSERT(bounds.lower.size() == problem.num_kernels());
  MFA_ASSERT(bounds.upper.size() == problem.num_kernels());
  for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
    MFA_ASSERT_MSG(bounds.lower[k] >= 0.0, "negative CU lower bound");
    if (bounds.lower[k] > bounds.upper[k]) {
      return Status{Code::kInfeasible, "empty CU bound interval"};
    }
  }

  // Bracket the optimum: below t_lo some kernel cannot meet the target
  // even at its upper bound; above t_hi the cheapest N̂ stops changing.
  double t_lo = 0.0;
  double t_hi = 0.0;
  for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
    const double wcet = problem.app.kernels[k].wcet_ms;
    if (bounds.upper[k] > 0.0 && std::isfinite(bounds.upper[k])) {
      t_lo = std::max(t_lo, wcet / bounds.upper[k]);
    }
    t_hi = std::max(t_hi, wcet / std::max(bounds.lower[k], 1e-12));
  }
  if (t_lo == 0.0) t_lo = 1e-12;
  t_hi = std::max(t_hi, t_lo);

  // Every probe shares the thread-local scratch; the feasibility
  // arithmetic is unchanged, so results stay bit-identical to the
  // allocating version.
  std::vector<double>& n = bisection_workspace().n;
  auto feasible_at = [&](double t) {
    cheapest_n_into(problem, bounds, t, n);
    return pooled_feasible(problem, bounds, n);
  };

  if (!feasible_at(t_hi)) {
    return Status{Code::kInfeasible,
                  "pooled resource constraints violated at minimum CUs"};
  }

  if (feasible_at(t_lo)) {
    out.ii = t_lo;  // bound-limited: cannot go below t_lo by construction
  } else {
    // Monotone bisection: infeasible at lo, feasible at hi. A warm hint
    // inside the bracket is probed once and replaces the matching end,
    // preserving both invariants; branch-and-bound children seed this
    // with the parent's ÎI (a valid lower bound after tightening).
    double lo = t_lo;
    double hi = t_hi;
    if (ii_hint > lo && ii_hint < hi) {
      if (feasible_at(ii_hint)) {
        hi = ii_hint;
      } else {
        lo = ii_hint;
      }
    }
    for (int iter = 0; iter < 200 && (hi - lo) > 1e-14 * hi; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (feasible_at(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    out.ii = hi;
  }
  cheapest_n_into(problem, bounds, out.ii, n);
  // Copy-assignment from the scratch reuses out's capacity — same-size
  // callers (every node of one branch-and-bound tree) never allocate.
  out.n_hat = n;
  return Status::ok();
}

std::vector<StatusOr<RelaxedSolution>> solve_relaxation_batch(
    const Problem& problem, const std::vector<CuBounds>& bounds,
    const std::vector<double>& ii_hints) {
  MFA_ASSERT(ii_hints.empty() || ii_hints.size() == bounds.size());
  std::vector<StatusOr<RelaxedSolution>> out;
  out.reserve(bounds.size());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    // Each lane runs the exact scalar probe sequence (the bisection has
    // no cross-lane arithmetic to fuse), so lane results are bit-equal
    // to individual solve_relaxation calls and remain compatible with
    // relaxation_cache_key-addressed cache entries. The batch's saving
    // is the shared thread-local scratch staying hot across lanes —
    // sibling branch-and-bound children have the same kernel count, so
    // no probe after the first lane's first ever reallocates.
    out.push_back(solve_relaxation(problem, bounds[i],
                                   ii_hints.empty() ? 0.0 : ii_hints[i]));
  }
  return out;
}

StatusOr<RelaxedSolution> solve_relaxation(const Problem& problem,
                                           const CuBounds& bounds) {
  return solve_relaxation(problem, bounds, /*ii_hint=*/0.0);
}

StatusOr<RelaxedSolution> solve_relaxation(const Problem& problem) {
  return solve_relaxation(problem, CuBounds::defaults(problem));
}

gp::GpProblem build_relaxation_gp(const Problem& problem,
                                  const CuBounds& bounds) {
  using gp::Monomial;
  using gp::Posynomial;

  gp::GpProblem model;
  const gp::VarId ii = model.add_variable("II");
  std::vector<gp::VarId> n_vars;
  n_vars.reserve(problem.num_kernels());
  for (const Kernel& k : problem.app.kernels) {
    n_vars.push_back(model.add_variable("N_" + k.name));
  }

  model.set_objective(Monomial::var(ii));

  for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
    const Kernel& kern = problem.app.kernels[k];
    // WCET_k · II⁻¹ · N_k⁻¹ ≤ 1  (eq. 15).
    model.add_le1(Monomial(kern.wcet_ms) * Monomial::var(ii).inverse() *
                      Monomial::var(n_vars[k]).inverse(),
                  "latency " + kern.name);
    // L_k / N_k ≤ 1 (eq. 16 generalized to the node lower bound) and
    // N_k / U_k ≤ 1 for finite node upper bounds. Both carry a relative
    // 1e-9 slack so a collapsed interval L = U (an equality, common when
    // capacity allows exactly one CU) keeps a strict interior for the
    // barrier method; the optimum shifts by O(1e-9) at most.
    constexpr double kBoundSlack = 1e-9;
    if (bounds.lower[k] > 0.0) {
      model.add_le1(Monomial(bounds.lower[k] * (1.0 - kBoundSlack)) *
                        Monomial::var(n_vars[k]).inverse(),
                    "min CU " + kern.name);
    }
    if (std::isfinite(bounds.upper[k]) && bounds.upper[k] > 0.0) {
      model.add_le1(Monomial(1.0 / (bounds.upper[k] * (1.0 + kBoundSlack))) *
                        Monomial::var(n_vars[k]),
                    "max CU " + kern.name);
    }
  }

  // Σ_k N_k·R_k/Σ_f R_f ≤ 1 per resource axis with non-trivial demand
  // (eq. 17, pooled over the possibly mixed fleet), and the bandwidth
  // twin (eq. 18).
  const ResourceVec pooled = problem.pooled_cap();
  for (std::size_t axis = 0; axis < kNumResources; ++axis) {
    Posynomial sum;
    bool any = false;
    for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
      const double demand = problem.app.kernels[k].res.axis(axis);
      if (demand <= 0.0) continue;
      MFA_ASSERT_MSG(pooled.axis(axis) > 0.0,
                     "demand on a zero-capacity axis (validate() first)");
      sum += Monomial(demand / pooled.axis(axis)) * Monomial::var(n_vars[k]);
      any = true;
    }
    if (any) {
      model.add_le1(sum,
                    std::string("resource ") +
                        resource_name(static_cast<Resource>(axis)));
    }
  }
  const double pooled_bw = problem.pooled_bw_cap();
  Posynomial bw_sum;
  bool any_bw = false;
  for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
    const double demand = problem.app.kernels[k].bw;
    if (demand <= 0.0) continue;
    MFA_ASSERT_MSG(pooled_bw > 0.0, "bandwidth demand with zero bandwidth cap");
    bw_sum += Monomial(demand / pooled_bw) * Monomial::var(n_vars[k]);
    any_bw = true;
  }
  if (any_bw) model.add_le1(bw_sum, "bandwidth");

  return model;
}

namespace {

/// Solves `model` through GpSolver, consulting the compiled-model cache
/// when one is provided: a hit clones the artifact (shared structure,
/// private coefficients) and re-patches it from *this* model's
/// coefficients, so the solved bytes never depend on which structurally
/// identical problem populated the entry. A miss compiles and publishes.
gp::GpSolution solve_model(const gp::GpProblem& model,
                           const gp::SolverOptions& options,
                           const std::vector<double>* x0,
                           CompiledModelCache* models) {
  const gp::GpSolver solver(options);
  if (models == nullptr || !options.use_compiled_kernel) {
    return x0 != nullptr ? solver.solve(model, *x0) : solver.solve(model);
  }
  // Hash the structure once per solve: the same fingerprint is the
  // cache key and the patch-compatibility check.
  const Fingerprint structural = model.structural_fingerprint();
  const Fingerprint key = compiled_model_cache_key(structural);
  gp::CompiledModel prepared;
  if (auto hit = models->lookup(key)) {
    prepared = *hit;  // clone: shares structure, copies coefficients
    prepared.patch_coefficients(model, options.variable_box, structural);
  } else {
    prepared = gp::CompiledModel::build(model, options.variable_box);
    models->insert(key, prepared);  // stored copy shares the structure
  }
  return x0 != nullptr ? solver.solve(model, prepared, *x0)
                       : solver.solve(model, prepared);
}

StatusOr<RelaxedSolution> solve_gp_impl(const Problem& problem,
                                        const gp::SolverOptions& options,
                                        const RelaxedSolution* warm,
                                        CompiledModelCache* models) {
  const CuBounds bounds = CuBounds::defaults(problem);
  for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
    if (bounds.lower[k] > bounds.upper[k]) {
      return Status{Code::kInfeasible, "empty CU bound interval"};
    }
  }
  gp::GpProblem model = build_relaxation_gp(problem, bounds);
  gp::GpSolution gp_sol;
  if (warm != nullptr && warm->n_hat.size() == problem.num_kernels() &&
      warm->ii > 0.0) {
    // Seed x0 = (inflated ÎI, clamped N̂): the 5 % ÎI head-room makes the
    // latency constraints strictly slack at the seed, so a seed taken
    // from this problem's own (boundary) optimum re-enters the interior
    // and phase I is skipped or trivial.
    std::vector<double> x0(1 + problem.num_kernels());
    x0[0] = warm->ii * 1.05;
    for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
      x0[1 + k] =
          std::clamp(warm->n_hat[k], bounds.lower[k],
                     std::isfinite(bounds.upper[k]) && bounds.upper[k] > 0.0
                         ? bounds.upper[k]
                         : warm->n_hat[k]);
    }
    // A barrier restarted at a small t first drags a near-optimal seed
    // back to the analytic center, wasting the whole warm start. Open
    // with the duality-gap bound the seed plausibly has (warm_gap:
    // ~1e-3 for a same-problem seed, wider for a neighboring problem's)
    // so the path begins where the seed is useful; a poor seed only
    // costs extra centering steps at the first stage, not correctness.
    gp::SolverOptions warm_options = options;
    const double m =
        static_cast<double>(model.constraints().size()) +
        2.0 * static_cast<double>(model.num_variables());  // + box rows
    warm_options.t0 = std::max(options.t0, m / options.warm_gap);
    gp_sol = solve_model(model, warm_options, &x0, models);
  } else {
    gp_sol = solve_model(model, options, nullptr, models);
  }
  if (gp_sol.status == gp::GpStatus::kInfeasible) {
    return Status{Code::kInfeasible, "GP phase I proved infeasibility"};
  }
  if (!gp_sol.ok()) {
    return Status{Code::kNumeric,
                  std::string("GP solver: ") + to_string(gp_sol.status)};
  }
  RelaxedSolution sol;
  sol.ii = gp_sol.x[0];
  sol.n_hat.assign(gp_sol.x.begin() + 1, gp_sol.x.end());
  return sol;
}

}  // namespace

StatusOr<RelaxedSolution> solve_relaxation_gp(const Problem& problem,
                                              const gp::SolverOptions& options,
                                              CompiledModelCache* models) {
  return solve_gp_impl(problem, options, nullptr, models);
}

StatusOr<RelaxedSolution> solve_relaxation_gp(const Problem& problem,
                                              const gp::SolverOptions& options,
                                              const RelaxedSolution& warm,
                                              CompiledModelCache* models) {
  return solve_gp_impl(problem, options, &warm, models);
}

Fingerprint relaxation_cache_key(const Problem& problem,
                                 const CuBounds& bounds, double ii_hint) {
  Fingerprint key = relaxation_fingerprint(problem);
  mix_bounds(key, bounds);
  key.mix(ii_hint);
  key.mix(std::uint64_t{0xb15ec7});  // algorithm tag: bisection
  return key;
}

Fingerprint relaxation_gp_cache_key(const Problem& problem,
                                    const gp::SolverOptions& options) {
  // The determinism contract requires the key to capture *every* solve
  // input. If this assert fires, a SolverOptions field was added or
  // resized: mix the new field below, then update the expected size.
  static_assert(sizeof(gp::SolverOptions) == 9 * sizeof(double),
                "SolverOptions changed: update relaxation_gp_cache_key");
  Fingerprint key = relaxation_fingerprint(problem);
  mix_bounds(key, CuBounds::defaults(problem));
  key.mix(options.tolerance);
  key.mix(options.t0);
  key.mix(options.mu);
  key.mix(static_cast<std::uint64_t>(options.max_outer));
  key.mix(static_cast<std::uint64_t>(options.max_newton));
  key.mix(options.newton_tol);
  key.mix(options.feas_margin);
  key.mix(options.variable_box);
  key.mix(options.warm_gap);
  key.mix(static_cast<std::uint64_t>(options.use_compiled_kernel));
  key.mix(std::uint64_t{0x6b9});  // algorithm tag: interior point
  return key;
}

Fingerprint relaxation_gp_cache_key(const Problem& problem,
                                    const gp::SolverOptions& options,
                                    const RelaxedSolution& warm) {
  Fingerprint key = relaxation_gp_cache_key(problem, options);
  key.mix(warm.ii);
  for (double n : warm.n_hat) key.mix(n);
  key.mix(std::uint64_t{warm.n_hat.size()});
  key.mix(std::uint64_t{0x3a96});  // algorithm tag: warm-started barrier
  return key;
}

}  // namespace mfa::core
