#include "core/resources.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace mfa::core {

const char* resource_name(Resource r) {
  switch (r) {
    case Resource::kBram:
      return "BRAM";
    case Resource::kDsp:
      return "DSP";
    case Resource::kLut:
      return "LUT";
    case Resource::kFf:
      return "FF";
  }
  return "?";
}

ResourceVec& ResourceVec::operator+=(const ResourceVec& rhs) {
  for (std::size_t i = 0; i < kNumResources; ++i) v_[i] += rhs.v_[i];
  return *this;
}

ResourceVec& ResourceVec::operator-=(const ResourceVec& rhs) {
  for (std::size_t i = 0; i < kNumResources; ++i) v_[i] -= rhs.v_[i];
  return *this;
}

ResourceVec& ResourceVec::operator*=(double s) {
  for (double& x : v_) x *= s;
  return *this;
}

bool ResourceVec::fits_within(const ResourceVec& cap, double tolerance) const {
  for (std::size_t i = 0; i < kNumResources; ++i) {
    if (v_[i] > cap.v_[i] + tolerance) return false;
  }
  return true;
}

double ResourceVec::max_ratio(const ResourceVec& cap) const {
  double worst = 0.0;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    if (cap.v_[i] > 0.0) {
      worst = std::max(worst, v_[i] / cap.v_[i]);
    } else if (v_[i] > 0.0) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return worst;
}

int ResourceVec::max_multiples(const ResourceVec& cap, int limit) const {
  MFA_ASSERT(limit >= 0);
  int q = limit;
  for (std::size_t i = 0; i < kNumResources; ++i) {
    if (v_[i] <= 0.0) continue;
    if (cap.v_[i] <= 0.0) return 0;
    // Tiny relative slack absorbs accumulated floating-point error in
    // sums of table percentages (e.g. 3 × 33.33 vs cap 99.99).
    const double exact = cap.v_[i] * (1.0 + 1e-12) / v_[i];
    q = std::min(q, static_cast<int>(std::floor(exact + 1e-9)));
  }
  return std::max(q, 0);
}

double ResourceVec::max_axis() const {
  return *std::max_element(v_.begin(), v_.end());
}

bool ResourceVec::non_negative(double tolerance) const {
  return std::all_of(v_.begin(), v_.end(),
                     [tolerance](double x) { return x >= -tolerance; });
}

std::string ResourceVec::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "BRAM=%.2f DSP=%.2f LUT=%.2f FF=%.2f",
                v_[0], v_[1], v_[2], v_[3]);
  return buf;
}

}  // namespace mfa::core
