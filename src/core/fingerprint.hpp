// Structural fingerprints of allocation-problem instances, used as cache
// keys. The 128-bit Fingerprint primitive itself lives in
// support/fingerprint.hpp (shared with the gp layer); this header owns
// the problem-level hashing.
//
// relaxation_fingerprint() hashes precisely the fields the continuous
// relaxation (core/relaxation) depends on — kernel WCET/resources/
// bandwidth, FPGA count and *effective* caps (per FPGA on heterogeneous
// platforms, so two problems differing only in their device-class
// vector never share entries) — and deliberately excludes
// names, α/β and anything else the relaxed solution cannot depend on, so
// e.g. a β = 0 twin of a problem shares its relaxation cache entries.
#pragma once

#include "core/problem.hpp"
#include "core/resources.hpp"
#include "support/fingerprint.hpp"

namespace mfa::core {

using ::mfa::Fingerprint;

/// Hashes exactly the problem fields the continuous relaxation depends
/// on: per-kernel (WCET, resource vector, bandwidth), the FPGA count and
/// the effective caps — one vector for a homogeneous platform, the full
/// per-FPGA sequence for a mixed one. Names and weights are excluded.
Fingerprint relaxation_fingerprint(const Problem& problem);

struct CuBounds;  // core/relaxation.hpp

/// Folds per-kernel CU bounds into an existing fingerprint (used to key
/// branch-and-bound node relaxations).
void mix_bounds(Fingerprint& fp, const CuBounds& bounds);

}  // namespace mfa::core
