// Structural fingerprints of problem instances, used as cache keys.
//
// A Fingerprint is a 128-bit rolling hash (two independently mixed 64-bit
// lanes) over the exact bit patterns of the numbers that determine a
// computation's result. Collisions would silently alias two different
// relaxations, so the two lanes use unrelated mixing functions: both
// lanes would have to collide simultaneously for a false cache hit,
// which is negligible at any realistic cache population.
//
// relaxation_fingerprint() hashes precisely the fields the continuous
// relaxation (core/relaxation) depends on — kernel WCET/resources/
// bandwidth, FPGA count and *effective* caps (per FPGA on heterogeneous
// platforms, so two problems differing only in their device-class
// vector never share entries) — and deliberately excludes
// names, α/β and anything else the relaxed solution cannot depend on, so
// e.g. a β = 0 twin of a problem shares its relaxation cache entries.
#pragma once

#include <cstdint>

#include "core/problem.hpp"
#include "core/resources.hpp"

namespace mfa::core {

struct Fingerprint {
  std::uint64_t hi = 0x9e3779b97f4a7c15ull;
  std::uint64_t lo = 0xcbf29ce484222325ull;  // FNV-1a offset basis

  void mix(std::uint64_t v) {
    // Lane lo: FNV-1a on 64-bit words. Lane hi: xor-rotate-multiply with
    // a golden-ratio pre-scramble (splitmix-style), independent of lo.
    lo = (lo ^ v) * 0x00000100000001b3ull;  // FNV prime
    std::uint64_t x = v * 0x9e3779b97f4a7c15ull;
    x ^= x >> 29;
    hi = (hi ^ x) * 0xbf58476d1ce4e5b9ull;
    hi ^= hi >> 32;
  }

  void mix(double d);

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }
};

/// Hashes exactly the problem fields the continuous relaxation depends
/// on: per-kernel (WCET, resource vector, bandwidth), the FPGA count and
/// the effective caps — one vector for a homogeneous platform, the full
/// per-FPGA sequence for a mixed one. Names and weights are excluded.
Fingerprint relaxation_fingerprint(const Problem& problem);

struct CuBounds;  // core/relaxation.hpp

/// Folds per-kernel CU bounds into an existing fingerprint (used to key
/// branch-and-bound node relaxations).
void mix_bounds(Fingerprint& fp, const CuBounds& bounds);

}  // namespace mfa::core
