#include "io/serialize.hpp"

#include <fstream>
#include <sstream>

namespace mfa::io {
namespace {

using core::Application;
using core::Kernel;
using core::Platform;
using core::Problem;
using core::Resource;
using core::ResourceVec;

/// Fetches a required finite number field.
StatusOr<double> need_number(const Json& j, const char* key,
                             const char* ctx) {
  const Json* v = j.find(key);
  if (v == nullptr || !v->is_number()) {
    return Status{Code::kInvalid, std::string(ctx) + ": missing or "
                                      "non-numeric field '" +
                                      key + "'"};
  }
  return v->as_number();
}

double optional_number(const Json& j, const char* key, double fallback) {
  const Json* v = j.find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string optional_string(const Json& j, const char* key,
                            const std::string& fallback) {
  const Json* v = j.find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

/// Checked double → integer conversion. A bare static_cast<int> of an
/// attacker-controlled JSON number is UB once the value leaves int's
/// range, so every integer field goes through here: must be integral
/// and within [min, max].
StatusOr<long long> json_to_int(const Json& v, const char* what,
                                long long min, long long max) {
  if (!v.is_number()) {
    return Status{Code::kInvalid, std::string(what) + " must be a number"};
  }
  const double d = v.as_number();
  if (d != static_cast<double>(static_cast<long long>(d)) ||
      d < static_cast<double>(min) || d > static_cast<double>(max)) {
    return Status{Code::kInvalid, std::string(what) + " must be an integer in [" +
                                      std::to_string(min) + ", " +
                                      std::to_string(max) + "]"};
  }
  return static_cast<long long>(d);
}

/// Fetches a required integer field with range validation.
StatusOr<long long> need_int(const Json& j, const char* key, const char* ctx,
                             long long min, long long max) {
  const Json* v = j.find(key);
  if (v == nullptr) {
    return Status{Code::kInvalid,
                  std::string(ctx) + ": missing field '" + key + "'"};
  }
  return json_to_int(*v, (std::string(ctx) + ": '" + key + "'").c_str(), min,
                     max);
}

}  // namespace

Status check_schema_version(const Json& j, const char* ctx, bool required) {
  const Json* v = j.is_object() ? j.find("schema_version") : nullptr;
  if (v == nullptr) {
    if (!required) return Status::ok();  // legacy v0 payload
    return Status{Code::kInvalid,
                  std::string(ctx) + ": missing 'schema_version'"};
  }
  StatusOr<long long> version = json_to_int(
      *v, (std::string(ctx) + ": 'schema_version'").c_str(), 0, 1L << 30);
  if (!version.is_ok()) return version.status();
  if (version.value() < 1 || version.value() > kSchemaVersion) {
    return Status{Code::kInvalid,
                  std::string(ctx) + ": unsupported schema_version " +
                      std::to_string(version.value()) + " (supported: 1.." +
                      std::to_string(kSchemaVersion) + ")"};
  }
  return Status::ok();
}

Json to_json(const Kernel& kernel) {
  Json j = Json::object();
  j.set("name", Json::string(kernel.name));
  j.set("wcet_ms", Json::number(kernel.wcet_ms));
  j.set("bram", Json::number(kernel.res[Resource::kBram]));
  j.set("dsp", Json::number(kernel.res[Resource::kDsp]));
  j.set("lut", Json::number(kernel.res[Resource::kLut]));
  j.set("ff", Json::number(kernel.res[Resource::kFf]));
  j.set("bw", Json::number(kernel.bw));
  return j;
}

Json to_json(const Application& app) {
  Json j = Json::object();
  j.set("name", Json::string(app.name));
  Json kernels = Json::array();
  for (const Kernel& k : app.kernels) kernels.push_back(to_json(k));
  j.set("kernels", std::move(kernels));
  return j;
}

namespace {

Json capacity_to_json(const ResourceVec& capacity) {
  Json cap = Json::object();
  cap.set("bram", Json::number(capacity[Resource::kBram]));
  cap.set("dsp", Json::number(capacity[Resource::kDsp]));
  cap.set("lut", Json::number(capacity[Resource::kLut]));
  cap.set("ff", Json::number(capacity[Resource::kFf]));
  return cap;
}

ResourceVec capacity_from_json(const Json& cap) {
  ResourceVec v;
  v[Resource::kBram] = optional_number(cap, "bram", 100.0);
  v[Resource::kDsp] = optional_number(cap, "dsp", 100.0);
  v[Resource::kLut] = optional_number(cap, "lut", 100.0);
  v[Resource::kFf] = optional_number(cap, "ff", 100.0);
  return v;
}

}  // namespace

Json to_json(const core::DeviceClass& device_class) {
  Json j = Json::object();
  j.set("name", Json::string(device_class.name));
  j.set("capacity", capacity_to_json(device_class.capacity));
  j.set("bw_capacity", Json::number(device_class.bw_capacity));
  return j;
}

Json to_json(const Platform& platform) {
  Json j = Json::object();
  j.set("name", Json::string(platform.name));
  j.set("fpgas", Json::number(platform.num_fpgas));
  if (platform.homogeneous()) {
    j.set("capacity", capacity_to_json(platform.capacity));
    j.set("bw_capacity", Json::number(platform.bw_capacity));
  } else {
    Json classes = Json::array();
    for (const core::DeviceClass& dc : platform.classes) {
      classes.push_back(to_json(dc));
    }
    j.set("classes", std::move(classes));
    Json class_of = Json::array();
    for (int c : platform.class_of) class_of.push_back(Json::number(c));
    j.set("class_of", std::move(class_of));
  }
  return j;
}

Json to_json(const Problem& problem) {
  Json j = Json::object();
  j.set("schema_version", Json::number(kSchemaVersion));
  j.set("application", to_json(problem.app));
  j.set("platform", to_json(problem.platform));
  j.set("resource_fraction", Json::number(problem.resource_fraction));
  j.set("bw_fraction", Json::number(problem.bw_fraction));
  j.set("alpha", Json::number(problem.alpha));
  j.set("beta", Json::number(problem.beta));
  return j;
}

Json to_json(const core::Allocation& alloc) {
  Json j = Json::object();
  j.set("schema_version", Json::number(kSchemaVersion));
  Json matrix = Json::array();
  for (std::size_t k = 0; k < alloc.num_kernels(); ++k) {
    Json fpga_row = Json::array();
    for (int f = 0; f < alloc.num_fpgas(); ++f) {
      fpga_row.push_back(Json::number(alloc.cu(k, f)));
    }
    matrix.push_back(std::move(fpga_row));
  }
  j.set("matrix", std::move(matrix));
  j.set("ii_ms", Json::number(alloc.ii()));
  j.set("phi", Json::number(alloc.phi()));
  j.set("goal", Json::number(alloc.goal()));
  j.set("avg_utilization", Json::number(alloc.average_utilization()));
  j.set("feasible", Json::boolean(alloc.feasible()));
  return j;
}

StatusOr<Kernel> kernel_from_json(const Json& j) {
  if (!j.is_object()) return Status{Code::kInvalid, "kernel: not an object"};
  Kernel k;
  k.name = optional_string(j, "name", "kernel");
  StatusOr<double> wcet = need_number(j, "wcet_ms", k.name.c_str());
  if (!wcet.is_ok()) return wcet.status();
  k.wcet_ms = wcet.value();
  k.res[Resource::kBram] = optional_number(j, "bram", 0.0);
  k.res[Resource::kDsp] = optional_number(j, "dsp", 0.0);
  k.res[Resource::kLut] = optional_number(j, "lut", 0.0);
  k.res[Resource::kFf] = optional_number(j, "ff", 0.0);
  k.bw = optional_number(j, "bw", 0.0);
  return k;
}

StatusOr<Application> application_from_json(const Json& j) {
  if (!j.is_object()) {
    return Status{Code::kInvalid, "application: not an object"};
  }
  Application app;
  app.name = optional_string(j, "name", "application");
  const Json* kernels = j.find("kernels");
  if (kernels == nullptr || !kernels->is_array() || kernels->size() == 0) {
    return Status{Code::kInvalid,
                  "application: 'kernels' must be a non-empty array"};
  }
  for (std::size_t i = 0; i < kernels->size(); ++i) {
    StatusOr<Kernel> k = kernel_from_json(kernels->at(i));
    if (!k.is_ok()) return k.status();
    app.kernels.push_back(std::move(k.value()));
  }
  return app;
}

StatusOr<core::DeviceClass> device_class_from_json(const Json& j) {
  if (!j.is_object()) {
    return Status{Code::kInvalid, "device class: not an object"};
  }
  core::DeviceClass dc;
  dc.name = optional_string(j, "name", "class");
  if (const Json* cap = j.find("capacity"); cap != nullptr) {
    if (!cap->is_object()) {
      return Status{Code::kInvalid,
                    "device class: 'capacity' must be an object"};
    }
    dc.capacity = capacity_from_json(*cap);
  }
  dc.bw_capacity = optional_number(j, "bw_capacity", 100.0);
  return dc;
}

StatusOr<Platform> platform_from_json(const Json& j) {
  if (!j.is_object()) {
    return Status{Code::kInvalid, "platform: not an object"};
  }
  Platform p;
  p.name = optional_string(j, "name", "platform");
  StatusOr<long long> fpgas = need_int(j, "fpgas", "platform", 1, 1 << 20);
  if (!fpgas.is_ok()) return fpgas.status();
  p.num_fpgas = static_cast<int>(fpgas.value());
  if (const Json* cap = j.find("capacity"); cap != nullptr) {
    if (!cap->is_object()) {
      return Status{Code::kInvalid, "platform: 'capacity' must be an object"};
    }
    p.capacity = capacity_from_json(*cap);
  }
  p.bw_capacity = optional_number(j, "bw_capacity", 100.0);

  // Heterogeneous extension: a device-class list plus a per-FPGA class
  // assignment. Both must be present together and consistent.
  const Json* classes = j.find("classes");
  const Json* class_of = j.find("class_of");
  if (classes == nullptr && class_of == nullptr) return p;
  if (classes == nullptr || class_of == nullptr) {
    return Status{Code::kInvalid,
                  "platform: 'classes' and 'class_of' must appear together"};
  }
  if (!classes->is_array() || classes->size() == 0) {
    return Status{Code::kInvalid,
                  "platform: 'classes' must be a non-empty array"};
  }
  if (!class_of->is_array() ||
      class_of->size() != static_cast<std::size_t>(p.num_fpgas)) {
    return Status{Code::kInvalid,
                  "platform: 'class_of' must list one class per FPGA"};
  }
  for (std::size_t i = 0; i < classes->size(); ++i) {
    StatusOr<core::DeviceClass> dc = device_class_from_json(classes->at(i));
    if (!dc.is_ok()) return dc.status();
    p.classes.push_back(std::move(dc.value()));
  }
  for (std::size_t i = 0; i < class_of->size(); ++i) {
    StatusOr<long long> idx =
        json_to_int(class_of->at(i), "platform: 'class_of' entry", 0,
                    static_cast<long long>(p.classes.size()) - 1);
    if (!idx.is_ok()) return idx.status();
    p.class_of.push_back(static_cast<int>(idx.value()));
  }
  return p;
}

StatusOr<Problem> problem_from_json(const Json& j) {
  if (!j.is_object()) return Status{Code::kInvalid, "problem: not an object"};
  if (Status v = check_schema_version(j, "problem", /*required=*/false);
      !v.is_ok()) {
    return v;
  }
  const Json* app = j.find("application");
  if (app == nullptr) {
    return Status{Code::kInvalid, "problem: missing 'application'"};
  }
  StatusOr<Application> application = application_from_json(*app);
  if (!application.is_ok()) return application.status();

  const Json* plat = j.find("platform");
  if (plat == nullptr) {
    return Status{Code::kInvalid, "problem: missing 'platform'"};
  }
  StatusOr<Platform> platform = platform_from_json(*plat);
  if (!platform.is_ok()) return platform.status();

  Problem p;
  p.app = std::move(application.value());
  p.platform = std::move(platform.value());
  p.resource_fraction = optional_number(j, "resource_fraction", 1.0);
  p.bw_fraction = optional_number(j, "bw_fraction", 1.0);
  p.alpha = optional_number(j, "alpha", 1.0);
  p.beta = optional_number(j, "beta", 0.0);
  return p;
}

StatusOr<Problem> problem_from_text(std::string_view text) {
  StatusOr<Json> doc = Json::parse(text);
  if (!doc.is_ok()) return doc.status();
  return problem_from_json(doc.value());
}

Json to_json(const service::Event& event) {
  using Type = service::Event::Type;
  Json j = Json::object();
  j.set("type", Json::string(service::to_string(event.type)));
  j.set("time_ms", Json::number(event.time_ms));
  switch (event.type) {
    case Type::kAddPipeline:
      j.set("id", Json::string(event.pipeline.id));
      j.set("weight", Json::number(event.pipeline.weight));
      j.set("application", to_json(event.pipeline.app));
      break;
    case Type::kRemovePipeline:
      j.set("id", Json::string(event.id));
      break;
    case Type::kReprioritize:
      j.set("id", Json::string(event.id));
      j.set("weight", Json::number(event.weight));
      break;
    case Type::kResizePlatform:
      j.set("platform", to_json(event.platform));
      break;
  }
  return j;
}

Json to_json(const scenario::Trace& trace) {
  Json j = Json::object();
  j.set("schema_version", Json::number(kSchemaVersion));
  j.set("platform", to_json(trace.platform));
  Json events = Json::array();
  for (const service::Event& e : trace.events) events.push_back(to_json(e));
  j.set("events", std::move(events));
  return j;
}

StatusOr<service::Event> event_from_json(const Json& j) {
  using Type = service::Event::Type;
  if (!j.is_object()) return Status{Code::kInvalid, "event: not an object"};
  const std::string type = optional_string(j, "type", "");
  service::Event e;
  e.time_ms = optional_number(j, "time_ms", 0.0);
  if (type == "add") {
    e.type = Type::kAddPipeline;
    e.pipeline.id = optional_string(j, "id", "");
    if (e.pipeline.id.empty()) {
      return Status{Code::kInvalid, "add event: missing 'id'"};
    }
    e.pipeline.weight = optional_number(j, "weight", 1.0);
    const Json* app = j.find("application");
    if (app == nullptr) {
      return Status{Code::kInvalid, "add event: missing 'application'"};
    }
    StatusOr<Application> parsed = application_from_json(*app);
    if (!parsed.is_ok()) return parsed.status();
    e.pipeline.app = std::move(parsed.value());
    return e;
  }
  if (type == "remove" || type == "reprioritize") {
    e.type = type == "remove" ? Type::kRemovePipeline : Type::kReprioritize;
    e.id = optional_string(j, "id", "");
    if (e.id.empty()) {
      return Status{Code::kInvalid, type + " event: missing 'id'"};
    }
    if (e.type == Type::kReprioritize) {
      StatusOr<double> weight = need_number(j, "weight", "reprioritize");
      if (!weight.is_ok()) return weight.status();
      e.weight = weight.value();
    }
    return e;
  }
  if (type == "resize") {
    e.type = Type::kResizePlatform;
    const Json* plat = j.find("platform");
    if (plat == nullptr) {
      return Status{Code::kInvalid, "resize event: missing 'platform'"};
    }
    StatusOr<Platform> parsed = platform_from_json(*plat);
    if (!parsed.is_ok()) return parsed.status();
    e.platform = std::move(parsed.value());
    return e;
  }
  return Status{Code::kInvalid, "event: unknown type '" + type + "'"};
}

StatusOr<scenario::Trace> trace_from_json(const Json& j) {
  if (!j.is_object()) return Status{Code::kInvalid, "trace: not an object"};
  if (Status v = check_schema_version(j, "trace", /*required=*/false);
      !v.is_ok()) {
    return v;
  }
  scenario::Trace trace;
  const Json* plat = j.find("platform");
  if (plat == nullptr) {
    return Status{Code::kInvalid, "trace: missing 'platform'"};
  }
  StatusOr<Platform> platform = platform_from_json(*plat);
  if (!platform.is_ok()) return platform.status();
  trace.platform = std::move(platform.value());
  const Json* events = j.find("events");
  if (events == nullptr || !events->is_array()) {
    return Status{Code::kInvalid, "trace: missing 'events' array"};
  }
  trace.events.reserve(events->size());
  for (std::size_t i = 0; i < events->size(); ++i) {
    StatusOr<service::Event> e = event_from_json(events->at(i));
    if (!e.is_ok()) {
      return Status{Code::kInvalid, "events[" + std::to_string(i) +
                                        "]: " + e.status().message()};
    }
    trace.events.push_back(std::move(e.value()));
  }
  return trace;
}

StatusOr<scenario::Trace> trace_from_text(std::string_view text) {
  StatusOr<Json> doc = Json::parse(text);
  if (!doc.is_ok()) return doc.status();
  return trace_from_json(doc.value());
}

Json to_json(const service::PipelineSpec& pipe) {
  Json j = Json::object();
  j.set("id", Json::string(pipe.id));
  j.set("weight", Json::number(pipe.weight));
  j.set("application", to_json(pipe.app));
  return j;
}

StatusOr<service::PipelineSpec> pipeline_spec_from_json(const Json& j) {
  if (!j.is_object()) {
    return Status{Code::kInvalid, "pipeline: not an object"};
  }
  service::PipelineSpec pipe;
  pipe.id = optional_string(j, "id", "");
  if (pipe.id.empty()) {
    return Status{Code::kInvalid, "pipeline: missing 'id'"};
  }
  pipe.weight = optional_number(j, "weight", 1.0);
  const Json* app = j.find("application");
  if (app == nullptr) {
    return Status{Code::kInvalid, "pipeline: missing 'application'"};
  }
  StatusOr<Application> parsed = application_from_json(*app);
  if (!parsed.is_ok()) return parsed.status();
  pipe.app = std::move(parsed.value());
  return pipe;
}

Json to_json(const service::EventOutcome& o) {
  Json j = Json::object();
  j.set("seq", Json::number(static_cast<double>(o.sequence)));
  j.set("type", Json::string(service::to_string(o.type)));
  if (!o.id.empty()) j.set("id", Json::string(o.id));
  j.set("status", Json::string(o.status.to_string()));
  j.set("solve_status", Json::string(o.solve_status.to_string()));
  j.set("active", Json::number(static_cast<double>(o.active_pipelines)));
  j.set("warm", Json::boolean(o.solve.warm_started));
  j.set("ii_ms", Json::number(o.solve.ii));
  j.set("phi", Json::number(o.solve.phi));
  j.set("goal", Json::number(o.solve.goal));
  Json totals = Json::array();
  for (int t : o.solve.totals) totals.push_back(Json::number(t));
  j.set("totals", std::move(totals));
  j.set("nodes", Json::number(static_cast<double>(o.solve.nodes)));
  // Compilation-cache observability (deterministic with the default
  // sequential lanes; see EventOutcome).
  j.set("delta", Json::string(service::to_string(o.cache.delta)));
  j.set("gp_compiles",
        Json::number(static_cast<double>(o.cache.gp_compiles)));
  j.set("gp_patches", Json::number(static_cast<double>(o.cache.gp_patches)));
  j.set("model_hits", Json::number(static_cast<double>(o.cache.model_hits)));
  j.set("model_misses",
        Json::number(static_cast<double>(o.cache.model_misses)));
  j.set("relax_hits", Json::number(static_cast<double>(o.cache.relax_hits)));
  // Migration diff, appended after the PR-7 flat keys so consumers that
  // parse (or byte-compare) the historical prefix keep working.
  j.set("diff", to_json(o.diff));
  // Warm-path allocation count, appended last for the same reason (0
  // unless the build links the counting interposer).
  j.set("warm_allocs", Json::number(static_cast<double>(o.warm_allocs)));
  return j;
}

Json to_json(const service::AllocationDiff& d) {
  Json j = Json::object();
  j.set("computed", Json::boolean(d.computed));
  j.set("cus_moved", Json::number(d.cus_moved));
  j.set("disturbed", Json::number(d.pipelines_disturbed));
  j.set("goal_regret", Json::number(d.goal_regret));
  j.set("stability_applied", Json::boolean(d.stability_applied));
  j.set("budget_exceeded", Json::boolean(d.budget_exceeded));
  return j;
}

Json to_json(const service::DeviceOccupancy& dev) {
  Json j = Json::object();
  j.set("cus", Json::number(dev.cus));
  j.set("used", capacity_to_json(dev.used));
  j.set("capacity", capacity_to_json(dev.capacity));
  j.set("bw_used", Json::number(dev.bw_used));
  j.set("bw_capacity", Json::number(dev.bw_capacity));
  j.set("utilization", Json::number(dev.utilization));
  return j;
}

Json to_json(const service::PipelinePlacement& p) {
  Json j = Json::object();
  j.set("id", Json::string(p.id));
  j.set("cus", Json::number(p.total_cus()));
  Json rows = Json::array();
  for (const std::vector<int>& row : p.rows) {
    Json r = Json::array();
    for (const int n : row) r.push_back(Json::number(n));
    rows.push_back(std::move(r));
  }
  j.set("rows", std::move(rows));
  return j;
}

Json to_json(const service::OccupancyTracker& occ) {
  Json j = Json::object();
  j.set("valid", Json::boolean(occ.valid()));
  Json devices = Json::array();
  for (const service::DeviceOccupancy& dev : occ.devices()) {
    devices.push_back(to_json(dev));
  }
  j.set("devices", std::move(devices));
  Json placements = Json::array();
  for (const service::PipelinePlacement& p : occ.placements()) {
    placements.push_back(to_json(p));
  }
  j.set("placements", std::move(placements));
  return j;
}

Json wal_header_to_json(const core::Platform& initial_platform) {
  Json j = Json::object();
  j.set("schema_version", Json::number(kSchemaVersion));
  j.set("format", Json::string("mfa-wal"));
  j.set("platform", to_json(initial_platform));
  return j;
}

StatusOr<core::Platform> wal_header_from_json(const Json& j) {
  if (!j.is_object()) {
    return Status{Code::kInvalid, "wal header: not an object"};
  }
  if (Status v = check_schema_version(j, "wal header", /*required=*/true);
      !v.is_ok()) {
    return v;
  }
  if (optional_string(j, "format", "") != "mfa-wal") {
    return Status{Code::kInvalid, "wal header: not an mfa-wal log"};
  }
  const Json* plat = j.find("platform");
  if (plat == nullptr) {
    return Status{Code::kInvalid, "wal header: missing 'platform'"};
  }
  return platform_from_json(*plat);
}

Json to_json(const service::WalRecord& record) {
  Json j = Json::object();
  j.set("schema_version", Json::number(kSchemaVersion));
  j.set("seq", Json::number(static_cast<double>(record.sequence)));
  j.set("event", to_json(record.event));
  return j;
}

StatusOr<service::WalRecord> wal_record_from_json(const Json& j) {
  if (!j.is_object()) {
    return Status{Code::kInvalid, "wal record: not an object"};
  }
  if (Status v = check_schema_version(j, "wal record", /*required=*/true);
      !v.is_ok()) {
    return v;
  }
  service::WalRecord record;
  // 2^53: past that, double-backed sequence numbers stop being exact.
  StatusOr<long long> seq =
      need_int(j, "seq", "wal record", 0, 1LL << 53);
  if (!seq.is_ok()) return seq.status();
  record.sequence = static_cast<std::uint64_t>(seq.value());
  const Json* event = j.find("event");
  if (event == nullptr) {
    return Status{Code::kInvalid, "wal record: missing 'event'"};
  }
  StatusOr<service::Event> parsed = event_from_json(*event);
  if (!parsed.is_ok()) return parsed.status();
  record.event = std::move(parsed.value());
  return record;
}

Json to_json(const service::WalSnapshot& snapshot) {
  Json j = Json::object();
  j.set("schema_version", Json::number(kSchemaVersion));
  j.set("seq", Json::number(static_cast<double>(snapshot.sequence)));
  j.set("platform", to_json(snapshot.platform));
  Json pipelines = Json::array();
  for (const service::PipelineSpec& p : snapshot.pipelines) {
    pipelines.push_back(to_json(p));
  }
  j.set("pipelines", std::move(pipelines));
  Json placements = Json::array();
  for (const service::PipelinePlacement& p : snapshot.placements) {
    placements.push_back(to_json(p));
  }
  j.set("placements", std::move(placements));
  return j;
}

StatusOr<service::WalSnapshot> wal_snapshot_from_json(const Json& j) {
  if (!j.is_object()) {
    return Status{Code::kInvalid, "wal snapshot: not an object"};
  }
  if (Status v = check_schema_version(j, "wal snapshot", /*required=*/true);
      !v.is_ok()) {
    return v;
  }
  service::WalSnapshot snapshot;
  StatusOr<long long> seq =
      need_int(j, "seq", "wal snapshot", 0, 1LL << 53);
  if (!seq.is_ok()) return seq.status();
  snapshot.sequence = static_cast<std::uint64_t>(seq.value());
  const Json* plat = j.find("platform");
  if (plat == nullptr) {
    return Status{Code::kInvalid, "wal snapshot: missing 'platform'"};
  }
  StatusOr<Platform> platform = platform_from_json(*plat);
  if (!platform.is_ok()) return platform.status();
  snapshot.platform = std::move(platform.value());
  const Json* pipelines = j.find("pipelines");
  if (pipelines == nullptr || !pipelines->is_array()) {
    return Status{Code::kInvalid, "wal snapshot: missing 'pipelines' array"};
  }
  snapshot.pipelines.reserve(pipelines->size());
  for (std::size_t i = 0; i < pipelines->size(); ++i) {
    StatusOr<service::PipelineSpec> p =
        pipeline_spec_from_json(pipelines->at(i));
    if (!p.is_ok()) {
      return Status{Code::kInvalid, "pipelines[" + std::to_string(i) +
                                        "]: " + p.status().message()};
    }
    snapshot.pipelines.push_back(std::move(p.value()));
  }
  // Optional (absent in pre-PR-8 snapshots): the placement ledger that
  // makes recovery exact under migration budgets.
  const Json* placements = j.find("placements");
  if (placements != nullptr) {
    if (!placements->is_array()) {
      return Status{Code::kInvalid,
                    "wal snapshot: 'placements' is not an array"};
    }
    snapshot.placements.reserve(placements->size());
    for (std::size_t i = 0; i < placements->size(); ++i) {
      const Json& pj = placements->at(i);
      const std::string where = "placements[" + std::to_string(i) + "]";
      if (!pj.is_object()) {
        return Status{Code::kInvalid, "wal snapshot: " + where +
                                          " is not an object"};
      }
      service::PipelinePlacement record;
      record.id = optional_string(pj, "id", "");
      if (record.id.empty()) {
        return Status{Code::kInvalid,
                      "wal snapshot: " + where + " missing 'id'"};
      }
      const Json* rows = pj.find("rows");
      if (rows == nullptr || !rows->is_array()) {
        return Status{Code::kInvalid,
                      "wal snapshot: " + where + " missing 'rows' array"};
      }
      record.rows.reserve(rows->size());
      for (std::size_t r = 0; r < rows->size(); ++r) {
        const Json& rj = rows->at(r);
        if (!rj.is_array()) {
          return Status{Code::kInvalid, "wal snapshot: " + where +
                                            ".rows is not an array of arrays"};
        }
        std::vector<int> row;
        row.reserve(rj.size());
        for (std::size_t f = 0; f < rj.size(); ++f) {
          if (!rj.at(f).is_number() || rj.at(f).as_number() < 0) {
            return Status{Code::kInvalid,
                          "wal snapshot: " + where +
                              ".rows holds a non-count entry"};
          }
          row.push_back(static_cast<int>(rj.at(f).as_number()));
        }
        record.rows.push_back(std::move(row));
      }
      snapshot.placements.push_back(std::move(record));
    }
  }
  return snapshot;
}

StatusOr<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status{Code::kInvalid, "cannot open file: " + path};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Status write_file(const std::string& path, std::string_view text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status{Code::kInvalid, "cannot open file: " + path};
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return out ? Status::ok()
             : Status{Code::kInvalid, "write failed: " + path};
}

}  // namespace mfa::io
