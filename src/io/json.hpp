// Minimal JSON value, parser and writer (no external dependencies).
//
// Covers the subset the library needs for problem/allocation files:
// null, bool, finite numbers, strings with standard escapes, arrays and
// objects (insertion-ordered). Parse errors are reported by position
// through StatusOr rather than exceptions.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/status.hpp"

namespace mfa::io {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  static Json null() { return Json(); }
  static Json boolean(bool v);
  static Json number(double v);
  static Json string(std::string v);
  static Json array();
  static Json object();

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; asserting the type matches (check first).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  // --- array interface ---
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t i) const;
  void push_back(Json v);

  // --- object interface (insertion-ordered keys) ---
  void set(std::string key, Json v);
  [[nodiscard]] bool has(std::string_view key) const;
  /// nullptr when absent.
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Serializes; indent < 0 → compact, otherwise pretty with that many
  /// spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (trailing whitespace allowed).
  static StatusOr<Json> parse(std::string_view text);

 private:
  explicit Json(Type t) : type_(t) {}

  void dump_impl(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace mfa::io
