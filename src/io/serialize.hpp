// JSON (de)serialization of problem instances and allocations.
//
// The on-disk format is what examples/custom_app_json consumes — a
// self-contained problem description a user can write by hand:
//
// {
//   "application": {"name": "...", "kernels": [
//       {"name": "CONV1", "wcet_ms": 13.0, "bram": 13.07, "dsp": 21.24,
//        "lut": 0, "ff": 0, "bw": 1.3}, ...]},
//   "platform": {"name": "AWS F1", "fpgas": 8, "bw_capacity": 100,
//                "capacity": {"bram": 100, "dsp": 100, "lut": 100,
//                             "ff": 100}},
//   "resource_fraction": 0.75, "alpha": 1.0, "beta": 0.7
// }
//
// Heterogeneous platforms replace "capacity"/"bw_capacity" with a
// device-class list and a per-FPGA assignment (both required together):
//
//   "platform": {"name": "mixed", "fpgas": 3,
//                "classes": [
//                  {"name": "big", "bw_capacity": 100,
//                   "capacity": {"bram": 100, "dsp": 100, "lut": 100,
//                                "ff": 100}},
//                  {"name": "small", "bw_capacity": 60,
//                   "capacity": {"bram": 50, "dsp": 60, "lut": 50,
//                                "ff": 50}}],
//                "class_of": [0, 1, 1]}
//
// Missing optional fields take the struct defaults; malformed input is
// reported as Code::kInvalid with a field path — parsing never aborts,
// whatever the bytes (tests/serialize_test.cpp carries a malformed-
// payload corpus enforcing exactly that).
//
// Versioning: every payload this header *writes* carries a top-level
// "schema_version" (currently 1). Readers accept the current version
// and, for the formats that predate versioning (problem, trace,
// allocation), a missing field — those parse as legacy v0 with
// unchanged semantics. Formats born versioned (WAL records, wire-API
// bodies) require the field. An unknown or malformed version is a
// typed Code::kInvalid, never a guess.
// Service traces (the `gentrace` / `serve --trace` formats) are a
// platform plus an event list; each event carries exactly its payload:
//
//   {"platform": {...}, "events": [
//     {"type": "add", "time_ms": 12.5, "id": "p0", "weight": 1.3,
//      "application": {...}},
//     {"type": "reprioritize", "time_ms": 31.0, "id": "p0",
//      "weight": 0.7},
//     {"type": "resize", "time_ms": 40.0, "platform": {...}},
//     {"type": "remove", "time_ms": 55.1, "id": "p0"}]}
#pragma once

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "io/json.hpp"
#include "scenario/trace.hpp"
#include "service/event.hpp"
#include "service/occupancy.hpp"
#include "service/wal.hpp"

namespace mfa::io {

/// Version stamped into every payload written by this layer.
inline constexpr int kSchemaVersion = 1;

/// Validates `j`'s "schema_version" against kSchemaVersion. A missing
/// field is accepted as legacy v0 unless `required` (new formats);
/// anything else unsupported is kInvalid naming `ctx`.
Status check_schema_version(const Json& j, const char* ctx, bool required);

Json to_json(const core::Kernel& kernel);
Json to_json(const core::Application& app);
Json to_json(const core::DeviceClass& device_class);
Json to_json(const core::Platform& platform);
Json to_json(const core::Problem& problem);

/// Allocation → {"matrix": [[n_kf...]...], "ii": ..., "phi": ..., ...}.
Json to_json(const core::Allocation& alloc);

StatusOr<core::Kernel> kernel_from_json(const Json& j);
StatusOr<core::Application> application_from_json(const Json& j);
StatusOr<core::DeviceClass> device_class_from_json(const Json& j);
StatusOr<core::Platform> platform_from_json(const Json& j);
StatusOr<core::Problem> problem_from_json(const Json& j);

/// Convenience: parse text and build the problem in one step.
StatusOr<core::Problem> problem_from_text(std::string_view text);

// ---- Service traces (see the file comment for the schema). -------------

Json to_json(const service::Event& event);
Json to_json(const scenario::Trace& trace);

StatusOr<service::Event> event_from_json(const Json& j);
StatusOr<scenario::Trace> trace_from_json(const Json& j);

/// Convenience: parse text and build the trace in one step.
StatusOr<scenario::Trace> trace_from_text(std::string_view text);

// ---- Service pipelines, outcomes, and the WAL record formats. ----------

Json to_json(const service::PipelineSpec& pipe);
StatusOr<service::PipelineSpec> pipeline_spec_from_json(const Json& j);

/// The *deterministic* slice of an outcome — every field except wall
/// clock, so two replays of one trace dump byte-identical logs (the
/// property CI diffs). Callers wanting latency add it themselves.
/// Encoding: the PR-7 flat key sequence (seq..relax_hits) followed by a
/// nested "diff" object, so consumers of the historical prefix keep
/// working byte-for-byte.
Json to_json(const service::EventOutcome& outcome);

/// Migration diff → {"computed", "cus_moved", "disturbed",
/// "goal_regret", "stability_applied", "budget_exceeded"}.
Json to_json(const service::AllocationDiff& diff);

/// Occupancy ledger pieces (the GET /v1/occupancy payload).
Json to_json(const service::DeviceOccupancy& device);
Json to_json(const service::PipelinePlacement& placement);
Json to_json(const service::OccupancyTracker& occupancy);

/// WAL line formats (see service/wal.hpp for the file layout). All
/// require schema_version — the WAL was born versioned.
Json wal_header_to_json(const core::Platform& initial_platform);
StatusOr<core::Platform> wal_header_from_json(const Json& j);
Json to_json(const service::WalRecord& record);
StatusOr<service::WalRecord> wal_record_from_json(const Json& j);
Json to_json(const service::WalSnapshot& snapshot);
StatusOr<service::WalSnapshot> wal_snapshot_from_json(const Json& j);

/// Reads a whole file into a string (kInvalid on I/O failure).
StatusOr<std::string> read_file(const std::string& path);

/// Writes text to a file (kInvalid on I/O failure).
Status write_file(const std::string& path, std::string_view text);

}  // namespace mfa::io
