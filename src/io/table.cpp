#include "io/table.hpp"

#include <algorithm>
#include <cstdio>

#include "io/serialize.hpp"

namespace mfa::io {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MFA_ASSERT(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  MFA_ASSERT_MSG(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += row[c];
      out.append(width[c] - row[c].size(), ' ');
    }
    // No trailing spaces.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

Status write_gnuplot(const std::string& dir, const std::string& stem,
                     const std::string& title, const std::string& xlabel,
                     const std::string& ylabel,
                     const std::vector<PlotSeries>& series) {
  std::string dat;
  for (const PlotSeries& s : series) {
    dat += "# " + s.label + "\n";
    for (const auto& [x, y] : s.points) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6f %.6f\n", x, y);
      dat += buf;
    }
    dat += "\n\n";  // gnuplot index separator
  }
  Status st = write_file(dir + "/" + stem + ".dat", dat);
  if (!st.is_ok()) return st;

  std::string gp;
  gp += "set title '" + title + "'\n";
  gp += "set xlabel '" + xlabel + "'\n";
  gp += "set ylabel '" + ylabel + "'\n";
  gp += "set key top right\n";
  gp += "set grid\n";
  gp += "set term pngcairo size 800,600\n";
  gp += "set output '" + stem + ".png'\n";
  gp += "plot ";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i > 0) gp += ", \\\n     ";
    gp += "'" + stem + ".dat' index " + std::to_string(i) +
          " with linespoints title '" + series[i].label + "'";
  }
  gp += "\n";
  return write_file(dir + "/" + stem + ".gp", gp);
}

}  // namespace mfa::io
