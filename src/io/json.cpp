#include "io/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mfa::io {

Json Json::boolean(bool v) {
  Json j(Type::kBool);
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  MFA_ASSERT_MSG(std::isfinite(v), "JSON numbers must be finite");
  Json j(Type::kNumber);
  j.number_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j(Type::kString);
  j.string_ = std::move(v);
  return j;
}

Json Json::array() { return Json(Type::kArray); }
Json Json::object() { return Json(Type::kObject); }

bool Json::as_bool() const {
  MFA_ASSERT(is_bool());
  return bool_;
}

double Json::as_number() const {
  MFA_ASSERT(is_number());
  return number_;
}

const std::string& Json::as_string() const {
  MFA_ASSERT(is_string());
  return string_;
}

std::size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  MFA_ASSERT(is_array() && i < array_.size());
  return array_[i];
}

void Json::push_back(Json v) {
  MFA_ASSERT(is_array());
  array_.push_back(std::move(v));
}

void Json::set(std::string key, Json v) {
  MFA_ASSERT(is_object());
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

bool Json::has(std::string_view key) const { return find(key) != nullptr; }

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  MFA_ASSERT(is_object());
  return object_;
}

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double v) {
  // Integers print without a fraction; everything else round-trips.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_impl(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      number_into(out, number_);
      return;
    case Type::kString:
      escape_into(out, string_);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        array_[i].dump_impl(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline_indent(out, indent, depth + 1);
        escape_into(out, object_[i].first);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_impl(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser with positional error messages.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> parse_document() {
    skip_ws();
    StatusOr<Json> value = parse_value(0);
    if (!value.is_ok()) return value;
    skip_ws();
    if (pos_ != text_.size()) return error("trailing characters");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status error(const std::string& what) const {
    return {Code::kInvalid,
            "JSON parse error at offset " + std::to_string(pos_) + ": " +
                what};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  StatusOr<Json> parse_value(int depth) {  // NOLINT(misc-no-recursion)
    if (depth > kMaxDepth) return error("nesting too deep");
    if (eof()) return error("unexpected end of input");
    switch (peek()) {
      case 'n':
        if (consume("null")) return Json::null();
        return error("invalid literal");
      case 't':
        if (consume("true")) return Json::boolean(true);
        return error("invalid literal");
      case 'f':
        if (consume("false")) return Json::boolean(false);
        return error("invalid literal");
      case '"':
        return parse_string();
      case '[':
        return parse_array(depth);
      case '{':
        return parse_object(depth);
      default:
        return parse_number();
    }
  }

  StatusOr<Json> parse_string() {
    MFA_ASSERT(peek() == '"');
    ++pos_;
    std::string out;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return Json::string(std::move(out));
      if (c == '\\') {
        if (eof()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return error("bad \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogates unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return error("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return error("unescaped control character in string");
      } else {
        out += c;
      }
    }
    return error("unterminated string");
  }

  StatusOr<Json> parse_number() {
    const std::size_t start = pos_;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
    bool digits = false;
    bool dot = false;
    bool exp = false;
    while (!eof()) {
      const char c = peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digits = true;
        ++pos_;
      } else if (c == '.' && !dot && !exp) {
        dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && digits && !exp) {
        exp = true;
        ++pos_;
        if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
      } else {
        break;
      }
    }
    if (!digits) return error("invalid number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return error("invalid number");
    }
    return Json::number(value);
  }

  StatusOr<Json> parse_array(int depth) {  // NOLINT(misc-no-recursion)
    MFA_ASSERT(peek() == '[');
    ++pos_;
    Json arr = Json::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      skip_ws();
      StatusOr<Json> v = parse_value(depth + 1);
      if (!v.is_ok()) return v;
      arr.push_back(std::move(v.value()));
      skip_ws();
      if (eof()) return error("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return arr;
      }
      return error("expected ',' or ']'");
    }
  }

  StatusOr<Json> parse_object(int depth) {  // NOLINT(misc-no-recursion)
    MFA_ASSERT(peek() == '{');
    ++pos_;
    Json obj = Json::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') return error("expected object key");
      StatusOr<Json> key = parse_string();
      if (!key.is_ok()) return key;
      skip_ws();
      if (eof() || peek() != ':') return error("expected ':'");
      ++pos_;
      skip_ws();
      StatusOr<Json> v = parse_value(depth + 1);
      if (!v.is_ok()) return v;
      obj.set(key.value().as_string(), std::move(v.value()));
      skip_ws();
      if (eof()) return error("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return obj;
      }
      return error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<Json> Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace mfa::io
