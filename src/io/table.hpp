// Text/CSV tables and gnuplot emission for the benchmark harness.
//
// Every bench binary prints its table/figure as an aligned text table on
// stdout (the rows the paper reports) and can additionally emit CSV and
// a gnuplot script so the figures can be re-plotted.
#pragma once

#include <string>
#include <vector>

#include "support/status.hpp"

namespace mfa::io {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Aligned rendering with a separator under the header.
  [[nodiscard]] std::string to_string() const;

  /// RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// One plotted series (e.g. "GP+A" in Fig. 3a): x/y pairs with gaps
/// allowed (infeasible sweep points are simply omitted).
struct PlotSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;
};

/// Writes `<stem>.dat` (one block per series) and `<stem>.gp` (a gnuplot
/// script reproducing the figure's layout) into `dir`.
Status write_gnuplot(const std::string& dir, const std::string& stem,
                     const std::string& title, const std::string& xlabel,
                     const std::string& ylabel,
                     const std::vector<PlotSeries>& series);

}  // namespace mfa::io
