#include "sim/pipeline_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace mfa::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One (stage, image) job flowing through the pipeline.
struct Job {
  double remaining = 0.0;  ///< work left, in ms at full speed
  bool active = false;
  bool done = false;
};

}  // namespace

SimResult PipelineSimulator::run(const core::Allocation& alloc) const {
  const core::Problem& problem = alloc.problem();
  const std::size_t stages = alloc.num_kernels();
  const int fpgas = alloc.num_fpgas();
  const int images = config_.num_images;
  // At least two post-warmup completions are required: the steady-state
  // II is the mean gap between consecutive post-warmup finishes, so with
  // only one (images == warmup + 1) the window spans zero gaps and the
  // division below would yield inf/NaN II and throughput.
  MFA_ASSERT_MSG(images >= config_.warmup_images + 2,
                 "steady-state window needs >= 2 post-warmup images");
  MFA_ASSERT(config_.warmup_images >= 0);
  for (std::size_t k = 0; k < stages; ++k) {
    MFA_ASSERT_MSG(alloc.total_cu(k) >= 1,
                   "simulation requires at least one CU per kernel");
  }

  // Per-stage nominal service time and per-FPGA bandwidth demand while
  // the stage is active (all its CUs work on the same image).
  std::vector<double> service(stages);
  std::vector<std::vector<double>> stage_bw(
      stages, std::vector<double>(static_cast<std::size_t>(fpgas), 0.0));
  for (std::size_t k = 0; k < stages; ++k) {
    service[k] = alloc.et(k);
    for (int f = 0; f < fpgas; ++f) {
      stage_bw[k][static_cast<std::size_t>(f)] =
          problem.app.kernels[k].bw * alloc.cu(k, f);
    }
  }
  // Per-FPGA bandwidth caps: each device class brings its own DRAM.
  std::vector<double> bw_cap(static_cast<std::size_t>(fpgas), 0.0);
  for (int f = 0; f < fpgas; ++f) {
    bw_cap[static_cast<std::size_t>(f)] = problem.bw_cap(f);
  }

  // Pipeline state: each stage works on at most one image at a time;
  // next_image[k] is the image index stage k will take next.
  std::vector<Job> job(stages);
  std::vector<int> next_image(stages, 0);
  std::vector<int> upstream_done(stages, 0);  // images completed by k−1
  std::vector<double> start_time(static_cast<std::size_t>(images), 0.0);
  std::vector<double> finish_time(static_cast<std::size_t>(images), 0.0);
  std::vector<double> busy(stages, 0.0);
  std::vector<double> peak_bw(static_cast<std::size_t>(fpgas), 0.0);

  double now = 0.0;
  double max_throttle = 1.0;
  int completed = 0;

  auto try_start = [&](std::size_t k) {
    if (job[k].active) return;
    const int img = next_image[k];
    if (img >= images) return;
    const int avail = (k == 0) ? images : upstream_done[k];
    if (img >= avail) return;
    job[k].active = true;
    job[k].remaining = service[k];
    if (k == 0) start_time[static_cast<std::size_t>(img)] = now;
  };

  for (std::size_t k = 0; k < stages; ++k) try_start(k);

  while (completed < images) {
    // Processor-sharing rates: an active stage runs at the worst
    // throttle among the FPGAs its CUs occupy.
    std::vector<double> demand(static_cast<std::size_t>(fpgas), 0.0);
    if (config_.model_bandwidth) {
      for (std::size_t k = 0; k < stages; ++k) {
        if (!job[k].active) continue;
        for (int f = 0; f < fpgas; ++f) {
          demand[static_cast<std::size_t>(f)] +=
              stage_bw[k][static_cast<std::size_t>(f)];
        }
      }
      for (int f = 0; f < fpgas; ++f) {
        peak_bw[static_cast<std::size_t>(f)] =
            std::max(peak_bw[static_cast<std::size_t>(f)],
                     demand[static_cast<std::size_t>(f)]);
      }
    }
    std::vector<double> rate(stages, 0.0);
    double dt = kInf;
    bool any_active = false;
    for (std::size_t k = 0; k < stages; ++k) {
      if (!job[k].active) continue;
      any_active = true;
      double r = 1.0;
      if (config_.model_bandwidth) {
        for (int f = 0; f < fpgas; ++f) {
          const double cap_f = bw_cap[static_cast<std::size_t>(f)];
          if (cap_f <= 0.0) continue;  // unmetered device
          const double d = demand[static_cast<std::size_t>(f)];
          if (stage_bw[k][static_cast<std::size_t>(f)] > 0.0 && d > cap_f) {
            r = std::min(r, cap_f / d);
          }
        }
      }
      rate[k] = r;
      if (r > 0.0) {
        max_throttle = std::max(max_throttle, 1.0 / r);
        dt = std::min(dt, job[k].remaining / r);
      }
    }
    MFA_ASSERT_MSG(any_active && std::isfinite(dt),
                   "pipeline deadlocked — invariant violation");

    // Advance to the next completion.
    now += dt;
    for (std::size_t k = 0; k < stages; ++k) {
      if (!job[k].active) continue;
      busy[k] += dt;
      job[k].remaining -= rate[k] * dt;
      if (job[k].remaining <= 1e-12) {
        job[k].active = false;
        const int img = next_image[k]++;
        if (k + 1 < stages) {
          upstream_done[k + 1] = img + 1;
        } else {
          finish_time[static_cast<std::size_t>(img)] = now;
          ++completed;
        }
      }
    }
    for (std::size_t k = 0; k < stages; ++k) try_start(k);
  }

  // Steady-state statistics over the post-warmup window.
  SimResult result;
  result.makespan_ms = now;
  const int w = config_.warmup_images;
  const double window =
      finish_time[static_cast<std::size_t>(images - 1)] -
      finish_time[static_cast<std::size_t>(w)];
  result.measured_ii_ms = window / (images - 1 - w);
  result.throughput_ips = 1000.0 / result.measured_ii_ms;
  double latency = 0.0;
  for (int i = w; i < images; ++i) {
    latency += finish_time[static_cast<std::size_t>(i)] -
               start_time[static_cast<std::size_t>(i)];
  }
  result.pipeline_latency_ms = latency / (images - w);
  result.stage_busy.resize(stages);
  for (std::size_t k = 0; k < stages; ++k) {
    result.stage_busy[k] = busy[k] / now;
  }
  result.fpga_peak_bw = std::move(peak_bw);
  result.max_throttle = max_throttle;
  return result;
}

}  // namespace mfa::sim
