// Discrete-event simulation of the host-orchestrated kernel pipeline.
//
// Validates the analytical model the optimizer relies on: a linear
// pipeline where stage k processes image i once stage k−1 has finished
// it and stage k itself has finished image i−1, in ET_k = WCET_k/N_k
// (eq. 1). On top of the model the simulator adds what the optimizer
// only constrains, DRAM bandwidth: CUs active on an FPGA share its
// bandwidth, and when their aggregate demand exceeds the cap B every CU
// on that FPGA slows proportionally (processor sharing). With a feasible
// allocation (eq. 10 respected) no throttling occurs and the measured
// steady-state initiation interval equals max_k ET_k (eq. 2); with
// infeasible bandwidth the simulator shows the slowdown the paper's
// constraints exist to prevent.
#pragma once

#include <vector>

#include "core/allocation.hpp"

namespace mfa::sim {

struct SimConfig {
  /// Images pushed through the pipeline. Must exceed `warmup_images` by
  /// at least 2: the steady-state II is the mean gap between
  /// consecutive post-warmup completions, which needs two of them.
  int num_images = 200;
  int warmup_images = 50;  ///< excluded from steady-state statistics
  bool model_bandwidth = true;  ///< enable DRAM contention throttling
};

struct SimResult {
  double measured_ii_ms = 0.0;   ///< mean steady-state completion gap
  double throughput_ips = 0.0;   ///< images per second (steady state)
  double pipeline_latency_ms = 0.0;  ///< mean per-image end-to-end time
  double makespan_ms = 0.0;      ///< total time for all images
  std::vector<double> stage_busy;    ///< per-kernel busy fraction
  std::vector<double> fpga_peak_bw;  ///< per-FPGA peak bandwidth demand (%)
  double max_throttle = 1.0;     ///< worst slowdown factor seen (≥ 1)
};

class PipelineSimulator {
 public:
  explicit PipelineSimulator(SimConfig config = {}) : config_(config) {}

  /// Simulates the pipeline under `alloc`. Every kernel must have at
  /// least one CU (eq. 8); resource feasibility is not required — the
  /// simulator is also used to study over-committed bandwidth.
  [[nodiscard]] SimResult run(const core::Allocation& alloc) const;

 private:
  SimConfig config_;
};

}  // namespace mfa::sim
