// Versioned wire API of the allocation daemon (mfallocd).
//
//   POST /v1/events      {"schema_version":1,"events":[<event>...]}
//                        Events use exactly the io/serialize trace
//                        schema (add/remove/reprioritize/resize). The
//                        whole body is validated before anything is
//                        submitted; a malformed body is a 400 and no
//                        event runs. A valid body returns 200 with
//                        {"schema_version":1,"outcomes":[...]} — one
//                        outcome per event, in order, each the
//                        deterministic EventOutcome slice plus
//                        "latency_ms"; *application* failures (unknown
//                        id, infeasible resize) are per-outcome
//                        statuses, not HTTP errors.
//   GET  /v1/allocation  Current incumbent per shard.
//   GET  /v1/occupancy   Per-shard occupancy ledger: each FPGA's
//                        free/occupied resources, bandwidth and CU
//                        count, plus every live pipeline's placement
//                        rows (see service/occupancy.hpp).
//   GET  /v1/stats       Merged + per-shard ServiceStats, plus a
//                        top-level "events_processed": the number of
//                        *client* events the deployment has applied,
//                        with broadcast resizes counted once rather
//                        than once per shard — the point `mfalloc_cli
//                        post --resume` continues a partially-posted
//                        trace from after a crash.
//   GET  /v1/healthz     Liveness: {"status":"ok"}.
//
// Everything else is a JSON-bodied 404/405. The handler is transport-
// agnostic (HttpRequest → HttpResponse), so tests can drive it without
// sockets; net::HttpServer plugs it in directly.
#pragma once

#include "net/http.hpp"
#include "service/shard_router.hpp"

namespace mfa::net {

class Api {
 public:
  /// `router` is not owned and must outlive the Api.
  explicit Api(service::ShardRouter* router) : router_(router) {}

  [[nodiscard]] HttpResponse handle(const HttpRequest& request);

 private:
  HttpResponse post_events(const HttpRequest& request);
  HttpResponse get_allocation();
  HttpResponse get_occupancy();
  HttpResponse get_stats();

  service::ShardRouter* router_;
};

}  // namespace mfa::net
