// Minimal HTTP/1.1 message layer — no dependencies, no exceptions.
//
// The daemon needs exactly enough HTTP to speak JSON over loopback or a
// lab network: request-line + headers + Content-Length body, keep-alive,
// and typed errors for everything else. Parsing is incremental (feed
// bytes as they arrive from a socket; kComplete fires as soon as one
// full message is buffered) and hardened the same way io/json.hpp is:
// hard caps on header and body size (431/413), malformed bytes are a
// 400-classed error state, never UB or an abort. Unsupported transport
// features are rejected up front — Transfer-Encoding gets a 501 rather
// than a silently mis-framed body.
//
// Pipelining: leftover bytes after a complete message are retained;
// reset() re-arms the parser on them, so back-to-back requests on one
// connection parse without re-reading the socket.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mfa::net {

struct HttpRequest {
  std::string method;   ///< e.g. "GET", "POST" (kept as sent)
  std::string target;   ///< request path, e.g. "/v1/events"
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  /// Headers in arrival order, names lower-cased (values trimmed).
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with this (lower-case) name, or nullptr.
  [[nodiscard]] const std::string* header(std::string_view name) const;
  /// Keep-alive per HTTP/1.1 defaults ("connection: close" opts out;
  /// HTTP/1.0 must opt in with "keep-alive").
  [[nodiscard]] bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Canonical reason phrase ("OK", "Bad Request", ...; "Unknown" else).
const char* status_text(int status);

/// Serializes status line + Content-Type/Content-Length/Connection
/// headers + body.
std::string format_response(const HttpResponse& response, bool keep_alive);

/// Serializes a request (client side).
std::string format_request(const std::string& method,
                           const std::string& target,
                           const std::string& host,
                           const std::string& body);

struct ParserLimits {
  std::size_t max_head;  ///< request-line/status-line + headers
  std::size_t max_body;
  explicit ParserLimits(std::size_t head = 16 * 1024,
                        std::size_t body = 8 * 1024 * 1024)
      : max_head(head), max_body(body) {}
};

/// Incremental request parser (server side).
class RequestParser {
 public:
  enum class State { kIncomplete, kComplete, kError };

  explicit RequestParser(ParserLimits limits = ParserLimits());

  /// Buffers `bytes` and advances; returns the new state. Once kError,
  /// the parser stays poisoned until reset().
  State feed(std::string_view bytes);

  [[nodiscard]] State state() const { return state_; }
  /// HTTP status to answer a kError state with (400/413/431/501/505).
  [[nodiscard]] int error_status() const { return error_status_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Valid once state() == kComplete.
  [[nodiscard]] const HttpRequest& request() const { return request_; }

  /// Re-arms for the next message on this connection, replaying any
  /// pipelined leftover bytes.
  void reset();

 private:
  State fail(int status, std::string message);
  State advance();

  ParserLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;     ///< bytes of buffer_ already parsed
  bool have_head_ = false;
  std::size_t body_needed_ = 0;  ///< Content-Length once head parsed
  HttpRequest request_;
  State state_ = State::kIncomplete;
  int error_status_ = 400;
  std::string error_;
};

/// Incremental response parser (client side). Same shape as
/// RequestParser; bodies are framed by Content-Length only (the server
/// in this repo never chunks).
class ResponseParser {
 public:
  enum class State { kIncomplete, kComplete, kError };

  explicit ResponseParser(ParserLimits limits = ParserLimits());

  State feed(std::string_view bytes);
  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const HttpResponse& response() const { return response_; }
  [[nodiscard]] int status() const { return response_.status; }

 private:
  State fail(std::string message);
  State advance();

  ParserLimits limits_;
  std::string buffer_;
  bool have_head_ = false;
  std::size_t body_start_ = 0;
  std::size_t body_needed_ = 0;
  HttpResponse response_;
  State state_ = State::kIncomplete;
  std::string error_;
};

}  // namespace mfa::net
