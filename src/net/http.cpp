#include "net/http.hpp"

#include <algorithm>
#include <cctype>

namespace mfa::net {
namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses a decimal Content-Length; false on garbage or overflow past
/// `max` (callers cap at the body limit, so overflow folds into 413).
bool parse_content_length(std::string_view value, std::size_t max,
                          std::size_t* out) {
  value = trim(value);
  if (value.empty()) return false;
  std::size_t n = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<std::size_t>(c - '0');
    if (n > max) {
      *out = n;  // caller distinguishes "too big" from "malformed"
      return true;
    }
  }
  *out = n;
  return true;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool HttpRequest::keep_alive() const {
  const std::string* connection = header("connection");
  const std::string value =
      connection != nullptr ? to_lower(*connection) : std::string();
  if (version == "HTTP/1.0") return value == "keep-alive";
  return value != "close";
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string format_response(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

std::string format_request(const std::string& method,
                           const std::string& target,
                           const std::string& host,
                           const std::string& body) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: " + host + "\r\n";
  if (!body.empty()) {
    out += "Content-Type: application/json\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: keep-alive\r\n";
  out += "\r\n";
  out += body;
  return out;
}

// ---- RequestParser -----------------------------------------------------

RequestParser::RequestParser(ParserLimits limits) : limits_(limits) {}

RequestParser::State RequestParser::fail(int status, std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_ = std::move(message);
  return state_;
}

RequestParser::State RequestParser::feed(std::string_view bytes) {
  if (state_ != State::kIncomplete) return state_;
  buffer_.append(bytes.data(), bytes.size());
  return advance();
}

RequestParser::State RequestParser::advance() {
  if (!have_head_) {
    const std::size_t head_end = buffer_.find("\r\n\r\n", consumed_);
    if (head_end == std::string::npos) {
      if (buffer_.size() - consumed_ > limits_.max_head) {
        return fail(431, "request head exceeds limit");
      }
      return state_;
    }
    if (head_end - consumed_ > limits_.max_head) {
      return fail(431, "request head exceeds limit");
    }
    // ---- Request line.
    std::size_t pos = consumed_;
    const std::size_t line_end = buffer_.find("\r\n", pos);
    std::string_view line(buffer_.data() + pos, line_end - pos);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        sp2 == sp1 + 1 || line.find(' ', sp2 + 1) != std::string_view::npos) {
      return fail(400, "malformed request line");
    }
    request_.method = std::string(line.substr(0, sp1));
    request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
    request_.version = std::string(line.substr(sp2 + 1));
    if (request_.method.empty() || request_.target.empty() ||
        request_.target[0] != '/') {
      return fail(400, "malformed request line");
    }
    if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
      return fail(505, "unsupported HTTP version");
    }
    // ---- Headers.
    pos = line_end + 2;
    while (pos < head_end) {
      const std::size_t eol = buffer_.find("\r\n", pos);
      std::string_view header(buffer_.data() + pos, eol - pos);
      const std::size_t colon = header.find(':');
      if (colon == std::string_view::npos || colon == 0) {
        return fail(400, "malformed header line");
      }
      std::string name = to_lower(header.substr(0, colon));
      if (name.find(' ') != std::string::npos ||
          name.find('\t') != std::string::npos) {
        return fail(400, "malformed header name");
      }
      request_.headers.emplace_back(
          std::move(name), std::string(trim(header.substr(colon + 1))));
      pos = eol + 2;
    }
    // ---- Framing.
    if (request_.header("transfer-encoding") != nullptr) {
      return fail(501, "transfer-encoding not supported");
    }
    body_needed_ = 0;
    if (const std::string* length = request_.header("content-length");
        length != nullptr) {
      if (!parse_content_length(*length, limits_.max_body, &body_needed_)) {
        return fail(400, "malformed content-length");
      }
      if (body_needed_ > limits_.max_body) {
        return fail(413, "body exceeds limit");
      }
    }
    have_head_ = true;
    consumed_ = head_end + 4;
  }
  if (buffer_.size() - consumed_ < body_needed_) return state_;
  request_.body = buffer_.substr(consumed_, body_needed_);
  consumed_ += body_needed_;
  state_ = State::kComplete;
  return state_;
}

void RequestParser::reset() {
  // Keep pipelined leftovers; drop everything already parsed.
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  have_head_ = false;
  body_needed_ = 0;
  request_ = HttpRequest{};
  state_ = State::kIncomplete;
  error_status_ = 400;
  error_.clear();
  if (!buffer_.empty()) advance();
}

// ---- ResponseParser ----------------------------------------------------

ResponseParser::ResponseParser(ParserLimits limits) : limits_(limits) {}

ResponseParser::State ResponseParser::fail(std::string message) {
  state_ = State::kError;
  error_ = std::move(message);
  return state_;
}

ResponseParser::State ResponseParser::feed(std::string_view bytes) {
  if (state_ != State::kIncomplete) return state_;
  buffer_.append(bytes.data(), bytes.size());
  return advance();
}

ResponseParser::State ResponseParser::advance() {
  if (!have_head_) {
    const std::size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head) {
        return fail("response head exceeds limit");
      }
      return state_;
    }
    const std::size_t line_end = buffer_.find("\r\n");
    std::string_view line(buffer_.data(), line_end);
    // "HTTP/1.1 NNN reason"
    if (line.size() < 12 || line.compare(0, 5, "HTTP/") != 0 ||
        line[8] != ' ' || !std::isdigit(static_cast<unsigned char>(line[9])) ||
        !std::isdigit(static_cast<unsigned char>(line[10])) ||
        !std::isdigit(static_cast<unsigned char>(line[11]))) {
      return fail("malformed status line");
    }
    response_.status = (line[9] - '0') * 100 + (line[10] - '0') * 10 +
                       (line[11] - '0');
    body_needed_ = 0;
    std::size_t pos = line_end + 2;
    while (pos < head_end) {
      const std::size_t eol = buffer_.find("\r\n", pos);
      std::string_view header(buffer_.data() + pos, eol - pos);
      const std::size_t colon = header.find(':');
      if (colon == std::string_view::npos) {
        return fail("malformed header line");
      }
      const std::string name = to_lower(header.substr(0, colon));
      const std::string_view value = trim(header.substr(colon + 1));
      if (name == "content-length") {
        if (!parse_content_length(value, limits_.max_body, &body_needed_) ||
            body_needed_ > limits_.max_body) {
          return fail("bad content-length");
        }
      } else if (name == "content-type") {
        response_.content_type = std::string(value);
      } else if (name == "transfer-encoding") {
        return fail("transfer-encoding not supported");
      }
      pos = eol + 2;
    }
    have_head_ = true;
    body_start_ = head_end + 4;
  }
  if (buffer_.size() - body_start_ < body_needed_) return state_;
  response_.body = buffer_.substr(body_start_, body_needed_);
  state_ = State::kComplete;
  return state_;
}

}  // namespace mfa::net
