#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mfa::net {
namespace {

Status errno_status(const std::string& what) {
  return Status{Code::kInvalid, what + ": " + std::strerror(errno)};
}

void set_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                       tv.tv_sec)) *
                                        1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

StatusOr<HttpResponse> http_request(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& method,
                                    const std::string& target,
                                    const std::string& body,
                                    ClientOptions options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status{Code::kInvalid,
                  "bad host (dotted-quad IPv4 only): " + host};
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_status("socket");
  set_timeout(fd, options.timeout_seconds);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status s =
        errno_status("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }

  const std::string request = format_request(
      method, target, host + ":" + std::to_string(port), body);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = errno_status("send");
      ::close(fd);
      return s;
    }
    sent += static_cast<std::size_t>(n);
  }

  ResponseParser parser(options.limits);
  char buf[16 * 1024];
  while (parser.state() == ResponseParser::State::kIncomplete) {
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      const Status s = errno_status("recv");
      ::close(fd);
      return s;
    }
    if (got == 0) {
      ::close(fd);
      return Status{Code::kInvalid,
                    "connection closed before a complete response"};
    }
    parser.feed(std::string_view(buf, static_cast<std::size_t>(got)));
  }
  ::close(fd);
  if (parser.state() == ResponseParser::State::kError) {
    return Status{Code::kInvalid, "bad response: " + parser.error()};
  }
  return parser.response();
}

}  // namespace mfa::net
