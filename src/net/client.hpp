// Blocking HTTP client for tests, the CLI `post` subcommand, and the
// crash-recovery CI job. Dotted-quad IPv4 hosts only (no DNS — the
// daemon serves loopback/lab traffic; resolving names is out of scope).
// One request per call: connect, send, read until the response is
// complete, close. Deliberately simple — correctness and typed errors
// over throughput.
#pragma once

#include <cstdint>
#include <string>

#include "net/http.hpp"
#include "support/status.hpp"

namespace mfa::net {

struct ClientOptions {
  double timeout_seconds;  ///< per-request wall-clock cap
  ParserLimits limits;
  explicit ClientOptions(double timeout = 30.0) : timeout_seconds(timeout) {}
};

/// One round trip. kInvalid on connect/send/parse/timeout failures;
/// HTTP-level errors (4xx/5xx) are *successful* calls — inspect
/// response.status.
StatusOr<HttpResponse> http_request(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& method,
                                    const std::string& target,
                                    const std::string& body = "",
                                    ClientOptions options = ClientOptions());

inline StatusOr<HttpResponse> http_get(const std::string& host,
                                       std::uint16_t port,
                                       const std::string& target,
                                       ClientOptions options =
                                           ClientOptions()) {
  return http_request(host, port, "GET", target, "", options);
}

inline StatusOr<HttpResponse> http_post(const std::string& host,
                                        std::uint16_t port,
                                        const std::string& target,
                                        const std::string& body,
                                        ClientOptions options =
                                            ClientOptions()) {
  return http_request(host, port, "POST", target, body, options);
}

}  // namespace mfa::net
