#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

namespace mfa::net {
namespace {

Status errno_status(const std::string& what) {
  return Status{Code::kInvalid, what + ": " + std::strerror(errno)};
}

/// Per-connection state, owned by the loop thread.
struct Connection {
  RequestParser parser;
  std::string out;         ///< bytes not yet written
  bool close_after = false;  ///< close once `out` drains

  explicit Connection(const ParserLimits& limits) : parser(limits) {}
};

using ConnectionMap = std::unordered_map<int, Connection>;

}  // namespace

HttpServer::HttpServer(ServerConfig config, Handler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

Status HttpServer::start() {
  // Held for the whole bind/listen/spawn sequence: two racing start()
  // calls must not both pass the running_ check and double-bind.
  LockGuard lock(lifecycle_mutex_);
  if (running_) return Status{Code::kInvalid, "server already running"};
  // Non-blocking listener: the loop drains accept4 until EAGAIN, and a
  // blocking fd would wedge the whole loop inside that drain.
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status{Code::kInvalid,
                  "bad bind address: " + config_.bind_address};
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status s = errno_status("bind " + config_.bind_address + ":" +
                                  std::to_string(config_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, config_.backlog) != 0) {
    const Status s = errno_status("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const Status s = errno_status("epoll/eventfd");
    // Close inline rather than re-entering stop(): lifecycle_mutex_ is
    // already held (and no loop thread exists yet to wake or join).
    for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
      if (*fd >= 0) {
        ::close(*fd);
        *fd = -1;
      }
    }
    return s;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_ = true;
  thread_ = std::thread([this] { loop(); });
  return Status::ok();
}

void HttpServer::stop() {
  // Held across wake/join/close so a concurrent stop() (destructor vs
  // explicit call) cannot double-join the thread or double-close fds.
  // The loop thread never takes this mutex, so joining under it cannot
  // deadlock.
  LockGuard lock(lifecycle_mutex_);
  if (running_) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd_, &one, sizeof(one));
    if (thread_.joinable()) thread_.join();
    running_ = false;
  }
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void HttpServer::loop() {
  // All connection state is loop-local: one thread owns it, no locks.
  ConnectionMap connections;
  epoll_event events[64];

  auto update_epollout = [this, &connections](int fd) {
    epoll_event ev{};
    ev.data.fd = fd;
    ev.events = EPOLLIN;
    if (!connections.at(fd).out.empty()) ev.events |= EPOLLOUT;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  };
  auto drop = [this, &connections](int fd) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    connections.erase(fd);
  };
  // Writes as much of conn.out as the socket accepts; false = fatal.
  auto try_flush = [&connections](int fd) {
    Connection& conn = connections.at(fd);
    while (!conn.out.empty()) {
      const ssize_t n = ::send(fd, conn.out.data(), conn.out.size(),
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno == EAGAIN || errno == EWOULDBLOCK;
      }
      conn.out.erase(0, static_cast<std::size_t>(n));
    }
    return true;
  };
  // Runs the handler for every complete request currently buffered;
  // false = close after flush.
  auto serve_buffered = [this, &connections](int fd) {
    Connection& conn = connections.at(fd);
    while (true) {
      const RequestParser::State state = conn.parser.state();
      if (state == RequestParser::State::kError) {
        HttpResponse error;
        error.status = conn.parser.error_status();
        error.body = "{\"error\":\"" + conn.parser.error() + "\"}\n";
        conn.out += format_response(error, /*keep_alive=*/false);
        return false;
      }
      if (state != RequestParser::State::kComplete) return true;
      const HttpRequest& request = conn.parser.request();
      const bool keep = request.keep_alive();
      conn.out += format_response(handler_(request), keep);
      if (!keep) return false;
      conn.parser.reset();  // replays pipelined bytes, may complete again
    }
  };

  while (true) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        for (auto& [cfd, conn] : connections) ::close(cfd);
        return;  // epoll_fd_ closed by stop(); kernel drops interests
      }
      if (fd == listen_fd_) {
        while (true) {
          const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                       SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (client < 0) break;
          const int one = 1;
          ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          connections.emplace(client, Connection(config_.limits));
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = client;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &ev);
        }
        continue;
      }
      if (connections.find(fd) == connections.end()) continue;

      bool keep_open = true;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        keep_open = false;
      }
      if (keep_open && (events[i].events & EPOLLIN) != 0) {
        char buf[16 * 1024];
        while (true) {
          const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
          if (got > 0) {
            connections.at(fd).parser.feed(
                std::string_view(buf, static_cast<std::size_t>(got)));
            continue;
          }
          if (got == 0) {
            keep_open = false;  // peer closed
          } else if (errno == EINTR) {
            continue;
          } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
            keep_open = false;
          }
          break;
        }
        const bool keep_serving = serve_buffered(fd);
        keep_open = keep_open && keep_serving;
        if (!try_flush(fd)) {
          drop(fd);
          continue;
        }
        if (!keep_open && connections.at(fd).out.empty()) {
          drop(fd);
          continue;
        }
        connections.at(fd).close_after = !keep_open;
        update_epollout(fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!try_flush(fd)) {
          drop(fd);
          continue;
        }
        Connection& conn = connections.at(fd);
        if (conn.out.empty() && conn.close_after) {
          drop(fd);
          continue;
        }
        update_epollout(fd);
        continue;
      }
      if (!keep_open) drop(fd);
    }
  }
}

}  // namespace mfa::net
