#include "net/api.hpp"

#include <algorithm>
#include <cstdint>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "io/serialize.hpp"

namespace mfa::net {
namespace {

using io::Json;

HttpResponse json_response(int status, Json body) {
  HttpResponse response;
  response.status = status;
  response.body = body.dump() + "\n";
  return response;
}

HttpResponse error_response(int status, const std::string& message) {
  Json body = Json::object();
  body.set("error", Json::string(message));
  return json_response(status, std::move(body));
}

Json stats_to_json(const service::ServiceStats& s) {
  Json j = Json::object();
  j.set("sequence", Json::number(static_cast<double>(s.sequence)));
  j.set("events_ok", Json::number(static_cast<double>(s.events_ok)));
  j.set("events_failed",
        Json::number(static_cast<double>(s.events_failed)));
  j.set("resizes", Json::number(static_cast<double>(s.resizes)));
  j.set("active_pipelines",
        Json::number(static_cast<double>(s.active_pipelines)));
  j.set("solve_nodes", Json::number(static_cast<double>(s.solve_nodes)));
  j.set("gp_compiles", Json::number(static_cast<double>(s.gp_compiles)));
  j.set("gp_patches", Json::number(static_cast<double>(s.gp_patches)));
  j.set("model_hits", Json::number(static_cast<double>(s.model_hits)));
  j.set("model_misses",
        Json::number(static_cast<double>(s.model_misses)));
  j.set("relax_hits", Json::number(static_cast<double>(s.relax_hits)));
  j.set("cus_moved", Json::number(static_cast<double>(s.cus_moved)));
  j.set("pipelines_disturbed",
        Json::number(static_cast<double>(s.pipelines_disturbed)));
  j.set("stability_repacks",
        Json::number(static_cast<double>(s.stability_repacks)));
  j.set("budget_exceeded",
        Json::number(static_cast<double>(s.budget_exceeded)));
  j.set("snapshots", Json::number(static_cast<double>(s.snapshots)));
  j.set("wal_errors", Json::number(static_cast<double>(s.wal_errors)));
  j.set("p50_ms", Json::number(s.p50_ms));
  j.set("p95_ms", Json::number(s.p95_ms));
  j.set("p99_ms", Json::number(s.p99_ms));
  j.set("max_ms", Json::number(s.max_ms));
  j.set("warm_allocs", Json::number(static_cast<double>(s.warm_allocs)));
  return j;
}

}  // namespace

HttpResponse Api::handle(const HttpRequest& request) {
  if (request.target == "/v1/events") {
    if (request.method != "POST") {
      return error_response(405, "use POST /v1/events");
    }
    return post_events(request);
  }
  if (request.target == "/v1/allocation" ||
      request.target == "/v1/occupancy" || request.target == "/v1/stats" ||
      request.target == "/v1/healthz") {
    if (request.method != "GET") {
      return error_response(405, "use GET " + request.target);
    }
    if (request.target == "/v1/allocation") return get_allocation();
    if (request.target == "/v1/occupancy") return get_occupancy();
    if (request.target == "/v1/stats") return get_stats();
    Json body = Json::object();
    body.set("status", Json::string("ok"));
    return json_response(200, std::move(body));
  }
  return error_response(404, "no such endpoint: " + request.target);
}

HttpResponse Api::post_events(const HttpRequest& request) {
  StatusOr<Json> doc = Json::parse(request.body);
  if (!doc.is_ok()) {
    return error_response(400, doc.status().message());
  }
  const Json& body = doc.value();
  if (!body.is_object()) {
    return error_response(400, "body must be a JSON object");
  }
  // The wire format was born versioned: schema_version is required.
  if (Status v =
          io::check_schema_version(body, "events body", /*required=*/true);
      !v.is_ok()) {
    return error_response(400, v.message());
  }
  const Json* events = body.find("events");
  if (events == nullptr || !events->is_array()) {
    return error_response(400, "missing 'events' array");
  }

  // Validate the WHOLE batch before submitting anything: a body that is
  // half-garbage must not half-run.
  std::vector<service::Event> parsed;
  parsed.reserve(events->size());
  for (std::size_t i = 0; i < events->size(); ++i) {
    StatusOr<service::Event> e = io::event_from_json(events->at(i));
    if (!e.is_ok()) {
      return error_response(400, "events[" + std::to_string(i) +
                                     "]: " + e.status().message());
    }
    parsed.push_back(std::move(e.value()));
  }

  // Submit everything up front — events for different shards solve
  // concurrently — then collect in order.
  std::vector<std::future<service::EventOutcome>> futures;
  futures.reserve(parsed.size());
  for (service::Event& event : parsed) {
    futures.push_back(router_->submit(std::move(event)));
  }
  Json outcomes = Json::array();
  for (std::future<service::EventOutcome>& future : futures) {
    const service::EventOutcome outcome = future.get();
    Json row = io::to_json(outcome);
    row.set("latency_ms", Json::number(outcome.seconds * 1e3));
    outcomes.push_back(std::move(row));
  }
  Json reply = Json::object();
  reply.set("schema_version", Json::number(io::kSchemaVersion));
  reply.set("outcomes", std::move(outcomes));
  return json_response(200, std::move(reply));
}

HttpResponse Api::get_allocation() {
  Json shards = Json::array();
  const auto incumbents = router_->incumbents();
  for (std::size_t i = 0; i < incumbents.size(); ++i) {
    Json row = Json::object();
    row.set("shard", Json::number(static_cast<double>(i)));
    if (incumbents[i] && incumbents[i]->allocation) {
      row.set("allocation", io::to_json(*incumbents[i]->allocation));
      row.set("winner", Json::string(incumbents[i]->winner));
    } else {
      row.set("allocation", Json::null());
    }
    shards.push_back(std::move(row));
  }
  Json reply = Json::object();
  reply.set("schema_version", Json::number(io::kSchemaVersion));
  reply.set("active_pipelines",
            Json::number(static_cast<double>(router_->active_pipelines())));
  reply.set("shards", std::move(shards));
  return json_response(200, std::move(reply));
}

HttpResponse Api::get_occupancy() {
  Json shards = Json::array();
  for (std::size_t i = 0; i < router_->num_shards(); ++i) {
    Json row = io::to_json(router_->shard(i).occupancy());
    row.set("shard", Json::number(static_cast<double>(i)));
    shards.push_back(std::move(row));
  }
  Json reply = Json::object();
  reply.set("schema_version", Json::number(io::kSchemaVersion));
  reply.set("active_pipelines",
            Json::number(static_cast<double>(router_->active_pipelines())));
  reply.set("shards", std::move(shards));
  return json_response(200, std::move(reply));
}

HttpResponse Api::get_stats() {
  Json reply = Json::object();
  reply.set("schema_version", Json::number(io::kSchemaVersion));
  const std::vector<service::ServiceStats> shard_stats =
      router_->shard_stats();
  // Client events processed, de-duplicating broadcasts: a resize is
  // counted by every shard, so subtract each shard's resize count and
  // add the broadcast back once. min() is deliberate: if a crash split
  // a broadcast across shards, the partially-applied resize is reported
  // as NOT done, so a resuming client re-posts it (at-least-once; a
  // duplicate resize to the same pool shape is state-idempotent,
  // whereas skipping it would leave the missed shard stale forever).
  std::uint64_t processed = 0;
  std::uint64_t min_resizes = 0;
  for (std::size_t i = 0; i < shard_stats.size(); ++i) {
    const service::ServiceStats& s = shard_stats[i];
    processed += s.events_ok + s.events_failed - s.resizes;
    min_resizes =
        i == 0 ? s.resizes : std::min(min_resizes, s.resizes);
  }
  processed += min_resizes;
  reply.set("events_processed",
            Json::number(static_cast<double>(processed)));
  reply.set("merged", stats_to_json(router_->stats()));
  Json shards = Json::array();
  for (const service::ServiceStats& s : shard_stats) {
    shards.push_back(stats_to_json(s));
  }
  reply.set("shards", std::move(shards));
  return json_response(200, std::move(reply));
}

}  // namespace mfa::net
