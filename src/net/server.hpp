// Single-threaded epoll HTTP/1.1 server over the message layer.
//
// One event-loop thread owns the listening socket and every
// connection; the request handler runs *on that thread*. That is a
// deliberate fit for this daemon, not a general-purpose server:
// allocation events are coarse (each triggers a solve), the interesting
// parallelism lives behind the handler (ShardRouter fans a batch across
// shard dispatchers and blocks on the futures), and one loop thread
// means no connection state ever needs a lock.
//
// Lifecycle: start() binds/listens (port 0 picks an ephemeral port —
// read it back with port(), which tests and the CLI print), stop()
// wakes the loop via an eventfd, drains, closes every connection and
// joins. Malformed requests get their parser-classified 4xx/5xx and the
// connection closes; handler responses honor HTTP/1.1 keep-alive.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "net/http.hpp"
#include "support/status.hpp"

namespace mfa::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see HttpServer::port()
  int backlog = 64;
  ParserLimits limits;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(ServerConfig config, Handler handler);
  ~HttpServer();  ///< stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the loop thread. kInvalid on socket
  /// errors (port in use, bad address, ...).
  Status start();

  /// Idempotent: wakes and joins the loop, closes all sockets.
  void stop();

  /// The bound port (resolved after start(), also for port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  void loop();

  ServerConfig config_;
  Handler handler_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd; stop() signals it
  std::uint16_t port_ = 0;
  std::thread thread_;
  bool running_ = false;
};

}  // namespace mfa::net
