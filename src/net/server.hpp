// Single-threaded epoll HTTP/1.1 server over the message layer.
//
// One event-loop thread owns the listening socket and every
// connection; the request handler runs *on that thread*. That is a
// deliberate fit for this daemon, not a general-purpose server:
// allocation events are coarse (each triggers a solve), the interesting
// parallelism lives behind the handler (ShardRouter fans a batch across
// shard dispatchers and blocks on the futures), and one loop thread
// means no connection state ever needs a lock.
//
// Lifecycle: start() binds/listens (port 0 picks an ephemeral port —
// read it back with port(), which tests and the CLI print), stop()
// wakes the loop via an eventfd, drains, closes every connection and
// joins. Malformed requests get their parser-classified 4xx/5xx and the
// connection closes; handler responses honor HTTP/1.1 keep-alive.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "net/http.hpp"
#include "support/mutex.hpp"
#include "support/status.hpp"

namespace mfa::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see HttpServer::port()
  int backlog = 64;
  ParserLimits limits;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(ServerConfig config, Handler handler);
  ~HttpServer();  ///< stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the loop thread. kInvalid on socket
  /// errors (port in use, bad address, ...).
  Status start() MFA_EXCLUDES(lifecycle_mutex_);

  /// Idempotent and safe against concurrent callers (an explicit stop()
  /// racing the destructor's): wakes and joins the loop, closes all
  /// sockets.
  void stop() MFA_EXCLUDES(lifecycle_mutex_);

  /// The bound port (resolved after start(), also for port 0). Read it
  /// after start() returns — publication is the caller's happens-before
  /// edge, not a lock.
  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  void loop();

  // mfa-lint: allow(mutex-hygiene) immutable after construction
  ServerConfig config_;
  // mfa-lint: allow(mutex-hygiene) immutable after construction
  Handler handler_;
  // The fds and port_ are *thread-confined with a handoff*, not
  // lock-guarded: start() sets them before spawning the loop thread,
  // the loop thread uses them exclusively while running, and stop()
  // closes them only after join() — each transition is a
  // happens-before edge, so no lock is needed (and the loop must not
  // take one per event).
  // mfa-lint: allow(mutex-hygiene) thread-confined with handoff (above)
  int listen_fd_ = -1;
  // mfa-lint: allow(mutex-hygiene) thread-confined with handoff (above)
  int epoll_fd_ = -1;
  /// eventfd; stop() signals it
  // mfa-lint: allow(mutex-hygiene) thread-confined with handoff (above)
  int wake_fd_ = -1;
  // mfa-lint: allow(mutex-hygiene) thread-confined with handoff (above)
  std::uint16_t port_ = 0;
  // mfa-lint: allow(mutex-hygiene) spawned/joined only under
  // lifecycle_mutex_ in start()/stop()
  std::thread thread_;
  /// Serializes start()/stop() against each other; the loop thread
  /// never takes it.
  Mutex lifecycle_mutex_;
  bool running_ MFA_GUARDED_BY(lifecycle_mutex_) = false;
};

}  // namespace mfa::net
