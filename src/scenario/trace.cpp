#include "scenario/trace.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "scenario/rng.hpp"
#include "support/assert.hpp"

namespace mfa::scenario {
namespace {

using core::Kernel;
using core::Platform;
using core::Resource;
using service::Event;
using service::PipelineSpec;

/// Exponential draw with the given mean (inverse-CDF on a uniform;
/// uniform() < 1 keeps the log argument positive).
double exponential(Rng& rng, double mean) {
  return -mean * std::log(1.0 - rng.uniform());
}

/// Draws one pipelined application, sized so each kernel fits a few CUs
/// on a fresh reference FPGA — the same demand model as the instance
/// generator (scenario/generate.cpp), minus the heterogeneity knobs.
PipelineSpec draw_pipeline(Rng& rng, const TraceSpec& spec,
                           const std::string& id) {
  PipelineSpec pipe;
  pipe.id = id;
  pipe.app.name = id;
  pipe.weight = rng.uniform(spec.min_weight, spec.max_weight);
  const int num_kernels = rng.uniform_int(spec.min_kernels, spec.max_kernels);
  for (int k = 0; k < num_kernels; ++k) {
    Kernel kern;
    kern.name = "K" + std::to_string(k);
    kern.wcet_ms = rng.uniform(spec.min_wcet_ms, spec.max_wcet_ms);
    // Dominant axis sized for q CUs per fresh FPGA, with slack below
    // the per-slot cap so several tenants can share a device.
    const int q = rng.uniform_int(1, spec.max_cu_per_kernel);
    const double dominant = 100.0 / q * rng.uniform(0.35, 0.8);
    const double secondary = dominant * rng.uniform(0.1, 0.9);
    const bool bram_heavy = rng.uniform() < 0.5;
    kern.res[Resource::kBram] = bram_heavy ? dominant : secondary;
    kern.res[Resource::kDsp] = bram_heavy ? secondary : dominant;
    kern.bw = 100.0 / q * rng.uniform(0.05, 0.4);
    pipe.app.kernels.push_back(std::move(kern));
  }
  return pipe;
}

}  // namespace

Trace generate_trace(const TraceSpec& spec, std::uint64_t seed) {
  MFA_ASSERT_MSG(spec.num_events >= 1, "empty trace");
  MFA_ASSERT_MSG(spec.arrival_rate_per_s > 0.0, "bad arrival rate");
  MFA_ASSERT_MSG(spec.mean_lifetime_s > 0.0, "bad lifetime");
  MFA_ASSERT_MSG(spec.max_live_pipelines >= 1, "bad live cap");
  MFA_ASSERT_MSG(spec.min_kernels >= 1 &&
                     spec.max_kernels >= spec.min_kernels,
                 "bad kernel count range");
  MFA_ASSERT_MSG(spec.min_wcet_ms > 0.0 &&
                     spec.max_wcet_ms >= spec.min_wcet_ms,
                 "bad WCET range");
  MFA_ASSERT_MSG(spec.max_cu_per_kernel >= 1, "need at least one CU");
  MFA_ASSERT_MSG(spec.min_weight > 0.0 &&
                     spec.max_weight >= spec.min_weight,
                 "bad weight range");
  MFA_ASSERT_MSG(spec.num_fpgas >= 1 && spec.max_extra_fpgas >= 0,
                 "bad FPGA counts");
  MFA_ASSERT_MSG(spec.reprioritize_fraction >= 0.0 &&
                     spec.resize_fraction >= 0.0 &&
                     spec.reprioritize_fraction + spec.resize_fraction < 1.0,
                 "churn fractions must leave room for arrivals");

  // Decorrelate adjacent seeds before the first draw (same pattern as
  // the instance generator, different stream constant).
  Rng rng(seed ^ 0x7ace5eed5ca1ab1eull);

  Trace trace;
  trace.platform.name = "pool-" + std::to_string(seed);
  trace.platform.num_fpgas = spec.num_fpgas;

  struct Live {
    std::string id;
    double death_ms = 0.0;
  };
  std::vector<Live> live;  // arrival order; linear scans are fine here
  double now_ms = 0.0;
  int next_id = 0;

  auto pop_due_removal = [&](double horizon_ms) -> const Live* {
    const Live* due = nullptr;
    for (const Live& l : live) {
      if (l.death_ms <= horizon_ms &&
          (due == nullptr || l.death_ms < due->death_ms)) {
        due = &l;
      }
    }
    return due;
  };

  auto& events = trace.events;
  while (static_cast<int>(events.size()) < spec.num_events) {
    const double arrival_ms =
        now_ms + 1000.0 * exponential(rng, 1.0 / spec.arrival_rate_per_s);

    // Departures scheduled before the next arrival fire first.
    if (const Live* due = pop_due_removal(arrival_ms)) {
      events.push_back(Event::remove(due->id, due->death_ms));
      now_ms = due->death_ms;
      live.erase(live.begin() + (due - live.data()));
      continue;
    }
    now_ms = arrival_ms;

    const double churn = rng.uniform();
    if (churn < spec.resize_fraction) {
      Platform resized = trace.platform;
      resized.name = "pool-" + std::to_string(seed) + "-r" +
                     std::to_string(events.size());
      resized.num_fpgas = rng.uniform_int(
          std::max(1, spec.num_fpgas - spec.max_extra_fpgas),
          spec.num_fpgas + spec.max_extra_fpgas);
      events.push_back(Event::resize(std::move(resized), now_ms));
      continue;
    }
    if (churn < spec.resize_fraction + spec.reprioritize_fraction &&
        !live.empty()) {
      const Live& target =
          live[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(live.size()) - 1))];
      events.push_back(Event::reprioritize(
          target.id, rng.uniform(spec.min_weight, spec.max_weight),
          now_ms));
      continue;
    }
    if (static_cast<int>(live.size()) >= spec.max_live_pipelines) {
      // At the concurrency cap: retire the oldest tenant early instead
      // of stalling the stream (keeps event counts exact and the trace
      // free of unremovable pile-ups).
      events.push_back(Event::remove(live.front().id, now_ms));
      live.erase(live.begin());
      continue;
    }
    PipelineSpec pipe =
        draw_pipeline(rng, spec, "p" + std::to_string(next_id++));
    live.push_back(
        {pipe.id,
         now_ms + 1000.0 * exponential(rng, spec.mean_lifetime_s)});
    events.push_back(Event::add(std::move(pipe), now_ms));
  }
  return trace;
}

}  // namespace mfa::scenario
