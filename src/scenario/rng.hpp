// The scenario module's deterministic RNG.
//
// splitmix64 (Steele, Lea, Flood 2014): a tiny, well-mixed generator
// whose output sequence is fully specified by the seed — unlike
// std::uniform_*_distribution, which may differ across standard
// libraries. Shared by the instance generator (scenario/generate.cpp)
// and the arrival-trace generator (scenario/trace.cpp); both promise
// byte-identical output for a fixed (spec, seed) within a build. The
// raw 64-bit stream (and everything derived from it by arithmetic
// alone) is identical on every platform; generators that additionally
// route draws through libm (std::log in the trace generator's
// exponential draws) are reproducible per libm implementation, which
// is what the replay/CI determinism checks rely on — they always
// compare runs of the same binary.
#pragma once

#include <cstdint>

#include "support/assert.hpp"

namespace mfa::scenario {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1) with 53 bits of precision.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform in [lo, hi]. The modulo bias is irrelevant for scenario
  /// diversity (ranges are tiny against 2^64).
  int uniform_int(int lo, int hi) {
    MFA_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next() % span);
  }

 private:
  std::uint64_t state_;
};

}  // namespace mfa::scenario
