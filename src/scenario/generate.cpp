#include "scenario/generate.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "scenario/rng.hpp"
#include "support/assert.hpp"

namespace mfa::scenario {
namespace {

using core::DeviceClass;
using core::Kernel;
using core::Platform;
using core::Problem;
using core::Resource;
using core::ResourceVec;

}  // namespace

Problem generate(const ScenarioSpec& spec, std::uint64_t seed) {
  MFA_ASSERT_MSG(spec.min_kernels >= 1, "bad kernel count range");
  MFA_ASSERT_MSG(spec.max_kernels >= spec.min_kernels,
                 "bad kernel count range");
  MFA_ASSERT_MSG(spec.min_fpgas >= 1, "bad FPGA count range");
  MFA_ASSERT_MSG(spec.max_fpgas >= spec.min_fpgas, "bad FPGA count range");
  MFA_ASSERT_MSG(spec.max_classes >= 1, "need at least one device class");
  MFA_ASSERT_MSG(spec.class_skew > 0.0 && spec.class_skew <= 1.0,
                 "class_skew must be in (0, 1]");
  MFA_ASSERT_MSG(spec.tightness > 0.0 && spec.tightness <= 1.0,
                 "tightness must be in (0, 1]");
  MFA_ASSERT_MSG(spec.max_cu_per_kernel >= 1, "need at least one CU");
  MFA_ASSERT_MSG(spec.min_wcet_ms > 0.0, "bad WCET range");
  MFA_ASSERT_MSG(spec.max_wcet_ms >= spec.min_wcet_ms, "bad WCET range");

  // Decorrelate adjacent seeds (0, 1, 2, … is the common fuzz pattern)
  // before the first draw.
  Rng rng(seed ^ 0x5ca1ab1e0ddba11ull);

  Problem p;

  // ---- Platform: F FPGAs over C device classes. Class 0 is the
  // reference (100 %); the others are scaled down into [skew, 1].
  const int num_fpgas = rng.uniform_int(spec.min_fpgas, spec.max_fpgas);
  const int num_classes =
      rng.uniform_int(1, std::min(spec.max_classes, num_fpgas));
  if (num_classes == 1) {
    // Homogeneous platforms keep the seed encoding (no class list) so
    // the corpus also covers the original fast paths.
    p.platform.name = "scenario-" + std::to_string(seed);
    p.platform.num_fpgas = num_fpgas;
    p.platform.capacity = ResourceVec::uniform(100.0);
    p.platform.bw_capacity = 100.0;
  } else {
    std::vector<DeviceClass> classes;
    classes.reserve(static_cast<std::size_t>(num_classes));
    for (int c = 0; c < num_classes; ++c) {
      const double scale = c == 0 ? 1.0 : rng.uniform(spec.class_skew, 1.0);
      DeviceClass dc;
      dc.name = "class" + std::to_string(c);
      dc.capacity = ResourceVec::uniform(100.0 * scale);
      // Bandwidth shrinks with its own draw: capacity and DRAM do not
      // scale in lockstep across real device generations.
      dc.bw_capacity =
          100.0 * (c == 0 ? 1.0 : rng.uniform(spec.class_skew, 1.0));
      classes.push_back(std::move(dc));
    }
    // Every class appears at least once; remaining FPGAs draw uniformly.
    std::vector<int> class_of(static_cast<std::size_t>(num_fpgas), 0);
    for (int f = 0; f < num_fpgas; ++f) {
      class_of[static_cast<std::size_t>(f)] =
          f < num_classes ? f : rng.uniform_int(0, num_classes - 1);
    }
    p.platform = Platform::heterogeneous("scenario-" + std::to_string(seed),
                                         std::move(classes),
                                         std::move(class_of));
  }

  p.resource_fraction = spec.tightness;
  p.bw_fraction = 1.0;
  p.alpha = 1.0;
  p.beta = rng.uniform() < spec.beta_probability
               ? rng.uniform(0.1, spec.max_beta)
               : 0.0;

  // ---- Kernels. Each kernel draws an intended per-reference-FPGA CU
  // count q and sizes its dominant axis so exactly q CUs fit a fresh
  // class-0 device under the tightness fraction; the other axis and the
  // bandwidth demand ride along at a fraction of the dominant one.
  // Smaller classes may fit fewer (or zero) CUs — that asymmetry is the
  // heterogeneous hardness.
  const double ref_axis_cap = 100.0 * spec.tightness;
  const double ref_bw_cap = 100.0;  // bw_fraction is 1
  const int num_kernels = rng.uniform_int(spec.min_kernels, spec.max_kernels);
  p.app.name = "pipeline-" + std::to_string(seed);
  for (int k = 0; k < num_kernels; ++k) {
    Kernel kern;
    kern.name = "K" + std::to_string(k);
    kern.wcet_ms = rng.uniform(spec.min_wcet_ms, spec.max_wcet_ms);
    const int q = rng.uniform_int(1, spec.max_cu_per_kernel);
    // Dominant demand just under cap/q: q CUs fit, q+1 do not. The
    // draw's lower end must exceed q/(q+1) or ⌊cap/demand⌋ could reach
    // q+1 and break the spec's CU bound; 0.82 already does for q ≤ 4,
    // and the max() keeps those draws (and seeded streams) unchanged.
    const double lo = std::max(0.82, (q + 0.05) / (q + 1.0));
    const double dominant = ref_axis_cap / q * rng.uniform(lo, 0.98);
    const double secondary = dominant * rng.uniform(0.1, 0.9);
    const bool bram_heavy = rng.uniform() < 0.5;
    kern.res[Resource::kBram] = bram_heavy ? dominant : secondary;
    kern.res[Resource::kDsp] = bram_heavy ? secondary : dominant;
    // LUT/FF axes stay zero, like the paper's characterizations.
    // Bandwidth stays loose on the reference class (at most cap/q) so
    // resource axes, not DRAM, usually bind — but not always.
    kern.bw = ref_bw_cap / q * rng.uniform(0.05, 0.8);
    p.app.kernels.push_back(std::move(kern));
  }

  MFA_ASSERT_MSG(p.validate().is_ok(),
                 "scenario generator produced an invalid instance");
  return p;
}

}  // namespace mfa::scenario
