// Seeded arrival-trace generator for the allocation service.
//
// generate_trace(spec, seed) deterministically maps a 64-bit seed to a
// stream of service events — same seed, same spec ⇒ byte-identical
// trace for a fixed build (splitmix64 RNG, no std:: distributions;
// the exponential draws go through std::log, so traces are
// reproducible per libm implementation rather than across every
// platform — the replay determinism contract compares runs of one
// binary). The model:
//
//  * pipelines arrive by a Poisson process (exponential inter-arrival
//    gaps at `arrival_rate_per_s`), each carrying a freshly drawn
//    linear pipeline and a priority weight;
//  * each pipeline lives an exponentially distributed lifetime
//    (`mean_lifetime_s`), after which its RemovePipeline event fires;
//  * churn knobs replace a fraction of arrivals with Reprioritize
//    events on a random live pipeline, or (rarely) with a
//    ResizePlatform event that grows/shrinks the pool;
//  * `max_live_pipelines` caps concurrency so composite problems stay
//    inside the solvers' comfortable range.
//
// The trace replayer (`mfalloc_cli serve --trace`) and the churn bench
// (bench/service_churn) consume these; tests/service_test.cpp checks
// the determinism promise end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"
#include "service/event.hpp"

namespace mfa::scenario {

struct TraceSpec {
  int num_events = 500;

  /// Poisson arrival intensity and mean pipeline lifetime. Their
  /// product (×: rate · lifetime) is the offered load in simultaneously
  /// live pipelines, clipped by max_live_pipelines.
  double arrival_rate_per_s = 50.0;
  double mean_lifetime_s = 0.1;
  int max_live_pipelines = 5;

  /// Fraction of arrival slots replaced by churn events (require at
  /// least one live pipeline; resizes need none).
  double reprioritize_fraction = 0.12;
  double resize_fraction = 0.02;

  /// Per-pipeline shape: kernel count, WCET range, and how many CUs of
  /// one kernel fit a fresh FPGA (bounds demand like ScenarioSpec).
  int min_kernels = 2;
  int max_kernels = 4;
  double min_wcet_ms = 1.0;
  double max_wcet_ms = 20.0;
  int max_cu_per_kernel = 3;

  /// Priority weights drawn uniformly from [min_weight, max_weight].
  double min_weight = 0.5;
  double max_weight = 2.0;

  /// Initial pool size; resizes draw uniformly from
  /// [max(1, num_fpgas - max_extra_fpgas), num_fpgas + max_extra_fpgas]
  /// so a trace exercises both pool growth and shrink-below-demand.
  int num_fpgas = 4;
  int max_extra_fpgas = 2;
};

struct Trace {
  core::Platform platform;  ///< the pool before the first event
  std::vector<service::Event> events;
};

/// Deterministic seed → trace map; see the file comment.
Trace generate_trace(const TraceSpec& spec, std::uint64_t seed);

}  // namespace mfa::scenario
