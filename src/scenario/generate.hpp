// Seeded scenario generator: random pipelines × heterogeneous platforms.
//
// generate(spec, seed) deterministically maps a 64-bit seed to a valid
// Problem — same seed, same spec ⇒ bit-identical instance on every
// platform and compiler (the generator uses its own splitmix64-based
// RNG, never std::<random> distributions, whose outputs are
// implementation-defined). The spec's knobs control hardness:
//
//  * kernel / FPGA / device-class counts — instance size;
//  * tightness — the problem's resource_fraction, i.e. how much of each
//    device the allocation may use (the paper's swept axis);
//  * class_skew — how much smaller the weakest device class is than the
//    reference class (1 ⇒ all classes identical in capacity);
//  * max_cu_per_kernel — per-CU demand floor, bounding CU counts and
//    hence the exact/naive search spaces (keep small for oracle use).
//
// Every generated instance passes Problem::validate(): each kernel fits
// at least one CU on the roomiest class under the tightness fraction.
// This is the differential-fuzz corpus (tests/differential_fuzz.cpp)
// and the `gen` subcommand of example_mfalloc_cli.
#pragma once

#include <cstdint>

#include "core/problem.hpp"

namespace mfa::scenario {

struct ScenarioSpec {
  int min_kernels = 3;
  int max_kernels = 6;
  int min_fpgas = 2;
  int max_fpgas = 3;
  /// Device classes drawn uniformly from [1, min(max_classes, F)];
  /// 1 produces a *homogeneous* platform (seed encoding, no class list)
  /// so the corpus also exercises the homogeneous fast paths.
  int max_classes = 2;
  /// Weakest-class capacity scale relative to the reference class
  /// (class 0), in (0, 1]. Class scales are drawn from [class_skew, 1].
  double class_skew = 0.5;
  /// Resource fraction of the generated problem, in (0, 1]. Lower is
  /// tighter: kernels keep their absolute demands but may use less of
  /// every device.
  double tightness = 0.85;
  double min_wcet_ms = 1.0;
  double max_wcet_ms = 40.0;
  /// Upper bound on the CUs of one kernel that fit a fresh reference-
  /// class FPGA; bounds every exact search space (naive is exponential).
  int max_cu_per_kernel = 4;
  /// Probability that the instance carries a spreading objective
  /// (β > 0, drawn up to max_beta); otherwise β = 0.
  double beta_probability = 0.5;
  double max_beta = 2.0;
};

/// Deterministic seed → instance map; see the file comment. The kernel
/// and platform names encode the seed for reproducibility.
core::Problem generate(const ScenarioSpec& spec, std::uint64_t seed);

}  // namespace mfa::scenario
