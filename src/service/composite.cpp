#include "service/composite.hpp"

#include <utility>

#include "support/assert.hpp"

namespace mfa::service {
namespace {

/// One composite kernel of `pipe`: name-spaced and weight-scaled exactly
/// like the wholesale compose always did, so the incremental composite
/// is bit-identical to a from-scratch rebuild.
core::Kernel scaled_kernel(const PipelineSpec& pipe, const core::Kernel& k) {
  core::Kernel scaled = k;
  scaled.name = pipe.id + "/" + k.name;
  // Priority enters through the effective WCET: minimizing
  // max_k weight·WCET_k/N_k pulls CUs toward heavy pipelines.
  scaled.wcet_ms = k.wcet_ms * pipe.weight;
  return scaled;
}

}  // namespace

CompositeBuilder::CompositeBuilder(core::Platform platform,
                                   const CompositeConfig& config) {
  problem_.app.name = "composite";
  problem_.platform = std::move(platform);
  problem_.resource_fraction = config.resource_fraction;
  problem_.bw_fraction = config.bw_fraction;
  problem_.alpha = config.alpha;
  problem_.beta = config.beta;
  rebind_structure();
}

void CompositeBuilder::rebind_structure() {
  structure_ = core::ProblemStructure::capture(problem_);
  problem_.structure = structure_;
}

void CompositeBuilder::add_pipeline(const PipelineSpec& pipe) {
  insert_pipeline(ranges_.size(), pipe);
}

void CompositeBuilder::insert_pipeline(std::size_t index,
                                       const PipelineSpec& pipe) {
  MFA_ASSERT(index <= ranges_.size());
  const std::size_t begin =
      index == ranges_.size() ? problem_.app.kernels.size()
                              : ranges_[index].begin;
  const std::size_t count = pipe.app.kernels.size();
  auto at = problem_.app.kernels.begin() +
            static_cast<std::ptrdiff_t>(begin);
  for (const core::Kernel& k : pipe.app.kernels) {
    at = problem_.app.kernels.insert(at, scaled_kernel(pipe, k)) + 1;
  }
  for (std::size_t i = index; i < ranges_.size(); ++i) {
    ranges_[i].begin += count;
  }
  ranges_.insert(ranges_.begin() + static_cast<std::ptrdiff_t>(index),
                 Range{begin, count});
  rebind_structure();
}

void CompositeBuilder::remove_pipeline(std::size_t index) {
  MFA_ASSERT(index < ranges_.size());
  const Range r = ranges_[index];
  auto first = problem_.app.kernels.begin() +
               static_cast<std::ptrdiff_t>(r.begin);
  problem_.app.kernels.erase(first,
                             first + static_cast<std::ptrdiff_t>(r.count));
  ranges_.erase(ranges_.begin() + static_cast<std::ptrdiff_t>(index));
  for (std::size_t i = index; i < ranges_.size(); ++i) {
    ranges_[i].begin -= r.count;
  }
  rebind_structure();
}

MFA_WARM_PATH void CompositeBuilder::reprioritize(std::size_t index,
                                                  const PipelineSpec& pipe) {
  MFA_ASSERT(index < ranges_.size());
  MFA_ASSERT_MSG(ranges_[index].count == pipe.app.kernels.size(),
                 "reprioritize spec shape drifted from the composite");
  const Range r = ranges_[index];
  // Always rescale from the pipeline's *base* WCETs — never compound on
  // the previous scale — so the value matches a from-scratch compose
  // bit-for-bit after any number of weight changes. The builder owns
  // problem_ by value, so these are plain double stores: no snapshot
  // can alias the live problem (see snapshot()).
  for (std::size_t i = 0; i < r.count; ++i) {
    problem_.app.kernels[r.begin + i].wcet_ms =
        pipe.app.kernels[i].wcet_ms * pipe.weight;
  }
}

MFA_WARM_PATH void CompositeBuilder::resize_platform(core::Platform platform) {
  problem_.platform = std::move(platform);
}

std::shared_ptr<const core::Problem> CompositeBuilder::snapshot() {
  // Round-robin over the publish ring: in the steady state the server's
  // incumbent pins the previous event's snapshot, so alternating slots
  // means the slot picked here was released when the event before last
  // retired — use_count() == 1 and a numerics-only refresh suffices.
  // Any holder that outlives two events (or a structural edit) forces a
  // fresh copy into the slot instead; the held snapshot is never
  // touched either way.
  std::shared_ptr<core::Problem>& slot = publish_[next_slot_];
  next_slot_ = (next_slot_ + 1) % publish_.size();
  if (slot == nullptr || slot.use_count() > 1 ||
      slot->structure != structure_) {
    slot = std::make_shared<core::Problem>(problem_);
  } else {
    slot->assign_numerics_from(problem_);
  }
  return slot;
}

}  // namespace mfa::service
