#include "service/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iterator>
#include <utility>

#include "io/serialize.hpp"

namespace mfa::service {
namespace {

constexpr const char* kLogName = "wal.log";
constexpr const char* kSnapshotName = "snapshot.json";

Status errno_status(const std::string& what) {
  return Status{Code::kInvalid, what + ": " + std::strerror(errno)};
}

/// Writes the whole buffer, retrying short writes and EINTR.
Status write_all(int fd, std::string_view bytes, const std::string& what) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_status(what);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

/// fsync the directory itself so a rename/creat inside it is durable.
Status sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return errno_status("open dir " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return errno_status("fsync dir " + dir);
  return Status::ok();
}

}  // namespace

StatusOr<Wal> Wal::create(const std::string& dir,
                          const core::Platform& initial_platform,
                          Options options) {
  if (dir.empty()) return Status{Code::kInvalid, "wal: empty directory"};
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return errno_status("mkdir " + dir);
  }
  const std::string snapshot = dir + "/" + kSnapshotName;
  if (::unlink(snapshot.c_str()) != 0 && errno != ENOENT) {
    return errno_status("unlink " + snapshot);
  }
  const std::string path = dir + "/" + kLogName;
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd < 0) return errno_status("open " + path);
  Wal wal(dir, fd, options);
  const std::string header =
      io::wal_header_to_json(initial_platform).dump() + "\n";
  if (Status s = write_all(fd, header, "write " + path); !s.is_ok()) {
    return s;
  }
  if (options.fsync) {
    if (::fsync(fd) != 0) return errno_status("fsync " + path);
    if (Status s = sync_dir(dir); !s.is_ok()) return s;
  }
  return wal;
}

StatusOr<Wal> Wal::open(const std::string& dir, Options options) {
  const std::string path = dir + "/" + kLogName;
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return errno_status("open " + path);
  return Wal(dir, fd, options);
}

StatusOr<WalRecovery> Wal::load(const std::string& dir) {
  StatusOr<std::string> text = io::read_file(dir + "/" + kLogName);
  if (!text.is_ok()) return text.status();

  WalRecovery recovery;
  std::vector<WalRecord> records;
  const std::string& bytes = text.value();
  std::size_t line_start = 0;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (line_start < bytes.size()) {
    std::size_t end = bytes.find('\n', line_start);
    // A line without its terminating newline can only be a torn final
    // append; so can a line that has the newline but fails to parse
    // (the kernel may pad a torn block with zeros or the crash landed
    // mid-fsync). Either way it must be the LAST line to be forgiven.
    const bool torn_candidate = end == std::string::npos;
    const std::string_view line(
        bytes.data() + line_start,
        (torn_candidate ? bytes.size() : end) - line_start);
    const std::size_t next =
        torn_candidate ? bytes.size() : end + 1;
    const bool is_last = next >= bytes.size();

    Status parse_error = Status::ok();
    StatusOr<io::Json> doc = io::Json::parse(line);
    if (!doc.is_ok()) {
      parse_error = doc.status();
    } else if (!saw_header) {
      StatusOr<core::Platform> header =
          io::wal_header_from_json(doc.value());
      if (!header.is_ok()) {
        parse_error = header.status();
      } else {
        recovery.initial_platform = std::move(header.value());
        saw_header = true;
      }
    } else {
      StatusOr<WalRecord> record = io::wal_record_from_json(doc.value());
      // Sequences must be strictly increasing but may have gaps: an
      // event whose append failed consumed a sequence number without
      // ever reaching the log (and was not applied).
      if (!record.is_ok()) {
        parse_error = record.status();
      } else if (!records.empty() &&
                 record.value().sequence <= records.back().sequence) {
        parse_error = Status{
            Code::kInvalid,
            "wal: record out of sequence (got " +
                std::to_string(record.value().sequence) + " after " +
                std::to_string(records.back().sequence) + ")"};
      } else {
        records.push_back(std::move(record.value()));
      }
    }
    if (!parse_error.is_ok()) {
      if (is_last && saw_header) break;  // torn tail: drop and stop
      return Status{Code::kInvalid, "wal line " + std::to_string(line_no) +
                                        ": " + parse_error.message()};
    }
    line_start = next;
    ++line_no;
  }
  if (!saw_header) {
    return Status{Code::kInvalid, "wal: empty or headerless log"};
  }
  recovery.next_sequence =
      records.empty() ? 0 : records.back().sequence + 1;

  // Optional snapshot; ignored (with a full replay instead) only when
  // absent — a *corrupt* snapshot is an error, because silently
  // replaying the world would mask it.
  StatusOr<std::string> snap_text =
      io::read_file(dir + "/" + kSnapshotName);
  if (snap_text.is_ok()) {
    StatusOr<io::Json> doc = io::Json::parse(snap_text.value());
    if (!doc.is_ok()) {
      return Status{Code::kInvalid,
                    "wal snapshot: " + doc.status().message()};
    }
    StatusOr<WalSnapshot> snapshot = io::wal_snapshot_from_json(doc.value());
    if (!snapshot.is_ok()) return snapshot.status();
    if (snapshot.value().sequence > recovery.next_sequence) {
      return Status{Code::kInvalid,
                    "wal snapshot: ahead of the log (snapshot seq " +
                        std::to_string(snapshot.value().sequence) +
                        ", log ends at " +
                        std::to_string(recovery.next_sequence) + ")"};
    }
    recovery.snapshot = std::move(snapshot.value());
  }

  // Tail = everything at or after the snapshot point (records strictly
  // before it are already folded into the snapshotted workload).
  auto from = records.begin();
  if (recovery.snapshot) {
    from = std::find_if(records.begin(), records.end(),
                        [&](const WalRecord& r) {
                          return r.sequence >= recovery.snapshot->sequence;
                        });
  }
  recovery.tail.assign(std::make_move_iterator(from),
                       std::make_move_iterator(records.end()));
  return recovery;
}

Wal::Wal(Wal&& other) noexcept
    : dir_(std::move(other.dir_)),
      fd_(std::exchange(other.fd_, -1)),
      options_(other.options_) {}

Wal& Wal::operator=(Wal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    dir_ = std::move(other.dir_);
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
  }
  return *this;
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Status Wal::append(std::uint64_t sequence, const Event& event) {
  if (fd_ < 0) return Status{Code::kInvalid, "wal: not open"};
  WalRecord record;
  record.sequence = sequence;
  record.event = event;
  const std::string line = io::to_json(record).dump() + "\n";
  if (Status s = write_all(fd_, line, "wal append"); !s.is_ok()) return s;
  if (options_.fsync && ::fsync(fd_) != 0) {
    return errno_status("wal fsync");
  }
  return Status::ok();
}

Status Wal::write_snapshot(const WalSnapshot& snapshot) {
  const std::string tmp = dir_ + "/" + kSnapshotName + ".tmp";
  const std::string final_path = dir_ + "/" + kSnapshotName;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errno_status("open " + tmp);
  const std::string text = io::to_json(snapshot).dump(2) + "\n";
  Status s = write_all(fd, text, "write " + tmp);
  if (s.is_ok() && options_.fsync && ::fsync(fd) != 0) {
    s = errno_status("fsync " + tmp);
  }
  ::close(fd);
  if (!s.is_ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    const Status rename_error = errno_status("rename " + tmp);
    ::unlink(tmp.c_str());
    return rename_error;
  }
  if (options_.fsync) return sync_dir(dir_);
  return Status::ok();
}

}  // namespace mfa::service
