// Write-ahead log + snapshots: crash durability for the allocation
// service.
//
// PR 4's byte-identical event log was an *observability* artifact; this
// header promotes the idea to a real WAL. A served event is appended to
// `<dir>/wal.log` — one compact JSON record per line, fsync'd — *before*
// it is applied (append-before-apply), so after a crash the log contains
// every event whose outcome was ever acknowledged, plus at most one
// trailing event that was logged but not yet applied. Recovery replays
// the log through the same deterministic dispatcher and lands on the
// exact state an uninterrupted run would have reached: the solve stack
// is a pure function of (initial platform, event sequence, options), a
// property tests/service_test.cpp has enforced since PR 4.
//
// Layout of a WAL directory:
//
//   wal.log        line 0: header {"schema_version":1,"format":
//                  "mfa-wal","platform":{...}} — the pool before any
//                  event, so a log is self-contained;
//                  lines 1..: records {"schema_version":1,"seq":N,
//                  "event":{...}} in sequence order, starting at 0.
//   snapshot.json  optional durable workload state at a sequence point
//                  (platform + live pipelines), written atomically
//                  (tmp + rename) every ServerOptions::snapshot_every
//                  events so recovery replays a tail, not the world.
//
// The log is never truncated or compacted: recovery correctness only
// needs snapshot + tail, but the full log is the service's event
// history — the crash-recovery CI job byte-compares it against an
// uninterrupted run's log.
//
// Torn writes: a crash can leave a partial final line. load() accepts
// exactly one unparseable *trailing* record and drops it (the event was
// never applied nor acknowledged — append-before-apply means losing it
// is correct); an unparseable record anywhere else is corruption and
// fails with kInvalid. Every record carries schema_version and load()
// rejects unknown or missing versions with a typed Status (see
// io/serialize.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "service/event.hpp"
#include "service/occupancy.hpp"
#include "support/status.hpp"

namespace mfa::service {

/// One durable log entry: the event and the sequence number the
/// dispatcher assigned it.
struct WalRecord {
  std::uint64_t sequence = 0;
  Event event;
};

/// Durable workload state at a sequence point: everything needed to
/// reconstruct the server's deterministic state without replaying the
/// events before `sequence`. Without migration budgets the incumbent is
/// a pure function of (platform, pipelines, options) and one solve
/// re-derives it; under budgets it is path-dependent (a repack's output
/// depends on the previous placement), so the snapshot also carries the
/// placement ledger and recovery restores the incumbent rows exactly.
struct WalSnapshot {
  std::uint64_t sequence = 0;  ///< events applied when the snapshot ran
  core::Platform platform;     ///< pool shape at that point
  std::vector<PipelineSpec> pipelines;  ///< live set, arrival order
  /// Per-pipeline CU placements (composite order, same shape as the
  /// occupancy records). Empty in pre-PR-8 snapshots: recovery then
  /// falls back to the pure re-derivation.
  std::vector<PipelinePlacement> placements;
};

/// What load() hands back for recovery.
struct WalRecovery {
  core::Platform initial_platform;  ///< from the log header
  std::optional<WalSnapshot> snapshot;
  /// Records to replay: sequence >= snapshot->sequence (all records
  /// when there is no snapshot), contiguous.
  std::vector<WalRecord> tail;
  /// One past the last logged sequence (0 for an empty log).
  std::uint64_t next_sequence = 0;
};

/// Append handle on a WAL directory. Single writer (the dispatcher);
/// movable, closes on destruction. All I/O failures surface as Status —
/// a full disk fails the *event*, never the process.
///
/// Thread model: Wal is deliberately unsynchronized. The instance lives
/// in AllocServer::wal_, which is MFA_GUARDED_BY(state_mutex_) — the
/// server's lock is the capability; appends and snapshots only ever
/// happen with it held. A standalone Wal (tests, tools) is
/// single-threaded by construction.
class Wal {
 public:
  struct Options {
    /// fsync every append (and snapshot). Disable only for benchmarks
    /// that want the serialization cost without the disk stall.
    bool fsync;
    // Explicit constructor (not a default member initializer): the
    // in-class `= Options()` default arguments below may not use a DMI
    // before the enclosing class is complete.
    explicit Options(bool fsync_in = true) : fsync(fsync_in) {}
  };

  /// Starts a fresh log in `dir` (creating the directory, truncating
  /// any previous log and removing a stale snapshot), writing the
  /// header line for `initial_platform`.
  static StatusOr<Wal> create(const std::string& dir,
                              const core::Platform& initial_platform,
                              Options options = Options());

  /// Opens an existing log for appending (after load()/replay).
  static StatusOr<Wal> open(const std::string& dir,
                            Options options = Options());

  /// Reads header, snapshot and records for recovery; tolerates one
  /// torn trailing record (see file comment).
  static StatusOr<WalRecovery> load(const std::string& dir);

  Wal(Wal&& other) noexcept;
  Wal& operator=(Wal&& other) noexcept;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  ~Wal();

  /// Appends one record and (by default) fsyncs before returning — the
  /// append-before-apply barrier.
  Status append(std::uint64_t sequence, const Event& event);

  /// Atomically replaces `snapshot.json` (write tmp, fsync, rename).
  Status write_snapshot(const WalSnapshot& snapshot);

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  Wal(std::string dir, int fd, Options options)
      : dir_(std::move(dir)), fd_(fd), options_(options) {}

  std::string dir_;
  int fd_ = -1;  ///< wal.log, O_APPEND
  Options options_;
};

}  // namespace mfa::service
