// Long-lived allocation service over the shared multi-FPGA pool.
//
// AllocServer turns the static per-instance solvers into an online
// system: it owns the pool (a core::Platform), the set of live
// pipelines, a sharded capacity-bounded RelaxationCache, and a solver
// ThreadPool, and consumes a stream of events — AddPipeline,
// RemovePipeline, Reprioritize, ResizePlatform — through an MPMC queue.
//
// Each event mutates the workload and triggers an *incremental*
// re-solve of the composite problem (all live pipelines concatenated
// into one super-pipeline on the shared platform, each pipeline's WCETs
// scaled by its priority weight). Incrementality is layered:
//
//  * the composite itself is maintained by a CompositeBuilder
//    (service/composite.hpp) that applies event deltas — Reprioritize
//    rewrites a few WCET coefficients in place, ResizePlatform swaps the
//    platform, only Add/Remove splice the kernel set — instead of
//    rebuilding the super-pipeline from scratch per event;
//  * the solve is warm-started from the incumbent allocation's ÎI/N̂ via
//    SolveRequest::warm, so the root relaxation re-converges in a
//    handful of probes instead of a cold bisection or barrier path, and
//    branch-and-bound node relaxations hit the shared RelaxationCache;
//  * interior-point roots go through a CompiledModelCache keyed by the
//    GP model's *structural* fingerprint: numeric-only events reuse the
//    compiled IR and pay an O(terms) coefficient patch instead of a full
//    lowering (EventOutcome::gp_compiles/gp_patches count both).
//
// Warm starts and both caches are pure accelerations — the solved
// optimum matches a cold solve — and the per-event portfolio budget
// (ServerOptions::portfolio.max_nodes/max_seconds, enforced through the
// portfolio's shared Budget when exact lanes are enabled) bounds each
// event's latency.
//
// Determinism: events are applied in submission order by one dispatcher
// thread, and with the default heuristic-only portfolio every
// EventOutcome field except wall-clock `seconds` is a pure function of
// (initial platform, event sequence, options) — the property the trace
// replayer's byte-identical log check rides on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/compiled_cache.hpp"
#include "core/problem.hpp"
#include "core/relax_cache.hpp"
#include "runtime/portfolio.hpp"
#include "runtime/solve.hpp"
#include "runtime/thread_pool.hpp"
#include "service/composite.hpp"
#include "service/event.hpp"
#include "service/event_queue.hpp"

namespace mfa::service {

struct ServerOptions {
  /// Per-event solver configuration. The default differs from the
  /// batch default: exact lanes are off, because a daemon must not
  /// spend minutes proving optimality per event and because wall-clock-
  /// budgeted exact lanes would make the event log timing-dependent.
  /// Enable run_exact for proof-grade serving where latency permits.
  runtime::PortfolioOptions portfolio;

  /// Seed each event's re-solve from the incumbent (see file comment).
  bool warm_start = true;

  /// Sharded, capacity-bounded relaxation cache owned by the server —
  /// a daemon must not grow without bound. 0 entries = unbounded.
  std::size_t cache_shards = 16;
  std::size_t cache_entries = 1 << 16;

  /// Sharded, capacity-bounded compiled-GP model cache (also owned by
  /// the server): one entry per distinct composite *structure*, so the
  /// working set is the number of distinct live-pipeline shapes, not
  /// the event count. 0 entries = unbounded.
  std::size_t model_cache_shards = 4;
  std::size_t model_cache_entries = 256;

  /// Outcomes retained for log(): the newest `log_capacity` events
  /// (0 = unbounded — replay/test harnesses that diff the full log).
  /// Same rationale as the cache bound: a daemon processing millions
  /// of events must not accumulate per-event records forever.
  std::size_t log_capacity = 4096;

  /// Worker threads the portfolio lanes race on (the server keeps one
  /// pool for its lifetime): 1 = sequential lanes, 0 = hardware size.
  int solver_threads = 1;

  /// Composite-problem knobs (the pool-wide objective and the swept
  /// resource fraction; individual pipelines only carry weights).
  double resource_fraction = 1.0;
  double bw_fraction = 1.0;
  double alpha = 1.0;
  double beta = 0.0;

  ServerOptions() {
    portfolio.run_exact = false;
    portfolio.run_naive = false;
    portfolio.max_seconds = 5.0;
    portfolio.max_nodes = 2'000'000;
    // Event seeds come from the *previous* workload's optimum, not the
    // same problem's: open the warm barrier at a coarser gap (see
    // gp::SolverOptions::warm_gap).
    portfolio.gpa.gp.warm_gap = 3e-2;
  }
};

class AllocServer {
 public:
  explicit AllocServer(core::Platform platform, ServerOptions options = {});

  /// Stops accepting events, drains the queue, joins the dispatcher.
  ~AllocServer();

  AllocServer(const AllocServer&) = delete;
  AllocServer& operator=(const AllocServer&) = delete;

  /// Enqueues an event (safe from any thread); the future resolves once
  /// the dispatcher has applied it and re-solved.
  std::future<EventOutcome> submit(Event event);

  /// Convenience: submit and wait. Must not be called from the
  /// dispatcher thread (it would deadlock on itself).
  EventOutcome apply(Event event) { return submit(std::move(event)).get(); }

  /// Idempotent shutdown: drains queued events, then joins.
  void stop();

  // ---- Observers (safe from any thread). -------------------------------

  [[nodiscard]] std::size_t active_pipelines() const;

  /// Copy of the current winning solve (nullopt for an empty pool or
  /// before the first successful solve).
  [[nodiscard]] std::optional<runtime::SolveResult> incumbent() const;

  /// Copy of the retained event outcomes, in sequence order — the
  /// newest ServerOptions::log_capacity of them (all, when 0).
  [[nodiscard]] std::vector<EventOutcome> log() const;

  [[nodiscard]] core::RelaxationCache::Stats cache_stats() const {
    return cache_.stats();
  }

  [[nodiscard]] core::CompiledModelCache::Stats model_cache_stats() const {
    return models_.stats();
  }

 private:
  void dispatcher_loop();
  EventOutcome process(Event event);

  /// Warm seed for the next solve, aligned to `problem`'s kernels from
  /// the per-pipeline totals of the previous one (nullopt on cold
  /// starts or when disabled).
  [[nodiscard]] std::optional<core::RelaxedSolution> make_warm(
      const core::Problem& problem) const;

  ServerOptions options_;
  core::RelaxationCache cache_;
  core::CompiledModelCache models_;
  std::unique_ptr<runtime::ThreadPool> pool_;  ///< null → sequential lanes
  std::unique_ptr<runtime::Portfolio> portfolio_;

  // ---- Dispatcher-owned workload state (read under state_mutex_). ------
  /// The live composite problem, maintained by event deltas (owns the
  /// platform; see service/composite.hpp).
  CompositeBuilder composite_;
  std::vector<PipelineSpec> pipelines_;  ///< live set, arrival order
  std::optional<runtime::SolveResult> incumbent_;
  /// Previous solve's per-pipeline CU totals and ÎI, the warm seed.
  std::unordered_map<std::string, std::vector<double>> last_totals_;
  double last_ii_ = 0.0;
  std::deque<EventOutcome> log_;  ///< newest log_capacity outcomes
  std::uint64_t sequence_ = 0;

  mutable std::mutex state_mutex_;
  EventQueue queue_;
  std::thread dispatcher_;
  bool stopped_ = false;
  std::mutex stop_mutex_;
};

}  // namespace mfa::service
