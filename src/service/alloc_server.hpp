// Long-lived allocation service over the shared multi-FPGA pool.
//
// AllocServer turns the static per-instance solvers into an online
// system: it owns the pool (a core::Platform), the set of live
// pipelines, a sharded capacity-bounded RelaxationCache, and a solver
// ThreadPool, and consumes a stream of events — AddPipeline,
// RemovePipeline, Reprioritize, ResizePlatform — through an MPMC queue.
//
// Each event mutates the workload and triggers an *incremental*
// re-solve of the composite problem (all live pipelines concatenated
// into one super-pipeline on the shared platform, each pipeline's WCETs
// scaled by its priority weight). Incrementality is layered:
//
//  * the composite itself is maintained by a CompositeBuilder
//    (service/composite.hpp) that applies event deltas — Reprioritize
//    rewrites a few WCET coefficients in place, ResizePlatform swaps the
//    platform, only Add/Remove splice the kernel set — instead of
//    rebuilding the super-pipeline from scratch per event;
//  * the solve is warm-started from the incumbent allocation's ÎI/N̂ via
//    SolveRequest::warm, so the root relaxation re-converges in a
//    handful of probes instead of a cold bisection or barrier path, and
//    branch-and-bound node relaxations hit the shared RelaxationCache;
//  * interior-point roots go through a CompiledModelCache keyed by the
//    GP model's *structural* fingerprint: numeric-only events reuse the
//    compiled IR and pay an O(terms) coefficient patch instead of a full
//    lowering (EventOutcome::gp_compiles/gp_patches count both).
//
// Warm starts and both caches are pure accelerations — the solved
// optimum matches a cold solve — and the per-event portfolio budget
// (ServerOptions::portfolio.max_nodes/max_seconds, enforced through the
// portfolio's shared Budget when exact lanes are enabled) bounds each
// event's latency.
//
// Determinism: events are applied in submission order by one dispatcher
// thread, and with the default heuristic-only portfolio every
// EventOutcome field except wall-clock `seconds` is a pure function of
// (initial platform, event sequence, options) — the property the trace
// replayer's byte-identical log check rides on.
//
// Durability (ServerOptions::wal_dir): construct through open() and the
// server keeps a write-ahead log (service/wal.hpp) — each event is
// appended and fsync'd *before* it mutates anything, and the live
// workload is snapshotted every `snapshot_every` events. recover()
// rebuilds a crashed server from snapshot + log tail; because warm
// starts and caches are byte-transparent and the dispatcher is
// deterministic, the recovered incumbent is *byte-identical* to an
// uninterrupted run's (the crash-recovery CI job asserts exactly that).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/compiled_cache.hpp"
#include "core/problem.hpp"
#include "core/relax_cache.hpp"
#include "core/solver_context.hpp"
#include "runtime/portfolio.hpp"
#include "runtime/solve.hpp"
#include "runtime/thread_pool.hpp"
#include "service/composite.hpp"
#include "service/event.hpp"
#include "service/event_queue.hpp"
#include "service/occupancy.hpp"
#include "service/wal.hpp"
#include "solver/packing.hpp"
#include "support/mutex.hpp"

namespace mfa::service {

struct ServerOptions {
  /// Per-event solver configuration. The default differs from the
  /// batch default: exact lanes are off, because a daemon must not
  /// spend minutes proving optimality per event and because wall-clock-
  /// budgeted exact lanes would make the event log timing-dependent.
  /// Enable run_exact for proof-grade serving where latency permits.
  runtime::PortfolioOptions portfolio;

  /// Seed each event's re-solve from the incumbent (see file comment).
  bool warm_start = true;

  /// Sharded, capacity-bounded relaxation cache owned by the server —
  /// a daemon must not grow without bound. 0 entries = unbounded.
  std::size_t cache_shards = 16;
  std::size_t cache_entries = 1 << 16;

  /// Sharded, capacity-bounded compiled-GP model cache (also owned by
  /// the server): one entry per distinct composite *structure*, so the
  /// working set is the number of distinct live-pipeline shapes, not
  /// the event count. 0 entries = unbounded.
  std::size_t model_cache_shards = 4;
  std::size_t model_cache_entries = 256;

  /// Process-wide shared solver resources that *replace* the server-
  /// owned caches above when set — the ShardRouter points every shard
  /// here so all shards share one CompiledModelCache (identical
  /// pipeline structures compile once per process, not once per
  /// shard). Not owned; must outlive the server. See
  /// core/solver_context.hpp.
  const core::SolverContext* context = nullptr;

  /// Outcomes retained for log(): the newest `log_capacity` events
  /// (0 = unbounded — replay/test harnesses that diff the full log).
  /// Same rationale as the cache bound: a daemon processing millions
  /// of events must not accumulate per-event records forever.
  std::size_t log_capacity = 4096;

  /// Worker threads the portfolio lanes race on (the server keeps one
  /// pool for its lifetime): 1 = sequential lanes, 0 = hardware size.
  int solver_threads = 1;

  // ---- Migration-aware stability (ROADMAP item 2). Both budgets off
  // (-1) keeps the solve path byte-identical to the unconstrained
  // server; the diff in EventOutcome is recorded either way. ------------

  /// Max CUs an event may tear down from surviving pipelines before the
  /// stability ladder kicks in (-1 = unlimited).
  int max_moves = -1;
  /// Max surviving non-target pipelines an event may disturb (-1 =
  /// unlimited).
  int max_disturbed = -1;
  /// Soft migration cost the constrained repack adds per torn CU on top
  /// of φ (0 keeps the pure-φ repack objective).
  double move_cost = 0.0;
  /// Deterministic node budget per stability repack (never wall clock —
  /// the event log must stay timing-independent).
  std::int64_t stability_nodes = 200'000;

  /// Composite-problem knobs (the pool-wide objective and the swept
  /// resource fraction; individual pipelines only carry weights).
  double resource_fraction = 1.0;
  double bw_fraction = 1.0;
  double alpha = 1.0;
  double beta = 0.0;

  // ---- Durability (see file comment). Servers with a wal_dir must be
  // constructed through open()/recover(), which can report I/O errors;
  // the plain constructor asserts the field is empty. -------------------

  /// WAL directory; empty disables durability entirely.
  std::string wal_dir;
  /// fsync every append/snapshot. Disable only for benchmarking the
  /// serialization cost without the disk stall.
  bool wal_fsync = true;
  /// Snapshot the live workload every N events (0 = never; recovery
  /// then replays the whole log).
  std::size_t snapshot_every = 256;

  ServerOptions() {
    portfolio.run_exact = false;
    portfolio.run_naive = false;
    portfolio.max_seconds = 5.0;
    portfolio.max_nodes = 2'000'000;
    // Event seeds come from the *previous* workload's optimum, not the
    // same problem's: open the warm barrier at a coarser gap (see
    // gp::SolverOptions::warm_gap).
    portfolio.gpa.gp.warm_gap = 3e-2;
  }
};

/// Aggregate serving counters (all deterministic except the latency
/// percentiles, which are wall clock over the retained log window).
/// Totals cover events processed by *this* process — after recover()
/// they restart at the replayed tail, they are observability, not
/// durable state.
struct ServiceStats {
  std::uint64_t sequence = 0;   ///< next event sequence number
  std::uint64_t events_ok = 0;
  std::uint64_t events_failed = 0;  ///< event status != ok
  /// ResizePlatform events processed. Under a ShardRouter a resize is
  /// broadcast, so every shard counts the same client event once; the
  /// wire API subtracts the duplicates when reporting how many client
  /// events the deployment has processed (the `post --resume` point).
  std::uint64_t resizes = 0;
  std::size_t active_pipelines = 0;
  std::int64_t solve_nodes = 0;
  std::int64_t gp_compiles = 0;
  std::int64_t gp_patches = 0;
  std::uint64_t model_hits = 0;
  std::uint64_t model_misses = 0;
  std::uint64_t relax_hits = 0;
  // Migration totals (see AllocationDiff): CUs torn down and pipelines
  // disturbed across all events, plus how often the stability ladder
  // repacked or gave up.
  std::uint64_t cus_moved = 0;
  std::uint64_t pipelines_disturbed = 0;
  std::uint64_t stability_repacks = 0;
  std::uint64_t budget_exceeded = 0;
  std::uint64_t snapshots = 0;   ///< snapshots successfully written
  std::uint64_t wal_errors = 0;  ///< failed appends/snapshots
  /// Heap allocations observed inside warm delta application across all
  /// events (see EventOutcome::warm_allocs; 0 unless the counting
  /// interposer is linked).
  std::uint64_t warm_allocs = 0;
  double p50_ms = 0.0;  ///< event latency percentiles over log()
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;  ///< slowest event in the retained log window
};

class AllocServer {
 public:
  explicit AllocServer(core::Platform platform, ServerOptions options = {});

  /// Constructs a server, creating a *fresh* WAL when
  /// options.wal_dir is set (any previous log there is truncated —
  /// use recover() to resume one). With an empty wal_dir this is the
  /// plain constructor behind a StatusOr.
  static StatusOr<std::unique_ptr<AllocServer>> open(core::Platform platform,
                                                     ServerOptions options);

  /// Rebuilds a server from options.wal_dir: loads the snapshot (if
  /// any), re-solves the spliced workload once, replays the log tail
  /// through the normal dispatcher path, then resumes appending to the
  /// same log. The caller must pass the same solver/composite options
  /// as the original run for the byte-identity guarantee to hold (the
  /// pool's *shape* comes from the WAL, not from the options).
  static StatusOr<std::unique_ptr<AllocServer>> recover(ServerOptions options);

  /// Stops accepting events, drains the queue, joins the dispatcher.
  ~AllocServer();

  AllocServer(const AllocServer&) = delete;
  AllocServer& operator=(const AllocServer&) = delete;

  /// Enqueues an event (safe from any thread); the future resolves once
  /// the dispatcher has applied it and re-solved.
  std::future<EventOutcome> submit(Event event);

  /// Convenience: submit and wait. Must not be called from the
  /// dispatcher thread (it would deadlock on itself).
  EventOutcome apply(Event event) { return submit(std::move(event)).get(); }

  /// Idempotent shutdown: drains queued events, then joins.
  void stop();

  // ---- Observers (safe from any thread). -------------------------------

  [[nodiscard]] std::size_t active_pipelines() const;

  /// Copy of the current winning solve (nullopt for an empty pool or
  /// before the first successful solve).
  [[nodiscard]] std::optional<runtime::SolveResult> incumbent() const;

  /// Copy of the retained event outcomes, in sequence order — the
  /// newest ServerOptions::log_capacity of them (all, when 0).
  [[nodiscard]] std::vector<EventOutcome> log() const;

  /// Aggregate serving counters (see ServiceStats).
  [[nodiscard]] ServiceStats stats() const;

  /// Snapshot of the per-FPGA occupancy ledger (copies are cheap plain
  /// data; invalid/empty before the first successful solve).
  [[nodiscard]] OccupancyTracker occupancy() const;

  [[nodiscard]] core::RelaxationCache::Stats cache_stats() const {
    return relax_cache_->stats();
  }

  [[nodiscard]] core::CompiledModelCache::Stats model_cache_stats() const {
    return model_cache_->stats();
  }

 private:
  /// Tag for the delegated constructor that wires everything but does
  /// not start the dispatcher (open()/recover() finish WAL setup first).
  struct DeferStart {};
  AllocServer(core::Platform platform, ServerOptions options, DeferStart);
  void start();

  void dispatcher_loop();
  /// Applies one event end to end (WAL append, composite delta,
  /// re-solve, snapshot); acquires state_mutex_ for the whole mutation.
  EventOutcome process(Event event) MFA_EXCLUDES(state_mutex_);

  /// Re-solves the current composite and refreshes incumbent/seed/
  /// occupancy state, recording solve provenance and the migration diff
  /// into `outcome` (outcome.id names the event's target, "" for
  /// resize). Requires state_mutex_ held and a non-empty pipeline set.
  void resolve_workload(EventOutcome& outcome) MFA_REQUIRES(state_mutex_);

  /// Stability ladder for an over-budget unconstrained result: tries a
  /// constrained repack of its totals, then a pinned placement that
  /// keeps every surviving pipeline exactly in place; on success swaps
  /// the accepted allocation into `result` and stamps outcome.diff.
  /// Requires state_mutex_ held.
  void apply_stability(runtime::SolveResult& result, EventOutcome& outcome)
      MFA_REQUIRES(state_mutex_);

  /// The two numeric deltas (weight rewrite, platform swap), shared by
  /// the forward path and the structural-validation rollback. These are
  /// the dispatcher's end of the warm event path — coefficient/RHS
  /// rewrites that must stay allocation-free through the composite,
  /// patch_function/patch_affine and the batched kernels (see ROADMAP
  /// item 1; the static face of `service_churn --check`). Require
  /// state_mutex_ held.
  MFA_WARM_PATH void apply_reprioritize(std::size_t index, double weight)
      MFA_REQUIRES(state_mutex_);
  MFA_WARM_PATH void apply_resize(core::Platform platform)
      MFA_REQUIRES(state_mutex_);

  /// Rebuilds dispatcher state from a loaded WAL (called before
  /// start(); see recover()).
  Status restore(const WalRecovery& recovery) MFA_EXCLUDES(state_mutex_);

  /// Splices a snapshot's placement ledger into the just-re-derived
  /// incumbent (exact rows, recomputed II/φ/goal, occupancy refresh) —
  /// the path-dependence fix for recovery under migration budgets.
  /// No-op for empty (pre-PR-8) ledgers. Requires state_mutex_ held.
  Status restore_placements(const std::vector<PipelinePlacement>& placements)
      MFA_REQUIRES(state_mutex_);

  /// Appends the retained outcome and trims to log_capacity. Requires
  /// state_mutex_ held.
  void retain_outcome(const EventOutcome& outcome)
      MFA_REQUIRES(state_mutex_);

  /// Warm seed for the next solve, aligned to `problem`'s kernels from
  /// the per-pipeline totals of the previous one (nullopt on cold
  /// starts or when disabled).
  [[nodiscard]] std::optional<core::RelaxedSolution> make_warm(
      const core::Problem& problem) const MFA_REQUIRES(state_mutex_);

  // ---- Construction-time wiring: set before the dispatcher starts,
  // immutable afterwards (or internally synchronized). No GUARDED_BY —
  // each carries its own thread-model justification. -------------------
  // mfa-lint: allow(mutex-hygiene) immutable after construction
  ServerOptions options_;
  // mfa-lint: allow(mutex-hygiene) ShardedCache, internally synchronized
  core::RelaxationCache cache_;
  // mfa-lint: allow(mutex-hygiene) ShardedCache, internally synchronized
  core::CompiledModelCache models_;
  /// Memoized greedy placements (alloc/greedy.hpp): service churn
  /// re-places identical (problem, totals) pairs across events and
  /// portfolio lanes, so placements are computed once and replayed.
  // mfa-lint: allow(mutex-hygiene) ShardedCache, internally synchronized
  alloc::GreedyCache greedy_cache_;
  /// Effective caches: ServerOptions::context overrides the owned ones.
  // mfa-lint: allow(mutex-hygiene) set in ctor, immutable afterwards
  core::RelaxationCache* relax_cache_ = nullptr;
  // mfa-lint: allow(mutex-hygiene) set in ctor, immutable afterwards
  core::CompiledModelCache* model_cache_ = nullptr;
  /// The single wiring point handed to the portfolio (caches + pool).
  // mfa-lint: allow(mutex-hygiene) immutable after construction
  core::SolverContext ctx_;
  /// null → sequential lanes
  // mfa-lint: allow(mutex-hygiene) set in ctor; ThreadPool self-syncs
  std::unique_ptr<runtime::ThreadPool> pool_;
  // mfa-lint: allow(mutex-hygiene) set in ctor; solves serialized by
  // the dispatcher
  std::unique_ptr<runtime::Portfolio> portfolio_;

  // ---- Dispatcher-owned workload state, guarded by state_mutex_
  // (declared first so the GUARDED_BY annotations can name it). The
  // dispatcher is the only mutator; observers take the same lock so
  // they always see a consistent (workload, incumbent) pair. -----------
  mutable Mutex state_mutex_;
  /// The live composite problem, maintained by event deltas (owns the
  /// platform; see service/composite.hpp).
  CompositeBuilder composite_ MFA_GUARDED_BY(state_mutex_);
  /// Live set, arrival order.
  std::vector<PipelineSpec> pipelines_ MFA_GUARDED_BY(state_mutex_);
  std::optional<runtime::SolveResult> incumbent_
      MFA_GUARDED_BY(state_mutex_);
  /// Per-FPGA ledger + per-pipeline placement records, lock-step with
  /// incumbent_ (updated inside resolve_workload, cleared with it).
  OccupancyTracker occupancy_ MFA_GUARDED_BY(state_mutex_);
  /// Previous solve's per-pipeline CU totals and ÎI, the warm seed.
  std::unordered_map<std::string, std::vector<double>> last_totals_
      MFA_GUARDED_BY(state_mutex_);
  double last_ii_ MFA_GUARDED_BY(state_mutex_) = 0.0;
  /// Newest log_capacity outcomes.
  std::deque<EventOutcome> log_ MFA_GUARDED_BY(state_mutex_);
  std::uint64_t sequence_ MFA_GUARDED_BY(state_mutex_) = 0;
  ServiceStats stats_ MFA_GUARDED_BY(state_mutex_);

  /// Durability; engaged by open()/recover() before the dispatcher
  /// starts, then appended to by process() under state_mutex_.
  std::optional<Wal> wal_ MFA_GUARDED_BY(state_mutex_);
  /// True while restore() replays the log: suppresses re-appending the
  /// replayed events to the WAL and re-counting snapshots.
  bool replaying_ MFA_GUARDED_BY(state_mutex_) = false;

  // mfa-lint: allow(mutex-hygiene) EventQueue, internally synchronized
  EventQueue queue_;
  // mfa-lint: allow(mutex-hygiene) started/joined only under stop_mutex_
  std::thread dispatcher_;
  Mutex stop_mutex_;
  bool started_ MFA_GUARDED_BY(stop_mutex_) = false;
  bool stopped_ MFA_GUARDED_BY(stop_mutex_) = false;
};

}  // namespace mfa::service
