// Incremental composite super-pipeline builder.
//
// The allocation service solves one composite problem per event: all
// live pipelines concatenated into a single super-pipeline on the shared
// platform, each pipeline's WCETs scaled by its priority weight. PR 4
// rebuilt that composite from scratch on every event — re-deriving every
// kernel name and scaled WCET even when the event changed a single
// number. This builder keeps the composite *live* and applies event
// deltas instead:
//
//   Reprioritize   → coefficient patch: rewrite the affected pipeline's
//                    scaled WCETs in place (structure untouched)
//   ResizePlatform → constraint-RHS patch: swap the platform object
//                    (kernel set untouched)
//   Add/Remove     → structural edit: splice the pipeline's kernel range
//                    in or out (new structural fingerprint downstream)
//
// Every delta is reversible (the server rolls a mutation back when the
// resulting composite fails structural validation), and the maintained
// problem is bit-identical to what the wholesale rebuild would produce —
// kernel order is concatenation order of the live pipelines, scaled
// WCETs are computed from the same base numbers with the same
// expression. That identity is what keeps relaxation-cache keys and the
// compiled-GP structural fingerprint stable across numeric-only events,
// which is where the serving-path speedup comes from (see
// core/compiled_cache.hpp).
//
// Snapshots are copy-on-write: snapshot() hands out a shared_ptr to the
// current problem; the next mutation clones only if someone (the solve
// result, the incumbent) still holds that snapshot.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/problem.hpp"
#include "service/event.hpp"
#include "support/thread_annotations.hpp"

namespace mfa::service {

/// Composite-problem knobs fixed for the builder's lifetime (the
/// pool-wide objective and the swept resource fractions; individual
/// pipelines only carry weights).
struct CompositeConfig {
  double resource_fraction = 1.0;
  double bw_fraction = 1.0;
  double alpha = 1.0;
  double beta = 0.0;
};

class CompositeBuilder {
 public:
  CompositeBuilder(core::Platform platform, const CompositeConfig& config);

  // ---- Delta operations. Pipeline indices address the server's live
  // list; kernel order in the composite is always the concatenation
  // order of that list. ------------------------------------------------

  /// Appends `pipe`'s kernels (scaled by its weight) at the end.
  void add_pipeline(const PipelineSpec& pipe);

  /// Reinserts `pipe` at position `index` — the inverse of
  /// remove_pipeline for rollback.
  void insert_pipeline(std::size_t index, const PipelineSpec& pipe);

  /// Splices pipeline `index`'s kernel range out.
  void remove_pipeline(std::size_t index);

  /// Rewrites pipeline `index`'s scaled WCETs from `pipe` (which carries
  /// the new weight). Coefficient-only: names, order and every other
  /// kernel field stay untouched.
  MFA_WARM_PATH void reprioritize(std::size_t index, const PipelineSpec& pipe);

  /// Swaps the platform. RHS-only: the kernel set stays untouched.
  /// (Named resize_platform, not resize, so the lexical warm-path lint
  /// can tell it apart from container resize calls.)
  MFA_WARM_PATH void resize_platform(core::Platform platform);

  // ---- Observers. ----------------------------------------------------

  [[nodiscard]] std::size_t num_pipelines() const { return ranges_.size(); }
  [[nodiscard]] bool empty() const { return ranges_.empty(); }
  [[nodiscard]] const core::Platform& platform() const {
    return problem_->platform;
  }

  /// Shared snapshot of the current composite. The returned problem is
  /// immutable; later mutations clone first (copy-on-write) when the
  /// snapshot is still referenced, so a solve result keeps its problem
  /// alive unchanged for as long as it needs it.
  [[nodiscard]] std::shared_ptr<const core::Problem> snapshot();

 private:
  /// Clones the problem if a snapshot still shares it.
  void ensure_unique();

  /// Kernel range [begin, begin + count) of one live pipeline.
  struct Range {
    std::size_t begin = 0;
    std::size_t count = 0;
  };

  std::shared_ptr<core::Problem> problem_;
  std::vector<Range> ranges_;  ///< parallel to the server's live list
};

}  // namespace mfa::service
