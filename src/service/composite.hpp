// Incremental composite super-pipeline builder.
//
// The allocation service solves one composite problem per event: all
// live pipelines concatenated into a single super-pipeline on the shared
// platform, each pipeline's WCETs scaled by its priority weight. PR 4
// rebuilt that composite from scratch on every event — re-deriving every
// kernel name and scaled WCET even when the event changed a single
// number. This builder keeps the composite *live* and applies event
// deltas instead:
//
//   Reprioritize   → coefficient patch: rewrite the affected pipeline's
//                    scaled WCETs in place (structure untouched)
//   ResizePlatform → constraint-RHS patch: swap the platform object
//                    (kernel set untouched)
//   Add/Remove     → structural edit: splice the pipeline's kernel range
//                    in or out (new structural fingerprint downstream)
//
// Every delta is reversible (the server rolls a mutation back when the
// resulting composite fails structural validation), and the maintained
// problem is bit-identical to what the wholesale rebuild would produce —
// kernel order is concatenation order of the live pipelines, scaled
// WCETs are computed from the same base numbers with the same
// expression. That identity is what keeps relaxation-cache keys and the
// compiled-GP structural fingerprint stable across numeric-only events,
// which is where the serving-path speedup comes from (see
// core/compiled_cache.hpp).
//
// The builder owns the live problem *by value* — the warm deltas above
// write doubles (or move-assign the platform) into memory nobody else
// can see, so they are allocation-free by construction; there is no
// copy-on-write clone left on the warm path (the old ensure_unique()).
// snapshot() publishes through a two-slot ring of shared immutable
// copies: each published Problem carries the builder's current
// core::ProblemStructure skeleton, and a slot is reused with a
// numerics-only refresh (Problem::assign_numerics_from — no allocation
// for an unchanged shape) when nothing outside the builder still holds
// it and its skeleton is current; otherwise the slot is replaced by a
// fresh copy, leaving the old snapshot untouched for its holders. Two
// slots cover the steady state exactly: the server's incumbent pins
// event N−1's snapshot while event N publishes into the other slot.
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/problem.hpp"
#include "service/event.hpp"
#include "support/thread_annotations.hpp"

namespace mfa::service {

/// Composite-problem knobs fixed for the builder's lifetime (the
/// pool-wide objective and the swept resource fractions; individual
/// pipelines only carry weights).
struct CompositeConfig {
  double resource_fraction = 1.0;
  double bw_fraction = 1.0;
  double alpha = 1.0;
  double beta = 0.0;
};

class CompositeBuilder {
 public:
  CompositeBuilder(core::Platform platform, const CompositeConfig& config);

  // ---- Delta operations. Pipeline indices address the server's live
  // list; kernel order in the composite is always the concatenation
  // order of that list. ------------------------------------------------

  /// Appends `pipe`'s kernels (scaled by its weight) at the end.
  void add_pipeline(const PipelineSpec& pipe);

  /// Reinserts `pipe` at position `index` — the inverse of
  /// remove_pipeline for rollback.
  void insert_pipeline(std::size_t index, const PipelineSpec& pipe);

  /// Splices pipeline `index`'s kernel range out.
  void remove_pipeline(std::size_t index);

  /// Rewrites pipeline `index`'s scaled WCETs from `pipe` (which carries
  /// the new weight). Coefficient-only: names, order and every other
  /// kernel field stay untouched — plain double stores, no allocation.
  MFA_WARM_PATH void reprioritize(std::size_t index, const PipelineSpec& pipe);

  /// Swaps the platform. RHS-only: the kernel set stays untouched; the
  /// incoming platform is move-assigned, so no allocation either.
  /// (Named resize_platform, not resize, so the lexical warm-path lint
  /// can tell it apart from container resize calls.)
  MFA_WARM_PATH void resize_platform(core::Platform platform);

  // ---- Observers. ----------------------------------------------------

  [[nodiscard]] std::size_t num_pipelines() const { return ranges_.size(); }
  [[nodiscard]] bool empty() const { return ranges_.empty(); }
  [[nodiscard]] const core::Platform& platform() const {
    return problem_.platform;
  }

  /// The live composite by const reference — for validation and
  /// inspection that must not cycle (or pin) the publish ring. Valid
  /// only until the next mutation; callers that need to keep the
  /// problem use snapshot().
  [[nodiscard]] const core::Problem& live() const { return problem_; }

  /// Shared snapshot of the current composite. The returned problem is
  /// immutable for as long as the caller holds it: the builder only
  /// refreshes a publish slot it is the sole owner of, and replaces the
  /// slot (never the object) when a previous snapshot is still alive.
  /// Byte-identical to the live problem at the time of the call.
  [[nodiscard]] std::shared_ptr<const core::Problem> snapshot();

 private:
  /// Re-captures the structure skeleton after a structural edit and
  /// rebinds it to the live problem.
  void rebind_structure();

  /// Kernel range [begin, begin + count) of one live pipeline.
  struct Range {
    std::size_t begin = 0;
    std::size_t count = 0;
  };

  /// The live composite, owned by value: warm deltas mutate it freely.
  core::Problem problem_;
  /// Current structure skeleton; problem_.structure aliases it. Used as
  /// a pointer-equality witness that a publish slot needs only a
  /// numeric refresh.
  std::shared_ptr<const core::ProblemStructure> structure_;
  /// Round-robin publish ring (see file comment).
  std::array<std::shared_ptr<core::Problem>, 2> publish_;
  std::size_t next_slot_ = 0;
  std::vector<Range> ranges_;  ///< parallel to the server's live list
};

}  // namespace mfa::service
