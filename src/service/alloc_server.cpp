#include "service/alloc_server.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "support/alloc_count.hpp"
#include "support/assert.hpp"

namespace mfa::service {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

AllocServer::AllocServer(core::Platform platform, ServerOptions options,
                         DeferStart)
    : options_(std::move(options)),
      cache_(core::RelaxCacheConfig{options_.cache_shards,
                                    options_.cache_entries}),
      models_(core::CacheConfig{options_.model_cache_shards,
                                options_.model_cache_entries}),
      composite_(std::move(platform),
                 CompositeConfig{options_.resource_fraction,
                                 options_.bw_fraction, options_.alpha,
                                 options_.beta}) {
  // Context-provided caches (e.g. the ShardRouter's process-wide model
  // cache) replace the owned ones; everything downstream goes through
  // the pointers.
  relax_cache_ = options_.context != nullptr &&
                         options_.context->relax_cache != nullptr
                     ? options_.context->relax_cache
                     : &cache_;
  model_cache_ = options_.context != nullptr &&
                         options_.context->model_cache != nullptr
                     ? options_.context->model_cache
                     : &models_;
  if (options_.solver_threads != 1) {
    pool_ = std::make_unique<runtime::ThreadPool>(options_.solver_threads);
  }
  // One wiring point for the portfolio: ctx_ is a stable member, so the
  // portfolio's copied options can point at it for the server's
  // lifetime. The pool is passed to the Portfolio directly (it owns the
  // lane fan-out), not through the context.
  ctx_.relax_cache = relax_cache_;
  ctx_.model_cache = model_cache_;
  options_.portfolio.context = &ctx_;
  options_.portfolio.relax_cache = nullptr;
  options_.portfolio.model_cache = nullptr;
  // Greedy placements are memoized server-wide: every GP+A lane of every
  // event consults one cache (the portfolio copies these options, so the
  // pointer must be set before the Portfolio is constructed).
  if (options_.portfolio.gpa.greedy.cache == nullptr) {
    options_.portfolio.gpa.greedy.cache = &greedy_cache_;
  }
  portfolio_ = std::make_unique<runtime::Portfolio>(options_.portfolio,
                                                    pool_.get());
}

AllocServer::AllocServer(core::Platform platform, ServerOptions options)
    : AllocServer(std::move(platform), std::move(options), DeferStart{}) {
  MFA_ASSERT_MSG(options_.wal_dir.empty(),
                 "WAL-enabled servers must be built via AllocServer::open() "
                 "or recover(), which can report I/O errors");
  start();
}

void AllocServer::start() {
  {
    LockGuard lock(stop_mutex_);
    MFA_ASSERT(!started_);
    started_ = true;
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

StatusOr<std::unique_ptr<AllocServer>> AllocServer::open(
    core::Platform platform, ServerOptions options) {
  std::unique_ptr<AllocServer> server(
      new AllocServer(platform, std::move(options), DeferStart{}));
  if (!server->options_.wal_dir.empty()) {
    StatusOr<Wal> wal =
        Wal::create(server->options_.wal_dir, platform,
                    Wal::Options{server->options_.wal_fsync});
    if (!wal.is_ok()) return wal.status();
    server->wal_.emplace(std::move(wal.value()));
  }
  server->start();
  return StatusOr<std::unique_ptr<AllocServer>>(std::move(server));
}

StatusOr<std::unique_ptr<AllocServer>> AllocServer::recover(
    ServerOptions options) {
  if (options.wal_dir.empty()) {
    return Status{Code::kInvalid, "recover: ServerOptions::wal_dir not set"};
  }
  StatusOr<WalRecovery> loaded = Wal::load(options.wal_dir);
  if (!loaded.is_ok()) return loaded.status();
  WalRecovery& recovery = loaded.value();
  std::unique_ptr<AllocServer> server(new AllocServer(
      recovery.initial_platform, std::move(options), DeferStart{}));
  if (Status s = server->restore(recovery); !s.is_ok()) return s;
  StatusOr<Wal> wal = Wal::open(server->options_.wal_dir,
                                Wal::Options{server->options_.wal_fsync});
  if (!wal.is_ok()) return wal.status();
  server->wal_.emplace(std::move(wal.value()));
  server->start();
  return StatusOr<std::unique_ptr<AllocServer>>(std::move(server));
}

Status AllocServer::restore(const WalRecovery& recovery) {
  // restore() runs before start(), so no dispatcher or observer exists
  // yet — but every guarded member is still touched under state_mutex_
  // (the locks are uncontended and free; pre-start single-threadedness
  // is a convention the analysis cannot see, and unguarded access here
  // is exactly the kind of latent bug -Wthread-safety exists to stop).
  {
    LockGuard lock(state_mutex_);
    replaying_ = true;
  }
  if (recovery.snapshot) {
    // Splice the snapshotted workload in wholesale, then re-derive the
    // incumbent with one solve: the incumbent is a pure function of
    // (platform, live pipelines, options) and warm starts are
    // byte-transparent, so this lands on exactly the allocation the
    // uninterrupted run held at the snapshot point.
    LockGuard lock(state_mutex_);
    composite_.resize_platform(recovery.snapshot->platform);
    for (const PipelineSpec& pipe : recovery.snapshot->pipelines) {
      pipelines_.push_back(pipe);
      composite_.add_pipeline(pipelines_.back());
    }
    sequence_ = recovery.snapshot->sequence;
    if (!pipelines_.empty()) {
      EventOutcome scratch;  // re-derivation; not an event, not logged
      resolve_workload(scratch);
      // Under migration budgets the incumbent is path-dependent (a
      // repack's output depends on the placement the events before the
      // snapshot left behind), so the pure re-derivation above may
      // diverge from the crashed run. PR-8 snapshots carry the ledger:
      // splice its exact rows back in. Without budgets the rows match
      // the re-derivation and this is a byte-level no-op.
      if (Status s = restore_placements(recovery.snapshot->placements);
          !s.is_ok()) {
        replaying_ = false;
        return s;
      }
    }
  }
  for (const WalRecord& record : recovery.tail) {
    {
      LockGuard lock(state_mutex_);
      if (record.sequence < sequence_) {
        replaying_ = false;
        return Status{Code::kInvalid,
                      "wal replay: record sequence " +
                          std::to_string(record.sequence) +
                          " behind server sequence " +
                          std::to_string(sequence_)};
      }
      // Gaps are events that failed durability and were never applied.
      sequence_ = record.sequence;
    }
    EventOutcome outcome = process(Event(record.event));
    LockGuard lock(state_mutex_);
    retain_outcome(outcome);
  }
  {
    LockGuard lock(state_mutex_);
    sequence_ = std::max(sequence_, recovery.next_sequence);
    stats_.sequence = sequence_;
    replaying_ = false;
  }
  return Status::ok();
}

Status AllocServer::restore_placements(
    const std::vector<PipelinePlacement>& placements) {
  if (placements.empty()) return Status::ok();  // pre-PR-8 snapshot
  if (!incumbent_ || !incumbent_->allocation) {
    return Status{Code::kInvalid,
                  "wal snapshot: placements for an unsolvable workload"};
  }
  if (placements.size() != pipelines_.size()) {
    return Status{Code::kInvalid,
                  "wal snapshot: placement ledger covers " +
                      std::to_string(placements.size()) + " pipelines, " +
                      std::to_string(pipelines_.size()) + " are live"};
  }
  const core::Problem& problem = *incumbent_->problem;
  const std::size_t fpgas = static_cast<std::size_t>(problem.num_fpgas());
  core::Allocation exact(problem);
  std::size_t k = 0;
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const PipelinePlacement& record = placements[i];
    const PipelineSpec& pipe = pipelines_[i];
    if (record.id != pipe.id ||
        record.rows.size() != pipe.app.kernels.size()) {
      return Status{Code::kInvalid,
                    "wal snapshot: placement ledger out of step with "
                    "pipeline '" +
                        pipe.id + "'"};
    }
    for (const std::vector<int>& row : record.rows) {
      if (row.size() != fpgas) {
        return Status{Code::kInvalid,
                      "wal snapshot: placement row width " +
                          std::to_string(row.size()) + " on a " +
                          std::to_string(fpgas) + "-FPGA pool"};
      }
      for (std::size_t f = 0; f < fpgas; ++f) {
        exact.set_cu(k, static_cast<int>(f), row[f]);
      }
      ++k;
    }
  }
  if (!exact.feasible()) {
    return Status{Code::kInvalid,
                  "wal snapshot: placement ledger is infeasible on the "
                  "snapshotted pool"};
  }
  incumbent_->allocation = std::move(exact);
  incumbent_->ii = incumbent_->allocation->ii();
  incumbent_->phi = incumbent_->allocation->phi();
  incumbent_->goal = incumbent_->allocation->goal();
  occupancy_.update(problem, pipelines_, *incumbent_->allocation);
  return Status::ok();
}

AllocServer::~AllocServer() { stop(); }

void AllocServer::stop() {
  LockGuard lock(stop_mutex_);
  if (stopped_) return;
  stopped_ = true;
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::future<EventOutcome> AllocServer::submit(Event event) {
  return queue_.push(std::move(event));
}

void AllocServer::dispatcher_loop() {
  while (auto item = queue_.pop()) {
    EventOutcome outcome = process(std::move(item->event));
    {
      LockGuard lock(state_mutex_);
      retain_outcome(outcome);
    }
    item->reply.set_value(std::move(outcome));
  }
}

void AllocServer::retain_outcome(const EventOutcome& outcome) {
  log_.push_back(outcome);
  if (options_.log_capacity > 0) {
    while (log_.size() > options_.log_capacity) log_.pop_front();
  }
}

std::optional<core::RelaxedSolution> AllocServer::make_warm(
    const core::Problem& problem) const {
  if (!options_.warm_start || last_ii_ <= 0.0) return std::nullopt;
  core::RelaxedSolution warm;
  warm.ii = last_ii_;
  warm.n_hat.reserve(problem.num_kernels());
  for (const PipelineSpec& pipe : pipelines_) {
    auto it = last_totals_.find(pipe.id);
    for (std::size_t k = 0; k < pipe.app.kernels.size(); ++k) {
      if (it != last_totals_.end() && k < it->second.size()) {
        // Surviving pipeline: carry its previous N̂ over.
        warm.n_hat.push_back(it->second[k]);
      } else {
        // New arrival: the CU count that would meet the incumbent ÎI.
        const double wcet = pipe.app.kernels[k].wcet_ms * pipe.weight;
        warm.n_hat.push_back(std::max(1.0, wcet / last_ii_));
      }
    }
  }

  // Pull the seed inside the *new* composite's pooled constraints: a
  // fresh arrival's N̂ rides on top of the survivors', which can
  // overshoot the pool and force the barrier's phase I to run from an
  // infeasible point. Scaling N̂ by s < 1 and ÎI by 1/s preserves the
  // latency products ÎI·N̂_k, so the scaled seed stays latency-feasible
  // while re-entering the resource region (the 0.95 margin keeps it
  // strictly interior; the N̂ ≥ 1 clamp in the GP warm path can nudge
  // usage back up, which the margin absorbs).
  const core::ResourceVec pooled = problem.pooled_cap();
  double scale = 1.0;
  for (std::size_t axis = 0; axis < core::kNumResources; ++axis) {
    if (pooled.axis(axis) <= 0.0) continue;
    double used = 0.0;
    for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
      used += warm.n_hat[k] * problem.app.kernels[k].res.axis(axis);
    }
    if (used > 0.0) {
      scale = std::min(scale, 0.95 * pooled.axis(axis) / used);
    }
  }
  double bw_used = 0.0;
  for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
    bw_used += warm.n_hat[k] * problem.app.kernels[k].bw;
  }
  if (bw_used > 0.0 && problem.pooled_bw_cap() > 0.0) {
    scale = std::min(scale, 0.95 * problem.pooled_bw_cap() / bw_used);
  }
  if (scale < 1.0) {
    warm.ii /= scale;
    for (double& n : warm.n_hat) n *= scale;
  }
  return warm;
}

void AllocServer::resolve_workload(EventOutcome& outcome) {
  // Sample the compilation/cache counters around the solve so the
  // outcome records what this event actually paid for (with sequential
  // lanes — the default — these deltas are deterministic; see
  // EventOutcome).
  const std::int64_t compiles0 = gp::total_structure_compiles();
  const std::int64_t patches0 = gp::total_coefficient_patches();
  const auto models0 = model_cache_->stats();
  const auto relax0 = relax_cache_->stats();
  runtime::SolveRequest request;
  request.problem = composite_.snapshot();
  request.warm = make_warm(*request.problem);
  outcome.solve.warm_started = request.warm.has_value();
  runtime::SolveResult result = portfolio_->solve(request);
  outcome.solve_status = result.status;
  outcome.solve.nodes = result.nodes;
  outcome.cache.gp_compiles = gp::total_structure_compiles() - compiles0;
  outcome.cache.gp_patches = gp::total_coefficient_patches() - patches0;
  const auto models1 = model_cache_->stats();
  const auto relax1 = relax_cache_->stats();
  outcome.cache.model_hits = models1.hits - models0.hits;
  outcome.cache.model_misses = models1.misses - models0.misses;
  outcome.cache.relax_hits = relax1.hits - relax0.hits;
  if (result.is_ok() && result.allocation) {
    // Diff the unconstrained optimum against the occupancy records
    // (recorded whether or not stability is configured — "stability
    // off" and "budgets too large to bind" produce identical logs);
    // when it busts a configured budget the ladder may swap in a
    // gentler allocation and re-stamp the diff.
    outcome.diff =
        occupancy_.diff_against(pipelines_, *result.allocation, outcome.id);
    apply_stability(result, outcome);
    // Refresh the warm seed: the winning lane's root relaxation
    // (ÎI, N̂), sliced per pipeline so surviving tenants carry their N̂
    // into the next composite. An exact-lane winner has no root; fall
    // back to its integer totals.
    last_totals_.clear();
    const bool have_relaxed =
        result.relaxed.has_value() &&
        result.relaxed->n_hat.size() == result.allocation->num_kernels();
    std::size_t k = 0;
    for (const PipelineSpec& pipe : pipelines_) {
      std::vector<double>& totals = last_totals_[pipe.id];
      totals.reserve(pipe.app.kernels.size());
      for (std::size_t j = 0; j < pipe.app.kernels.size(); ++j, ++k) {
        totals.push_back(have_relaxed
                             ? result.relaxed->n_hat[k]
                             : static_cast<double>(
                                   result.allocation->total_cu(k)));
      }
    }
    last_ii_ = have_relaxed ? result.relaxed->ii : result.ii;
    incumbent_ = std::move(result);
    // Occupancy moves in lock-step with the incumbent: the same update
    // happens inside recovery's re-derivation solve and tail replay, so
    // a recovered ledger is byte-identical to an uninterrupted run's.
    occupancy_.update(*request.problem, pipelines_,
                      *incumbent_->allocation);
  } else {
    // Keep serving the previous allocation (and its occupancy records);
    // the failed state's seed data would poison the next warm start, so
    // drop it.
    last_totals_.clear();
    last_ii_ = 0.0;
  }
}

void AllocServer::apply_stability(runtime::SolveResult& result,
                                  EventOutcome& outcome) {
  const bool budgeted =
      options_.max_moves >= 0 || options_.max_disturbed >= 0;
  if (!budgeted && options_.move_cost <= 0.0) return;  // stability off
  if (!outcome.diff.computed) return;  // no reference placement yet
  const bool over =
      (options_.max_moves >= 0 &&
       outcome.diff.cus_moved > options_.max_moves) ||
      (options_.max_disturbed >= 0 &&
       outcome.diff.pipelines_disturbed > options_.max_disturbed);
  // A pure soft cost re-packs whenever the optimum moves anything; hard
  // budgets only engage the ladder once busted (so generous budgets
  // leave the solve path — and the event log — untouched).
  if (!over && !(options_.move_cost > 0.0 && outcome.diff.cus_moved > 0)) {
    return;
  }

  const core::Problem& problem = *result.problem;
  const double unconstrained_goal = result.goal;
  solver::StabilityOptions stab =
      occupancy_.make_stability(pipelines_, outcome.id);
  stab.max_moves = options_.max_moves;
  stab.max_disturbed = options_.max_disturbed;
  stab.move_cost = options_.move_cost;
  stab.repack_nodes = options_.stability_nodes;

  std::vector<int> totals(problem.num_kernels(), 0);
  for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
    totals[k] = result.allocation->total_cu(k);
  }

  const solver::PackingSolver packer(problem);
  const auto adopt = [&](const solver::PackingResult& packed) {
    result.allocation = *packed.allocation;
    result.ii = result.allocation->ii();
    result.phi = result.allocation->phi();
    result.goal = result.allocation->goal();
    outcome.diff =
        occupancy_.diff_against(pipelines_, *result.allocation, outcome.id);
    outcome.diff.goal_regret = std::max(0.0, result.goal - unconstrained_goal);
    outcome.diff.stability_applied = true;
  };

  // Rung 1: repack the optimum's own totals under the budgets. Same
  // totals ⇒ same II, so any regret is pure φ.
  {
    solver::Budget budget =
        solver::Budget::nodes_only(options_.stability_nodes);
    const solver::PackingResult packed = packer.pack(
        totals, solver::PackingMode::kMinSpreading, budget, &stab);
    if (packed.feasible && packed.allocation) {
      adopt(packed);
      return;
    }
  }

  // Rung 2: pin every surviving pipeline exactly where it is (zero
  // budgets) and place only the event's target into the holes. Totals
  // change, so II may too — the regret covers both terms.
  if (stab.exempt_group >= 0) {
    std::vector<int> pinned = totals;
    for (std::size_t k = 0; k < stab.reference.size(); ++k) {
      if (!stab.group_of.empty() && stab.group_of[k] == stab.exempt_group) {
        continue;
      }
      if (stab.reference[k].empty()) continue;  // new arrival: keep A* total
      int held = 0;
      for (const int n : stab.reference[k]) held += n;
      pinned[k] = held;
    }
    solver::StabilityOptions frozen = stab;
    frozen.max_moves = 0;
    frozen.max_disturbed = 0;
    frozen.move_cost = 0.0;
    solver::Budget budget =
        solver::Budget::nodes_only(options_.stability_nodes);
    const solver::PackingResult packed = packer.pack(
        pinned, solver::PackingMode::kMinSpreading, budget, &frozen);
    if (packed.feasible && packed.allocation) {
      adopt(packed);
      return;
    }
  }

  // Rung 3: no in-budget candidate — accept the unconstrained optimum
  // over budget rather than serve nothing.
  outcome.diff.budget_exceeded = true;
}

MFA_WARM_PATH void AllocServer::apply_reprioritize(std::size_t index,
                                                   double weight) {
  pipelines_[index].weight = weight;
  composite_.reprioritize(index, pipelines_[index]);
}

MFA_WARM_PATH void AllocServer::apply_resize(core::Platform platform) {
  composite_.resize_platform(std::move(platform));
}

EventOutcome AllocServer::process(Event event) {
  const auto t0 = Clock::now();
  // The dispatcher is the only mutator, but observers (active_pipelines,
  // incumbent, log) read concurrently: hold the state lock across the
  // mutation *and* the re-solve so they always see a consistent pair of
  // (workload, incumbent). Events are coarse; observer latency under a
  // solve is acceptable for a serving loop.
  LockGuard lock(state_mutex_);
  EventOutcome outcome;
  outcome.sequence = sequence_++;
  outcome.type = event.type;

  // ---- Durability barrier: append-before-apply. A failed append fails
  // the *event* (nothing mutates, nothing solves) — acknowledging an
  // un-logged mutation would break the recovery contract. Replayed
  // events are already in the log.
  bool apply = true;
  if (wal_ && !replaying_) {
    if (Status s = wal_->append(outcome.sequence, event); !s.is_ok()) {
      outcome.status = std::move(s);
      ++stats_.wal_errors;
      apply = false;
    }
  }

  // ---- Apply the workload mutation as a composite *delta*.
  auto find_pipeline = [this](const std::string& id) {
    return std::find_if(pipelines_.begin(), pipelines_.end(),
                        [&id](const PipelineSpec& p) { return p.id == id; });
  };
  // Inverse-delta state for rollback: a mutation whose composite fails
  // *structural* validation is reverted by applying the exact inverse
  // delta (remove the added range, reinsert the removed one, restore
  // the old weight or platform), so one malformed event (a resize to a
  // platform with a broken class assignment, an add with a
  // negative-resource kernel) can never poison the server — and the
  // happy path never pays for a wholesale state snapshot.
  std::size_t touched = 0;             // pipeline index the delta hit
  std::optional<PipelineSpec> removed; // kRemovePipeline inverse payload
  double old_weight = 0.0;             // kReprioritize inverse payload
  core::Platform old_platform;         // kResizePlatform inverse payload

  bool workload_changed = false;
  if (apply) {
    switch (event.type) {
      case Event::Type::kAddPipeline: {
        outcome.id = event.pipeline.id;
        if (event.pipeline.id.empty()) {
          outcome.status = Status{Code::kInvalid, "empty pipeline id"};
        } else if (event.pipeline.app.kernels.empty()) {
          outcome.status =
              Status{Code::kInvalid, "pipeline without kernels: '" +
                                         event.pipeline.id + "'"};
        } else if (event.pipeline.weight <= 0.0) {
          outcome.status = Status{Code::kInvalid, "non-positive weight"};
        } else if (find_pipeline(event.pipeline.id) != pipelines_.end()) {
          outcome.status =
              Status{Code::kInvalid,
                     "duplicate pipeline id: '" + event.pipeline.id + "'"};
        } else {
          touched = pipelines_.size();
          pipelines_.push_back(std::move(event.pipeline));
          composite_.add_pipeline(pipelines_.back());
          outcome.cache.delta = CompositeDelta::kStructural;
          workload_changed = true;
        }
        break;
      }
      case Event::Type::kRemovePipeline: {
        outcome.id = event.id;
        auto it = find_pipeline(event.id);
        if (it == pipelines_.end()) {
          outcome.status = Status{
              Code::kInvalid, "unknown pipeline id: '" + event.id + "'"};
        } else {
          touched = static_cast<std::size_t>(it - pipelines_.begin());
          last_totals_.erase(it->id);
          removed = std::move(*it);
          pipelines_.erase(it);
          composite_.remove_pipeline(touched);
          outcome.cache.delta = CompositeDelta::kStructural;
          workload_changed = true;
        }
        break;
      }
      case Event::Type::kReprioritize: {
        outcome.id = event.id;
        auto it = find_pipeline(event.id);
        if (it == pipelines_.end()) {
          outcome.status = Status{
              Code::kInvalid, "unknown pipeline id: '" + event.id + "'"};
        } else if (event.weight <= 0.0) {
          outcome.status = Status{Code::kInvalid, "non-positive weight"};
        } else {
          touched = static_cast<std::size_t>(it - pipelines_.begin());
          old_weight = it->weight;
          {
            // Runtime half of the zero-allocation gate: count every
            // heap allocation the warm delta performs (0 unless the
            // interposer TU is linked; see support/alloc_count.hpp).
            WarmAllocScope allocs;
            apply_reprioritize(touched, event.weight);
            outcome.warm_allocs = allocs.allocations();
          }
          outcome.cache.delta = CompositeDelta::kCoefficients;
          workload_changed = true;
        }
        break;
      }
      case Event::Type::kResizePlatform: {
        // Full structural validation up front: the composite-level
        // validate/rollback below never runs for an *empty* pool, so a
        // malformed platform accepted here would poison every later add.
        if (Status valid = event.platform.validate(); !valid.is_ok()) {
          outcome.status = std::move(valid);
        } else {
          old_platform = composite_.platform();
          {
            WarmAllocScope allocs;
            apply_resize(std::move(event.platform));
            outcome.warm_allocs = allocs.allocations();
          }
          outcome.cache.delta = CompositeDelta::kRhs;
          workload_changed = true;
        }
        break;
      }
    }
  }

  // ---- Incremental re-solve.
  if (workload_changed) {
    if (pipelines_.empty()) {
      incumbent_.reset();
      occupancy_.clear();
      last_totals_.clear();
      last_ii_ = 0.0;
    } else {
      // live(), not snapshot(): validation must not cycle the publish
      // ring — in the steady state the ring alternates between the
      // incumbent's pinned snapshot and the one being refreshed for
      // this event's solve, and a third reference per event would force
      // the refresh back into a full clone.
      if (Status valid = composite_.live().validate();
          valid.code() == Code::kInvalid) {
        // Structurally malformed composite: apply the inverse delta and
        // fail the *event*, keeping the previous (valid) workload and
        // incumbent. kInfeasible is deliberately not rolled back — a
        // pool that genuinely shrank below its tenants' demand is a
        // real workload state; solves report it until churn resolves
        // it.
        switch (event.type) {
          case Event::Type::kAddPipeline:
            composite_.remove_pipeline(touched);
            pipelines_.pop_back();
            break;
          case Event::Type::kRemovePipeline:
            composite_.insert_pipeline(touched, *removed);
            pipelines_.insert(
                pipelines_.begin() + static_cast<std::ptrdiff_t>(touched),
                std::move(*removed));
            break;
          case Event::Type::kReprioritize:
            apply_reprioritize(touched, old_weight);
            break;
          case Event::Type::kResizePlatform:
            apply_resize(std::move(old_platform));
            break;
        }
        outcome.cache.delta = CompositeDelta::kNone;
        outcome.status = std::move(valid);
      } else {
        resolve_workload(outcome);
      }
    }
  }

  // ---- Periodic durable snapshot (skipped while replaying: the
  // snapshot that scheduled those events may already be newer).
  if (wal_ && !replaying_ && options_.snapshot_every > 0 &&
      sequence_ % options_.snapshot_every == 0) {
    WalSnapshot snapshot;
    snapshot.sequence = sequence_;
    snapshot.platform = composite_.platform();
    snapshot.pipelines = pipelines_;
    // The ledger rides along so recovery can restore the incumbent's
    // exact rows — under migration budgets the incumbent depends on
    // placement history, not just the live set.
    snapshot.placements = occupancy_.placements();
    if (wal_->write_snapshot(snapshot).is_ok()) {
      ++stats_.snapshots;
    } else {
      // Recovery stays correct on the older snapshot (or a full
      // replay); surface the failure through stats only.
      ++stats_.wal_errors;
    }
  }

  outcome.active_pipelines = pipelines_.size();
  if (incumbent_) {
    outcome.solve.ii = incumbent_->ii;
    outcome.solve.phi = incumbent_->phi;
    outcome.solve.goal = incumbent_->goal;
    outcome.solve.totals.reserve(incumbent_->allocation->num_kernels());
    for (std::size_t k = 0; k < incumbent_->allocation->num_kernels();
         ++k) {
      outcome.solve.totals.push_back(incumbent_->allocation->total_cu(k));
    }
  }
  outcome.seconds = seconds_since(t0);

  stats_.sequence = sequence_;
  stats_.active_pipelines = pipelines_.size();
  if (outcome.status.is_ok()) {
    ++stats_.events_ok;
  } else {
    ++stats_.events_failed;
  }
  // Broadcast events are counted by *every* shard; this counter lets a
  // router-level reader (the wire API) de-duplicate them.
  if (outcome.type == Event::Type::kResizePlatform) ++stats_.resizes;
  stats_.solve_nodes += outcome.solve.nodes;
  stats_.gp_compiles += outcome.cache.gp_compiles;
  stats_.gp_patches += outcome.cache.gp_patches;
  stats_.model_hits += outcome.cache.model_hits;
  stats_.model_misses += outcome.cache.model_misses;
  stats_.relax_hits += outcome.cache.relax_hits;
  stats_.cus_moved += static_cast<std::uint64_t>(
      std::max(0, outcome.diff.cus_moved));
  stats_.pipelines_disturbed += static_cast<std::uint64_t>(
      std::max(0, outcome.diff.pipelines_disturbed));
  if (outcome.diff.stability_applied) ++stats_.stability_repacks;
  if (outcome.diff.budget_exceeded) ++stats_.budget_exceeded;
  stats_.warm_allocs += outcome.warm_allocs;
  return outcome;
}

std::size_t AllocServer::active_pipelines() const {
  LockGuard lock(state_mutex_);
  return pipelines_.size();
}

std::optional<runtime::SolveResult> AllocServer::incumbent() const {
  LockGuard lock(state_mutex_);
  return incumbent_;
}

std::vector<EventOutcome> AllocServer::log() const {
  LockGuard lock(state_mutex_);
  return {log_.begin(), log_.end()};
}

OccupancyTracker AllocServer::occupancy() const {
  LockGuard lock(state_mutex_);
  return occupancy_;
}

ServiceStats AllocServer::stats() const {
  LockGuard lock(state_mutex_);
  ServiceStats stats = stats_;
  if (!log_.empty()) {
    std::vector<double> seconds;
    seconds.reserve(log_.size());
    for (const EventOutcome& o : log_) seconds.push_back(o.seconds);
    std::sort(seconds.begin(), seconds.end());
    const auto pct = [&seconds](double p) {
      const std::size_t i = static_cast<std::size_t>(
          p * static_cast<double>(seconds.size() - 1));
      return seconds[i] * 1e3;
    };
    stats.p50_ms = pct(0.50);
    stats.p95_ms = pct(0.95);
    stats.p99_ms = pct(0.99);
    stats.max_ms = seconds.back() * 1e3;
  }
  return stats;
}

}  // namespace mfa::service
