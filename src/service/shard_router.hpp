// Consistent-hash router over N in-process AllocServer shards.
//
// One AllocServer serializes every event through a single dispatcher —
// correct, but the solve is the bottleneck and unrelated pipelines have
// no reason to queue behind each other. ShardRouter partitions the
// tenant space instead: each pipeline id is assigned to one of N
// independent AllocServers by consistent hashing, so all events for one
// pipeline land on the same shard (per-pipeline ordering is preserved)
// while different shards solve concurrently.
//
// Hashing is a ring with virtual nodes over a *pinned* FNV-1a — never
// std::hash, whose values are implementation-defined and may differ
// across libstdc++ versions, which would silently re-partition every
// tenant (and break WAL recovery) on a toolchain upgrade. The
// assignment is therefore a documented, stable function of
// (id, shards, virtual_nodes).
//
// Each shard manages its own platform instance (every shard is
// configured with the same initial pool shape, so the deployment
// models N pool replicas with tenants spread across them);
// ResizePlatform events carry no pipeline id and are *broadcast* to
// every shard. Shards share one process-wide CompiledModelCache
// through a core::SolverContext, so a pipeline structure compiles once
// per process no matter which shard serves it; relaxation caches stay
// per-shard (their entries are keyed by the full composite, which
// rarely repeats across shards, and sharing would add contention for
// no hit-rate).
//
// Thread model: the router itself is immutable after open()/recover()
// — ring_, shards_ and the shared caches are built once and never
// mutated, so submit()/stats()/shard_of() need no router-level lock
// from any thread. All mutable state lives inside the individual
// AllocServers (guarded by their state_mutex_) and the sharded caches
// (per-shard mfa::Mutex). stop() only calls the shards' own idempotent
// stop().
//
// Durability: with RouterOptions::wal_root set, shard i logs to
// <wal_root>/shard-<i> (its own WAL + snapshots), and recover()
// rebuilds every shard. The shard count is part of the on-disk layout:
// recovering with a different `shards` would re-partition tenants, so
// it is rejected.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/compiled_cache.hpp"
#include "core/solver_context.hpp"
#include "service/alloc_server.hpp"

namespace mfa::service {

struct RouterOptions {
  /// Independent AllocServer shards (>= 1). Part of the WAL layout.
  std::size_t shards = 2;
  /// Virtual nodes per shard on the hash ring; more smooths the
  /// assignment at the cost of a larger (still tiny) ring.
  std::size_t virtual_nodes = 64;
  /// Template applied to every shard. wal_dir and context are managed
  /// by the router (set wal_root below instead).
  ServerOptions server;
  /// Durability root; empty disables WALs. Shard i uses
  /// <wal_root>/shard-<i>.
  std::string wal_root;
  /// Process-wide compiled-GP model cache shared by all shards.
  std::size_t model_cache_shards = 4;
  std::size_t model_cache_entries = 1024;
};

/// Stable 64-bit FNV-1a (see file comment on why not std::hash).
std::uint64_t stable_hash(std::string_view bytes);

class ShardRouter {
 public:
  /// Starts `options.shards` fresh shards, each owning a copy of
  /// `platform` (creating per-shard WALs under wal_root when set).
  static StatusOr<std::unique_ptr<ShardRouter>> open(
      const core::Platform& platform, RouterOptions options);

  /// Rebuilds every shard from <wal_root>/shard-<i>. `options.shards`
  /// must match the layout that wrote the WALs.
  static StatusOr<std::unique_ptr<ShardRouter>> recover(
      RouterOptions options);

  /// Stops every shard (idempotent; also run by the destructor).
  void stop();

  /// Routes the event to its pipeline's shard. ResizePlatform is
  /// broadcast: the returned (deferred) future resolves to a merged
  /// outcome — first non-ok status, summed pipeline/node/cache
  /// counters, shard 0's incumbent fields — once every shard has
  /// applied it.
  std::future<EventOutcome> submit(Event event);

  /// Convenience: submit and wait.
  EventOutcome apply(Event event) { return submit(std::move(event)).get(); }

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }

  /// The shard an id routes to: ring successor of stable_hash(id).
  [[nodiscard]] std::size_t shard_of(std::string_view id) const;

  [[nodiscard]] const AllocServer& shard(std::size_t i) const {
    return *shards_[i];
  }

  /// Merged counters: sums across shards; sequence is the total event
  /// count; latency percentiles are the worst shard's (conservative).
  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::vector<ServiceStats> shard_stats() const;

  /// Per-shard incumbents (a shard with an empty pool reports nullopt).
  [[nodiscard]] std::vector<std::optional<runtime::SolveResult>>
  incumbents() const;

  [[nodiscard]] std::size_t active_pipelines() const;

  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

 private:
  explicit ShardRouter(RouterOptions options);
  void build_ring();

  RouterOptions options_;
  core::CompiledModelCache models_;  ///< process-wide (see file comment)
  core::SolverContext ctx_;          ///< hands models_ to every shard
  std::vector<std::unique_ptr<AllocServer>> shards_;
  /// (point, shard) pairs sorted by point; successor lookup routes ids.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

}  // namespace mfa::service
