// Workload events consumed by the allocation service.
//
// The paper's setting is a shared multi-FPGA pool serving a *stream* of
// pipelined applications; this header is that stream's vocabulary. A
// pipeline arrives (AddPipeline), departs (RemovePipeline), changes
// priority (Reprioritize), or the pool itself changes shape
// (ResizePlatform). Events are plain data — the trace generator
// (scenario/trace.hpp) produces them, JSON I/O round-trips them, and
// AllocServer (service/alloc_server.hpp) consumes them — so this header
// depends only on core.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/problem.hpp"
#include "support/status.hpp"

namespace mfa::service {

/// One tenant of the shared pool: a pipelined application plus its
/// priority weight. The weight scales the pipeline's effective WCETs in
/// the composite problem, so a heavier pipeline pulls more CUs.
struct PipelineSpec {
  std::string id;  ///< unique among live pipelines
  core::Application app;
  double weight = 1.0;  ///< priority multiplier (> 0)
};

/// One workload change. Exactly the payload for its type is meaningful;
/// the rest stays default-constructed (and serializes away).
struct Event {
  enum class Type {
    kAddPipeline,     ///< `pipeline` joins the pool
    kRemovePipeline,  ///< pipeline `id` departs
    kReprioritize,    ///< pipeline `id` takes priority `weight`
    kResizePlatform,  ///< the pool becomes `platform`
  };

  Type type = Type::kAddPipeline;
  /// Trace timestamp (reporting only; replay runs as fast as it can).
  double time_ms = 0.0;

  PipelineSpec pipeline;    ///< kAddPipeline payload
  std::string id;           ///< kRemovePipeline / kReprioritize target
  double weight = 1.0;      ///< kReprioritize payload
  core::Platform platform;  ///< kResizePlatform payload

  static Event add(PipelineSpec spec, double time_ms = 0.0) {
    Event e;
    e.type = Type::kAddPipeline;
    e.time_ms = time_ms;
    e.pipeline = std::move(spec);
    return e;
  }
  static Event remove(std::string id, double time_ms = 0.0) {
    Event e;
    e.type = Type::kRemovePipeline;
    e.time_ms = time_ms;
    e.id = std::move(id);
    return e;
  }
  static Event reprioritize(std::string id, double weight,
                            double time_ms = 0.0) {
    Event e;
    e.type = Type::kReprioritize;
    e.time_ms = time_ms;
    e.id = std::move(id);
    e.weight = weight;
    return e;
  }
  static Event resize(core::Platform platform, double time_ms = 0.0) {
    Event e;
    e.type = Type::kResizePlatform;
    e.time_ms = time_ms;
    e.platform = std::move(platform);
    return e;
  }
};

/// Delta class an event applied to the composite problem (see
/// service/composite.hpp): numeric-only deltas keep the composite's
/// structure — and therefore the compiled-GP model — intact, which is
/// what the serving-path recompilation counters verify.
enum class CompositeDelta {
  kNone,          ///< no mutation reached the composite
  kCoefficients,  ///< numeric coefficients only (reprioritize)
  kRhs,           ///< platform capacities only (resize)
  kStructural,    ///< kernel set changed (add/remove)
};

/// Stable text name ("none", "coefficients", "rhs", "structural").
inline const char* to_string(CompositeDelta delta) {
  switch (delta) {
    case CompositeDelta::kNone:
      return "none";
    case CompositeDelta::kCoefficients:
      return "coefficients";
    case CompositeDelta::kRhs:
      return "rhs";
    case CompositeDelta::kStructural:
      return "structural";
  }
  return "unknown";
}

/// Stable text name of an event type ("add", "remove", "reprioritize",
/// "resize") — used by logs and the JSON trace format. Defined here so
/// the io layer can serialize events without linking the server TU.
inline const char* to_string(Event::Type type) {
  switch (type) {
    case Event::Type::kAddPipeline:
      return "add";
    case Event::Type::kRemovePipeline:
      return "remove";
    case Event::Type::kReprioritize:
      return "reprioritize";
    case Event::Type::kResizePlatform:
      return "resize";
  }
  return "unknown";
}

/// The solve half of an event's outcome: what the re-solve produced.
struct SolveCounters {
  bool warm_started = false;  ///< re-solve was seeded from the incumbent
  double ii = 0.0;            ///< incumbent II after the event (ms)
  double phi = 0.0;           ///< incumbent spreading after the event
  double goal = 0.0;          ///< incumbent α·II + β·φ after the event
  /// Discretized CU totals of the composite allocation, in composite
  /// kernel order (empty when there is no incumbent).
  std::vector<int> totals;
  std::int64_t nodes = 0;  ///< Σ nodes across portfolio lanes
};

/// The cache half of an event's outcome: what the solve paid for. These
/// counters are deterministic with sequential portfolio lanes
/// (solver_threads = 1, the default): racing lanes may duplicate a miss
/// before the first writer publishes, which makes them timing-dependent
/// at higher thread counts (like `seconds`, unlike the solve outputs).
struct CacheCounters {
  /// Delta class the event applied to the composite problem.
  CompositeDelta delta = CompositeDelta::kNone;
  /// Full GP IR lowerings performed by this event's solve. Zero for
  /// every structurally stable event once the model cache is warm —
  /// the property bench/service_churn --check gates on.
  std::int64_t gp_compiles = 0;
  /// In-place coefficient patches (model-cache hits that re-solved).
  std::int64_t gp_patches = 0;
  /// Compiled-model cache hits/misses during the event's solve.
  std::uint64_t model_hits = 0;
  std::uint64_t model_misses = 0;
  /// Relaxation-cache hits during the event's solve (lanes 2..n of the
  /// portfolio replaying lane 1's root).
  std::uint64_t relax_hits = 0;
};

/// The migration half of an event's outcome: what the accepted
/// allocation moved relative to the previous one (the occupancy
/// tracker's records — see service/occupancy.hpp). CUs are "moved" when
/// the previous placement had them on an FPGA where the new one does
/// not (torn down; newly added CUs are free). A pipeline is "disturbed"
/// when its placement rows changed at all. The event's own target is
/// exempt from both counters — its churn is the event's purpose, and
/// the packing-search budgets exempt its group the same way, so with
/// budgets (km, kd) every accepted event satisfies cus_moved <= km and
/// pipelines_disturbed <= kd unless budget_exceeded is set.
struct AllocationDiff {
  bool computed = false;  ///< a reference placement existed
  int cus_moved = 0;
  int pipelines_disturbed = 0;
  /// goal(accepted) − goal(unconstrained optimum) ≥ 0: what stability
  /// cost this event (0 when the unconstrained solve was accepted).
  double goal_regret = 0.0;
  /// The accepted allocation came from the migration-aware repack.
  bool stability_applied = false;
  /// No in-budget candidate existed; the unconstrained allocation was
  /// accepted over budget.
  bool budget_exceeded = false;
};

/// What the server reports for one processed event, in three explicit
/// sections — solve outputs, cache counters, migration diff — plus the
/// event envelope. Every field except `seconds` is deterministic for a
/// fixed trace, configuration and thread count — the replay log the CLI
/// writes (and CI diffs) contains exactly those fields; `seconds` is
/// wall clock and reported separately. (The JSON encoding stays the
/// PR-7 flat key sequence with "diff" appended, so existing log
/// consumers keep working byte-for-byte; see io/serialize.cpp.)
struct EventOutcome {
  std::uint64_t sequence = 0;  ///< position in the server's event order
  Event::Type type = Event::Type::kAddPipeline;
  std::string id;  ///< affected pipeline id (empty for resize)
  Status status;   ///< event application (e.g. unknown id → kInvalid)
  Status solve_status;  ///< re-solve outcome (ok for an empty pool)
  std::size_t active_pipelines = 0;  ///< live pipelines after the event
  SolveCounters solve;
  CacheCounters cache;
  AllocationDiff diff;
  /// Heap allocations observed while applying the warm composite delta
  /// (Reprioritize weight patch / ResizePlatform swap). Always 0 in a
  /// regular build; with the counting interposer linked (CMake option
  /// MFA_COUNT_ALLOC, see support/alloc_count.hpp) it is the runtime
  /// half of the zero-allocation warm-path gate — bench/service_churn
  /// --check fails on any nonzero value. Deterministic per build
  /// configuration, so it is serialized with the other counters.
  std::uint64_t warm_allocs = 0;
  double seconds = 0.0;  ///< wall-clock event latency (not logged)
};

}  // namespace mfa::service
