#include "service/occupancy.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace mfa::service {

int PipelinePlacement::total_cus() const {
  int total = 0;
  for (const std::vector<int>& row : rows) {
    for (const int n : row) total += n;
  }
  return total;
}

void OccupancyTracker::update(const core::Problem& problem,
                              const std::vector<PipelineSpec>& pipelines,
                              const core::Allocation& alloc) {
  const std::size_t fpgas = static_cast<std::size_t>(problem.num_fpgas());
  placements_.clear();
  placements_.reserve(pipelines.size());
  std::size_t k = 0;
  for (const PipelineSpec& pipe : pipelines) {
    PipelinePlacement record;
    record.id = pipe.id;
    record.rows.reserve(pipe.app.kernels.size());
    for (std::size_t j = 0; j < pipe.app.kernels.size(); ++j, ++k) {
      std::vector<int> row(fpgas, 0);
      for (std::size_t f = 0; f < fpgas; ++f) {
        row[f] = alloc.cu(k, static_cast<int>(f));
      }
      record.rows.push_back(std::move(row));
    }
    placements_.push_back(std::move(record));
  }
  MFA_ASSERT_MSG(k == alloc.num_kernels(),
                 "occupancy: pipelines do not cover the composite");

  devices_.assign(fpgas, DeviceOccupancy{});
  for (std::size_t f = 0; f < fpgas; ++f) {
    const int fi = static_cast<int>(f);
    DeviceOccupancy& dev = devices_[f];
    dev.used = alloc.fpga_resources(fi);
    dev.capacity = problem.cap(fi);
    dev.bw_used = alloc.fpga_bw(fi);
    dev.bw_capacity = problem.bw_cap(fi);
    dev.utilization = alloc.fpga_utilization(fi);
    for (std::size_t kk = 0; kk < alloc.num_kernels(); ++kk) {
      dev.cus += alloc.cu(kk, fi);
    }
  }
  valid_ = true;
  ++updates_;
}

void OccupancyTracker::clear() {
  valid_ = false;
  placements_.clear();
  devices_.clear();
  ++updates_;
}

const PipelinePlacement* OccupancyTracker::placement(
    const std::string& id) const {
  for (const PipelinePlacement& record : placements_) {
    if (record.id == id) return &record;
  }
  return nullptr;
}

OccupancyTracker::Statistics OccupancyTracker::statistics() const {
  Statistics stats;
  stats.num_fpgas = static_cast<int>(devices_.size());
  stats.num_pipelines = placements_.size();
  stats.updates = updates_;
  for (const PipelinePlacement& record : placements_) {
    stats.total_cus += record.total_cus();
  }
  double sum = 0.0;
  for (const DeviceOccupancy& dev : devices_) {
    stats.peak_utilization = std::max(stats.peak_utilization,
                                      dev.utilization);
    sum += dev.utilization;
  }
  if (!devices_.empty()) {
    stats.mean_utilization = sum / static_cast<double>(devices_.size());
  }
  return stats;
}

std::string OccupancyTracker::dump() const {
  std::ostringstream out;
  const Statistics stats = statistics();
  out << "occupancy: " << stats.num_fpgas << " FPGAs, "
      << stats.num_pipelines << " pipelines, " << stats.total_cus
      << " CUs (peak util " << stats.peak_utilization << ", mean "
      << stats.mean_utilization << ")\n";
  for (std::size_t f = 0; f < devices_.size(); ++f) {
    const DeviceOccupancy& dev = devices_[f];
    out << "  fpga " << f << ": " << dev.cus << " CUs, util "
        << dev.utilization << ", bw " << dev.bw_used << "/"
        << dev.bw_capacity << ", used " << dev.used.to_string() << " of "
        << dev.capacity.to_string() << "\n";
  }
  for (const PipelinePlacement& record : placements_) {
    out << "  pipeline " << record.id << ": " << record.total_cus()
        << " CUs";
    for (std::size_t j = 0; j < record.rows.size(); ++j) {
      out << (j == 0 ? " [" : " [");
      for (std::size_t f = 0; f < record.rows[j].size(); ++f) {
        out << (f == 0 ? "" : ",") << record.rows[j][f];
      }
      out << "]";
    }
    out << "\n";
  }
  return out.str();
}

namespace {

/// Torn CUs and change flag of one kernel row vs its reference.
void diff_row(const std::vector<int>& ref, const std::vector<int>& now,
              int& torn, bool& changed) {
  const std::size_t width = std::max(ref.size(), now.size());
  for (std::size_t f = 0; f < width; ++f) {
    const int old_n = f < ref.size() ? ref[f] : 0;
    const int new_n = f < now.size() ? now[f] : 0;
    if (old_n != new_n) changed = true;
    if (old_n > new_n) torn += old_n - new_n;
  }
}

}  // namespace

AllocationDiff OccupancyTracker::diff_against(
    const std::vector<PipelineSpec>& pipelines,
    const core::Allocation& candidate, const std::string& target_id) const {
  AllocationDiff diff;
  if (!valid_) return diff;
  diff.computed = true;
  const std::size_t fpgas =
      static_cast<std::size_t>(candidate.num_fpgas());
  std::size_t k = 0;
  for (const PipelineSpec& pipe : pipelines) {
    const PipelinePlacement* record = placement(pipe.id);
    bool changed = false;
    int torn = 0;
    for (std::size_t j = 0; j < pipe.app.kernels.size(); ++j, ++k) {
      if (record == nullptr || j >= record->rows.size()) continue;
      std::vector<int> now(fpgas, 0);
      for (std::size_t f = 0; f < fpgas; ++f) {
        now[f] = candidate.cu(k, static_cast<int>(f));
      }
      diff_row(record->rows[j], now, torn, changed);
    }
    if (record == nullptr) continue;  // new arrival: nothing to preserve
    if (pipe.id == target_id) continue;  // the event's own churn is free
    diff.cus_moved += torn;
    if (changed) ++diff.pipelines_disturbed;
  }
  // Records without a surviving pipeline are departures, not
  // migrations: their CUs are freed no matter what the solver decides,
  // so they contribute nothing to the budgeted counters. (This also
  // keeps the diff aligned with the packing search, whose reference
  // only ever covers live kernels — a departed record is invisible to
  // it and could otherwise bust a budget no repack can satisfy.)
  return diff;
}

solver::StabilityOptions OccupancyTracker::make_stability(
    const std::vector<PipelineSpec>& pipelines,
    const std::string& target_id) const {
  solver::StabilityOptions stab;
  std::size_t kernels = 0;
  for (const PipelineSpec& pipe : pipelines) {
    kernels += pipe.app.kernels.size();
  }
  stab.reference.reserve(kernels);
  stab.group_of.reserve(kernels);
  int group = 0;
  for (const PipelineSpec& pipe : pipelines) {
    const PipelinePlacement* record = placement(pipe.id);
    if (!target_id.empty() && pipe.id == target_id) {
      stab.exempt_group = group;
    }
    for (std::size_t j = 0; j < pipe.app.kernels.size(); ++j) {
      stab.reference.push_back(record != nullptr && j < record->rows.size()
                                   ? record->rows[j]
                                   : std::vector<int>{});
      stab.group_of.push_back(group);
    }
    ++group;
  }
  return stab;
}

}  // namespace mfa::service
