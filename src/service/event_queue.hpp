// MPMC work queue feeding the allocation service's dispatcher.
//
// Producers (request handlers, the trace replayer, tests) push events
// from any thread and receive a future for the outcome; consumers
// block-pop in FIFO order. The queue is deliberately tiny — mutex +
// condition variable, like runtime::ThreadPool — because service events
// are coarse (each triggers a solve); what matters is strict FIFO
// hand-off, multi-producer safety, and a clean shutdown that fails
// still-queued submissions instead of dropping their promises.
#pragma once

#include <cstddef>
#include <deque>
#include <future>
#include <optional>
#include <utility>

#include "service/event.hpp"
#include "support/mutex.hpp"
#include "support/status.hpp"

namespace mfa::service {

class EventQueue {
 public:
  /// One queued submission: the event plus the promise its producer
  /// holds the future of.
  struct Item {
    Event event;
    std::promise<EventOutcome> reply;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues `event`; the future resolves once a consumer has processed
  /// it. After close(), the returned future fails immediately with a
  /// kInvalid outcome instead of queueing.
  std::future<EventOutcome> push(Event event) {
    std::promise<EventOutcome> reply;
    std::future<EventOutcome> future = reply.get_future();
    {
      LockGuard lock(mutex_);
      if (closed_) {
        EventOutcome outcome;
        outcome.type = event.type;
        outcome.status = Status{Code::kInvalid, "event queue closed"};
        reply.set_value(std::move(outcome));
        return future;
      }
      items_.push_back(Item{std::move(event), std::move(reply)});
    }
    cv_.notify_one();
    return future;
  }

  /// Blocks until an item is available or the queue is closed; nullopt
  /// means closed *and* drained (consumers should exit).
  std::optional<Item> pop() {
    LockGuard lock(mutex_);
    // Explicit predicate loop (not a wait-with-lambda): the thread
    // safety analysis follows this shape; see support/mutex.hpp.
    while (!closed_ && items_.empty()) cv_.wait(mutex_);
    if (items_.empty()) return std::nullopt;
    Item item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops accepting submissions; queued items remain poppable so the
  /// dispatcher drains them before exiting.
  void close() {
    {
      LockGuard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    LockGuard lock(mutex_);
    return items_.size();
  }

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<Item> items_ MFA_GUARDED_BY(mutex_);
  bool closed_ MFA_GUARDED_BY(mutex_) = false;
};

}  // namespace mfa::service
