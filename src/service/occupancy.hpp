// Per-FPGA occupancy: the service's first-class view of "who holds what".
//
// The solvers answer "what is the best allocation"; a live service also
// has to answer "what is placed where right now, and what would this
// re-solve move". OccupancyTracker is that answer: a materialized
// per-device free/occupied ledger plus per-pipeline placement records,
// owned by AllocServer and updated in lock-step with the incumbent
// (inside resolve_workload, so WAL snapshot-restore and tail replay
// rebuild it byte-identically).
//
// Three consumers:
//  * the wire API's GET /v1/occupancy (devices + placements as JSON);
//  * AllocationDiff — what an event's candidate allocation would move
//    relative to the records, the diff-first half of the event API;
//  * solver::StabilityOptions — the records are exactly the reference
//    rows the migration-aware packing search constrains against.
//
// Everything here is plain data derived from (platform, pipelines,
// allocation); the tracker never solves and holds no references into
// the composite, so copies are cheap snapshots.
//
// Thread model: no internal synchronization. The live instance is
// AllocServer::occupancy_, MFA_GUARDED_BY(state_mutex_); readers get a
// copy through AllocServer::occupancy(), which snapshots under that
// lock. Copies are owned by their holder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "service/event.hpp"
#include "solver/packing.hpp"

namespace mfa::service {

/// Where one pipeline's CUs sit: rows[j][f] = CUs of the pipeline's j-th
/// kernel on FPGA f, in the pipeline's own kernel order (row length is
/// the fleet size at record time — a later resize does not rewrite
/// history; diffs handle the length mismatch).
struct PipelinePlacement {
  std::string id;
  std::vector<std::vector<int>> rows;

  [[nodiscard]] int total_cus() const;
};

/// One FPGA's ledger entry (capacities are the *effective* caps the
/// solve ran under, i.e. fraction-scaled).
struct DeviceOccupancy {
  core::ResourceVec used;
  core::ResourceVec capacity;
  double bw_used = 0.0;
  double bw_capacity = 0.0;
  int cus = 0;             ///< CUs hosted
  double utilization = 0.0;  ///< max-axis used/full-class-capacity
};

class OccupancyTracker {
 public:
  struct Statistics {
    int num_fpgas = 0;
    std::size_t num_pipelines = 0;
    int total_cus = 0;
    double peak_utilization = 0.0;
    double mean_utilization = 0.0;
    std::uint64_t updates = 0;  ///< update() calls since construction
  };

  /// Rebuilds the ledger from a solved composite: `pipelines` in
  /// composite order (their kernel counts recover the per-pipeline
  /// ranges), `alloc` bound to `problem`.
  void update(const core::Problem& problem,
              const std::vector<PipelineSpec>& pipelines,
              const core::Allocation& alloc);

  /// Forgets everything (the pool emptied).
  void clear();

  [[nodiscard]] bool valid() const { return valid_; }
  [[nodiscard]] const std::vector<PipelinePlacement>& placements() const {
    return placements_;
  }
  [[nodiscard]] const std::vector<DeviceOccupancy>& devices() const {
    return devices_;
  }
  /// The record for `id`, or nullptr when the pipeline has none.
  [[nodiscard]] const PipelinePlacement* placement(
      const std::string& id) const;

  [[nodiscard]] Statistics statistics() const;

  /// Human-readable occupancy map (devices then placements), for
  /// debugging and `serve` logs.
  [[nodiscard]] std::string dump() const;

  /// What `candidate` (for the composite described by `pipelines`)
  /// would move relative to the records. `target_id` names the event's
  /// own pipeline — excluded from *both* counters, exactly as the
  /// packing search exempts its group from the budgets (its churn is
  /// the event's purpose); pass "" when the event has no target
  /// (resize). Records without a surviving pipeline are departures and
  /// count for nothing — the counters cover exactly what a constrained
  /// repack could preserve. goal_regret/stability flags are the
  /// caller's to fill.
  [[nodiscard]] AllocationDiff diff_against(
      const std::vector<PipelineSpec>& pipelines,
      const core::Allocation& candidate, const std::string& target_id) const;

  /// Builds the packing-search stability reference for a composite in
  /// `pipelines` order: reference rows from the records (empty row for
  /// pipelines without one), group_of = pipeline index, exempt_group =
  /// `target_id`'s index (-1 when absent). Budgets/costs are left to
  /// the caller.
  [[nodiscard]] solver::StabilityOptions make_stability(
      const std::vector<PipelineSpec>& pipelines,
      const std::string& target_id) const;

 private:
  bool valid_ = false;
  std::vector<PipelinePlacement> placements_;  ///< composite order
  std::vector<DeviceOccupancy> devices_;
  std::uint64_t updates_ = 0;
};

}  // namespace mfa::service
