#include "service/shard_router.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace mfa::service {

std::uint64_t stable_hash(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

namespace {

std::string shard_dir(const std::string& root, std::size_t i) {
  return root + "/shard-" + std::to_string(i);
}

/// Merge a broadcast's per-shard outcomes (see ShardRouter::submit).
EventOutcome merge_outcomes(std::vector<EventOutcome> outcomes) {
  EventOutcome merged = outcomes.front();  // shard 0's incumbent fields
  merged.active_pipelines = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const EventOutcome& o = outcomes[i];
    merged.active_pipelines += o.active_pipelines;
    if (i == 0) continue;
    if (merged.status.is_ok() && !o.status.is_ok()) merged.status = o.status;
    if (merged.solve_status.is_ok() && !o.solve_status.is_ok()) {
      merged.solve_status = o.solve_status;
    }
    merged.solve.warm_started =
        merged.solve.warm_started && o.solve.warm_started;
    merged.solve.nodes += o.solve.nodes;
    merged.cache.gp_compiles += o.cache.gp_compiles;
    merged.cache.gp_patches += o.cache.gp_patches;
    merged.cache.model_hits += o.cache.model_hits;
    merged.cache.model_misses += o.cache.model_misses;
    merged.cache.relax_hits += o.cache.relax_hits;
    merged.diff.computed = merged.diff.computed || o.diff.computed;
    merged.diff.cus_moved += o.diff.cus_moved;
    merged.diff.pipelines_disturbed += o.diff.pipelines_disturbed;
    merged.diff.goal_regret += o.diff.goal_regret;
    merged.diff.stability_applied =
        merged.diff.stability_applied || o.diff.stability_applied;
    merged.diff.budget_exceeded =
        merged.diff.budget_exceeded || o.diff.budget_exceeded;
    merged.seconds = std::max(merged.seconds, o.seconds);
  }
  return merged;
}

}  // namespace

ShardRouter::ShardRouter(RouterOptions options)
    : options_(std::move(options)),
      models_(core::CacheConfig{options_.model_cache_shards,
                                options_.model_cache_entries}) {
  ctx_.model_cache = &models_;
  build_ring();
}

void ShardRouter::build_ring() {
  ring_.reserve(options_.shards * options_.virtual_nodes);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    for (std::size_t v = 0; v < options_.virtual_nodes; ++v) {
      const std::string point =
          "shard-" + std::to_string(i) + "#" + std::to_string(v);
      ring_.emplace_back(stable_hash(point), i);
    }
  }
  // Sort by point; break hash collisions by shard index so the ring is
  // a total order independent of insertion order.
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardRouter::shard_of(std::string_view id) const {
  if (shards_.size() <= 1) return 0;
  const std::uint64_t h = stable_hash(id);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::size_t>& node,
         std::uint64_t point) { return node.first < point; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

StatusOr<std::unique_ptr<ShardRouter>> ShardRouter::open(
    const core::Platform& platform, RouterOptions options) {
  if (options.shards == 0 || options.virtual_nodes == 0) {
    return Status{Code::kInvalid,
                  "router: shards and virtual_nodes must be >= 1"};
  }
  if (!options.wal_root.empty() &&
      ::mkdir(options.wal_root.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status{Code::kInvalid, "mkdir " + options.wal_root + ": " +
                                      std::strerror(errno)};
  }
  std::unique_ptr<ShardRouter> router(new ShardRouter(std::move(options)));
  for (std::size_t i = 0; i < router->options_.shards; ++i) {
    ServerOptions server = router->options_.server;
    server.context = &router->ctx_;
    server.wal_dir = router->options_.wal_root.empty()
                         ? std::string()
                         : shard_dir(router->options_.wal_root, i);
    StatusOr<std::unique_ptr<AllocServer>> shard =
        AllocServer::open(platform, std::move(server));
    if (!shard.is_ok()) return shard.status();
    router->shards_.push_back(std::move(shard.value()));
  }
  return StatusOr<std::unique_ptr<ShardRouter>>(std::move(router));
}

StatusOr<std::unique_ptr<ShardRouter>> ShardRouter::recover(
    RouterOptions options) {
  if (options.wal_root.empty()) {
    return Status{Code::kInvalid, "recover: RouterOptions::wal_root not set"};
  }
  if (options.shards == 0 || options.virtual_nodes == 0) {
    return Status{Code::kInvalid,
                  "router: shards and virtual_nodes must be >= 1"};
  }
  // The shard count is part of the on-disk layout: a mismatch would
  // re-partition tenants mid-history. Reject extra or missing dirs.
  struct stat st{};
  if (::stat(shard_dir(options.wal_root, options.shards).c_str(), &st) ==
      0) {
    return Status{Code::kInvalid,
                  "recover: wal_root has more shards than options.shards (" +
                      std::to_string(options.shards) + ")"};
  }
  std::unique_ptr<ShardRouter> router(new ShardRouter(std::move(options)));
  for (std::size_t i = 0; i < router->options_.shards; ++i) {
    ServerOptions server = router->options_.server;
    server.context = &router->ctx_;
    server.wal_dir = shard_dir(router->options_.wal_root, i);
    StatusOr<std::unique_ptr<AllocServer>> shard =
        AllocServer::recover(std::move(server));
    if (!shard.is_ok()) {
      return Status{shard.status().code(),
                    "shard " + std::to_string(i) + ": " +
                        shard.status().message()};
    }
    router->shards_.push_back(std::move(shard.value()));
  }
  return StatusOr<std::unique_ptr<ShardRouter>>(std::move(router));
}

ShardRouter::~ShardRouter() { stop(); }

void ShardRouter::stop() {
  for (std::unique_ptr<AllocServer>& shard : shards_) shard->stop();
}

std::future<EventOutcome> ShardRouter::submit(Event event) {
  if (event.type == Event::Type::kResizePlatform) {
    // Broadcast: enqueue on every shard *now* (so they all solve
    // concurrently), defer only the merge to get().
    auto futures =
        std::make_shared<std::vector<std::future<EventOutcome>>>();
    futures->reserve(shards_.size());
    for (std::unique_ptr<AllocServer>& shard : shards_) {
      futures->push_back(shard->submit(event));
    }
    return std::async(std::launch::deferred, [futures] {
      std::vector<EventOutcome> outcomes;
      outcomes.reserve(futures->size());
      for (std::future<EventOutcome>& f : *futures) {
        outcomes.push_back(f.get());
      }
      return merge_outcomes(std::move(outcomes));
    });
  }
  const std::string& id = event.type == Event::Type::kAddPipeline
                              ? event.pipeline.id
                              : event.id;
  return shards_[shard_of(id)]->submit(std::move(event));
}

ServiceStats ShardRouter::stats() const {
  ServiceStats merged;
  for (const std::unique_ptr<AllocServer>& shard : shards_) {
    const ServiceStats s = shard->stats();
    merged.sequence += s.sequence;
    merged.events_ok += s.events_ok;
    merged.events_failed += s.events_failed;
    merged.resizes += s.resizes;
    merged.active_pipelines += s.active_pipelines;
    merged.solve_nodes += s.solve_nodes;
    merged.gp_compiles += s.gp_compiles;
    merged.gp_patches += s.gp_patches;
    merged.model_hits += s.model_hits;
    merged.model_misses += s.model_misses;
    merged.relax_hits += s.relax_hits;
    merged.cus_moved += s.cus_moved;
    merged.pipelines_disturbed += s.pipelines_disturbed;
    merged.stability_repacks += s.stability_repacks;
    merged.budget_exceeded += s.budget_exceeded;
    merged.snapshots += s.snapshots;
    merged.wal_errors += s.wal_errors;
    merged.warm_allocs += s.warm_allocs;
    merged.p50_ms = std::max(merged.p50_ms, s.p50_ms);
    merged.p95_ms = std::max(merged.p95_ms, s.p95_ms);
    merged.p99_ms = std::max(merged.p99_ms, s.p99_ms);
    merged.max_ms = std::max(merged.max_ms, s.max_ms);
  }
  return merged;
}

std::vector<ServiceStats> ShardRouter::shard_stats() const {
  std::vector<ServiceStats> stats;
  stats.reserve(shards_.size());
  for (const std::unique_ptr<AllocServer>& shard : shards_) {
    stats.push_back(shard->stats());
  }
  return stats;
}

std::vector<std::optional<runtime::SolveResult>> ShardRouter::incumbents()
    const {
  std::vector<std::optional<runtime::SolveResult>> incumbents;
  incumbents.reserve(shards_.size());
  for (const std::unique_ptr<AllocServer>& shard : shards_) {
    incumbents.push_back(shard->incumbent());
  }
  return incumbents;
}

std::size_t ShardRouter::active_pipelines() const {
  std::size_t active = 0;
  for (const std::unique_ptr<AllocServer>& shard : shards_) {
    active += shard->active_pipelines();
  }
  return active;
}

}  // namespace mfa::service
