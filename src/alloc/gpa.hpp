// GP+A — the paper's end-to-end heuristic (§3.2).
//
// Pipeline: continuous relaxation (GP) → branch-and-bound discretization
// of N̂_k → greedy allocation (Algorithm 1). Each stage's wall-clock time
// is recorded separately so the runtime comparison of §4 ("0.78 s to
// 4.4 s, 100–1000× faster than MINLP") can be reproduced.
#pragma once

#include <optional>

#include "alloc/greedy.hpp"
#include "core/allocation.hpp"
#include "core/compiled_cache.hpp"
#include "core/problem.hpp"
#include "core/relax_cache.hpp"
#include "core/relaxation.hpp"
#include "core/solver_context.hpp"
#include "solver/discretize.hpp"
#include "solver/packing.hpp"
#include "support/status.hpp"

namespace mfa::alloc {

struct GpaOptions {
  /// Solve the root relaxation with the interior-point GP solver (as the
  /// paper does with GPkit) instead of the exact bisection. Both give
  /// the same N̂_k to tolerance; bisection is the faster default.
  bool use_interior_point = false;

  /// Warm start for the *root* relaxation, typically a related solve's
  /// (ÎI, N̂) — the allocation service seeds each event's re-solve from
  /// its incumbent. Bisection probes warm->ii once as a bracket end;
  /// the interior-point path seeds the barrier from the full point.
  /// Always safe: a useless seed only costs the probe. Cache keys fold
  /// the seed in, so warm entries never alias cold ones.
  std::optional<core::RelaxedSolution> warm;

  /// Externally computed root relaxation: when set, Step 1 is skipped —
  /// this value feeds the discretizer directly and the relaxation cache
  /// is bypassed for the root on purpose. The batched dispatcher
  /// (runtime/batch.cpp) injects its lane results here: a batched-kernel
  /// root is only tolerance-equal to the scalar solve, so publishing it
  /// under a scalar cache key would poison byte-determinism for every
  /// later scalar caller. `warm` is ignored when this is set.
  std::optional<core::RelaxedSolution> root_override;

  /// Shared solver resources (caches, budget, pool) — the single wiring
  /// point; see core/solver_context.hpp. Not owned. The root solve and
  /// every branch-and-bound node go through the context's relaxation
  /// cache, and the interior-point root through its compiled-model
  /// cache; both are byte-transparent accelerations.
  const core::SolverContext* context = nullptr;

  /// DEPRECATED aliases (one more PR): per-field cache pointers from
  /// before SolverContext existed. Still honored when `context` is null
  /// or its corresponding field is null; prefer `context`.
  core::RelaxationCache* relax_cache = nullptr;
  core::CompiledModelCache* model_cache = nullptr;

  /// Context-first resolution of the shared caches.
  [[nodiscard]] core::RelaxationCache* resolved_relax_cache() const {
    if (context != nullptr && context->relax_cache != nullptr) {
      return context->relax_cache;
    }
    return relax_cache;
  }
  [[nodiscard]] core::CompiledModelCache* resolved_model_cache() const {
    if (context != nullptr && context->model_cache != nullptr) {
      return context->model_cache;
    }
    return model_cache;
  }

  /// Migration-aware re-solve (lives next to the caches: the online
  /// service wires it per event like it wires the shared caches). When
  /// set and constrained, the placed totals are re-packed against the
  /// incumbent reference under the move/disturb budgets and the repack
  /// *replaces* the greedy placement when it is feasible — same totals,
  /// so II is unchanged and only φ can regress. An infeasible or
  /// over-budget repack leaves the unconstrained placement standing
  /// (GpaResult::stability_applied reports which happened). Not owned.
  const solver::StabilityOptions* stability = nullptr;

  gp::SolverOptions gp;
  solver::DiscretizeOptions discretize;
  GreedyOptions greedy;
};

struct GpaResult {
  core::Allocation allocation;   ///< final feasible placement
  double relaxed_ii = 0.0;       ///< ÎI from the GP step (lower bound)
  std::vector<double> relaxed_n; ///< N̂_k from the GP step (with ÎI: the
                                 ///< warm seed for a neighboring solve)
  double discrete_ii = 0.0;      ///< II after discretization (pre-alloc)
  std::vector<int> totals;       ///< discretized N_k
  double used_fraction = 0.0;    ///< R_c the allocator ended at
  std::int64_t discretize_nodes = 0;
  /// True when GpaOptions::stability was constrained and the migration-
  /// aware repack replaced the greedy placement.
  bool stability_applied = false;

  double seconds_relax = 0.0;
  double seconds_discretize = 0.0;
  double seconds_allocate = 0.0;
  [[nodiscard]] double seconds_total() const {
    return seconds_relax + seconds_discretize + seconds_allocate;
  }
};

class GpaSolver {
 public:
  explicit GpaSolver(GpaOptions options = {}) : options_(options) {}

  /// Runs GP → discretize → allocate. kInfeasible propagates from any
  /// stage (pooled constraints, integrality, or Algorithm 1 within T).
  [[nodiscard]] StatusOr<GpaResult> solve(const core::Problem& problem) const;

 private:
  GpaOptions options_;
};

}  // namespace mfa::alloc
