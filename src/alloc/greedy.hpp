// The paper's greedy CU allocator (Algorithm 1), device-aware.
//
// Given the discretized totals N_k, place CUs on FPGAs so that kernels
// consolidate (minimizing spreading) while respecting the per-FPGA caps.
// On heterogeneous platforms every FPGA carries its own device-class
// caps; placement prefers the tightest class first (roomy devices are
// held back for the kernels that need them) and the oversized-kernel
// pre-pass skips devices too small for even one CU instead of failing.
// The heuristic:
//   * allocates critical kernels first (a CU reduction on them hurts II
//     most), re-sorting after each placement;
//   * pre-splits kernels too large for a single FPGA across empty FPGAs
//     (lines 11–21);
//   * then places each kernel entirely on the most occupied FPGA that
//     still fits it (FPGAs sorted by increasing slack, lines 22–32),
//     falling back to a partial placement on the least occupied FPGA
//     (lines 33–36);
//   * on failure relaxes the resource constraint by Δ and retries, up to
//     a maximum deviation T (the Fig. 2 parameter).
//
// Interpretation choices left open by the pseudo-code are recorded in
// DESIGN.md §3.5:
//  * criticality = the II impact of removing one CU,
//    WCET_k/(CU_k−1) − WCET_k/CU_k, with CU_k = 1 infinitely critical
//    ("they should all be allocated");
//  * "resource" means every resource axis plus bandwidth;
//  * the pre-pass uses the current R_c; all state resets per iteration;
//  * the outer loop is do-while (T = 0 still runs one iteration, as the
//    paper's T=0 results imply);
//  * the partial fallback spills across FPGAs from the least occupied
//    onward ("as many CUs as possible starting from the least occupied
//    FPGA");
//  * Algorithm 1 has no failure exit: when CUs remain unplaced at
//    R_c = R+T they are *dropped* and II is computed from the CUs
//    actually placed. This is what makes GP+A sit slightly above MINLP
//    at tight constraints (Figs. 3–5) instead of failing. The only
//    failure mode is a kernel ending with zero CUs (eq. 8).
#pragma once

#include <vector>

#include "core/allocation.hpp"
#include "core/fingerprint.hpp"
#include "core/problem.hpp"
#include "core/sharded_cache.hpp"
#include "support/status.hpp"

namespace mfa::alloc {

/// Memoized outcome of one successful greedy run: the placement matrix
/// plus the scalar diagnostics, with no reference back to the Problem —
/// a hit rebuilds the Allocation against the *caller's* Problem object,
/// so entries can be shared across equal problem instances (portfolio
/// lanes, repeated service events) regardless of object identity.
struct GreedyMemo {
  std::vector<int> cu;  ///< n_{k,f}, row-major [kernel][fpga]
  double used_fraction = 0.0;
  int iterations = 0;
  int dropped_cus = 0;
};

/// Thread-safe memoization of greedy placements, keyed by
/// greedy_cache_key(). Same machinery (and determinism contract) as the
/// relaxation cache: a hit is exactly what the thread would have
/// computed itself. Only successes are stored — infeasibility depends on
/// nothing cacheable beyond the same key, but it is rare and cheap to
/// re-prove relative to the placement runs.
using GreedyCache = core::ShardedCache<GreedyMemo>;

struct GreedyOptions {
  /// T — maximum deviation above the initial resource constraint, as a
  /// fraction of platform capacity (Fig. 2 sweeps 0…0.30).
  double t_max = 0.0;
  /// Δ — constraint increment per retry (the paper uses 1 %).
  double delta = 0.01;
  /// Optional shared memoization of placements by (problem, totals,
  /// options) fingerprint. Not owned; may be shared across threads.
  GreedyCache* cache = nullptr;
};

/// Cache key for a greedy run: the relaxation fingerprint (kernels,
/// fleet, effective caps) plus the constraint fractions the allocator
/// reads directly, the requested totals, and the (T, Δ) escalation
/// schedule — every input the placement depends on — and an algorithm
/// tag so entries never alias other caches' keys.
core::Fingerprint greedy_cache_key(const core::Problem& problem,
                                   const std::vector<int>& totals,
                                   const GreedyOptions& options);

struct GreedyResult {
  core::Allocation allocation;
  /// Resource fraction actually used (= problem.resource_fraction when
  /// the first iteration succeeds; larger when T > 0 retries kicked in).
  double used_fraction = 0.0;
  int iterations = 0;    ///< outer-loop iterations executed
  int dropped_cus = 0;   ///< requested CUs that could not be placed
};

class GreedyAllocator {
 public:
  explicit GreedyAllocator(GreedyOptions options = {}) : options_(options) {}

  /// Places up to `totals[k]` CUs of each kernel (leftovers are dropped,
  /// see above). Returns kInfeasible only when some kernel cannot place
  /// a single CU even at R_c = R + T.
  /// Note: with T > 0 the result may exceed problem.cap() — by design;
  /// check against used_fraction. It never exceeds the platform capacity.
  [[nodiscard]] StatusOr<GreedyResult> allocate(
      const core::Problem& problem, const std::vector<int>& totals) const;

 private:
  GreedyOptions options_;
};

}  // namespace mfa::alloc
