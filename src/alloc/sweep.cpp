#include "alloc/sweep.hpp"

#include <chrono>

namespace mfa::alloc {

const char* method_name(Method m) {
  switch (m) {
    case Method::kGpa:
      return "GP+A";
    case Method::kMinlp:
      return "MINLP";
    case Method::kMinlpG:
      return "MINLP+G";
  }
  return "?";
}

std::vector<double> constraint_range(double lo, double hi, double step) {
  MFA_ASSERT(step > 0.0 && lo > 0.0 && hi >= lo);
  std::vector<double> out;
  for (double v = lo; v <= hi + 1e-9; v += step) out.push_back(v);
  return out;
}

SweepSeries run_sweep(const core::Problem& problem, Method method,
                      const SweepConfig& config) {
  SweepSeries series;
  series.method = method;
  series.points.reserve(config.constraints.size());

  for (double constraint : config.constraints) {
    core::Problem point_problem = problem;
    point_problem.resource_fraction = constraint;
    if (method == Method::kMinlp) point_problem.beta = 0.0;

    SweepPoint point;
    point.constraint = constraint;
    const auto t0 = std::chrono::steady_clock::now();

    if (method == Method::kGpa) {
      GpaSolver solver(config.gpa);
      if (StatusOr<GpaResult> r = solver.solve(point_problem); r.is_ok()) {
        const GpaResult& res = r.value();
        point.feasible = true;
        point.proved_optimal = false;  // heuristic: completion is no proof
        point.ii = res.allocation.ii();
        point.avg_utilization = res.allocation.average_utilization();
        point.phi = res.allocation.phi();
        point.goal = res.allocation.goal();
      }
    } else {
      solver::ExactSolver solver(config.exact);
      if (StatusOr<solver::ExactResult> r = solver.solve(point_problem);
          r.is_ok()) {
        const solver::ExactResult& res = r.value();
        point.feasible = true;
        point.proved_optimal = res.proved_optimal;
        point.ii = res.ii;
        point.avg_utilization = res.allocation.average_utilization();
        point.phi = res.phi;
        point.goal = res.goal;
      }
    }
    point.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    series.points.push_back(point);
  }
  return series;
}

}  // namespace mfa::alloc
