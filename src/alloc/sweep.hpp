// Resource-constraint sweeps — the experiment driver behind Figs. 2–5.
//
// A sweep runs one solution method over a range of resource constraints
// and records, per point, the metrics the paper plots: II, average FPGA
// utilization, spreading, goal value, and solve time. Infeasible points
// (constraint too tight) are recorded as such, matching the figures'
// truncated curves at the low end.
#pragma once

#include <vector>

#include "alloc/gpa.hpp"
#include "core/problem.hpp"
#include "solver/exact.hpp"
#include "support/status.hpp"

namespace mfa::alloc {

/// The three methods compared in Figs. 3–5.
enum class Method {
  kGpa,     ///< heuristic: GP + discretization + Algorithm 1
  kMinlp,   ///< exact, β = 0 (spreading ignored)
  kMinlpG,  ///< exact, α/β as given (II + spreading)
};

const char* method_name(Method m);

/// One sweep point (one x-value of a figure).
struct SweepPoint {
  double constraint = 0.0;    ///< resource constraint fraction (x-axis, a)
  bool feasible = false;
  /// True only when an exact search completed within budget at this
  /// point. GP+A points are heuristic and always report false.
  bool proved_optimal = false;
  double ii = 0.0;            ///< initiation interval, ms (y-axis)
  double avg_utilization = 0.0;  ///< mean per-FPGA utilization (x-axis, b)
  double phi = 0.0;
  double goal = 0.0;
  double seconds = 0.0;
};

struct SweepSeries {
  Method method = Method::kGpa;
  std::vector<SweepPoint> points;
};

struct SweepConfig {
  std::vector<double> constraints;  ///< fractions, e.g. 0.55 … 0.85
  GpaOptions gpa;
  solver::ExactOptions exact;
};

/// Range helper: fractions from lo to hi inclusive in steps of `step`.
std::vector<double> constraint_range(double lo, double hi, double step);

/// Runs `method` at every constraint in the config. The problem's
/// resource_fraction is overridden point by point; α/β are taken from
/// `problem` for kGpa/kMinlpG and forced to β = 0 for kMinlp.
SweepSeries run_sweep(const core::Problem& problem, Method method,
                      const SweepConfig& config);

}  // namespace mfa::alloc
