#include "alloc/gpa.hpp"

#include <chrono>

namespace mfa::alloc {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

StatusOr<GpaResult> GpaSolver::solve(const core::Problem& problem) const {
  const Status valid = problem.validate();
  if (!valid.is_ok()) return valid;

  // ---- Step 1: continuous relaxation (paper §3.2.1), memoized when a
  // shared cache is configured (portfolio lanes solve identical roots),
  // warm-started from options_.warm when set (the root bisection probes
  // the seed ÎI once; the interior-point path seeds the barrier). Cache
  // keys fold the seed in, so warm and cold entries never alias.
  auto t0 = std::chrono::steady_clock::now();
  // The interior-point seed needs a full (ÎI, N̂) point of the right
  // shape; the bisection hint only needs ÎI.
  const core::RelaxedSolution* warm =
      options_.warm && options_.warm->ii > 0.0 &&
              (!options_.use_interior_point ||
               options_.warm->n_hat.size() == problem.num_kernels())
          ? &*options_.warm
          : nullptr;
  core::CompiledModelCache* model_cache = options_.resolved_model_cache();
  core::RelaxationCache* relax_cache = options_.resolved_relax_cache();
  // An injected root (batched dispatch) replaces the whole step: no
  // cache read or write — see GpaOptions::root_override.
  const bool overridden = options_.root_override.has_value() &&
                          options_.root_override->n_hat.size() ==
                              problem.num_kernels();
  auto solve_root = [this, &problem, warm,
                     model_cache]() -> StatusOr<core::RelaxedSolution> {
    if (options_.use_interior_point) {
      return warm != nullptr
                 ? core::solve_relaxation_gp(problem, options_.gp, *warm,
                                             model_cache)
                 : core::solve_relaxation_gp(problem, options_.gp,
                                             model_cache);
    }
    return core::solve_relaxation(problem,
                                  core::CuBounds::defaults(problem),
                                  warm != nullptr ? warm->ii : 0.0);
  };
  StatusOr<core::RelaxedSolution> relaxed = [&]() {
    if (overridden) {
      return StatusOr<core::RelaxedSolution>(*options_.root_override);
    }
    if (relax_cache == nullptr) return solve_root();
    const core::Fingerprint key =
        options_.use_interior_point
            ? (warm != nullptr
                   ? core::relaxation_gp_cache_key(problem, options_.gp,
                                                   *warm)
                   : core::relaxation_gp_cache_key(problem, options_.gp))
            : core::relaxation_cache_key(problem,
                                         core::CuBounds::defaults(problem),
                                         warm != nullptr ? warm->ii : 0.0);
    return StatusOr<core::RelaxedSolution>(
        *relax_cache->get_or_solve(key, solve_root));
  }();
  const double seconds_relax = seconds_since(t0);
  if (!relaxed.is_ok()) return relaxed.status();

  // ---- Step 2: branch-and-bound discretization (§3.2.2, first half).
  t0 = std::chrono::steady_clock::now();
  solver::DiscretizeOptions discretize_options = options_.discretize;
  if (discretize_options.cache == nullptr) {
    discretize_options.cache = relax_cache;
  }
  solver::Discretizer discretizer(discretize_options);
  StatusOr<solver::DiscretizeResult> discrete =
      discretizer.run(problem, relaxed.value());
  const double seconds_discretize = seconds_since(t0);
  if (!discrete.is_ok()) return discrete.status();

  // ---- Step 3: greedy allocation (Algorithm 1).
  t0 = std::chrono::steady_clock::now();
  GreedyAllocator allocator(options_.greedy);
  StatusOr<GreedyResult> greedy =
      allocator.allocate(problem, discrete.value().totals);
  if (!greedy.is_ok()) return greedy.status();
  core::Allocation allocation = std::move(greedy.value().allocation);

  // ---- Step 4 (optional): migration-aware repack. Re-place the CUs the
  // greedy allocator actually landed (not the requested totals — greedy
  // may have dropped some) against the incumbent reference under the
  // stability budgets. Same totals ⇒ same II; only φ can regress. The
  // repack runs under its own deterministic node budget and is simply
  // skipped when infeasible within the budgets, leaving the
  // unconstrained placement standing.
  bool stability_applied = false;
  if (options_.stability != nullptr && options_.stability->constrained() &&
      options_.stability->reference.size() == problem.num_kernels()) {
    std::vector<int> placed(problem.num_kernels());
    for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
      placed[k] = allocation.total_cu(k);
    }
    solver::Budget budget =
        solver::Budget::nodes_only(options_.stability->repack_nodes);
    const solver::PackingResult packed =
        solver::PackingSolver(problem).pack(placed,
                                            solver::PackingMode::kMinSpreading,
                                            budget, options_.stability);
    if (packed.feasible && packed.allocation &&
        packed.allocation->feasible()) {
      allocation = *packed.allocation;
      stability_applied = true;
    }
  }
  const double seconds_allocate = seconds_since(t0);

  GpaResult result{std::move(allocation),
                   relaxed.value().ii,
                   relaxed.value().n_hat,
                   discrete.value().ii,
                   discrete.value().totals,
                   greedy.value().used_fraction,
                   discrete.value().nodes,
                   stability_applied,
                   seconds_relax,
                   seconds_discretize,
                   seconds_allocate};
  return result;
}

}  // namespace mfa::alloc
