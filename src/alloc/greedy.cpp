#include "alloc/greedy.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

namespace mfa::alloc {
namespace {

using core::Allocation;
using core::Kernel;
using core::Problem;
using core::ResourceVec;

/// Mutable per-iteration allocator state over F (possibly mixed) FPGAs.
struct FpgaState {
  ResourceVec slack;
  double slack_bw = 0.0;
  bool touched = false;  ///< any CU placed (line 14's "S_f = R" test)
  int index = 0;         ///< original FPGA id
  ResourceVec cap;       ///< this FPGA's constraint-level resource cap
  double bw_cap = 0.0;   ///< this FPGA's bandwidth cap
};

/// Decreasing criticality: the II impact of removing one CU from the
/// kernel's *target* count (WCET/(N−1) − WCET/N); single-CU kernels are
/// infinitely critical because losing their CU breaks eq. 8. Kernels
/// with nothing left to allocate sort last.
std::vector<std::size_t> sort_kernels(const Problem& p,
                                      const std::vector<int>& targets,
                                      const std::vector<int>& remaining) {
  std::vector<std::size_t> order(remaining.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  auto criticality = [&](std::size_t k) {
    if (remaining[k] <= 0) return -1.0;
    const double wcet = p.app.kernels[k].wcet_ms;
    const int n = targets[k];
    if (n == 1) return std::numeric_limits<double>::infinity();
    return wcet / (n - 1) - wcet / n;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double ca = criticality(a);
                     const double cb = criticality(b);
                     if (ca != cb) return ca > cb;
                     // Ties: bulkier kernels first (harder to place later).
                     return p.app.kernels[a].res.max_axis() >
                            p.app.kernels[b].res.max_axis();
                   });
  return order;
}

/// Scalar slack for "increasing order of resource slack" (line 22):
/// smallest remaining headroom across all axes incl. BW, normalized by
/// the FPGA's own caps so device classes compare fairly.
double slack_key(const FpgaState& s) {
  double key = std::numeric_limits<double>::infinity();
  for (std::size_t axis = 0; axis < core::kNumResources; ++axis) {
    if (s.cap.axis(axis) > 0.0) {
      key = std::min(key, s.slack.axis(axis) / s.cap.axis(axis));
    }
  }
  if (s.bw_cap > 0.0) key = std::min(key, s.slack_bw / s.bw_cap);
  return key;
}

/// Max CUs of kernel `kern` that fit in the given slack.
int fit(const Kernel& kern, const FpgaState& s, int limit) {
  int q = kern.res.max_multiples(s.slack, limit);
  if (kern.bw > 0.0) {
    q = std::min(q, static_cast<int>(std::floor(
                        s.slack_bw * (1.0 + 1e-12) / kern.bw + 1e-9)));
  }
  return std::max(q, 0);
}

bool fits_entirely(const Kernel& kern, int count, const FpgaState& s) {
  return fit(kern, s, count) >= count;
}

/// One allocation attempt at a fixed constraint R_c.
class Attempt {
 public:
  Attempt(const Problem& problem, const std::vector<int>& totals, double rc)
      : p_(problem),
        alloc_(problem),
        targets_(totals),
        remaining_(totals),
        fpgas_(static_cast<std::size_t>(problem.num_fpgas())) {
    for (int f = 0; f < problem.num_fpgas(); ++f) {
      const ResourceVec cap = problem.platform.fpga_capacity(f) * rc;
      const double bw_cap =
          problem.platform.fpga_bw_capacity(f) * problem.bw_fraction;
      fpgas_[static_cast<std::size_t>(f)] = {cap, bw_cap, false, f, cap,
                                             bw_cap};
    }
    // Tightest devices first so consolidation fills small FPGAs before
    // touching roomy ones; stable, so a homogeneous platform keeps its
    // seed index order exactly.
    std::stable_sort(fpgas_.begin(), fpgas_.end(),
                     [](const FpgaState& a, const FpgaState& b) {
                       if (a.cap.max_axis() != b.cap.max_axis()) {
                         return a.cap.max_axis() < b.cap.max_axis();
                       }
                       return a.bw_cap < b.bw_cap;
                     });
  }

  /// Lines 11–21: split kernels too large for one FPGA across untouched
  /// FPGAs, most critical first. Returns false if a single CU of some
  /// kernel fits nowhere (attempt hopeless at this R_c).
  bool prepass() {
    for (std::size_t k : sort_kernels(p_, targets_, remaining_)) {
      const Kernel& kern = p_.app.kernels[k];
      std::size_t f = 0;
      while (remaining_[k] > 0 && f < fpgas_.size()) {
        // "CU_k · R_k > R": the whole kernel does not fit on any one
        // (fresh) FPGA of the fleet.
        if (fits_on_one_fpga(kern, remaining_[k])) break;
        if (!fpgas_[f].touched) {
          const int chunk = fit(kern, fpgas_[f], remaining_[k]);
          if (chunk == 0) {
            // This device class cannot host even one CU; try the next
            // FPGA — only give up if no FPGA at all can host one.
            if (!any_fpga_fits_one(kern)) return false;
            ++f;
            continue;
          }
          place(k, fpgas_[f], chunk);
        } else {
          ++f;
        }
      }
    }
    return true;
  }

  /// Lines 22–37 with the paper's dynamic re-sorting ("after each
  /// allocation of a kernel, either full or partial, the kernels are
  /// sorted in decreasing criticality order"): repeatedly take the most
  /// critical unfinished kernel and place all its remaining CUs on the
  /// most occupied FPGA that fits them (consolidation); when no FPGA
  /// fits the whole kernel, place a single CU instead and re-evaluate.
  /// Criticality of the next CU is its marginal II impact,
  /// WCET/placed − WCET/(placed+1), infinite while placed = 0 — so when
  /// capacity runs out, the unplaced remainder is spread over the
  /// kernels whose II is hurt least.
  /// With `singles_first`, a preliminary round guarantees one CU per
  /// kernel before any full-kernel placement (the eq.-8 fallback).
  void main_pass(bool singles_first, bool consolidate = true) {
    sort_ascending_slack();
    if (singles_first) {
      for (std::size_t k : sort_kernels(p_, targets_, remaining_)) {
        if (remaining_[k] == 0 || alloc_.total_cu(k) > 0) continue;
        place_one(k);
      }
    }
    std::vector<bool> exhausted(p_.num_kernels(), false);
    for (;;) {
      const std::size_t k = most_critical(exhausted);
      if (k == kNone) break;
      if (consolidate && place_full(k)) continue;
      if (place_one(k)) continue;
      exhausted[k] = true;  // not even one CU fits anywhere
    }
  }

  [[nodiscard]] int leftover() const {
    int acc = 0;
    for (int r : remaining_) acc += r;
    return acc;
  }

  [[nodiscard]] bool every_kernel_placed() const {
    for (std::size_t k = 0; k < p_.num_kernels(); ++k) {
      if (alloc_.total_cu(k) == 0) return false;
    }
    return true;
  }

  [[nodiscard]] const Allocation& allocation() const { return alloc_; }
  Allocation take_allocation() { return std::move(alloc_); }

 private:
  void place(std::size_t k, FpgaState& s, int count) {
    MFA_ASSERT(count > 0 && count <= remaining_[k]);
    const Kernel& kern = p_.app.kernels[k];
    alloc_.add_cu(k, s.index, count);
    s.slack -= kern.res * static_cast<double>(count);
    s.slack_bw -= kern.bw * count;
    s.touched = true;
    remaining_[k] -= count;
  }

  void sort_ascending_slack() {
    // Normalized slack first (most occupied first); ties — notably all
    // FPGAs still empty — break toward the tightest device class, so
    // roomy devices are kept free for the kernels that need them.
    std::stable_sort(fpgas_.begin(), fpgas_.end(),
                     [&](const FpgaState& a, const FpgaState& b) {
                       const double ka = slack_key(a);
                       const double kb = slack_key(b);
                       if (ka != kb) return ka < kb;
                       return a.cap.max_axis() < b.cap.max_axis();
                     });
  }

  /// One CU of `kern` fits a fresh FPGA of at least one device class.
  [[nodiscard]] bool any_fpga_fits_one(const Kernel& kern) const {
    for (const FpgaState& s : fpgas_) {
      const FpgaState fresh{s.cap, s.bw_cap, false, 0, s.cap, s.bw_cap};
      if (fit(kern, fresh, 1) >= 1) return true;
    }
    return false;
  }

  /// All `count` CUs of `kern` fit one fresh FPGA of some class.
  [[nodiscard]] bool fits_on_one_fpga(const Kernel& kern, int count) const {
    for (const FpgaState& s : fpgas_) {
      const FpgaState fresh{s.cap, s.bw_cap, false, 0, s.cap, s.bw_cap};
      if (fits_entirely(kern, count, fresh)) return true;
    }
    return false;
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// The unfinished, non-exhausted kernel whose next CU matters most.
  /// Kernels with no CU yet are infinitely critical (eq. 8); among them
  /// the target-impact order of sort_kernels decides (single-CU targets
  /// first, then largest WCET/(N−1)−WCET/N). Once placed, a kernel
  /// competes by the marginal impact of its next CU.
  [[nodiscard]] std::size_t most_critical(
      const std::vector<bool>& exhausted) const {
    auto keys = [&](std::size_t k) {
      const double wcet = p_.app.kernels[k].wcet_ms;
      const int placed = alloc_.total_cu(k);
      const double inf = std::numeric_limits<double>::infinity();
      if (placed == 0) {
        const int n = targets_[k];
        const double impact = n == 1 ? inf : wcet / (n - 1) - wcet / n;
        return std::array<double, 3>{inf, impact, wcet};
      }
      const double marginal = wcet / placed - wcet / (placed + 1);
      return std::array<double, 3>{marginal, wcet, 0.0};
    };
    std::size_t best = kNone;
    std::array<double, 3> best_keys{-1.0, -1.0, -1.0};
    for (std::size_t k = 0; k < p_.num_kernels(); ++k) {
      if (remaining_[k] == 0 || exhausted[k]) continue;
      const std::array<double, 3> cand = keys(k);
      if (best == kNone || cand > best_keys) {
        best = k;
        best_keys = cand;
      }
    }
    return best;
  }

  /// Places all remaining CUs of kernel k on the most occupied FPGA that
  /// fits them entirely. Re-sorts FPGAs on success (line 37).
  bool place_full(std::size_t k) {
    const Kernel& kern = p_.app.kernels[k];
    for (FpgaState& s : fpgas_) {
      if (fits_entirely(kern, remaining_[k], s)) {
        place(k, s, remaining_[k]);
        sort_ascending_slack();
        return true;
      }
    }
    return false;
  }

  /// Places one CU of kernel k on the most occupied FPGA with room.
  bool place_one(std::size_t k) {
    const Kernel& kern = p_.app.kernels[k];
    for (FpgaState& s : fpgas_) {
      if (fit(kern, s, 1) >= 1) {
        place(k, s, 1);
        sort_ascending_slack();
        return true;
      }
    }
    return false;
  }

  const Problem& p_;
  Allocation alloc_;
  std::vector<int> targets_;
  std::vector<int> remaining_;
  std::vector<FpgaState> fpgas_;
};

/// Flattens a finished attempt into the POD memo form.
GreedyMemo to_memo(const Allocation& alloc, double used_fraction,
                   int iterations, int dropped_cus) {
  GreedyMemo memo;
  memo.cu.resize(alloc.num_kernels() *
                 static_cast<std::size_t>(alloc.num_fpgas()));
  for (std::size_t k = 0; k < alloc.num_kernels(); ++k) {
    for (int f = 0; f < alloc.num_fpgas(); ++f) {
      memo.cu[k * static_cast<std::size_t>(alloc.num_fpgas()) +
              static_cast<std::size_t>(f)] = alloc.cu(k, f);
    }
  }
  memo.used_fraction = used_fraction;
  memo.iterations = iterations;
  memo.dropped_cus = dropped_cus;
  return memo;
}

/// Rebuilds a GreedyResult against the caller's Problem from a memo.
GreedyResult from_memo(const Problem& problem, const GreedyMemo& memo) {
  GreedyResult result{Allocation(problem), memo.used_fraction,
                      memo.iterations, memo.dropped_cus};
  for (std::size_t k = 0; k < problem.num_kernels(); ++k) {
    for (int f = 0; f < problem.num_fpgas(); ++f) {
      result.allocation.set_cu(
          k, f,
          memo.cu[k * static_cast<std::size_t>(problem.num_fpgas()) +
                  static_cast<std::size_t>(f)]);
    }
  }
  return result;
}

}  // namespace

core::Fingerprint greedy_cache_key(const core::Problem& problem,
                                   const std::vector<int>& totals,
                                   const GreedyOptions& options) {
  core::Fingerprint key = core::relaxation_fingerprint(problem);
  // The relaxation fingerprint hashes the *effective* caps; the greedy
  // escalation additionally reads the fractions themselves (R_c starts
  // at resource_fraction and climbs against the full platform caps).
  key.mix(problem.resource_fraction);
  key.mix(problem.bw_fraction);
  key.mix(static_cast<std::uint64_t>(totals.size()));
  for (int n : totals) key.mix(static_cast<std::uint64_t>(n));
  key.mix(options.t_max);
  key.mix(options.delta);
  key.mix(std::uint64_t{0x92eed1});  // algorithm tag: greedy placement
  return key;
}

StatusOr<GreedyResult> GreedyAllocator::allocate(
    const Problem& problem, const std::vector<int>& totals) const {
  MFA_ASSERT(totals.size() == problem.num_kernels());
  for (int n : totals) {
    MFA_ASSERT_MSG(n >= 1, "allocator needs at least one CU per kernel");
  }

  // Memoized replay: identical (problem, totals, options) runs repeat
  // constantly — every portfolio lane places the same discretized
  // totals, and service churn revisits workloads — so a hit skips the
  // whole escalation loop. The memo stores no Problem reference; the
  // allocation is rebuilt against *this* problem.
  core::Fingerprint memo_key;
  if (options_.cache != nullptr) {
    memo_key = greedy_cache_key(problem, totals, options_);
    if (auto hit = options_.cache->lookup(memo_key)) {
      return from_memo(problem, *hit);
    }
  }

  const double r0 = problem.resource_fraction;
  const double r_max = std::min(r0 + options_.t_max, 1.0);
  const double delta = options_.delta > 0.0 ? options_.delta : 1.0;

  double rc = std::min(r0, 1.0);
  int iterations = 0;
  for (;;) {
    ++iterations;

    // Faithful kernel-wise Algorithm 1 first (consolidating, with the
    // oversized-kernel pre-pass); if it leaves a kernel empty or drops
    // CUs, try the eq.-8 fallback (one CU per kernel first) and the pure
    // marginal CU-by-CU variant, and keep the best attempt of the
    // iteration: all kernels placed > nothing dropped > lowest II >
    // lowest spreading.
    std::vector<Attempt> attempts;
    attempts.reserve(3);
    {
      Attempt primary(problem, totals, rc);
      if (primary.prepass()) {
        primary.main_pass(/*singles_first=*/false);
        attempts.push_back(std::move(primary));
      }
    }
    if (attempts.empty() || attempts.front().leftover() > 0 ||
        !attempts.front().every_kernel_placed()) {
      Attempt fallback(problem, totals, rc);
      if (fallback.prepass()) {
        fallback.main_pass(/*singles_first=*/true);
        attempts.push_back(std::move(fallback));
      }
      Attempt marginal(problem, totals, rc);
      marginal.main_pass(/*singles_first=*/true, /*consolidate=*/false);
      attempts.push_back(std::move(marginal));
    }

    Attempt* best = nullptr;
    auto score = [](const Attempt& a) {
      return std::array<double, 4>{a.every_kernel_placed() ? 0.0 : 1.0,
                                   a.leftover() > 0 ? 1.0 : 0.0,
                                   a.allocation().ii(),
                                   a.allocation().phi()};
    };
    for (Attempt& a : attempts) {
      if (best == nullptr || score(a) < score(*best)) best = &a;
    }

    if (best != nullptr && best->leftover() == 0) {
      GreedyResult result{best->take_allocation(), rc, iterations, 0};
      if (options_.cache != nullptr) {
        options_.cache->insert(memo_key,
                               to_memo(result.allocation, rc, iterations, 0));
      }
      return result;
    }

    if (rc >= r_max - 1e-12) {
      // Budget exhausted: Algorithm 1 has no failure exit — the partial
      // allocation stands and unplaced CUs are dropped, unless a kernel
      // ended without any CU (eq. 8).
      if (best != nullptr && best->every_kernel_placed()) {
        const int dropped = best->leftover();
        GreedyResult result{best->take_allocation(), rc, iterations,
                            dropped};
        if (options_.cache != nullptr) {
          options_.cache->insert(
              memo_key, to_memo(result.allocation, rc, iterations, dropped));
        }
        return result;
      }
      return Status{Code::kInfeasible,
                    "a kernel cannot place a single CU for any R_c in "
                    "[R, R+T]"};
    }
    // Line 39: relax the constraint and retry.
    rc = std::min(rc + delta, r_max);
  }
}

}  // namespace mfa::alloc
