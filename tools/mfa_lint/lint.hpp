// mfa_lint: the repo's in-tree static checker.
//
// clang-tidy and -Wthread-safety see what the compiler sees; this tool
// checks the invariants that live *between* functions and files — the
// project conventions a generic checker has no vocabulary for:
//
//   warm-path-alloc        MFA_WARM_PATH functions must not reach an
//                          allocating call through the in-tree call
//                          graph (the static face of ROADMAP item 1's
//                          zero-allocation warm event path).
//   serialize-determinism  nothing reachable from a serialization root
//                          (to_json / serialize*) may iterate unordered
//                          containers, call rand(), or key a map by
//                          pointer — serialized bytes are replay/WAL
//                          contracts and must be stable.
//   mutex-hygiene          in any class holding an mfa::Mutex member,
//                          every sibling data member must carry
//                          MFA_GUARDED_BY (or a justified suppression).
//   banned-io              std::cout / std::cerr / printf outside
//                          src/cli and bench code.
//   solver-clock           wall-clock reads (time(), clock(),
//                          system_clock, …) and bare rand() in solver /
//                          gp / core paths, which must stay
//                          deterministic under replay.
//
// Everything is lexical: a dependency-free tokenizer (comments, strings
// and preprocessor lines stripped; identifiers matched word-exact, so
// `time(` never matches `start_time(`), a per-file structural pass
// (function definitions, class bodies) and a name-based call graph over
// the scanned tree. Lexical means approximate — the tool prefers
// missing an exotic construct over false-positives on idiomatic code,
// and every rule supports explicit, justified suppression:
//
//   // mfa-lint: allow(rule-id) why this is fine
//
// A suppression attaches to the next line that holds code (or its own
// line, for trailing comments). On a function definition line it exempts
// the whole function and stops call-graph traversal into it.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mfa::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

/// One tokenized translation unit (or header).
struct SourceFile {
  std::string path;
  std::vector<Token> tokens;
  /// Include targets, e.g. "unordered_map" for <unordered_map>.
  std::vector<std::pair<int, std::string>> includes;
  /// line -> rule ids allowed on that line (suppressions already
  /// attached to their target lines).
  std::multimap<int, std::string> allows;

  [[nodiscard]] bool allowed(int line, std::string_view rule) const;
};

/// A lexically-detected function definition.
struct Function {
  std::string name;          ///< unqualified (last :: component)
  std::size_t file = 0;      ///< index into Corpus::files
  int line = 0;              ///< line of the name token
  std::size_t body_begin = 0;  ///< token index just past '{'
  std::size_t body_end = 0;    ///< token index of the matching '}'
  bool warm = false;           ///< carries MFA_WARM_PATH
};

struct Corpus {
  std::vector<SourceFile> files;
  std::vector<Function> functions;
  /// name -> function indices (overloads and same-name definitions
  /// share a bucket; traversal follows all of them).
  std::map<std::string, std::vector<std::size_t>> by_name;
};

/// Tokenizes one file: strips comments / string literals / preprocessor
/// lines (recording includes and `mfa-lint: allow(...)` suppressions).
SourceFile tokenize(std::string path, std::string_view text);

/// Builds the function index + call-graph buckets over `files`.
Corpus index(std::vector<SourceFile> files);

/// Runs every rule; diagnostics come back sorted by (file, line, rule).
std::vector<Diagnostic> run_rules(const Corpus& corpus);

/// Convenience: tokenize + index + run_rules over (path, content) pairs.
std::vector<Diagnostic> run_lint(
    const std::vector<std::pair<std::string, std::string>>& sources);

/// Reports every `mfa-lint: allow(<rule>)` comment whose rule id is in
/// `rules` as a finding (rule "forbid-suppression"). Escalation knob
/// for invariants a tree has fully paid off: once src/ is clean of a
/// rule's suppressions, the CLI's repeatable `--forbid-suppression
/// <rule>` flag keeps them from creeping back — the warm-path-alloc
/// rule runs this way in tier-1 (see CMakeLists' mfa_lint_src).
std::vector<Diagnostic> forbid_suppressions(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const std::vector<std::string>& rules);

/// "path:line: [rule] message" per diagnostic.
std::string format(const std::vector<Diagnostic>& diagnostics);

}  // namespace mfa::lint
