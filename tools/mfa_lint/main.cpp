// mfa_lint CLI:
//   `mfa_lint [--check] [--forbid-suppression <rule>]... <file-or-dir>...`
//
// Scans .hpp/.cpp files (directories recursively), prints one
// `path:line: [rule] message` per finding and exits non-zero when
// anything is found — the same binary is the ctest entry and the CI
// gate. `--check` is accepted for readability in scripts; it is the
// default (and only) mode. `--forbid-suppression <rule>` (repeatable)
// additionally fails on every allow(<rule>) comment, for rules whose
// suppressions the tree has fully retired (tier-1 runs it for
// warm-path-alloc).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> inputs;
  std::vector<std::string> forbidden;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") continue;
    if (arg == "--forbid-suppression") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "mfa_lint: --forbid-suppression needs a rule id\n");
        return 2;
      }
      forbidden.emplace_back(argv[++i]);
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::puts("usage: mfa_lint [--check] "
                "[--forbid-suppression <rule>]... <file-or-dir>...");
      std::puts("rules: warm-path-alloc serialize-determinism mutex-hygiene");
      std::puts("       banned-io solver-clock");
      std::puts("suppress: // mfa-lint: allow(rule-id) justification");
      std::puts("  (--forbid-suppression fails on any allow() of that rule)");
      return 0;
    }
    inputs.emplace_back(arg);
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "mfa_lint: no inputs (try --help)\n");
    return 2;
  }

  std::vector<std::pair<std::string, std::string>> sources;
  for (const fs::path& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const auto& entry :
           fs::recursive_directory_iterator(input, ec)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          sources.emplace_back(entry.path().generic_string(),
                               slurp(entry.path()));
        }
      }
    } else if (fs::is_regular_file(input, ec)) {
      sources.emplace_back(input.generic_string(), slurp(input));
    } else {
      std::fprintf(stderr, "mfa_lint: cannot read %s\n",
                   input.string().c_str());
      return 2;
    }
  }
  std::sort(sources.begin(), sources.end());

  std::vector<mfa::lint::Diagnostic> diagnostics =
      mfa::lint::run_lint(sources);
  if (!forbidden.empty()) {
    std::vector<mfa::lint::Diagnostic> banned =
        mfa::lint::forbid_suppressions(sources, forbidden);
    diagnostics.insert(diagnostics.end(),
                       std::make_move_iterator(banned.begin()),
                       std::make_move_iterator(banned.end()));
    std::sort(diagnostics.begin(), diagnostics.end(),
              [](const mfa::lint::Diagnostic& a,
                 const mfa::lint::Diagnostic& b) {
                return std::tie(a.file, a.line, a.rule) <
                       std::tie(b.file, b.line, b.rule);
              });
  }
  if (!diagnostics.empty()) {
    std::fputs(mfa::lint::format(diagnostics).c_str(), stdout);
    std::fprintf(stderr, "mfa_lint: %zu finding(s) in %zu file(s) scanned\n",
                 diagnostics.size(), sources.size());
    return 1;
  }
  std::fprintf(stderr, "mfa_lint: OK (%zu files scanned)\n", sources.size());
  return 0;
}
