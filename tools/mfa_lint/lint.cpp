#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <set>

namespace mfa::lint {
namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Control keywords that look like calls (`while (`) or would otherwise
/// be mistaken for function names.
bool is_keyword(std::string_view s) {
  static const std::set<std::string_view> kKeywords = {
      "if",       "for",        "while",  "switch",        "catch",
      "return",   "sizeof",     "alignof", "decltype",     "throw",
      "new",      "delete",     "operator", "static_assert", "assert",
      "alignas",  "noexcept",   "defined",
  };
  return kKeywords.count(s) > 0;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

/// Extracts every `mfa-lint: allow(rule) ...` from a comment.
std::vector<std::string> parse_allows(std::string_view comment) {
  std::vector<std::string> rules;
  std::size_t at = 0;
  while ((at = comment.find("mfa-lint:", at)) != std::string_view::npos) {
    std::size_t open = comment.find("allow(", at);
    if (open == std::string_view::npos) break;
    open += 6;
    const std::size_t close = comment.find(')', open);
    if (close == std::string_view::npos) break;
    rules.emplace_back(comment.substr(open, close - open));
    at = close;
  }
  return rules;
}

}  // namespace

bool SourceFile::allowed(int line, std::string_view rule) const {
  for (auto [it, end] = allows.equal_range(line); it != end; ++it) {
    if (it->second == rule) return true;
  }
  return false;
}

SourceFile tokenize(std::string path, std::string_view text) {
  SourceFile out;
  out.path = std::move(path);
  int line = 1;
  int last_token_line = 0;  // trailing-comment suppressions attach here
  std::vector<std::string> pending;  // allows waiting for their code line

  auto emit = [&](Token::Kind kind, std::string t, int at) {
    if (!pending.empty()) {
      for (std::string& rule : pending) out.allows.emplace(at, std::move(rule));
      pending.clear();
    }
    last_token_line = at;
    out.tokens.push_back(Token{kind, std::move(t), at});
  };
  auto record_comment = [&](std::string_view body, int comment_line) {
    for (std::string& rule : parse_allows(body)) {
      if (last_token_line == comment_line) {
        out.allows.emplace(comment_line, std::move(rule));  // trailing
      } else {
        pending.push_back(std::move(rule));
      }
    }
  };

  std::size_t i = 0;
  const std::size_t n = text.size();
  bool at_line_start = true;  // only whitespace seen on this line so far
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t end = text.find('\n', i);
      const std::size_t stop = end == std::string_view::npos ? n : end;
      record_comment(text.substr(i, stop - i), line);
      i = stop;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const std::size_t end = text.find("*/", i + 2);
      const std::size_t stop = end == std::string_view::npos ? n : end + 2;
      const std::string_view body = text.substr(i, stop - i);
      record_comment(body, line);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = stop;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor line (with \-continuations). Only includes are kept.
      std::size_t j = i + 1;
      while (j < n && std::isspace(static_cast<unsigned char>(text[j])) != 0 &&
             text[j] != '\n') {
        ++j;
      }
      const bool is_include = text.compare(j, 7, "include") == 0;
      std::size_t stop = i;
      while (stop < n) {
        const std::size_t eol = text.find('\n', stop);
        if (eol == std::string_view::npos) {
          stop = n;
          break;
        }
        std::size_t back = eol;
        while (back > stop &&
               std::isspace(static_cast<unsigned char>(text[back - 1])) != 0 &&
               text[back - 1] != '\n') {
          --back;
        }
        if (back > stop && text[back - 1] == '\\') {
          ++line;
          stop = eol + 1;
          continue;
        }
        stop = eol;
        break;
      }
      if (is_include) {
        const std::string_view dir = text.substr(i, stop - i);
        std::size_t open = dir.find_first_of("<\"", 8);
        if (open != std::string_view::npos) {
          const char close_ch = dir[open] == '<' ? '>' : '"';
          const std::size_t close = dir.find(close_ch, open + 1);
          if (close != std::string_view::npos) {
            out.includes.emplace_back(
                line, std::string(dir.substr(open + 1, close - open - 1)));
          }
        }
      }
      i = stop;
      continue;
    }
    at_line_start = false;
    if (c == '"') {
      ++i;
      while (i < n && text[i] != '"') {
        if (text[i] == '\\') ++i;
        if (i < n && text[i] == '\n') ++line;
        ++i;
      }
      ++i;
      continue;
    }
    if (c == '\'') {
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\') ++i;
        ++i;
      }
      ++i;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(text[j])) ++j;
      std::string word(text.substr(i, j - i));
      // Raw string literal R"delim( ... )delim".
      if (word == "R" && j < n && text[j] == '"') {
        std::size_t p = j + 1;
        while (p < n && text[p] != '(') ++p;
        const std::string close =
            ")" + std::string(text.substr(j + 1, p - j - 1)) + "\"";
        const std::size_t end = text.find(close, p);
        const std::size_t stop =
            end == std::string_view::npos ? n : end + close.size();
        const std::string_view body = text.substr(i, stop - i);
        line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
        i = stop;
        continue;
      }
      emit(Token::Kind::kIdent, std::move(word), line);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < n && (is_ident_char(text[j]) || text[j] == '.' ||
                       text[j] == '\'')) {
        ++j;
      }
      emit(Token::Kind::kNumber, std::string(text.substr(i, j - i)), line);
      i = j;
      continue;
    }
    emit(Token::Kind::kPunct, std::string(1, c), line);
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Structural pass: function definitions + name-based call graph
// ---------------------------------------------------------------------------

namespace {

bool tok_is(const std::vector<Token>& t, std::size_t i, std::string_view s) {
  return i < t.size() && t[i].text == s;
}

std::size_t match_delim(const std::vector<Token>& t, std::size_t open,
                        std::string_view o, std::string_view c) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == o) ++depth;
    if (t[i].text == c && --depth == 0) return i;
  }
  return kNpos;
}

std::size_t match_paren(const std::vector<Token>& t, std::size_t open) {
  return match_delim(t, open, "(", ")");
}
std::size_t match_brace(const std::vector<Token>& t, std::size_t open) {
  return match_delim(t, open, "{", "}");
}

/// Skips a balanced template-argument list starting at `<`; returns the
/// index past the matching `>`, or `from` unchanged when it does not
/// look like one (bails on ; to survive `a < b` comparisons).
std::size_t skip_angles(const std::vector<Token>& t, std::size_t from) {
  if (!tok_is(t, from, "<")) return from;
  int depth = 0;
  for (std::size_t i = from; i < t.size(); ++i) {
    if (t[i].text == "<") ++depth;
    if (t[i].text == ">" && --depth == 0) return i + 1;
    if (t[i].text == ";" || t[i].text == "{") break;
  }
  return from;
}

/// From the token after a parameter list's `)`, finds the `{` opening a
/// function body, walking the allowed trailing sequence (const,
/// noexcept, annotation macros, trailing return, ctor-init list).
/// Returns kNpos when this is not a definition.
std::size_t find_body(const std::vector<Token>& t, std::size_t k) {
  while (k < t.size()) {
    const std::string& s = t[k].text;
    if (s == "{") return k;
    if (s == ";" || s == "=") return kNpos;
    if (s == "const" || s == "final" || s == "override" || s == "mutable" ||
        s == "try") {
      ++k;
      continue;
    }
    if (s == "noexcept" || starts_with(s, "MFA_") ||
        starts_with(s, "[[")) {
      ++k;
      if (tok_is(t, k, "(")) {
        const std::size_t close = match_paren(t, k);
        if (close == kNpos) return kNpos;
        k = close + 1;
      }
      continue;
    }
    if (s == "[") {  // [[attribute]]
      while (k < t.size() && t[k].text != "]") ++k;
      ++k;
      continue;
    }
    if (s == "-" && tok_is(t, k + 1, ">")) {  // trailing return type
      k += 2;
      while (k < t.size() && t[k].text != "{" && t[k].text != ";") ++k;
      continue;
    }
    if (s == ":") {  // constructor initializer list
      ++k;
      while (k < t.size()) {
        if (t[k].kind != Token::Kind::kIdent) return kNpos;
        ++k;
        k = skip_angles(t, k);
        if (tok_is(t, k, "(")) {
          const std::size_t close = match_paren(t, k);
          if (close == kNpos) return kNpos;
          k = close + 1;
        } else if (tok_is(t, k, "{")) {
          const std::size_t close = match_brace(t, k);
          if (close == kNpos) return kNpos;
          k = close + 1;
        } else {
          return kNpos;
        }
        if (tok_is(t, k, ",")) {
          ++k;
          continue;
        }
        break;
      }
      continue;
    }
    return kNpos;
  }
  return kNpos;
}

/// Names marked MFA_WARM_PATH in `file`: the first identifier after the
/// macro that is directly followed by `(` is the marked function. The
/// set is per-file: a definition is warm only when its *own* file marks
/// the name, so an unrelated same-named function elsewhere (the graph
/// is name-based) is not dragged in as a root.
void collect_warm_names(const SourceFile& file, std::set<std::string>& warm) {
  const std::vector<Token>& t = file.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "MFA_WARM_PATH") continue;
    for (std::size_t j = i + 1; j < t.size() && j < i + 64; ++j) {
      if (t[j].text == ";" || t[j].text == "{") break;
      if (t[j].kind == Token::Kind::kIdent && tok_is(t, j + 1, "(") &&
          !is_keyword(t[j].text) && !starts_with(t[j].text, "MFA_")) {
        warm.insert(t[j].text);
        break;
      }
    }
  }
}

}  // namespace

Corpus index(std::vector<SourceFile> files) {
  Corpus corpus;
  corpus.files = std::move(files);
  for (std::size_t fi = 0; fi < corpus.files.size(); ++fi) {
    std::set<std::string> warm_names;
    collect_warm_names(corpus.files[fi], warm_names);
    const std::vector<Token>& t = corpus.files[fi].tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != Token::Kind::kIdent || !tok_is(t, i + 1, "(")) continue;
      if (is_keyword(t[i].text) || starts_with(t[i].text, "MFA_")) continue;
      if (i > 0 && t[i - 1].text == "operator") continue;
      const std::size_t close = match_paren(t, i + 1);
      if (close == kNpos) continue;
      const std::size_t open = find_body(t, close + 1);
      if (open == kNpos) continue;
      const std::size_t end = match_brace(t, open);
      if (end == kNpos) continue;
      Function fn;
      fn.name = t[i].text;
      fn.file = fi;
      fn.line = t[i].line;
      fn.body_begin = open + 1;
      fn.body_end = end;
      fn.warm = warm_names.count(fn.name) > 0;
      corpus.by_name[fn.name].push_back(corpus.functions.size());
      corpus.functions.push_back(std::move(fn));
      // Keep scanning from inside the signature so nested definitions
      // (rare) and body calls are still visited by the rules.
    }
  }
  return corpus;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

namespace {

struct Call {
  std::string name;
  int line = 0;
};

/// Call sites inside a function body: `name(` plus templated
/// `name<...>(`; annotation macros and control keywords excluded.
std::vector<Call> calls_in(const std::vector<Token>& t, const Function& fn) {
  std::vector<Call> calls;
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    if (!tok_is(t, i, "(") || i == fn.body_begin) continue;
    std::size_t j = i - 1;
    if (t[j].text == ">") {  // name<...>( — walk back over the args
      int depth = 0;
      while (j > fn.body_begin) {
        if (t[j].text == ">") ++depth;
        if (t[j].text == "<" && --depth == 0) {
          --j;
          break;
        }
        --j;
      }
    }
    if (t[j].kind != Token::Kind::kIdent || is_keyword(t[j].text) ||
        starts_with(t[j].text, "MFA_")) {
      continue;
    }
    calls.push_back(Call{t[j].text, t[j].line});
  }
  return calls;
}

/// Reachable set over the name-based call graph from `roots`, stopping
/// at functions whose definition line carries allow(`rule`) (barriers)
/// and at call names in `stop_names` (the rule's banned set: those are
/// diagnosed at the call site, not followed — following them would walk
/// into unrelated same-named definitions). Resolution prefers same-file
/// definitions: when the caller's file defines the name, only those
/// definitions are followed, which keeps a name shared across unrelated
/// classes from splicing their call graphs together. `on_visit` runs
/// once per reached function with the chain that got there.
template <typename Visit>
void traverse(const Corpus& corpus, const std::vector<std::size_t>& roots,
              std::string_view rule, const std::set<std::string>& stop_names,
              Visit on_visit) {
  std::set<std::size_t> visited;
  std::deque<std::pair<std::size_t, std::string>> queue;
  for (const std::size_t r : roots) {
    queue.emplace_back(r, corpus.functions[r].name);
  }
  while (!queue.empty()) {
    auto [fi, chain] = queue.front();
    queue.pop_front();
    if (!visited.insert(fi).second) continue;
    const Function& fn = corpus.functions[fi];
    const SourceFile& file = corpus.files[fn.file];
    if (file.allowed(fn.line, rule)) continue;  // barrier
    on_visit(fn, chain);
    for (const Call& call : calls_in(file.tokens, fn)) {
      if (stop_names.count(call.name) > 0) continue;
      const auto bucket = corpus.by_name.find(call.name);
      if (bucket == corpus.by_name.end()) continue;
      bool local = false;
      for (const std::size_t gi : bucket->second) {
        if (corpus.functions[gi].file == fn.file) local = true;
      }
      for (const std::size_t gi : bucket->second) {
        if (local && corpus.functions[gi].file != fn.file) continue;
        if (visited.count(gi) == 0) {
          queue.emplace_back(gi, chain + " <- " + call.name);
        }
      }
    }
  }
}

// ---- warm-path-alloc ------------------------------------------------------

const std::set<std::string>& allocating_calls() {
  static const std::set<std::string> kAlloc = {
      "malloc",       "calloc",       "realloc",      "strdup",
      "aligned_alloc", "push_back",   "emplace_back", "push_front",
      "emplace_front", "emplace",     "resize",       "reserve",
      "insert",       "append",       "to_string",    "make_shared",
      "make_unique",  "substr",       "operator_new",
  };
  return kAlloc;
}

void check_warm_path(const Corpus& corpus, std::vector<Diagnostic>& out) {
  constexpr std::string_view kRule = "warm-path-alloc";
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < corpus.functions.size(); ++i) {
    if (corpus.functions[i].warm) roots.push_back(i);
  }
  traverse(corpus, roots, kRule, allocating_calls(),
           [&](const Function& fn, const std::string& chain) {
    const SourceFile& file = corpus.files[fn.file];
    const std::vector<Token>& t = file.tokens;
    for (const Call& call : calls_in(t, fn)) {
      if (allocating_calls().count(call.name) == 0) continue;
      if (file.allowed(call.line, kRule)) continue;
      out.push_back(Diagnostic{
          file.path, call.line, std::string(kRule),
          "allocating call '" + call.name + "' reachable from MFA_WARM_PATH (" +
              chain + ")"});
    }
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (t[i].text == "new" && t[i].kind == Token::Kind::kIdent) {
        if (file.allowed(t[i].line, kRule)) continue;
        out.push_back(Diagnostic{
            file.path, t[i].line, std::string(kRule),
            "operator new reachable from MFA_WARM_PATH (" + chain + ")"});
      }
      // Local std::string / std::vector construction (not a ref/ptr).
      if ((t[i].text == "string" || t[i].text == "vector" ||
           t[i].text == "deque") &&
          i >= 2 && t[i - 1].text == ":" && t[i - 2].text == ":" && i >= 3 &&
          t[i - 3].text == "std") {
        std::size_t j = skip_angles(t, i + 1);
        if (j < t.size() && t[j].text != "&" && t[j].text != "*" &&
            t[j].text != ">" && t[j].text != "," && t[j].text != ")" &&
            t[j].text != ":" && t[j].text != ";") {
          if (file.allowed(t[i].line, kRule)) continue;
          out.push_back(Diagnostic{
              file.path, t[i].line, std::string(kRule),
              "constructs std::" + t[i].text +
                  " on a MFA_WARM_PATH path (" + chain + ")"});
        }
      }
    }
  });
}

// ---- serialize-determinism ------------------------------------------------

bool is_serialize_root(const Function& fn) {
  return fn.name == "to_json" || fn.name == "wal_header_to_json" ||
         fn.name.find("serialize") != std::string::npos;
}

void check_serialize(const Corpus& corpus, std::vector<Diagnostic>& out) {
  constexpr std::string_view kRule = "serialize-determinism";
  std::vector<std::size_t> roots;
  std::set<std::size_t> root_files;
  for (std::size_t i = 0; i < corpus.functions.size(); ++i) {
    if (is_serialize_root(corpus.functions[i])) {
      roots.push_back(i);
      root_files.insert(corpus.functions[i].file);
    }
  }
  // Files that define serialization roots must not even include the
  // unordered containers: iteration order would leak into the bytes.
  for (const std::size_t fi : root_files) {
    const SourceFile& file = corpus.files[fi];
    for (const auto& [line, target] : file.includes) {
      if (target == "unordered_map" || target == "unordered_set") {
        if (file.allowed(line, kRule)) continue;
        out.push_back(Diagnostic{
            file.path, line, std::string(kRule),
            "serialization TU includes <" + target +
                ">; iteration order is not stable across implementations"});
      }
    }
  }
  static const std::set<std::string> kStop = {"rand", "srand", "rand_r",
                                              "random"};
  traverse(corpus, roots, kRule, kStop,
           [&](const Function& fn, const std::string& chain) {
    const SourceFile& file = corpus.files[fn.file];
    const std::vector<Token>& t = file.tokens;
    for (const Call& call : calls_in(t, fn)) {
      if (call.name != "rand" && call.name != "srand" &&
          call.name != "rand_r" && call.name != "random") {
        continue;
      }
      if (file.allowed(call.line, kRule)) continue;
      out.push_back(Diagnostic{
          file.path, call.line, std::string(kRule),
          "'" + call.name + "' reachable from serialization root (" + chain +
              "); serialized bytes must be deterministic"});
    }
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (t[i].text == "unordered_map" || t[i].text == "unordered_set") {
        if (file.allowed(t[i].line, kRule)) continue;
        out.push_back(Diagnostic{
            file.path, t[i].line, std::string(kRule),
            "'" + t[i].text + "' used in serialization-reachable code (" +
                chain + "); iteration order would leak into the bytes"});
      }
      // map<Key*, ...>: pointer values are per-run; ordering by them
      // makes the output nondeterministic.
      if (t[i].text == "map" && tok_is(t, i + 1, "<")) {
        int depth = 0;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
          if (t[j].text == "<") ++depth;
          if (t[j].text == ">" && --depth == 0) break;
          if (t[j].text == ";") break;
          if (depth == 1 && t[j].text == ",") break;  // key type ends
          if (depth == 1 && t[j].text == "*") {
            if (!file.allowed(t[i].line, kRule)) {
              out.push_back(Diagnostic{
                  file.path, t[i].line, std::string(kRule),
                  "pointer-keyed map in serialization-reachable code (" +
                      chain + "); pointer order is per-run"});
            }
            break;
          }
        }
      }
    }
  });
}

// ---- mutex-hygiene --------------------------------------------------------

struct ClassBody {
  std::string name;
  std::size_t begin = 0;  ///< token index just past '{'
  std::size_t end = 0;    ///< token index of '}'
};

std::vector<ClassBody> find_classes(const std::vector<Token>& t) {
  std::vector<ClassBody> classes;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "class" && t[i].text != "struct") continue;
    if (i > 0 && (t[i - 1].text == "enum" || t[i - 1].text == "<" ||
                  t[i - 1].text == ",")) {
      continue;  // enum class / template parameter
    }
    std::string name;
    std::size_t j = i + 1;
    while (j < t.size()) {
      const std::string& s = t[j].text;
      if (s == ";" || s == "(" || s == ")" || s == ">" || s == ",") break;
      if (s == "{" || s == ":") break;
      if (starts_with(s, "MFA_")) {
        ++j;
        if (tok_is(t, j, "(")) {
          const std::size_t close = match_paren(t, j);
          if (close == kNpos) break;
          j = close + 1;
        }
        continue;
      }
      if (t[j].kind == Token::Kind::kIdent && s != "final") name = s;
      ++j;
    }
    if (j >= t.size() || name.empty()) continue;
    if (t[j].text == ":") {  // base-clause: scan to the body brace
      while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
    }
    if (j >= t.size() || t[j].text != "{") continue;
    const std::size_t end = match_brace(t, j);
    if (end == kNpos) continue;
    classes.push_back(ClassBody{name, j + 1, end});
  }
  return classes;
}

/// Splits a class body into top-level member statements. A statement
/// ends at a depth-0 `;` or at the `}` closing a depth-0 brace block
/// (inline function bodies, nested classes).
std::vector<std::pair<std::size_t, std::size_t>> member_statements(
    const std::vector<Token>& t, const ClassBody& body) {
  std::vector<std::pair<std::size_t, std::size_t>> stmts;
  std::size_t start = body.begin;
  int paren = 0;
  int brace = 0;
  for (std::size_t i = body.begin; i < body.end; ++i) {
    const std::string& s = t[i].text;
    if (s == "(") ++paren;
    if (s == ")") --paren;
    if (s == "{") ++brace;
    if (s == "}") {
      --brace;
      if (brace == 0 && paren == 0) {
        stmts.emplace_back(start, i + 1);
        start = i + 1;
      }
      continue;
    }
    if (s == ";" && paren == 0 && brace == 0) {
      stmts.emplace_back(start, i);
      start = i + 1;
    }
  }
  return stmts;
}

void check_mutex_hygiene(const Corpus& corpus, std::vector<Diagnostic>& out) {
  constexpr std::string_view kRule = "mutex-hygiene";
  for (const SourceFile& file : corpus.files) {
    const std::vector<Token>& t = file.tokens;
    for (const ClassBody& body : find_classes(t)) {
      const auto stmts = member_statements(t, body);
      // Classification shared by the two passes below.
      struct View {
        std::size_t begin = 0, end = 0;
        bool is_function = false;  ///< declarator has a parameter list
        bool is_type_ish = false;  ///< nested type / using / operator / …
        bool is_exempt = false;    ///< sync primitive / immutable member
      };
      auto classify = [&](std::size_t b, std::size_t e) {
        std::size_t s = b;
        while (s < e && (t[s].text == "public" || t[s].text == "private" ||
                         t[s].text == "protected" || t[s].text == ":")) {
          ++s;
        }
        View v;
        v.begin = s;
        v.end = e;
        for (std::size_t i = s; i < e; ++i) {
          const std::string& w = t[i].text;
          if (w == "using" || w == "typedef" || w == "friend" ||
              w == "static" || w == "template" || w == "enum" ||
              w == "class" || w == "struct" || w == "operator" ||
              w == "default" || w == "delete") {
            v.is_type_ish = true;
          }
          if (w == "Mutex" || w == "CondVar" || w == "atomic" ||
              w == "const" || w == "constexpr" || w == "once_flag") {
            v.is_exempt = true;
          }
          if (w == "(" && i > s && t[i - 1].kind == Token::Kind::kIdent &&
              !starts_with(t[i - 1].text, "MFA_")) {
            v.is_function = true;
          }
        }
        if (s >= e) v.is_type_ish = true;
        return v;
      };
      // Does this class hold an mfa::Mutex *data member* of its own
      // (not inside a nested type, not a deleted special member)?
      bool has_mutex = false;
      for (const auto& [b, e] : stmts) {
        const auto v = classify(b, e);
        if (v.is_function || v.is_type_ish) continue;
        for (std::size_t i = v.begin; i < v.end; ++i) {
          if (t[i].text == "Mutex") has_mutex = true;
        }
      }
      if (!has_mutex) continue;
      for (const auto& [b, e] : stmts) {
        const auto v = classify(b, e);
        if (v.is_function || v.is_type_ish || v.is_exempt) continue;
        bool guarded = false;
        std::string member;
        int line = 0;
        for (std::size_t i = v.begin; i < v.end; ++i) {
          const std::string& w = t[i].text;
          if (w == "MFA_GUARDED_BY" || w == "MFA_PT_GUARDED_BY") {
            guarded = true;
            break;
          }
          if (w == "=" || w == "{") break;
          if (t[i].kind == Token::Kind::kIdent) {
            member = w;
            line = t[i].line;
          }
        }
        if (guarded || member.empty()) continue;
        if (file.allowed(line, kRule)) continue;
        out.push_back(Diagnostic{
            file.path, line, std::string(kRule),
            "member '" + member + "' of '" + body.name +
                "' (which holds an mfa::Mutex) lacks MFA_GUARDED_BY"});
      }
    }
  }
}

// ---- banned-io / solver-clock ---------------------------------------------

bool path_contains(std::string_view path, std::string_view piece) {
  return path.find(piece) != std::string_view::npos;
}

void check_token_hygiene(const Corpus& corpus, std::vector<Diagnostic>& out) {
  for (const SourceFile& file : corpus.files) {
    const std::vector<Token>& t = file.tokens;
    const bool io_exempt = path_contains(file.path, "/cli/") ||
                           path_contains(file.path, "bench") ||
                           path_contains(file.path, "main.cpp");
    const bool solver_path = path_contains(file.path, "/solver/") ||
                             path_contains(file.path, "/gp/") ||
                             path_contains(file.path, "/core/");
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::Kind::kIdent) continue;
      const std::string& w = t[i].text;
      if (!io_exempt &&
          (w == "cout" || w == "cerr" || w == "printf" || w == "puts")) {
        if (file.allowed(t[i].line, "banned-io")) continue;
        out.push_back(Diagnostic{
            file.path, t[i].line, "banned-io",
            "'" + w + "' outside cli/bench code; return strings or use "
                      "the logging callbacks instead"});
      }
      if (solver_path) {
        const bool clock_call =
            (w == "time" || w == "clock" || w == "gettimeofday" ||
             w == "localtime" || w == "strftime") &&
            tok_is(t, i + 1, "(");
        const bool rand_call =
            (w == "rand" || w == "srand") && tok_is(t, i + 1, "(");
        if (clock_call || rand_call || w == "system_clock") {
          if (file.allowed(t[i].line, "solver-clock")) continue;
          out.push_back(Diagnostic{
              file.path, t[i].line, "solver-clock",
              "'" + w + "' in a solver/model path; solves must be "
                        "deterministic under replay (steady_clock via "
                        "Budget is the sanctioned timer)"});
        }
      }
    }
  }
}

}  // namespace

std::vector<Diagnostic> run_rules(const Corpus& corpus) {
  std::vector<Diagnostic> out;
  check_warm_path(corpus, out);
  check_serialize(corpus, out);
  check_mutex_hygiene(corpus, out);
  check_token_hygiene(corpus, out);
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Diagnostic& a, const Diagnostic& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule && a.message == b.message;
                        }),
            out.end());
  return out;
}

std::vector<Diagnostic> run_lint(
    const std::vector<std::pair<std::string, std::string>>& sources) {
  std::vector<SourceFile> files;
  files.reserve(sources.size());
  for (const auto& [path, content] : sources) {
    files.push_back(tokenize(path, content));
  }
  return run_rules(index(std::move(files)));
}

std::vector<Diagnostic> forbid_suppressions(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const std::vector<std::string>& rules) {
  std::vector<Diagnostic> out;
  for (const auto& [path, content] : sources) {
    const SourceFile file = tokenize(path, content);
    for (const auto& [line, rule] : file.allows) {
      if (std::find(rules.begin(), rules.end(), rule) != rules.end()) {
        out.push_back(
            {file.path, line, "forbid-suppression",
             "suppression of '" + rule +
                 "' is not permitted in this tree: fix the finding "
                 "instead of allowing it"});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return out;
}

std::string format(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
           d.message + "\n";
  }
  return out;
}

}  // namespace mfa::lint
