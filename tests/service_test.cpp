// Allocation-service coverage: trace generator determinism and JSON
// round-trips, replay-log determinism (the `serve --trace` contract),
// warm == cold solution parity on every event, cache-eviction
// transparency, event-queue MPMC behavior, and the event error paths
// (unknown ids, duplicates, empty pools).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "io/serialize.hpp"
#include "scenario/trace.hpp"
#include "service/alloc_server.hpp"
#include "service/composite.hpp"
#include "service/event_queue.hpp"
#include "testutil.hpp"

namespace mfa::service {
namespace {

using scenario::Trace;
using scenario::TraceSpec;

TraceSpec small_spec(int events) {
  TraceSpec spec;
  spec.num_events = events;
  spec.num_fpgas = 3;
  spec.max_live_pipelines = 4;
  spec.max_kernels = 3;
  return spec;
}

/// Replays `trace` through a fresh server, returning every outcome.
std::vector<EventOutcome> replay(const Trace& trace,
                                 const ServerOptions& options) {
  AllocServer server(trace.platform, options);
  std::vector<EventOutcome> outcomes;
  outcomes.reserve(trace.events.size());
  for (const Event& event : trace.events) {
    outcomes.push_back(server.apply(event));
  }
  return outcomes;
}

/// Equality over the deterministic outcome fields (everything the CLI
/// writes to the replay log; wall-clock seconds excluded).
void expect_deterministic_eq(const std::vector<EventOutcome>& a,
                             const std::vector<EventOutcome>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(a[i].sequence, b[i].sequence);
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].status.code(), b[i].status.code());
    EXPECT_EQ(a[i].status.message(), b[i].status.message());
    EXPECT_EQ(a[i].solve_status.code(), b[i].solve_status.code());
    EXPECT_EQ(a[i].active_pipelines, b[i].active_pipelines);
    EXPECT_EQ(a[i].solve.warm_started, b[i].solve.warm_started);
    EXPECT_EQ(a[i].solve.ii, b[i].solve.ii);  // bit-identical
    EXPECT_EQ(a[i].solve.phi, b[i].solve.phi);
    EXPECT_EQ(a[i].solve.goal, b[i].solve.goal);
    EXPECT_EQ(a[i].solve.totals, b[i].solve.totals);
    EXPECT_EQ(a[i].solve.nodes, b[i].solve.nodes);
    // The delta class depends only on the event stream, never on lane
    // scheduling (the compile/patch counters, by contrast, are only
    // deterministic for sequential lanes — see EventOutcome).
    EXPECT_EQ(a[i].cache.delta, b[i].cache.delta);
    // The migration diff is part of the deterministic replay contract
    // (it is derived from consecutive incumbents, which are).
    EXPECT_EQ(a[i].diff.computed, b[i].diff.computed);
    EXPECT_EQ(a[i].diff.cus_moved, b[i].diff.cus_moved);
    EXPECT_EQ(a[i].diff.pipelines_disturbed, b[i].diff.pipelines_disturbed);
    EXPECT_EQ(a[i].diff.goal_regret, b[i].diff.goal_regret);
    EXPECT_EQ(a[i].diff.stability_applied, b[i].diff.stability_applied);
    EXPECT_EQ(a[i].diff.budget_exceeded, b[i].diff.budget_exceeded);
  }
}

TEST(TraceGenerator, SameSeedSameBytes) {
  const TraceSpec spec = small_spec(80);
  const Trace a = scenario::generate_trace(spec, 11);
  const Trace b = scenario::generate_trace(spec, 11);
  EXPECT_EQ(io::to_json(a).dump(), io::to_json(b).dump());
  const Trace c = scenario::generate_trace(spec, 12);
  EXPECT_NE(io::to_json(a).dump(), io::to_json(c).dump());
}

TEST(TraceGenerator, ProducesRequestedEventMixAndValidLifecycle) {
  const Trace trace = scenario::generate_trace(small_spec(200), 3);
  ASSERT_EQ(trace.events.size(), 200u);
  int adds = 0;
  int removes = 0;
  std::vector<std::string> live;
  double last_time = 0.0;
  for (const Event& e : trace.events) {
    EXPECT_GE(e.time_ms, last_time);  // non-decreasing timestamps
    last_time = e.time_ms;
    switch (e.type) {
      case Event::Type::kAddPipeline: {
        ++adds;
        EXPECT_FALSE(e.pipeline.app.kernels.empty());
        EXPECT_GT(e.pipeline.weight, 0.0);
        // Arrivals are unique and not yet live.
        for (const std::string& id : live) {
          EXPECT_NE(id, e.pipeline.id);
        }
        live.push_back(e.pipeline.id);
        break;
      }
      case Event::Type::kRemovePipeline: {
        ++removes;
        // Every removal targets a live pipeline.
        auto it = std::find(live.begin(), live.end(), e.id);
        ASSERT_NE(it, live.end()) << "removal of dead id " << e.id;
        live.erase(it);
        break;
      }
      case Event::Type::kReprioritize: {
        auto it = std::find(live.begin(), live.end(), e.id);
        EXPECT_NE(it, live.end()) << "reprioritize of dead id " << e.id;
        EXPECT_GT(e.weight, 0.0);
        break;
      }
      case Event::Type::kResizePlatform:
        EXPECT_GE(e.platform.num_fpgas, 1);
        break;
    }
  }
  EXPECT_GT(adds, 0);
  EXPECT_GT(removes, 0);
}

TEST(TraceGenerator, JsonRoundTripIsLossless) {
  const Trace trace = scenario::generate_trace(small_spec(60), 5);
  const std::string text = io::to_json(trace).dump(2);
  auto parsed = io::trace_from_text(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(io::to_json(parsed.value()).dump(2), text);
}

TEST(AllocServer, ReplayLogIsDeterministic) {
  const Trace trace = scenario::generate_trace(small_spec(120), 17);
  const ServerOptions options;
  const auto a = replay(trace, options);
  const auto b = replay(trace, options);
  expect_deterministic_eq(a, b);

  // Lane parallelism must not change the log either (lanes write into
  // indexed slots; the winner is chosen by goal, not completion time).
  ServerOptions parallel = options;
  parallel.solver_threads = 3;
  expect_deterministic_eq(a, replay(trace, parallel));
}

TEST(AllocServer, StabilityOffMatchesGenerousBudgets) {
  // The stability ladder must be a no-op unless a budget actually
  // binds: a replay under absurdly generous budgets serializes to the
  // very same bytes as the stability-off replay (the bench gate's
  // --check property, asserted per event here).
  const Trace trace = scenario::generate_trace(small_spec(120), 17);
  const ServerOptions off;
  ServerOptions generous;
  generous.max_moves = 1 << 29;
  generous.max_disturbed = 1 << 29;
  const auto a = replay(trace, off);
  const auto b = replay(trace, generous);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(io::to_json(a[i]).dump(), io::to_json(b[i]).dump());
  }
}

TEST(AllocServer, StabilityBudgetsBoundDisturbance) {
  // The hard contract: with max_disturbed = k, no accepted event
  // disturbs more than k surviving pipelines unless the outcome says so
  // (budget_exceeded marks the ladder falling through to rung 3).
  const Trace trace = scenario::generate_trace(small_spec(120), 17);
  ServerOptions options;
  options.max_disturbed = 0;
  const auto outcomes = replay(trace, options);
  bool any_diff = false;
  bool any_constrained = false;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    const EventOutcome& o = outcomes[i];
    if (!o.diff.computed) continue;
    any_diff = true;
    any_constrained = any_constrained ||
                      o.diff.stability_applied || o.diff.budget_exceeded;
    if (!o.diff.budget_exceeded) {
      EXPECT_EQ(o.diff.pipelines_disturbed, 0);
    }
  }
  EXPECT_TRUE(any_diff);
  // The trace churns enough that a zero budget must actually bind
  // somewhere — otherwise this test is vacuous.
  EXPECT_TRUE(any_constrained);
}

TEST(AllocServer, StabilityReplayIsDeterministic) {
  // Budgeted replays (including the soft move-cost objective) stay on
  // the deterministic-log contract, sequential or lane-parallel.
  const Trace trace = scenario::generate_trace(small_spec(120), 17);
  ServerOptions options;
  options.max_moves = 3;
  options.max_disturbed = 1;
  options.move_cost = 0.05;
  const auto a = replay(trace, options);
  expect_deterministic_eq(a, replay(trace, options));

  ServerOptions parallel = options;
  parallel.solver_threads = 3;
  expect_deterministic_eq(a, replay(trace, parallel));
}

TEST(AllocServer, OccupancyTracksTheIncumbent) {
  core::Platform platform{"pool", 2};
  AllocServer server(platform, ServerOptions{});
  EXPECT_FALSE(server.occupancy().valid());

  PipelineSpec p0;
  p0.id = "p0";
  p0.app.kernels = {test::make_kernel("a", 8.0, 10.0, 20.0, 5.0),
                    test::make_kernel("b", 12.0, 8.0, 15.0, 4.0)};
  PipelineSpec p1;
  p1.id = "p1";
  p1.app.kernels = {test::make_kernel("c", 4.0, 5.0, 10.0, 8.0)};
  ASSERT_TRUE(server.apply(Event::add(p0)).solve_status.is_ok());
  ASSERT_TRUE(server.apply(Event::add(p1)).solve_status.is_ok());

  const OccupancyTracker occ = server.occupancy();
  ASSERT_TRUE(occ.valid());
  ASSERT_EQ(occ.placements().size(), 2u);
  const std::optional<runtime::SolveResult> inc = server.incumbent();
  ASSERT_TRUE(inc.has_value());
  const core::Allocation& alloc = *inc->allocation;
  int incumbent_cus = 0;
  for (std::size_t k = 0; k < alloc.num_kernels(); ++k) {
    incumbent_cus += alloc.total_cu(k);
  }
  int placed_cus = 0;
  for (const PipelinePlacement& p : occ.placements()) {
    placed_cus += p.total_cus();
  }
  EXPECT_EQ(placed_cus, incumbent_cus);
  int device_cus = 0;
  for (const DeviceOccupancy& dev : occ.devices()) device_cus += dev.cus;
  EXPECT_EQ(device_cus, incumbent_cus);
  ASSERT_NE(occ.placement("p0"), nullptr);
  EXPECT_EQ(occ.placement("p0")->rows.size(), 2u);  // two kernels
  EXPECT_EQ(occ.placement("ghost"), nullptr);
  EXPECT_EQ(occ.statistics().num_pipelines, 2u);
  EXPECT_EQ(occ.statistics().total_cus, incumbent_cus);

  // Departures drop the record; emptying the pool forgets everything.
  ASSERT_TRUE(server.apply(Event::remove("p0")).status.is_ok());
  const OccupancyTracker after = server.occupancy();
  ASSERT_TRUE(after.valid());
  EXPECT_EQ(after.placement("p0"), nullptr);
  ASSERT_TRUE(server.apply(Event::remove("p1")).status.is_ok());
  EXPECT_FALSE(server.occupancy().valid());
}

TEST(AllocServer, WarmMatchesColdOnEveryEvent) {
  const Trace trace = scenario::generate_trace(small_spec(120), 29);
  ServerOptions warm;
  ServerOptions cold;
  cold.warm_start = false;
  const auto w = replay(trace, warm);
  const auto c = replay(trace, cold);
  ASSERT_EQ(w.size(), c.size());
  bool any_warm = false;
  for (std::size_t i = 0; i < w.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    any_warm = any_warm || w[i].solve.warm_started;
    EXPECT_FALSE(c[i].solve.warm_started);
    // The warm start is a pure acceleration: identical solutions.
    EXPECT_EQ(w[i].solve_status.code(), c[i].solve_status.code());
    EXPECT_EQ(w[i].solve.totals, c[i].solve.totals);
    EXPECT_EQ(w[i].solve.ii, c[i].solve.ii);
    EXPECT_EQ(w[i].solve.phi, c[i].solve.phi);
    EXPECT_EQ(w[i].solve.goal, c[i].solve.goal);
  }
  EXPECT_TRUE(any_warm);
}

TEST(AllocServer, WarmMatchesColdWithInteriorPointRoot) {
  // The GP-rooted path (what bench_service_churn measures) converges to
  // the same discretized solution warm or cold; the continuous root
  // only matches to solver tolerance, so compare the integer outputs.
  const Trace trace = scenario::generate_trace(small_spec(60), 31);
  ServerOptions warm;
  warm.portfolio.gpa.use_interior_point = true;
  ServerOptions cold = warm;
  cold.warm_start = false;
  const auto w = replay(trace, warm);
  const auto c = replay(trace, cold);
  ASSERT_EQ(w.size(), c.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(w[i].solve_status.code(), c[i].solve_status.code());
    EXPECT_EQ(w[i].solve.totals, c[i].solve.totals);
  }
}

TEST(AllocServer, CacheEvictionIsTransparent) {
  const Trace trace = scenario::generate_trace(small_spec(100), 41);
  const ServerOptions unbounded;  // default: 2^16 entries, never hit here

  ServerOptions tiny = unbounded;
  tiny.cache_shards = 2;
  tiny.cache_entries = 32;  // far below the replay's working set

  AllocServer big(trace.platform, unbounded);
  AllocServer small(trace.platform, tiny);
  std::vector<EventOutcome> a;
  std::vector<EventOutcome> b;
  for (const Event& event : trace.events) {
    a.push_back(big.apply(event));
    b.push_back(small.apply(event));
  }
  // Eviction really happened, and changed nothing observable: every
  // evicted entry re-solves to identical bytes.
  EXPECT_GT(small.cache_stats().evictions, 0u);
  EXPECT_LE(small.cache_stats().entries, 32u);
  EXPECT_EQ(big.cache_stats().evictions, 0u);
  expect_deterministic_eq(a, b);
}

/// The PR-4 wholesale composite rebuild, replicated as a test oracle:
/// the incremental CompositeBuilder must stay bit-identical to it.
core::Problem wholesale_compose(const core::Platform& platform,
                                const std::vector<PipelineSpec>& pipes,
                                const ServerOptions& options) {
  core::Problem p;
  p.app.name = "composite";
  p.platform = platform;
  p.resource_fraction = options.resource_fraction;
  p.bw_fraction = options.bw_fraction;
  p.alpha = options.alpha;
  p.beta = options.beta;
  for (const PipelineSpec& pipe : pipes) {
    for (const core::Kernel& k : pipe.app.kernels) {
      core::Kernel scaled = k;
      scaled.name = pipe.id + "/" + k.name;
      scaled.wcet_ms = k.wcet_ms * pipe.weight;
      p.app.kernels.push_back(std::move(scaled));
    }
  }
  return p;
}

TEST(AllocServer, IncrementalCompositeMatchesWholesaleRebuild) {
  // Drive one server through every delta class — including repeated
  // reprioritizations of the same pipeline, which must rescale from the
  // base WCETs, never compound — and after each event compare the
  // composite the solve actually ran on (incumbent()->problem) against
  // a from-scratch rebuild, byte-for-byte via the JSON dump.
  core::Platform platform{"pool", 2};
  const ServerOptions options;
  AllocServer server(platform, options);

  PipelineSpec p0;
  p0.id = "p0";
  p0.app.kernels = {test::make_kernel("a", 8.0, 10.0, 20.0, 5.0),
                    test::make_kernel("b", 12.0, 8.0, 15.0, 4.0)};
  PipelineSpec p1;
  p1.id = "p1";
  p1.weight = 1.5;
  p1.app.kernels = {test::make_kernel("c", 6.0, 5.0, 10.0, 3.0)};

  std::vector<PipelineSpec> live;
  auto expect_composite_matches = [&] {
    ASSERT_TRUE(server.incumbent().has_value());
    const auto expected =
        io::to_json(wholesale_compose(platform, live, options)).dump(2);
    const auto actual = io::to_json(*server.incumbent()->problem).dump(2);
    EXPECT_EQ(actual, expected);
  };

  ASSERT_TRUE(server.apply(Event::add(p0)).status.is_ok());
  live.push_back(p0);
  expect_composite_matches();

  ASSERT_TRUE(server.apply(Event::add(p1)).status.is_ok());
  live.push_back(p1);
  expect_composite_matches();

  EventOutcome re = server.apply(Event::reprioritize("p0", 2.0));
  ASSERT_TRUE(re.status.is_ok());
  EXPECT_EQ(re.cache.delta, CompositeDelta::kCoefficients);
  live[0].weight = 2.0;
  expect_composite_matches();

  // Second reprioritization: 0.5 must replace 2.0, not stack on it.
  ASSERT_TRUE(server.apply(Event::reprioritize("p0", 0.5)).status.is_ok());
  live[0].weight = 0.5;
  expect_composite_matches();

  EventOutcome grown = server.apply(Event::resize(core::Platform{"pool3", 3}));
  ASSERT_TRUE(grown.status.is_ok());
  EXPECT_EQ(grown.cache.delta, CompositeDelta::kRhs);
  platform = core::Platform{"pool3", 3};
  expect_composite_matches();

  EventOutcome removed = server.apply(Event::remove("p0"));
  ASSERT_TRUE(removed.status.is_ok());
  EXPECT_EQ(removed.cache.delta, CompositeDelta::kStructural);
  live.erase(live.begin());
  expect_composite_matches();
}

TEST(CompositeBuilder, SnapshotsShareStructureAcrossNumericDeltas) {
  // The contract behind the zero-allocation warm path: numeric deltas
  // (reprioritize / resize) republish through the *same*
  // core::ProblemStructure skeleton, so downstream consumers can use
  // pointer equality of Problem::structure as a constant-time "no
  // recompile needed" witness; structural edits mint a fresh skeleton.
  // A pinned older snapshot must also keep its exact bytes while newer
  // deltas publish — that immutability is what lets the server's
  // incumbent outlive the event that replaced it.
  CompositeBuilder builder(core::Platform{"pool", 2}, CompositeConfig{});

  PipelineSpec p0;
  p0.id = "p0";
  p0.app.kernels = {test::make_kernel("a", 8.0, 10.0, 20.0, 5.0),
                    test::make_kernel("b", 12.0, 8.0, 15.0, 4.0)};
  builder.add_pipeline(p0);

  const auto before = builder.snapshot();
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->structure, builder.live().structure);
  const std::string before_bytes = io::to_json(*before).dump(2);

  PipelineSpec hot = p0;
  hot.weight = 2.0;
  builder.reprioritize(0, hot);
  const auto after = builder.snapshot();

  EXPECT_EQ(before->structure, after->structure) << "coefficient patches "
      "must not re-derive the structure skeleton";
  EXPECT_EQ(io::to_json(*after).dump(2), io::to_json(builder.live()).dump(2));
  EXPECT_EQ(io::to_json(*before).dump(2), before_bytes)
      << "a held snapshot changed under its holder";
  EXPECT_NE(io::to_json(*after).dump(2), before_bytes);

  builder.resize_platform(core::Platform{"pool3", 3});
  const auto resized = builder.snapshot();
  EXPECT_EQ(resized->structure, after->structure)
      << "an RHS patch is numeric too";

  PipelineSpec p1;
  p1.id = "p1";
  p1.app.kernels = {test::make_kernel("c", 6.0, 5.0, 10.0, 3.0)};
  builder.add_pipeline(p1);
  const auto grown = builder.snapshot();
  EXPECT_NE(grown->structure, resized->structure)
      << "structural edits must mint a fresh skeleton";
  EXPECT_EQ(io::to_json(*grown).dump(2), io::to_json(builder.live()).dump(2));
}

TEST(CompositeBuilder, PatchedBuilderMatchesFreshBuilderByteForByte) {
  // A builder that lived through reprioritize + resize deltas (and
  // their rollback inverses) must publish the same bytes as one
  // constructed directly in the final state — the identity that keeps
  // relaxation-cache keys and compiled-GP fingerprints honest.
  PipelineSpec p0;
  p0.id = "p0";
  p0.app.kernels = {test::make_kernel("a", 8.0, 10.0, 20.0, 5.0),
                    test::make_kernel("b", 12.0, 8.0, 15.0, 4.0)};
  PipelineSpec p1;
  p1.id = "p1";
  p1.weight = 1.5;
  p1.app.kernels = {test::make_kernel("c", 6.0, 5.0, 10.0, 3.0)};

  CompositeBuilder veteran(core::Platform{"pool", 2}, CompositeConfig{});
  veteran.add_pipeline(p0);
  veteran.add_pipeline(p1);
  const std::string original = io::to_json(veteran.live()).dump(2);

  PipelineSpec hot = p0;
  hot.weight = 3.0;
  veteran.reprioritize(0, hot);
  veteran.resize_platform(core::Platform{"pool4", 4});
  // Rollback inverses: restoring the old weight and platform must be
  // byte-exact, not merely approximately equal.
  veteran.reprioritize(0, p0);
  veteran.resize_platform(core::Platform{"pool", 2});
  EXPECT_EQ(io::to_json(veteran.live()).dump(2), original);

  veteran.reprioritize(0, hot);
  veteran.resize_platform(core::Platform{"pool4", 4});

  CompositeBuilder fresh(core::Platform{"pool4", 4}, CompositeConfig{});
  fresh.add_pipeline(hot);
  fresh.add_pipeline(p1);
  EXPECT_EQ(io::to_json(veteran.live()).dump(2),
            io::to_json(fresh.live()).dump(2));
  EXPECT_EQ(io::to_json(*veteran.snapshot()).dump(2),
            io::to_json(*fresh.snapshot()).dump(2));
}

TEST(AllocServer, WarmAllocCountersAreDeterministic) {
  // Whatever the counting interposer reports (zero when it is not
  // linked into this binary), two identical replays must report it
  // identically per event — the counter is part of the replay-log
  // surface and must not pick up noise from the environment.
  const Trace trace = scenario::generate_trace(small_spec(80), 91);
  ServerOptions options;
  options.portfolio.gpa.use_interior_point = true;
  const auto a = replay(trace, options);
  const auto b = replay(trace, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(a[i].warm_allocs, b[i].warm_allocs);
  }
}

TEST(AllocServer, NumericDeltasPatchInsteadOfRecompiling) {
  // With the interior-point root, events that only move numbers
  // (reprioritize, resize) must never pay a full GP lowering: the
  // composite keeps its structure, so the model cache turns every such
  // solve into a clone + coefficient patch. This is the bench/
  // service_churn --check property, asserted here per event.
  const Trace trace = scenario::generate_trace(small_spec(100), 67);
  ServerOptions options;
  options.portfolio.gpa.use_interior_point = true;
  const auto outcomes = replay(trace, options);

  bool any_reprioritize = false;
  bool any_patch = false;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    const EventOutcome& o = outcomes[i];
    any_patch = any_patch || o.cache.gp_patches > 0;
    if (!o.status.is_ok()) {
      EXPECT_EQ(o.cache.delta, CompositeDelta::kNone);
      continue;
    }
    switch (o.type) {
      case Event::Type::kAddPipeline:
      case Event::Type::kRemovePipeline:
        EXPECT_EQ(o.cache.delta, CompositeDelta::kStructural);
        break;
      case Event::Type::kReprioritize:
        any_reprioritize = true;
        EXPECT_EQ(o.cache.delta, CompositeDelta::kCoefficients);
        EXPECT_EQ(o.cache.gp_compiles, 0);
        break;
      case Event::Type::kResizePlatform:
        EXPECT_EQ(o.cache.delta, CompositeDelta::kRhs);
        EXPECT_EQ(o.cache.gp_compiles, 0);
        break;
    }
  }
  EXPECT_TRUE(any_reprioritize);
  EXPECT_TRUE(any_patch);
  // The very first solve has a cold model cache: it must have compiled.
  const auto first_solved = std::find_if(
      outcomes.begin(), outcomes.end(), [](const EventOutcome& o) {
        return o.status.is_ok() && o.solve_status.is_ok() &&
               o.active_pipelines > 0;
      });
  ASSERT_NE(first_solved, outcomes.end());
  EXPECT_GE(first_solved->cache.gp_compiles, 1);

  // With sequential lanes (the default) the compile/patch/cache
  // counters are part of the deterministic replay contract.
  const auto again = replay(trace, options);
  ASSERT_EQ(again.size(), outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(outcomes[i].cache.delta, again[i].cache.delta);
    EXPECT_EQ(outcomes[i].cache.gp_compiles, again[i].cache.gp_compiles);
    EXPECT_EQ(outcomes[i].cache.gp_patches, again[i].cache.gp_patches);
    EXPECT_EQ(outcomes[i].cache.model_hits, again[i].cache.model_hits);
    EXPECT_EQ(outcomes[i].cache.model_misses, again[i].cache.model_misses);
    EXPECT_EQ(outcomes[i].cache.relax_hits, again[i].cache.relax_hits);
  }
}

TEST(AllocServer, RemoveUnknownIdFailsCleanly) {
  core::Platform platform{"pool", 2};
  AllocServer server(platform, ServerOptions{});

  EventOutcome outcome = server.apply(Event::remove("ghost"));
  EXPECT_EQ(outcome.status.code(), Code::kInvalid);
  EXPECT_NE(outcome.status.message().find("ghost"), std::string::npos);
  EXPECT_EQ(outcome.active_pipelines, 0u);

  // The server keeps serving: a real add still works afterwards.
  PipelineSpec pipe;
  pipe.id = "p0";
  pipe.app.kernels = {test::make_kernel("a", 8.0, 10.0, 20.0, 5.0)};
  outcome = server.apply(Event::add(pipe));
  EXPECT_TRUE(outcome.status.is_ok());
  EXPECT_TRUE(outcome.solve_status.is_ok());
  EXPECT_EQ(outcome.active_pipelines, 1u);
  EXPECT_GT(outcome.solve.goal, 0.0);

  // Unknown reprioritize targets fail the same way.
  outcome = server.apply(Event::reprioritize("ghost", 2.0));
  EXPECT_EQ(outcome.status.code(), Code::kInvalid);
  // Duplicate arrivals are rejected without disturbing the incumbent.
  outcome = server.apply(Event::add(pipe));
  EXPECT_EQ(outcome.status.code(), Code::kInvalid);
  EXPECT_EQ(outcome.active_pipelines, 1u);
}

TEST(AllocServer, MalformedEventRollsBackAndNeverPoisonsTheServer) {
  core::Platform platform{"pool", 2};
  AllocServer server(platform, ServerOptions{});

  // A malformed resize on an *empty* pool (no composite to validate)
  // must be rejected outright, not silently installed.
  core::Platform empty_pool_broken{"broken", 2};
  empty_pool_broken.classes.push_back(core::DeviceClass{
      "c0", core::ResourceVec::uniform(100.0), 100.0});
  empty_pool_broken.class_of = {0};  // one entry for two FPGAs
  EventOutcome rejected = server.apply(Event::resize(empty_pool_broken));
  EXPECT_EQ(rejected.status.code(), Code::kInvalid);

  PipelineSpec pipe;
  pipe.id = "p0";
  pipe.app.kernels = {test::make_kernel("a", 8.0, 10.0, 20.0, 5.0)};
  EventOutcome ok = server.apply(Event::add(pipe));
  ASSERT_TRUE(ok.status.is_ok());
  ASSERT_TRUE(ok.solve_status.is_ok());
  const double goal_before = ok.solve.goal;

  // A resize that passes the shallow check (num_fpgas >= 1) but fails
  // structural validation: classes without a matching class_of. The
  // event must fail — and must NOT leave the broken platform behind.
  core::Platform broken{"broken", 2};
  broken.classes.push_back(core::DeviceClass{
      "c0", core::ResourceVec::uniform(100.0), 100.0});
  broken.class_of = {0};  // one entry for two FPGAs
  EventOutcome bad = server.apply(Event::resize(broken));
  EXPECT_EQ(bad.status.code(), Code::kInvalid);
  EXPECT_EQ(bad.solve.goal, goal_before);  // incumbent untouched

  // An add whose kernel carries negative resource demand fails the
  // same way, without growing the live set.
  PipelineSpec negative;
  negative.id = "neg";
  negative.app.kernels = {test::make_kernel("n", 5.0, -1.0, 10.0, 2.0)};
  bad = server.apply(Event::add(negative));
  EXPECT_EQ(bad.status.code(), Code::kInvalid);
  EXPECT_EQ(bad.active_pipelines, 1u);

  // The server still serves: a well-formed event after the malformed
  // ones solves on the *original* platform.
  PipelineSpec pipe2;
  pipe2.id = "p1";
  pipe2.app.kernels = {test::make_kernel("b", 6.0, 8.0, 12.0, 3.0)};
  EventOutcome after = server.apply(Event::add(pipe2));
  EXPECT_TRUE(after.status.is_ok());
  EXPECT_TRUE(after.solve_status.is_ok());
  EXPECT_EQ(after.active_pipelines, 2u);
}

TEST(AllocServer, LogRetentionIsBounded) {
  const Trace trace = scenario::generate_trace(small_spec(40), 53);
  ServerOptions options;
  options.log_capacity = 8;
  AllocServer server(trace.platform, options);
  for (const Event& event : trace.events) server.apply(event);

  // Only the newest log_capacity outcomes survive, in sequence order.
  const std::vector<EventOutcome> log = server.log();
  ASSERT_EQ(log.size(), 8u);
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].sequence, 40u - 8u + i);
  }
}

TEST(AllocServer, LifecycleAndIncumbentTracking) {
  core::Platform platform{"pool", 2};
  AllocServer server(platform, ServerOptions{});
  EXPECT_FALSE(server.incumbent().has_value());

  PipelineSpec heavy;
  heavy.id = "heavy";
  heavy.app.kernels = {test::make_kernel("a", 16.0, 10.0, 20.0, 5.0),
                       test::make_kernel("b", 8.0, 8.0, 15.0, 4.0)};
  const EventOutcome added = server.apply(Event::add(heavy));
  ASSERT_TRUE(added.solve_status.is_ok());
  ASSERT_TRUE(server.incumbent().has_value());
  EXPECT_EQ(server.active_pipelines(), 1u);

  // Raising a pipeline's weight re-solves to a different (worse-goal)
  // composite: weight scales effective WCET.
  const EventOutcome heavier =
      server.apply(Event::reprioritize("heavy", 2.0));
  ASSERT_TRUE(heavier.solve_status.is_ok());
  EXPECT_GT(heavier.solve.goal, added.solve.goal);

  // Growing the pool can only help the goal.
  const EventOutcome grown =
      server.apply(Event::resize(core::Platform{"pool4", 4}));
  ASSERT_TRUE(grown.solve_status.is_ok());
  EXPECT_LE(grown.solve.goal, heavier.solve.goal + 1e-12);

  // Removing the last pipeline clears the incumbent.
  const EventOutcome removed = server.apply(Event::remove("heavy"));
  EXPECT_TRUE(removed.status.is_ok());
  EXPECT_EQ(removed.active_pipelines, 0u);
  EXPECT_FALSE(server.incumbent().has_value());
  EXPECT_EQ(removed.solve.goal, 0.0);
}

TEST(AllocServer, MpmcSubmissionProcessesEveryEventExactlyOnce) {
  core::Platform platform{"pool", 2};
  AllocServer server(platform, ServerOptions{});
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 8;

  std::vector<std::thread> producers;
  std::atomic<int> ok_adds{0};
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&server, &ok_adds, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        PipelineSpec pipe;
        pipe.id = "p" + std::to_string(t) + "_" + std::to_string(i);
        pipe.app.kernels = {test::make_kernel("k", 4.0 + t, 8.0, 12.0, 2.0)};
        const EventOutcome outcome =
            server.apply(Event::add(std::move(pipe)));
        if (outcome.status.is_ok()) ok_adds.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();

  EXPECT_EQ(ok_adds.load(), kProducers * kPerProducer);
  EXPECT_EQ(server.active_pipelines(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  // Sequences are unique and dense: every event was processed once.
  const std::vector<EventOutcome> log = server.log();
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::vector<bool> seen(log.size(), false);
  for (const EventOutcome& o : log) {
    ASSERT_LT(o.sequence, log.size());
    EXPECT_FALSE(seen[o.sequence]);
    seen[o.sequence] = true;
  }
}

TEST(EventQueue, ClosedQueueFailsFastAndDrains) {
  EventQueue queue;
  auto f1 = queue.push(Event::remove("a"));
  queue.close();
  // Still-queued items drain…
  auto item = queue.pop();
  ASSERT_TRUE(item.has_value());
  item->reply.set_value(EventOutcome{});
  f1.get();
  // …then pop reports closed, and new pushes fail fast.
  EXPECT_FALSE(queue.pop().has_value());
  auto f2 = queue.push(Event::remove("b"));
  EXPECT_EQ(f2.get().status.code(), Code::kInvalid);
}

TEST(AllocServer, StopDrainsQueuedEvents) {
  core::Platform platform{"pool", 2};
  auto server = std::make_unique<AllocServer>(platform, ServerOptions{});
  std::vector<std::future<EventOutcome>> futures;
  for (int i = 0; i < 16; ++i) {
    PipelineSpec pipe;
    pipe.id = "p" + std::to_string(i);
    pipe.app.kernels = {test::make_kernel("k", 6.0, 9.0, 14.0, 3.0)};
    futures.push_back(server->submit(Event::add(std::move(pipe))));
  }
  server->stop();  // must process everything already submitted
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.is_ok());
  }
}

}  // namespace
}  // namespace mfa::service
