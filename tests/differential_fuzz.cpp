// Differential fuzzing over the seeded scenario generator.
//
// For each seed a random pipeline × (possibly mixed-class) platform is
// generated and pushed through every solver path, cross-checking:
//
//  1. exact == naive — the structured exact solver (candidate-II
//     enumeration + within-class symmetry-broken packing) agrees with
//     the transformation-free naive branch-and-bound on the optimal
//     goal, and both agree on feasibility;
//  2. GP+A soundness — when the heuristic returns, its allocation is
//     feasible at the constraint it reports (used_fraction) and never
//     beats the proved exact optimum II (β = 0 lanes);
//  3. relaxation bound — the continuous relaxation never exceeds the
//     exact optimum II;
//  4. patched-vs-fresh parity — solving the interior-point relaxation
//     through a CompiledModelCache hit (a structure compiled from a
//     *re-weighted* twin, cloned and coefficient-patched) returns
//     byte-identical results to a fresh compile, cold and warm-started.
//
//  5. batched-vs-scalar parity — K coefficient variants of the seed's
//     relaxation GP (same structure, re-weighted WCETs) solved through
//     the lane-parallel batched kernel (gp/batched.hpp) agree with K
//     independent scalar prepared solves, per lane, within a solver
//     tolerance band (the batched kernel follows its own arithmetic;
//     the contract is tolerance-level, not bitwise).
//
//  6. stability oracle — the migration-aware packing search against a
//     reference placement: zero budgets must reproduce the reference
//     bit-exactly, unlimited budgets must match the unconstrained
//     optimum φ, seeded hard budgets must be respected by the reported
//     counters (and those counters must match a recount from the
//     returned allocation), a soft move cost must never do worse than
//     the free stay-put option, and the GP+A stability plumbing must
//     hold the incumbent in place at zero budgets.
//
//  7. patched-bounds parity — the discretizer's in-place bound-patching
//     branch-and-bound reproduces the explicit-stack oracle bit for
//     bit: node counts, incumbent, root relaxation, optimality
//     provenance and (when sharing a relaxation cache) the hit/miss
//     trace, across warm-start/batching flavors and under node caps.
//
// Usage: differential_fuzz [num_seeds] [--start S] [--out failure.json]
//                          [--parity] [--batched] [--stability]
//                          [--patched-bounds]
//
// --parity runs only check 4, --batched only check 5, --stability only
// check 6 and --patched-bounds only check 7 (no exact/naive oracles);
// all are cheap enough for wide ctest slices across heterogeneous
// platforms.
//
// On mismatch it prints the seed and the scenario JSON to stderr, writes
// the scenario to --out (CI uploads it as an artifact) and exits 1.
// Budget-capped (unproved) exact/naive results are skipped, not failed.
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/gpa.hpp"
#include "core/relax_cache.hpp"
#include "core/relaxation.hpp"
#include "gp/compiled.hpp"
#include "gp/solver.hpp"
#include "io/serialize.hpp"
#include "scenario/generate.hpp"
#include "solver/discretize.hpp"
#include "solver/exact.hpp"
#include "solver/naive.hpp"
#include "solver/packing.hpp"

namespace {

struct Options {
  std::uint64_t start = 0;
  std::uint64_t count = 200;
  const char* out_path = nullptr;
  bool parity_only = false;
  bool batched_only = false;
  bool stability_only = false;
  bool patched_bounds_only = false;
};

/// Scenario shape small enough for the naive oracle to *prove* optima
/// within its node budget on every seed.
mfa::scenario::ScenarioSpec fuzz_spec() {
  mfa::scenario::ScenarioSpec spec;
  spec.min_kernels = 2;
  spec.max_kernels = 4;
  spec.min_fpgas = 2;
  spec.max_fpgas = 3;
  spec.max_classes = 2;
  spec.class_skew = 0.4;
  spec.tightness = 0.8;
  spec.max_cu_per_kernel = 3;
  return spec;
}

void report_failure(std::uint64_t seed, const mfa::core::Problem& problem,
                    const Options& opt, const char* what) {
  const std::string json = mfa::io::to_json(problem).dump(2) + "\n";
  std::fprintf(stderr, "\nFAIL seed %" PRIu64 ": %s\n", seed, what);
  std::fprintf(stderr, "scenario:\n%s", json.c_str());
  if (opt.out_path != nullptr) {
    mfa::io::Json doc = mfa::io::Json::object();
    doc.set("seed", mfa::io::Json::number(static_cast<double>(seed)));
    doc.set("mismatch", mfa::io::Json::string(what));
    doc.set("problem", mfa::io::to_json(problem));
    const mfa::Status st =
        mfa::io::write_file(opt.out_path, doc.dump(2) + "\n");
    if (!st.is_ok()) {
      std::fprintf(stderr, "warning: %s\n", st.to_string().c_str());
    }
  }
}

mfa::gp::SolverOptions gp_options() { return {}; }

/// Structure/coefficient-split differential: a compiled-model cache hit
/// (structure donated by a re-weighted twin, clone + patch) must solve
/// to byte-identical results as a fresh compile — cold and warm-started.
const char* check_patch_parity(const mfa::core::Problem& problem) {
  mfa::core::CompiledModelCache models;
  // Donate the structure entry under *different* coefficients, so the
  // cached solve below exercises the clone-then-patch path for real.
  mfa::core::Problem donor = problem;
  for (mfa::core::Kernel& k : donor.app.kernels) k.wcet_ms *= 1.5;
  (void)mfa::core::solve_relaxation_gp(donor, gp_options(), &models);

  const auto cached =
      mfa::core::solve_relaxation_gp(problem, gp_options(), &models);
  const auto fresh = mfa::core::solve_relaxation_gp(problem, gp_options());
  if (cached.is_ok() != fresh.is_ok()) {
    return "patched and fresh GP relaxations disagree on status";
  }
  if (!fresh.is_ok()) return nullptr;
  if (cached.value().ii != fresh.value().ii ||
      cached.value().n_hat != fresh.value().n_hat) {
    return "patched GP relaxation differs from a fresh compile";
  }
  // Warm-started flavor, seeded from the cold optimum.
  const auto cached_warm = mfa::core::solve_relaxation_gp(
      problem, gp_options(), fresh.value(), &models);
  const auto fresh_warm =
      mfa::core::solve_relaxation_gp(problem, gp_options(), fresh.value());
  if (cached_warm.is_ok() != fresh_warm.is_ok()) {
    return "patched and fresh warm GP relaxations disagree on status";
  }
  if (fresh_warm.is_ok() &&
      (cached_warm.value().ii != fresh_warm.value().ii ||
       cached_warm.value().n_hat != fresh_warm.value().n_hat)) {
    return "patched warm GP relaxation differs from a fresh compile";
  }
  return nullptr;
}

/// Batched-kernel oracle: K coefficient variants of the seed's
/// relaxation GP — same structure, per-lane WCET re-weighting — solved
/// as one lock-step batch must agree with K independent scalar prepared
/// solves lane by lane. K varies with the seed (2..5) so ragged widths
/// and the K = 2 minimum both get coverage.
const char* check_batched_parity(const mfa::core::Problem& problem,
                                 std::uint64_t seed) {
  const mfa::gp::SolverOptions opts = gp_options();
  const std::size_t k_lanes = 2 + static_cast<std::size_t>(seed % 4);
  std::vector<mfa::gp::GpProblem> gps;
  gps.reserve(k_lanes);
  for (std::size_t l = 0; l < k_lanes; ++l) {
    mfa::core::Problem v = problem;
    for (mfa::core::Kernel& k : v.app.kernels) {
      k.wcet_ms *= 1.0 + 0.07 * static_cast<double>(l);
    }
    const mfa::core::CuBounds bounds = mfa::core::CuBounds::defaults(v);
    for (std::size_t k = 0; k < v.num_kernels(); ++k) {
      if (bounds.lower[k] > bounds.upper[k]) return nullptr;  // no GP
    }
    gps.push_back(mfa::core::build_relaxation_gp(v, bounds));
  }
  const mfa::Fingerprint fp = gps[0].structural_fingerprint();
  const mfa::gp::CompiledModel base =
      mfa::gp::CompiledModel::build(gps[0], opts.variable_box);
  std::vector<mfa::gp::CompiledModel> models;
  models.reserve(k_lanes);
  for (const mfa::gp::GpProblem& g : gps) {
    mfa::gp::CompiledModel m = base;
    m.patch_coefficients(g, opts.variable_box, fp);
    models.push_back(std::move(m));
  }
  const mfa::gp::GpSolver solver(opts);
  std::vector<mfa::gp::BatchLane> lanes(k_lanes);
  for (std::size_t l = 0; l < k_lanes; ++l) {
    lanes[l].problem = &gps[l];
    lanes[l].model = &models[l];
  }
  const std::vector<mfa::gp::GpSolution> batch = solver.solve_batch(lanes);
  for (std::size_t l = 0; l < k_lanes; ++l) {
    const mfa::gp::GpSolution scalar = solver.solve(gps[l], models[l]);
    if (batch[l].ok() != scalar.ok()) {
      return "batched and scalar GP solves disagree on convergence";
    }
    if (!scalar.ok()) continue;
    for (std::size_t j = 0; j < scalar.x.size(); ++j) {
      const double diff = std::abs(batch[l].x[j] - scalar.x[j]);
      if (diff > 1e-4 * (1.0 + std::abs(scalar.x[j]))) {
        std::fprintf(stderr,
                     "lane %zu of %zu, x[%zu]: batched %.12g scalar %.12g\n",
                     l, k_lanes, j, batch[l].x[j], scalar.x[j]);
        return "batched GP lane drifted beyond tolerance of its scalar "
               "solve";
      }
    }
  }
  return nullptr;
}

/// Check 7: in-place bound-patching B&B (DiscretizeOptions::
/// patched_bounds) vs the explicit-stack search it replaced on the warm
/// path. The claim is *bit-for-bit* reproduction, not tolerance-level:
/// node count, incumbent totals/ÎI, the root relaxation and the
/// optimality provenance must all be identical, with and without a
/// shared relaxation cache — and when caches are used, both modes must
/// produce the same hit/miss trace (the patched mode's per-child
/// sequential lookups must be indistinguishable from the stack mode's
/// lookup-both-then-batch order). Warm-start and child-batching flavors
/// rotate with the seed so every legacy configuration is covered. A
/// tiny node cap on a third run checks the abort path counts nodes
/// identically too.
const char* check_patched_bounds(const mfa::core::Problem& problem,
                                 std::uint64_t seed) {
  using mfa::solver::DiscretizeResult;

  const auto compare =
      [](const mfa::StatusOr<DiscretizeResult>& stack,
         const mfa::StatusOr<DiscretizeResult>& patched) -> const char* {
    if (stack.is_ok() != patched.is_ok()) {
      return "patched-bounds search disagrees with the stack oracle on "
             "status";
    }
    if (!stack.is_ok()) {
      if (stack.status().code() != patched.status().code()) {
        return "patched-bounds search fails with a different status code";
      }
      return nullptr;
    }
    const DiscretizeResult& a = stack.value();
    const DiscretizeResult& b = patched.value();
    if (a.nodes != b.nodes) return "patched-bounds node count differs";
    if (a.totals != b.totals) return "patched-bounds incumbent differs";
    if (a.ii != b.ii || a.relaxed_ii != b.relaxed_ii) {
      return "patched-bounds II is not bit-identical";
    }
    if (a.proved_optimal != b.proved_optimal) {
      return "patched-bounds optimality provenance differs";
    }
    return nullptr;
  };

  mfa::solver::DiscretizeOptions stack_opts;
  stack_opts.patched_bounds = false;
  stack_opts.warm_start_nodes = (seed % 2) == 0;
  stack_opts.batch_children = (seed % 3) != 0;
  mfa::solver::DiscretizeOptions patched_opts = stack_opts;
  patched_opts.patched_bounds = true;

  // Cacheless runs.
  if (const char* mismatch =
          compare(mfa::solver::Discretizer(stack_opts).run(problem),
                  mfa::solver::Discretizer(patched_opts).run(problem))) {
    return mismatch;
  }

  // One private cache per mode: results and the hit/miss trace must
  // both line up.
  mfa::core::RelaxationCache stack_cache;
  mfa::core::RelaxationCache patched_cache;
  stack_opts.cache = &stack_cache;
  patched_opts.cache = &patched_cache;
  if (const char* mismatch =
          compare(mfa::solver::Discretizer(stack_opts).run(problem),
                  mfa::solver::Discretizer(patched_opts).run(problem))) {
    return mismatch;
  }
  const auto stack_stats = stack_cache.stats();
  const auto patched_stats = patched_cache.stats();
  if (stack_stats.hits != patched_stats.hits ||
      stack_stats.misses != patched_stats.misses) {
    std::fprintf(stderr,
                 "cache trace: stack %llu/%llu patched %llu/%llu "
                 "(hits/misses)\n",
                 static_cast<unsigned long long>(stack_stats.hits),
                 static_cast<unsigned long long>(stack_stats.misses),
                 static_cast<unsigned long long>(patched_stats.hits),
                 static_cast<unsigned long long>(patched_stats.misses));
    return "patched-bounds cache hit/miss trace differs from the oracle";
  }

  // Abort parity under a tiny node cap (cacheless, so the cap binds).
  stack_opts.cache = nullptr;
  patched_opts.cache = nullptr;
  stack_opts.max_nodes = 1 + static_cast<std::int64_t>(seed % 7);
  patched_opts.max_nodes = stack_opts.max_nodes;
  return compare(mfa::solver::Discretizer(stack_opts).run(problem),
                 mfa::solver::Discretizer(patched_opts).run(problem));
}

/// Migration-aware packing oracle (see file comment, check 6). The
/// reference placement is GP+A's own allocation of the seed — a
/// realistic incumbent the budgets can always fall back to, which makes
/// every property below unconditional:
///  * zero budgets reproduce the reference bit-exactly (staying put is
///    the only in-budget placement, and it is feasible);
///  * budgeted packs are feasible whenever the zero-budget one is (the
///    reference itself fits any non-negative budget) and their reported
///    moved/disturbed counters respect the budgets *and* match a
///    recount from the returned allocation;
///  * unlimited budgets match the unconstrained optimum φ (the
///    constrained search machinery must not change what it finds, only
///    what it may visit — this also exercises the symmetry-breaking
///    handoff);
///  * a soft move cost never does worse than the free stay-put option:
///    φ(packed) + c·moves(packed) ≤ φ(reference);
///  * GpaOptions::stability at zero budgets hands back the incumbent
///    placement unchanged (the service's Rung-1 wiring).
const char* check_stability(const mfa::core::Problem& problem,
                            std::uint64_t seed) {
  mfa::alloc::GpaOptions gpa_options;
  gpa_options.greedy.t_max = 0.2;
  const auto gpa = mfa::alloc::GpaSolver(gpa_options).solve(problem);
  if (!gpa.is_ok()) return nullptr;  // nothing placed, nothing to keep
  mfa::core::Problem used = problem;
  used.resource_fraction = gpa.value().used_fraction;
  const mfa::core::Allocation& base = gpa.value().allocation;
  const std::size_t kernels = base.num_kernels();
  const int fpgas = base.num_fpgas();

  std::vector<int> totals(kernels, 0);
  mfa::solver::StabilityOptions stab;
  stab.reference.resize(kernels);
  stab.group_of.resize(kernels);
  for (std::size_t k = 0; k < kernels; ++k) {
    totals[k] = base.total_cu(k);
    stab.group_of[k] = static_cast<int>(k);
    for (int f = 0; f < fpgas; ++f) {
      stab.reference[k].push_back(base.cu(k, f));
    }
  }
  const double base_phi = base.phi();
  const mfa::solver::PackingSolver packer(used);
  const auto pack = [&](const mfa::solver::StabilityOptions* s) {
    mfa::solver::Budget budget = mfa::solver::Budget::nodes_only(2'000'000);
    return packer.pack(totals, mfa::solver::PackingMode::kMinSpreading,
                       budget, s);
  };

  const mfa::solver::PackingResult unconstrained = pack(nullptr);
  if (!unconstrained.feasible) {
    return "packing lost a placement the heuristic proved feasible";
  }

  // Zero budgets: the search may only return the reference itself.
  stab.max_moves = 0;
  stab.max_disturbed = 0;
  const mfa::solver::PackingResult frozen = pack(&stab);
  if (!frozen.feasible || !frozen.allocation) {
    return "zero-budget pack failed to reproduce the reference placement";
  }
  for (std::size_t k = 0; k < kernels; ++k) {
    for (int f = 0; f < fpgas; ++f) {
      if (frozen.allocation->cu(k, f) != base.cu(k, f)) {
        return "zero-budget pack moved a CU off the reference";
      }
    }
  }
  if (frozen.cus_moved != 0 || frozen.disturbed != 0 ||
      std::abs(frozen.phi - base_phi) > 1e-9) {
    return "zero-budget pack misreported its own diff";
  }

  // Unlimited budgets: same optimum as the unconstrained search.
  stab.max_moves = 1 << 29;
  stab.max_disturbed = 1 << 29;
  const mfa::solver::PackingResult roomy = pack(&stab);
  if (!roomy.feasible) {
    return "generous-budget pack lost a feasible placement";
  }
  if (roomy.proved_optimal && unconstrained.proved_optimal &&
      std::abs(roomy.phi - unconstrained.phi) >
          1e-9 * (1.0 + std::abs(unconstrained.phi))) {
    return "generous-budget pack found a different optimum phi";
  }

  // Seeded hard budgets: reported counters within budget and equal to a
  // recount from the returned allocation.
  stab.max_moves = static_cast<int>(seed % 3);
  stab.max_disturbed = static_cast<int>(seed % 2);
  const mfa::solver::PackingResult budgeted = pack(&stab);
  if (!budgeted.feasible || !budgeted.allocation) {
    return "budgeted pack infeasible though the reference is in budget";
  }
  int torn = 0;
  int disturbed = 0;
  for (std::size_t k = 0; k < kernels; ++k) {
    bool changed = false;
    for (int f = 0; f < fpgas; ++f) {
      const int old_n = base.cu(k, f);
      const int new_n = budgeted.allocation->cu(k, f);
      if (old_n != new_n) changed = true;
      if (old_n > new_n) torn += old_n - new_n;
    }
    if (changed) ++disturbed;
  }
  if (torn != budgeted.cus_moved || disturbed != budgeted.disturbed) {
    return "budgeted pack's reported diff disagrees with a recount";
  }
  if (budgeted.cus_moved > stab.max_moves ||
      budgeted.disturbed > stab.max_disturbed) {
    return "budgeted pack violated its own hard budgets";
  }

  // Soft move cost: staying put costs phi(reference), so the optimizer
  // can never return anything strictly worse than that.
  stab.max_moves = -1;
  stab.max_disturbed = -1;
  stab.move_cost = 0.25;
  const mfa::solver::PackingResult soft = pack(&stab);
  if (!soft.feasible) return "soft-cost pack lost a feasible placement";
  if (soft.proved_optimal &&
      soft.phi + stab.move_cost * soft.cus_moved >
          base_phi + 1e-9 * (1.0 + base_phi)) {
    return "soft-cost pack did worse than the free stay-put option";
  }

  // GP+A plumbing: a re-solve with zero-budget stability must hand back
  // the incumbent placement unchanged (deterministic GP totals match).
  // Only unconditional when the greedy stayed within the original
  // resource fraction — the repack runs at that fraction, so an
  // escalated incumbent may legitimately not fit and be skipped.
  if (gpa.value().used_fraction > problem.resource_fraction + 1e-12) {
    return nullptr;
  }
  stab.move_cost = 0.0;
  stab.max_moves = 0;
  stab.max_disturbed = 0;
  gpa_options.stability = &stab;
  const auto held = mfa::alloc::GpaSolver(gpa_options).solve(problem);
  if (!held.is_ok()) {
    return "GP+A with zero-budget stability failed on a solvable seed";
  }
  if (!held.value().stability_applied) {
    return "GP+A ignored a constrained stability reference";
  }
  for (std::size_t k = 0; k < kernels; ++k) {
    for (int f = 0; f < fpgas; ++f) {
      if (held.value().allocation.cu(k, f) != base.cu(k, f)) {
        return "GP+A stability repack moved the incumbent at zero budget";
      }
    }
  }
  return nullptr;
}

/// Runs all solvers on one scenario; returns nullptr on agreement, else
/// a static description of the first mismatch. Sets *feasible when the
/// instance's feasibility was decided.
const char* check_seed(const mfa::core::Problem& problem, std::uint64_t seed,
                       bool* feasible) {
  // Exact (structured) vs naive (oracle) on the full objective.
  mfa::solver::ExactOptions exact_options;
  exact_options.max_nodes = 20'000'000;
  exact_options.max_seconds = 60.0;
  auto exact = mfa::solver::ExactSolver(exact_options).solve(problem);
  mfa::solver::NaiveMinlp naive(mfa::solver::Budget::nodes_only(50'000'000));
  auto oracle = naive.solve(problem);

  const bool exact_capped =
      !exact.is_ok() && exact.status().code() == mfa::Code::kLimit;
  const bool oracle_capped =
      !oracle.is_ok() && oracle.status().code() == mfa::Code::kLimit;
  if (exact_capped || oracle_capped) return nullptr;  // skip, don't fail

  if (exact.is_ok() != oracle.is_ok()) {
    return "exact and naive disagree on feasibility";
  }
  *feasible = exact.is_ok();
  if (exact.is_ok()) {
    if (!exact.value().proved_optimal || !oracle.value().proved_optimal) {
      return nullptr;  // a budget-capped incumbent proves nothing
    }
    const double g_exact = exact.value().goal;
    const double g_naive = oracle.value().goal;
    if (std::abs(g_exact - g_naive) > 1e-6 * (1.0 + std::abs(g_naive))) {
      std::fprintf(stderr, "exact goal %.9f:\n%s", g_exact,
                   exact.value().allocation.to_string().c_str());
      std::fprintf(stderr, "naive goal %.9f:\n%s", g_naive,
                   oracle.value().allocation.to_string().c_str());
      return "exact and naive optima differ";
    }
    if (!exact.value().allocation.feasible()) {
      return "exact allocation violates its own constraints";
    }
  }

  // GP+A: must be sound whenever it returns.
  mfa::alloc::GpaOptions gpa_options;
  gpa_options.greedy.t_max = 0.2;  // allow the paper's constraint slack
  auto gpa = mfa::alloc::GpaSolver(gpa_options).solve(problem);
  if (gpa.is_ok()) {
    // Feasibility at the fraction the allocator actually used.
    mfa::core::Problem used = problem;
    used.resource_fraction = gpa.value().used_fraction;
    mfa::core::Allocation check(used);
    const mfa::core::Allocation& a = gpa.value().allocation;
    for (std::size_t k = 0; k < a.num_kernels(); ++k) {
      for (int f = 0; f < a.num_fpgas(); ++f) {
        check.set_cu(k, f, a.cu(k, f));
      }
    }
    if (!check.feasible()) {
      return "GP+A allocation infeasible at its reported used_fraction";
    }
    // When GP+A stayed within the original constraint, its allocation
    // is feasible for the exact model too, so it cannot beat a proved
    // optimum of the *full* goal α·II + β·φ (II alone would be the
    // wrong comparison for β > 0: the optimum trades II for φ).
    if (exact.is_ok() && exact.value().proved_optimal &&
        gpa.value().used_fraction <= problem.resource_fraction + 1e-12 &&
        a.goal() < exact.value().goal * (1.0 - 1e-9) - 1e-12) {
      return "GP+A beat the proved exact optimum goal without extra budget";
    }
  }

  // Relaxation lower bound.
  if (exact.is_ok() && exact.value().proved_optimal) {
    auto relax = mfa::core::solve_relaxation(problem);
    if (!relax.is_ok()) {
      return "integer-feasible instance with infeasible relaxation";
    }
    if (relax.value().ii > exact.value().ii * (1.0 + 1e-9)) {
      return "relaxation exceeds the exact optimum II";
    }
  }

  // Compiled-model cache transparency (see check_patch_parity).
  if (const char* mismatch = check_patch_parity(problem)) return mismatch;

  // Batched-vs-scalar GP kernel parity (see check_batched_parity).
  return check_batched_parity(problem, seed);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--start") == 0 && i + 1 < argc) {
      opt.start = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--parity") == 0) {
      opt.parity_only = true;
    } else if (std::strcmp(argv[i], "--batched") == 0) {
      opt.batched_only = true;
    } else if (std::strcmp(argv[i], "--stability") == 0) {
      opt.stability_only = true;
    } else if (std::strcmp(argv[i], "--patched-bounds") == 0) {
      opt.patched_bounds_only = true;
    } else if (argv[i][0] != '-') {
      opt.count = std::strtoull(argv[i], nullptr, 10);
      if (opt.count == 0) {
        std::fprintf(stderr, "bad seed count '%s'\n", argv[i]);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [num_seeds] [--start S] [--out failure.json]"
                   " [--parity] [--batched] [--stability]"
                   " [--patched-bounds]\n",
                   argv[0]);
      return 2;
    }
  }

  const mfa::scenario::ScenarioSpec spec = fuzz_spec();
  std::uint64_t checked = 0;
  std::uint64_t infeasible = 0;
  for (std::uint64_t seed = opt.start; seed < opt.start + opt.count; ++seed) {
    const mfa::core::Problem problem = mfa::scenario::generate(spec, seed);
    bool feasible = true;
    const char* mismatch = nullptr;
    if (opt.parity_only) {
      mismatch = check_patch_parity(problem);
    } else if (opt.batched_only) {
      mismatch = check_batched_parity(problem, seed);
    } else if (opt.stability_only) {
      mismatch = check_stability(problem, seed);
    } else if (opt.patched_bounds_only) {
      mismatch = check_patched_bounds(problem, seed);
    } else {
      mismatch = check_seed(problem, seed, &feasible);
    }
    if (mismatch != nullptr) {
      report_failure(seed, problem, opt, mismatch);
      return 1;
    }
    ++checked;
    if (!feasible) ++infeasible;
    if (checked % 50 == 0) {
      std::printf("  %" PRIu64 "/%" PRIu64 " seeds ok\n", checked, opt.count);
      std::fflush(stdout);
    }
  }
  std::printf("differential fuzz%s: %" PRIu64 " seeds ok\n",
              opt.parity_only          ? " (patch parity)"
              : opt.batched_only       ? " (batched parity)"
              : opt.stability_only     ? " (stability)"
              : opt.patched_bounds_only ? " (patched bounds)"
                                        : "",
              checked);
  if (!opt.parity_only && !opt.batched_only && !opt.stability_only &&
      !opt.patched_bounds_only) {
    std::printf("(%" PRIu64 " infeasible instances exercised)\n", infeasible);
  }
  return 0;
}
